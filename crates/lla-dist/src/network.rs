//! The simulated network between controllers and resources.
//!
//! Substitutes for the paper's real network: messages experience a base
//! propagation delay, uniform jitter, and independent loss. The model is
//! deterministic given its seed, so distributed runs are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Delay/loss model applied to every message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Fixed propagation delay added to every delivery (virtual ms).
    pub base_delay: f64,
    /// Extra uniform-random delay in `[0, jitter)` (virtual ms).
    pub jitter: f64,
    /// Probability that a message is silently dropped, in `[0, 1)`.
    pub loss_probability: f64,
}

impl NetworkModel {
    /// A perfect network: zero delay, zero loss. Under round-based ticking
    /// this makes the distributed runtime bit-equivalent to the
    /// centralized optimizer.
    pub fn perfect() -> Self {
        NetworkModel { base_delay: 0.0, jitter: 0.0, loss_probability: 0.0 }
    }

    /// A lossy, jittery network.
    ///
    /// # Panics
    ///
    /// Panics if parameters are negative, non-finite, or
    /// `loss_probability ≥ 1`.
    pub fn lossy(base_delay: f64, jitter: f64, loss_probability: f64) -> Self {
        assert!(base_delay.is_finite() && base_delay >= 0.0);
        assert!(jitter.is_finite() && jitter >= 0.0);
        assert!((0.0..1.0).contains(&loss_probability));
        NetworkModel { base_delay, jitter, loss_probability }
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::perfect()
    }
}

/// Stateful sampler applying a [`NetworkModel`] with a seeded RNG.
#[derive(Debug, Clone)]
pub struct NetworkSampler {
    model: NetworkModel,
    rng: StdRng,
    delivered: u64,
    dropped: u64,
}

impl NetworkSampler {
    /// Creates a sampler.
    pub fn new(model: NetworkModel, seed: u64) -> Self {
        NetworkSampler { model, rng: StdRng::seed_from_u64(seed), delivered: 0, dropped: 0 }
    }

    /// Samples the fate of one message: `Some(delay)` to deliver after
    /// `delay` virtual milliseconds, `None` if dropped.
    pub fn sample(&mut self) -> Option<f64> {
        if self.model.loss_probability > 0.0 && self.rng.gen_bool(self.model.loss_probability) {
            self.dropped += 1;
            return None;
        }
        self.delivered += 1;
        let jitter = if self.model.jitter > 0.0 {
            self.rng.gen_range(0.0..self.model.jitter)
        } else {
            0.0
        };
        Some(self.model.base_delay + jitter)
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_network_never_drops_or_delays() {
        let mut s = NetworkSampler::new(NetworkModel::perfect(), 0);
        for _ in 0..100 {
            assert_eq!(s.sample(), Some(0.0));
        }
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.delivered(), 100);
    }

    #[test]
    fn loss_rate_is_respected() {
        let mut s = NetworkSampler::new(NetworkModel::lossy(0.0, 0.0, 0.3), 7);
        let n = 20_000;
        for _ in 0..n {
            s.sample();
        }
        let rate = s.dropped() as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed loss {rate}");
    }

    #[test]
    fn delay_within_bounds() {
        let mut s = NetworkSampler::new(NetworkModel::lossy(2.0, 3.0, 0.0), 9);
        for _ in 0..1000 {
            let d = s.sample().unwrap();
            assert!((2.0..5.0).contains(&d), "delay {d} out of bounds");
        }
    }

    #[test]
    fn sampler_is_deterministic() {
        let a: Vec<Option<f64>> =
            (0..50).map(|_| NetworkSampler::new(NetworkModel::lossy(1.0, 2.0, 0.1), 5).sample()).collect();
        let b: Vec<Option<f64>> =
            (0..50).map(|_| NetworkSampler::new(NetworkModel::lossy(1.0, 2.0, 0.1), 5).sample()).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn rejects_full_loss() {
        let _ = NetworkModel::lossy(0.0, 0.0, 1.0);
    }
}
