//! The simulated network between controllers and resources.
//!
//! Substitutes for the paper's real network: messages experience a base
//! propagation delay, uniform jitter, independent loss, independent
//! duplication, and occasional reordering spikes (a large extra delay that
//! lets later messages overtake this one). The model is deterministic
//! given its seed, so distributed runs are reproducible.
//!
//! Time-windowed *partitions* between address groups are not part of this
//! per-message model — they depend on who talks to whom and on the virtual
//! clock, so they live in the runtime's fault layer
//! ([`FaultPlan`](crate::fault::FaultPlan)).

use crate::codec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Delay/loss/duplication model applied to every message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Fixed propagation delay added to every delivery (virtual ms).
    pub base_delay: f64,
    /// Extra uniform-random delay in `[0, jitter)` (virtual ms).
    pub jitter: f64,
    /// Probability that a message is silently dropped, in `[0, 1]`.
    /// `1` is a full blackout — the degenerate case partition modeling
    /// builds on.
    pub loss_probability: f64,
    /// Probability that a message is delivered twice (the duplicate takes
    /// an independent delay sample), in `[0, 1]`.
    pub duplicate_probability: f64,
    /// Probability that a delivery takes an extra [`reorder_spike`]
    /// delay, in `[0, 1]`. With a spike longer than the message interval,
    /// later messages overtake this one — out-of-order delivery.
    ///
    /// [`reorder_spike`]: NetworkModel::reorder_spike
    pub reorder_probability: f64,
    /// The extra delay of a reordering spike (virtual ms).
    pub reorder_spike: f64,
}

impl NetworkModel {
    /// A perfect network: zero delay, zero loss. Under round-based ticking
    /// this makes the distributed runtime bit-equivalent to the
    /// centralized optimizer.
    pub fn perfect() -> Self {
        NetworkModel {
            base_delay: 0.0,
            jitter: 0.0,
            loss_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_spike: 0.0,
        }
    }

    /// A lossy, jittery network.
    ///
    /// # Panics
    ///
    /// Panics if parameters are negative, non-finite, or
    /// `loss_probability > 1`. A `loss_probability` of exactly `1` is
    /// accepted: it models a total blackout, which partition modeling
    /// needs as its degenerate case.
    pub fn lossy(base_delay: f64, jitter: f64, loss_probability: f64) -> Self {
        assert!(base_delay.is_finite() && base_delay >= 0.0);
        assert!(jitter.is_finite() && jitter >= 0.0);
        assert!((0.0..=1.0).contains(&loss_probability));
        NetworkModel { base_delay, jitter, loss_probability, ..NetworkModel::perfect() }
    }

    /// Adds independent message duplication with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "duplication probability {p} outside [0, 1]");
        self.duplicate_probability = p;
        self
    }

    /// Adds reordering spikes: with probability `p` a delivery takes an
    /// extra `spike` ms of delay, letting later messages overtake it.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` or `spike` is negative/non-finite.
    pub fn with_reordering(mut self, p: f64, spike: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "reorder probability {p} outside [0, 1]");
        assert!(spike.is_finite() && spike >= 0.0, "reorder spike must be finite and ≥ 0");
        self.reorder_probability = p;
        self.reorder_spike = spike;
        self
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::perfect()
    }
}

/// Stateful sampler applying a [`NetworkModel`] with a seeded RNG.
#[derive(Debug, Clone)]
pub struct NetworkSampler {
    model: NetworkModel,
    rng: StdRng,
    delivered: u64,
    dropped: u64,
    duplicated: u64,
}

/// The sampled fate of one message: the delays of each delivered copy.
///
/// Empty means the message was dropped; two entries mean it was
/// duplicated.
pub type Deliveries = Vec<f64>;

impl NetworkSampler {
    /// Creates a sampler.
    pub fn new(model: NetworkModel, seed: u64) -> Self {
        NetworkSampler {
            model,
            rng: StdRng::seed_from_u64(seed),
            delivered: 0,
            dropped: 0,
            duplicated: 0,
        }
    }

    fn one_delay(&mut self) -> f64 {
        let jitter =
            if self.model.jitter > 0.0 { self.rng.gen_range(0.0..self.model.jitter) } else { 0.0 };
        let spike = if self.model.reorder_probability > 0.0
            && self.rng.gen_bool(self.model.reorder_probability)
        {
            self.model.reorder_spike
        } else {
            0.0
        };
        self.model.base_delay + jitter + spike
    }

    /// Samples the fate of one message: `Some(delay)` to deliver after
    /// `delay` virtual milliseconds, `None` if dropped. Ignores
    /// duplication — use [`sample_deliveries`](Self::sample_deliveries)
    /// for the full model.
    pub fn sample(&mut self) -> Option<f64> {
        if self.model.loss_probability > 0.0 && self.rng.gen_bool(self.model.loss_probability) {
            self.dropped += 1;
            return None;
        }
        self.delivered += 1;
        Some(self.one_delay())
    }

    /// Samples the full fate of one message: the delay of every copy the
    /// network delivers (empty on loss, two entries on duplication).
    pub fn sample_deliveries(&mut self) -> Deliveries {
        match self.sample() {
            None => Vec::new(),
            Some(delay) => {
                if self.model.duplicate_probability > 0.0
                    && self.rng.gen_bool(self.model.duplicate_probability)
                {
                    self.duplicated += 1;
                    let dup = self.one_delay();
                    vec![delay, dup]
                } else {
                    vec![delay]
                }
            }
        }
    }

    /// Messages delivered so far (duplicates not counted).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages duplicated so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }
}

/// Parameters of injected frame corruption (applies in wire mode only —
/// corruption garbles *bytes*, and only wire mode has bytes to garble).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionModel {
    /// Probability that a delivered frame copy is corrupted, in `[0, 1]`.
    pub probability: f64,
}

impl CorruptionModel {
    /// No corruption.
    pub fn off() -> Self {
        CorruptionModel { probability: 0.0 }
    }

    /// Corrupts each delivered frame copy independently with probability
    /// `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_probability(p: f64) -> Self {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "corruption probability {p} outside [0, 1]"
        );
        CorruptionModel { probability: p }
    }

    /// Whether this model never corrupts.
    pub fn is_off(&self) -> bool {
        self.probability == 0.0
    }
}

impl Default for CorruptionModel {
    fn default() -> Self {
        CorruptionModel::off()
    }
}

/// Seeded, deterministic frame corruptor: byte flips, truncations, and
/// field fuzz over encoded [`codec`] frames.
///
/// Three mutation classes, chosen per corruption by the seeded RNG:
///
/// * **byte-flip** (½ of corruptions) — XOR one random bit anywhere in
///   the frame, length prefix and checksum included. Models line noise;
///   always caught by the CRC or the framing.
/// * **truncation** (¼) — cut the frame to a random proper prefix.
///   Models a dropped tail; caught by the length/truncation checks.
/// * **field-fuzz** (¼) — overwrite up to 8 random payload bytes with
///   random values and *recompute the checksum*. Models a byzantine
///   sender: valid framing around garbage values, exercising the
///   semantic validation layer rather than the transport layer. A fuzzed
///   value that happens to land inside its domain is delivered — that is
///   the residual perturbation LLA's price dynamics must (and do)
///   re-converge through.
///
/// The corruptor draws randomness **only** when its probability is
/// nonzero and **never** from the [`NetworkSampler`]'s stream, so a
/// wire-mode run with zero corruption is bit-identical to a plain run.
#[derive(Debug, Clone)]
pub struct FrameCorruptor {
    model: CorruptionModel,
    rng: StdRng,
    corrupted: u64,
}

impl FrameCorruptor {
    /// Creates a corruptor with its own seeded RNG.
    pub fn new(model: CorruptionModel, seed: u64) -> Self {
        FrameCorruptor { model, rng: StdRng::seed_from_u64(seed), corrupted: 0 }
    }

    /// The current corruption probability.
    pub fn probability(&self) -> f64 {
        self.model.probability
    }

    /// Changes the corruption probability (fault plans use this to open
    /// and close corruption windows).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_probability(&mut self, p: f64) {
        self.model = CorruptionModel::with_probability(p);
    }

    /// Possibly corrupts `frame` in place; returns whether it mutated.
    pub fn maybe_corrupt(&mut self, frame: &mut Vec<u8>) -> bool {
        if self.model.probability == 0.0 || frame.is_empty() {
            return false;
        }
        if !self.rng.gen_bool(self.model.probability) {
            return false;
        }
        self.corrupted += 1;
        match self.rng.gen_range(0..4u8) {
            0 | 1 => self.flip_bit(frame),
            2 => {
                let keep = self.rng.gen_range(0..frame.len());
                frame.truncate(keep);
            }
            _ => self.fuzz_field(frame),
        }
        true
    }

    fn flip_bit(&mut self, frame: &mut [u8]) {
        let byte = self.rng.gen_range(0..frame.len());
        let bit = self.rng.gen_range(0..8u8);
        frame[byte] ^= 1 << bit;
    }

    fn fuzz_field(&mut self, frame: &mut [u8]) {
        // Payload region: skip the 4-byte length prefix and the tag byte,
        // stop before the 4-byte checksum. Frames too small to have a
        // payload fall back to a bit flip.
        let lo = 5;
        let hi = frame.len().saturating_sub(4);
        if hi <= lo {
            self.flip_bit(frame);
            return;
        }
        let span = (hi - lo).min(8);
        let start = lo + self.rng.gen_range(0..=(hi - lo - span));
        let noise = self.rng.gen::<u64>().to_le_bytes();
        frame[start..start + span].copy_from_slice(&noise[..span]);
        codec::refresh_checksum(frame);
    }

    /// Frames corrupted so far.
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_network_never_drops_or_delays() {
        let mut s = NetworkSampler::new(NetworkModel::perfect(), 0);
        for _ in 0..100 {
            assert_eq!(s.sample(), Some(0.0));
        }
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.delivered(), 100);
    }

    #[test]
    fn loss_rate_is_respected() {
        let mut s = NetworkSampler::new(NetworkModel::lossy(0.0, 0.0, 0.3), 7);
        let n = 20_000;
        for _ in 0..n {
            s.sample();
        }
        let rate = s.dropped() as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed loss {rate}");
    }

    #[test]
    fn delay_within_bounds() {
        let mut s = NetworkSampler::new(NetworkModel::lossy(2.0, 3.0, 0.0), 9);
        for _ in 0..1000 {
            let d = s.sample().unwrap();
            assert!((2.0..5.0).contains(&d), "delay {d} out of bounds");
        }
    }

    #[test]
    fn sampler_is_deterministic() {
        let a: Vec<Option<f64>> = (0..50)
            .map(|_| NetworkSampler::new(NetworkModel::lossy(1.0, 2.0, 0.1), 5).sample())
            .collect();
        let b: Vec<Option<f64>> = (0..50)
            .map(|_| NetworkSampler::new(NetworkModel::lossy(1.0, 2.0, 0.1), 5).sample())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn accepts_full_loss_as_blackout() {
        let mut s = NetworkSampler::new(NetworkModel::lossy(0.0, 0.0, 1.0), 1);
        for _ in 0..100 {
            assert_eq!(s.sample(), None);
        }
        assert_eq!(s.dropped(), 100);
        assert_eq!(s.delivered(), 0);
    }

    #[test]
    #[should_panic]
    fn rejects_loss_above_one() {
        let _ = NetworkModel::lossy(0.0, 0.0, 1.0 + 1e-9);
    }

    #[test]
    fn duplication_rate_is_respected() {
        let mut s = NetworkSampler::new(NetworkModel::perfect().with_duplication(0.25), 13);
        let n = 20_000;
        let mut copies = 0usize;
        for _ in 0..n {
            copies += s.sample_deliveries().len();
        }
        let rate = copies as f64 / n as f64 - 1.0;
        assert!((rate - 0.25).abs() < 0.02, "observed duplication {rate}");
        assert_eq!(s.duplicated() as usize, copies - n);
    }

    #[test]
    fn reorder_spikes_delay_a_fraction_of_messages() {
        let mut s =
            NetworkSampler::new(NetworkModel::lossy(1.0, 1.0, 0.0).with_reordering(0.2, 50.0), 17);
        let n = 10_000;
        let mut spiked = 0usize;
        for _ in 0..n {
            let d = s.sample().unwrap();
            if d >= 50.0 {
                spiked += 1;
            } else {
                assert!((1.0..2.0).contains(&d), "non-spiked delay {d}");
            }
        }
        let rate = spiked as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed spike rate {rate}");
    }

    #[test]
    fn duplication_off_means_single_copies() {
        let mut s = NetworkSampler::new(NetworkModel::perfect(), 3);
        for _ in 0..100 {
            assert_eq!(s.sample_deliveries(), vec![0.0]);
        }
        assert_eq!(s.duplicated(), 0);
    }

    fn sample_frame() -> Vec<u8> {
        codec::encode(&crate::protocol::Message::Price { resource: 1, mu: 2.5, congested: false })
    }

    #[test]
    fn corruptor_off_never_mutates_or_draws() {
        // A corruptor held at zero probability draws no randomness: after
        // 100 idle calls its first real corruption matches a fresh
        // corruptor's byte for byte.
        let mut idle = FrameCorruptor::new(CorruptionModel::off(), 42);
        for _ in 0..100 {
            let mut f = sample_frame();
            assert!(!idle.maybe_corrupt(&mut f));
            assert_eq!(f, sample_frame());
        }
        idle.set_probability(1.0);
        let mut fresh = FrameCorruptor::new(CorruptionModel::with_probability(1.0), 42);
        let (mut a, mut b) = (sample_frame(), sample_frame());
        assert!(idle.maybe_corrupt(&mut a));
        assert!(fresh.maybe_corrupt(&mut b));
        assert_eq!(a, b);
        assert_eq!(idle.corrupted(), 1);
    }

    #[test]
    fn corruptor_is_deterministic_and_respects_rate() {
        let run = || {
            let mut c = FrameCorruptor::new(CorruptionModel::with_probability(0.3), 9);
            let mut frames = Vec::new();
            for _ in 0..2000 {
                let mut f = sample_frame();
                c.maybe_corrupt(&mut f);
                frames.push(f);
            }
            (frames, c.corrupted())
        };
        let (a, hits_a) = run();
        let (b, hits_b) = run();
        assert_eq!(a, b);
        assert_eq!(hits_a, hits_b);
        let rate = hits_a as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "observed corruption rate {rate}");
    }

    #[test]
    fn every_corruption_changes_the_frame_and_most_are_rejected() {
        let mut c = FrameCorruptor::new(CorruptionModel::with_probability(1.0), 7);
        let mut rejected = 0usize;
        let n = 500;
        for _ in 0..n {
            let clean = sample_frame();
            let mut f = clean.clone();
            assert!(c.maybe_corrupt(&mut f));
            if codec::decode(&f).is_err() {
                rejected += 1;
            } else {
                // A field-fuzz survivor must still be a semantically
                // valid message — that is the whole guarantee.
                assert_ne!(f, clean);
                let msg = codec::decode(&f).unwrap();
                assert!(codec::validate(&msg).is_ok());
            }
        }
        // Bit flips and truncations are always caught; only in-domain
        // field fuzz can slip through, so rejections dominate.
        assert!(rejected > n / 2, "only {rejected}/{n} corruptions rejected");
    }

    #[test]
    #[should_panic(expected = "corruption probability")]
    fn corruption_model_rejects_bad_probability() {
        let _ = CorruptionModel::with_probability(1.5);
    }
}
