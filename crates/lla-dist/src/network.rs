//! The simulated network between controllers and resources.
//!
//! Substitutes for the paper's real network: messages experience a base
//! propagation delay, uniform jitter, independent loss, independent
//! duplication, and occasional reordering spikes (a large extra delay that
//! lets later messages overtake this one). The model is deterministic
//! given its seed, so distributed runs are reproducible.
//!
//! Time-windowed *partitions* between address groups are not part of this
//! per-message model — they depend on who talks to whom and on the virtual
//! clock, so they live in the runtime's fault layer
//! ([`FaultPlan`](crate::fault::FaultPlan)).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Delay/loss/duplication model applied to every message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Fixed propagation delay added to every delivery (virtual ms).
    pub base_delay: f64,
    /// Extra uniform-random delay in `[0, jitter)` (virtual ms).
    pub jitter: f64,
    /// Probability that a message is silently dropped, in `[0, 1]`.
    /// `1` is a full blackout — the degenerate case partition modeling
    /// builds on.
    pub loss_probability: f64,
    /// Probability that a message is delivered twice (the duplicate takes
    /// an independent delay sample), in `[0, 1]`.
    pub duplicate_probability: f64,
    /// Probability that a delivery takes an extra [`reorder_spike`]
    /// delay, in `[0, 1]`. With a spike longer than the message interval,
    /// later messages overtake this one — out-of-order delivery.
    ///
    /// [`reorder_spike`]: NetworkModel::reorder_spike
    pub reorder_probability: f64,
    /// The extra delay of a reordering spike (virtual ms).
    pub reorder_spike: f64,
}

impl NetworkModel {
    /// A perfect network: zero delay, zero loss. Under round-based ticking
    /// this makes the distributed runtime bit-equivalent to the
    /// centralized optimizer.
    pub fn perfect() -> Self {
        NetworkModel {
            base_delay: 0.0,
            jitter: 0.0,
            loss_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_spike: 0.0,
        }
    }

    /// A lossy, jittery network.
    ///
    /// # Panics
    ///
    /// Panics if parameters are negative, non-finite, or
    /// `loss_probability > 1`. A `loss_probability` of exactly `1` is
    /// accepted: it models a total blackout, which partition modeling
    /// needs as its degenerate case.
    pub fn lossy(base_delay: f64, jitter: f64, loss_probability: f64) -> Self {
        assert!(base_delay.is_finite() && base_delay >= 0.0);
        assert!(jitter.is_finite() && jitter >= 0.0);
        assert!((0.0..=1.0).contains(&loss_probability));
        NetworkModel { base_delay, jitter, loss_probability, ..NetworkModel::perfect() }
    }

    /// Adds independent message duplication with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "duplication probability {p} outside [0, 1]");
        self.duplicate_probability = p;
        self
    }

    /// Adds reordering spikes: with probability `p` a delivery takes an
    /// extra `spike` ms of delay, letting later messages overtake it.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` or `spike` is negative/non-finite.
    pub fn with_reordering(mut self, p: f64, spike: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "reorder probability {p} outside [0, 1]");
        assert!(spike.is_finite() && spike >= 0.0, "reorder spike must be finite and ≥ 0");
        self.reorder_probability = p;
        self.reorder_spike = spike;
        self
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::perfect()
    }
}

/// Stateful sampler applying a [`NetworkModel`] with a seeded RNG.
#[derive(Debug, Clone)]
pub struct NetworkSampler {
    model: NetworkModel,
    rng: StdRng,
    delivered: u64,
    dropped: u64,
    duplicated: u64,
}

/// The sampled fate of one message: the delays of each delivered copy.
///
/// Empty means the message was dropped; two entries mean it was
/// duplicated.
pub type Deliveries = Vec<f64>;

impl NetworkSampler {
    /// Creates a sampler.
    pub fn new(model: NetworkModel, seed: u64) -> Self {
        NetworkSampler {
            model,
            rng: StdRng::seed_from_u64(seed),
            delivered: 0,
            dropped: 0,
            duplicated: 0,
        }
    }

    fn one_delay(&mut self) -> f64 {
        let jitter =
            if self.model.jitter > 0.0 { self.rng.gen_range(0.0..self.model.jitter) } else { 0.0 };
        let spike = if self.model.reorder_probability > 0.0
            && self.rng.gen_bool(self.model.reorder_probability)
        {
            self.model.reorder_spike
        } else {
            0.0
        };
        self.model.base_delay + jitter + spike
    }

    /// Samples the fate of one message: `Some(delay)` to deliver after
    /// `delay` virtual milliseconds, `None` if dropped. Ignores
    /// duplication — use [`sample_deliveries`](Self::sample_deliveries)
    /// for the full model.
    pub fn sample(&mut self) -> Option<f64> {
        if self.model.loss_probability > 0.0 && self.rng.gen_bool(self.model.loss_probability) {
            self.dropped += 1;
            return None;
        }
        self.delivered += 1;
        Some(self.one_delay())
    }

    /// Samples the full fate of one message: the delay of every copy the
    /// network delivers (empty on loss, two entries on duplication).
    pub fn sample_deliveries(&mut self) -> Deliveries {
        match self.sample() {
            None => Vec::new(),
            Some(delay) => {
                if self.model.duplicate_probability > 0.0
                    && self.rng.gen_bool(self.model.duplicate_probability)
                {
                    self.duplicated += 1;
                    let dup = self.one_delay();
                    vec![delay, dup]
                } else {
                    vec![delay]
                }
            }
        }
    }

    /// Messages delivered so far (duplicates not counted).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages duplicated so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_network_never_drops_or_delays() {
        let mut s = NetworkSampler::new(NetworkModel::perfect(), 0);
        for _ in 0..100 {
            assert_eq!(s.sample(), Some(0.0));
        }
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.delivered(), 100);
    }

    #[test]
    fn loss_rate_is_respected() {
        let mut s = NetworkSampler::new(NetworkModel::lossy(0.0, 0.0, 0.3), 7);
        let n = 20_000;
        for _ in 0..n {
            s.sample();
        }
        let rate = s.dropped() as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed loss {rate}");
    }

    #[test]
    fn delay_within_bounds() {
        let mut s = NetworkSampler::new(NetworkModel::lossy(2.0, 3.0, 0.0), 9);
        for _ in 0..1000 {
            let d = s.sample().unwrap();
            assert!((2.0..5.0).contains(&d), "delay {d} out of bounds");
        }
    }

    #[test]
    fn sampler_is_deterministic() {
        let a: Vec<Option<f64>> = (0..50)
            .map(|_| NetworkSampler::new(NetworkModel::lossy(1.0, 2.0, 0.1), 5).sample())
            .collect();
        let b: Vec<Option<f64>> = (0..50)
            .map(|_| NetworkSampler::new(NetworkModel::lossy(1.0, 2.0, 0.1), 5).sample())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn accepts_full_loss_as_blackout() {
        let mut s = NetworkSampler::new(NetworkModel::lossy(0.0, 0.0, 1.0), 1);
        for _ in 0..100 {
            assert_eq!(s.sample(), None);
        }
        assert_eq!(s.dropped(), 100);
        assert_eq!(s.delivered(), 0);
    }

    #[test]
    #[should_panic]
    fn rejects_loss_above_one() {
        let _ = NetworkModel::lossy(0.0, 0.0, 1.0 + 1e-9);
    }

    #[test]
    fn duplication_rate_is_respected() {
        let mut s = NetworkSampler::new(NetworkModel::perfect().with_duplication(0.25), 13);
        let n = 20_000;
        let mut copies = 0usize;
        for _ in 0..n {
            copies += s.sample_deliveries().len();
        }
        let rate = copies as f64 / n as f64 - 1.0;
        assert!((rate - 0.25).abs() < 0.02, "observed duplication {rate}");
        assert_eq!(s.duplicated() as usize, copies - n);
    }

    #[test]
    fn reorder_spikes_delay_a_fraction_of_messages() {
        let mut s =
            NetworkSampler::new(NetworkModel::lossy(1.0, 1.0, 0.0).with_reordering(0.2, 50.0), 17);
        let n = 10_000;
        let mut spiked = 0usize;
        for _ in 0..n {
            let d = s.sample().unwrap();
            if d >= 50.0 {
                spiked += 1;
            } else {
                assert!((1.0..2.0).contains(&d), "non-spiked delay {d}");
            }
        }
        let rate = spiked as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed spike rate {rate}");
    }

    #[test]
    fn duplication_off_means_single_copies() {
        let mut s = NetworkSampler::new(NetworkModel::perfect(), 3);
        for _ in 0..100 {
            assert_eq!(s.sample_deliveries(), vec![0.0]);
        }
        assert_eq!(s.duplicated(), 0);
    }
}
