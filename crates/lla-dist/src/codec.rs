//! Validated wire codec for [`protocol::Message`](crate::protocol::Message).
//!
//! Every robustness layer before this one moved messages as in-memory Rust
//! structs: well-formed by construction. A real deployment (the ROADMAP's
//! wall-clock socket runtime) moves *bytes*, and bytes arrive truncated,
//! bit-flipped, or adversarially fuzzed. This module defines the frame
//! format those bytes will use and a strict `decode → validate` pipeline
//! that refuses to construct a [`Message`] from anything malformed — no
//! NaN price, negative latency, or absurd id ever crosses the codec
//! boundary into agent state.
//!
//! ## Frame layout
//!
//! ```text
//! ┌────────────┬───────────┬─────────────┬──────────────┐
//! │ len: u32LE │ tag: u8   │ payload …   │ crc32: u32LE │
//! └────────────┴───────────┴─────────────┴──────────────┘
//!               `len` bytes (tag + payload)
//! ```
//!
//! * `len` — byte length of the body (tag + payload); bounded by
//!   [`MAX_BODY`] so a corrupted length prefix cannot demand gigabytes.
//! * `tag` — one byte per [`Message`] variant, in declaration order.
//! * `crc32` — IEEE CRC-32 over the body. Catches every single-bit flip
//!   (pinned exhaustively in tests) and all but ~2⁻³² of multi-bit burst
//!   errors.
//!
//! Integers are little-endian; floats travel as IEEE-754 bit patterns, so
//! `encode ∘ decode` is the identity (bit-exact — the property that makes
//! wire mode byte-identical to struct passing under zero corruption).
//!
//! ## Validation
//!
//! Decoding is only half the pipeline: a frame that parses still passes
//! through [`validate`], which enforces the *semantic* domain of every
//! field — finite floats, `μ_r ≥ 0`, latency `> 0`, availability in
//! `(0, 1]`, ids/epochs/sequences under sanity caps. This is the layer
//! that stops a "byzantine sender" (valid framing and checksum, garbage
//! values — modeled by the field-fuzz corruption in
//! [`FrameCorruptor`](crate::network::FrameCorruptor)) from poisoning
//! [`PriceState`](lla_core::PriceState).

use crate::protocol::{Address, Message};

/// Maximum accepted body (tag + payload) length in bytes. The largest
/// real message body is a full telemetry report at 143 bytes; the cap
/// bounds the damage of a corrupted length prefix.
pub const MAX_BODY: usize = 256;

/// Maximum accepted task/resource/subtask slot index on the wire.
pub const MAX_WIRE_ID: u32 = 1 << 20;

/// Maximum accepted epoch or sequence number on the wire.
pub const MAX_WIRE_SEQ: u64 = 1 << 48;

/// Maximum accepted replica count on the wire.
pub const MAX_WIRE_REPLICAS: u32 = 1 << 16;

/// Maximum accepted resource price `μ_r` on the wire. The cap rejects
/// garbage — near-overflow bit patterns one flip away from infinity —
/// without bounding the economics: under sustained corruption the dual
/// dynamics can legitimately drive finite prices through hundreds of
/// orders of magnitude before re-converging, and refusing those frames
/// would starve controllers of the very updates that restore agreement.
pub const MAX_WIRE_PRICE: f64 = 1e300;

/// Maximum accepted latency assignment (virtual ms) on the wire. Same
/// rationale as [`MAX_WIRE_PRICE`]: a garbage filter, not a domain bound.
pub const MAX_WIRE_LATENCY: f64 = 1e300;

/// Maximum accepted gamma-calm growth multiple on the wire.
pub const MAX_WIRE_MULTIPLE: f64 = 1e9;

/// Maximum accepted delta entries in one telemetry report. The fleet
/// metric dictionary is far smaller; the cap bounds a forged count byte.
pub const MAX_WIRE_REPORT_ENTRIES: usize = 24;

/// Maximum accepted dictionary slot index in a telemetry report delta.
pub const MAX_WIRE_REPORT_SLOT: u8 = 63;

/// Maximum accepted telemetry watermark (virtual ms) on the wire. Same
/// rationale as [`MAX_WIRE_PRICE`]: a garbage filter, not a domain bound.
pub const MAX_WIRE_WATERMARK: f64 = 1e300;

/// Frame-level overhead: length prefix (4) + trailing checksum (4).
pub const FRAME_OVERHEAD: usize = 8;

/// Why a frame was refused by [`decode`].
///
/// Every variant corresponds to a distinct failure layer: transport
/// (truncation, length, checksum), framing (tag, address, bool), and
/// semantics (non-finite or out-of-domain values).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FrameError {
    /// The buffer ends before the frame does.
    Truncated {
        /// Bytes the frame needs.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// Bytes remain after a complete frame (or after a variant's payload
    /// inside the body).
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// The length prefix is zero or exceeds [`MAX_BODY`].
    BadLength {
        /// The rejected body length.
        len: usize,
    },
    /// The trailing CRC-32 does not match the body.
    BadChecksum {
        /// Checksum computed over the received body.
        expected: u32,
        /// Checksum carried by the frame.
        got: u32,
    },
    /// The tag byte names no known [`Message`] variant.
    UnknownTag {
        /// The rejected tag.
        tag: u8,
    },
    /// An address field carries an unknown address kind.
    BadAddress {
        /// The rejected address-kind byte.
        tag: u8,
    },
    /// A boolean field carries a byte other than 0 or 1.
    BadBool {
        /// The field name.
        field: &'static str,
        /// The rejected byte.
        value: u8,
    },
    /// A float field decoded to NaN or ±infinity.
    NonFiniteFloat {
        /// The field name.
        field: &'static str,
    },
    /// An integer field (id, epoch, seq, replicas) exceeds its wire cap
    /// or is below its minimum.
    OutOfRange {
        /// The field name.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// A float field is finite but outside its semantic domain
    /// (e.g. negative price, zero latency, availability above 1).
    InvalidFloat {
        /// The field name.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, got } => {
                write!(f, "frame truncated: needs {needed} bytes, got {got}")
            }
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame")
            }
            FrameError::BadLength { len } => write!(f, "bad body length {len}"),
            FrameError::BadChecksum { expected, got } => {
                write!(f, "checksum mismatch: computed {expected:#010x}, frame carries {got:#010x}")
            }
            FrameError::UnknownTag { tag } => write!(f, "unknown message tag {tag:#04x}"),
            FrameError::BadAddress { tag } => write!(f, "unknown address kind {tag:#04x}"),
            FrameError::BadBool { field, value } => {
                write!(f, "non-boolean byte {value} in `{field}`")
            }
            FrameError::NonFiniteFloat { field } => write!(f, "non-finite float in `{field}`"),
            FrameError::OutOfRange { field, value } => {
                write!(f, "value {value} out of range for `{field}`")
            }
            FrameError::InvalidFloat { field, value } => {
                write!(f, "value {value} outside the domain of `{field}`")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// The short kebab-case layer a [`FrameError`] belongs to — used as a
/// telemetry event field so rejection events aggregate cleanly.
impl FrameError {
    /// Stable kebab-case name of the rejection cause.
    pub fn cause(&self) -> &'static str {
        match self {
            FrameError::Truncated { .. } => "truncated",
            FrameError::TrailingBytes { .. } => "trailing-bytes",
            FrameError::BadLength { .. } => "bad-length",
            FrameError::BadChecksum { .. } => "bad-checksum",
            FrameError::UnknownTag { .. } => "unknown-tag",
            FrameError::BadAddress { .. } => "bad-address",
            FrameError::BadBool { .. } => "bad-bool",
            FrameError::NonFiniteFloat { .. } => "non-finite-float",
            FrameError::OutOfRange { .. } => "out-of-range",
            FrameError::InvalidFloat { .. } => "invalid-float",
        }
    }
}

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32 (the Ethernet/zip polynomial) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

const TAG_PRICE: u8 = 0x01;
const TAG_LATENCY: u8 = 0x02;
const TAG_AVAILABILITY_UPDATE: u8 = 0x03;
const TAG_AVAILABILITY_ACK: u8 = 0x04;
const TAG_TASK_JOIN: u8 = 0x05;
const TAG_TASK_LEAVE: u8 = 0x06;
const TAG_RESOURCE_JOIN: u8 = 0x07;
const TAG_RESOURCE_RETIRE: u8 = 0x08;
const TAG_EVICT: u8 = 0x09;
const TAG_MEMBERSHIP_ACK: u8 = 0x0A;
const TAG_REPLICA_UPDATE: u8 = 0x0B;
const TAG_GAMMA_CALM: u8 = 0x0C;
const TAG_DUAL_RESYNC: u8 = 0x0D;
const TAG_COMMAND_ACK: u8 = 0x0E;
const TAG_TELEMETRY_REPORT: u8 = 0x0F;

const ADDR_RESOURCE: u8 = 0x00;
const ADDR_CONTROLLER: u8 = 0x01;
const ADDR_CONTROL_PLANE: u8 = 0x02;
const ADDR_COLLECTOR: u8 = 0x03;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_id(buf: &mut Vec<u8>, id: usize) {
    let id = u32::try_from(id).expect("slot index exceeds the wire format's u32 range");
    put_u32(buf, id);
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

fn put_addr(buf: &mut Vec<u8>, addr: Address) {
    match addr {
        Address::Resource(r) => {
            buf.push(ADDR_RESOURCE);
            put_id(buf, r);
        }
        Address::Controller(t) => {
            buf.push(ADDR_CONTROLLER);
            put_id(buf, t);
        }
        Address::ControlPlane => {
            buf.push(ADDR_CONTROL_PLANE);
            put_u32(buf, 0);
        }
        Address::Collector => {
            buf.push(ADDR_COLLECTOR);
            put_u32(buf, 0);
        }
    }
}

/// Encodes `msg` into a complete length-prefixed, checksummed frame.
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    match *msg {
        Message::Price { resource, mu, congested } => {
            body.push(TAG_PRICE);
            put_id(&mut body, resource);
            put_f64(&mut body, mu);
            put_bool(&mut body, congested);
        }
        Message::Latency { task, subtask, latency } => {
            body.push(TAG_LATENCY);
            put_id(&mut body, task);
            put_id(&mut body, subtask);
            put_f64(&mut body, latency);
        }
        Message::AvailabilityUpdate { resource, availability, seq } => {
            body.push(TAG_AVAILABILITY_UPDATE);
            put_id(&mut body, resource);
            put_f64(&mut body, availability);
            put_u64(&mut body, seq);
        }
        Message::AvailabilityAck { resource, seq, from } => {
            body.push(TAG_AVAILABILITY_ACK);
            put_id(&mut body, resource);
            put_u64(&mut body, seq);
            put_addr(&mut body, from);
        }
        Message::TaskJoin { slot, epoch, seq } => {
            body.push(TAG_TASK_JOIN);
            put_id(&mut body, slot);
            put_u64(&mut body, epoch);
            put_u64(&mut body, seq);
        }
        Message::TaskLeave { slot, epoch, seq } => {
            body.push(TAG_TASK_LEAVE);
            put_id(&mut body, slot);
            put_u64(&mut body, epoch);
            put_u64(&mut body, seq);
        }
        Message::ResourceJoin { slot, epoch, seq } => {
            body.push(TAG_RESOURCE_JOIN);
            put_id(&mut body, slot);
            put_u64(&mut body, epoch);
            put_u64(&mut body, seq);
        }
        Message::ResourceRetire { slot, epoch, seq } => {
            body.push(TAG_RESOURCE_RETIRE);
            put_id(&mut body, slot);
            put_u64(&mut body, epoch);
            put_u64(&mut body, seq);
        }
        Message::Evict { slot, epoch, seq } => {
            body.push(TAG_EVICT);
            put_id(&mut body, slot);
            put_u64(&mut body, epoch);
            put_u64(&mut body, seq);
        }
        Message::MembershipAck { epoch, seq, from } => {
            body.push(TAG_MEMBERSHIP_ACK);
            put_u64(&mut body, epoch);
            put_u64(&mut body, seq);
            put_addr(&mut body, from);
        }
        Message::ReplicaUpdate { slot, replicas, epoch, seq } => {
            body.push(TAG_REPLICA_UPDATE);
            put_id(&mut body, slot);
            put_u32(&mut body, replicas);
            put_u64(&mut body, epoch);
            put_u64(&mut body, seq);
        }
        Message::GammaCalm { max_multiple, seq } => {
            body.push(TAG_GAMMA_CALM);
            put_f64(&mut body, max_multiple);
            put_u64(&mut body, seq);
        }
        Message::DualResync { seq } => {
            body.push(TAG_DUAL_RESYNC);
            put_u64(&mut body, seq);
        }
        Message::CommandAck { seq, from } => {
            body.push(TAG_COMMAND_ACK);
            put_u64(&mut body, seq);
            put_addr(&mut body, from);
        }
        Message::TelemetryReport { from, seq, watermark, ref deltas } => {
            body.push(TAG_TELEMETRY_REPORT);
            put_addr(&mut body, from);
            put_u64(&mut body, seq);
            put_f64(&mut body, watermark);
            body.push(u8::try_from(deltas.len()).expect("report entries exceed u8 range"));
            for &(slot, delta) in deltas {
                body.push(slot);
                put_u32(&mut body, delta);
            }
        }
    }
    debug_assert!(body.len() <= MAX_BODY);
    let mut frame = Vec::with_capacity(body.len() + FRAME_OVERHEAD);
    put_u32(&mut frame, u32::try_from(body.len()).expect("body exceeds u32 range"));
    frame.extend_from_slice(&body);
    put_u32(&mut frame, crc32(&body));
    frame
}

/// Recomputes and rewrites the trailing CRC-32 of a structurally complete
/// frame in place.
///
/// Used by field-fuzz corruption injection to model a *byzantine sender*:
/// valid framing and checksum around garbage field values, so the frame
/// reaches the semantic validation layer instead of dying at the
/// transport layer. No-op on buffers too short to be a frame.
pub fn refresh_checksum(frame: &mut [u8]) {
    if frame.len() < FRAME_OVERHEAD {
        return;
    }
    let body_end = frame.len() - 4;
    let crc = crc32(&frame[4..body_end]);
    frame[body_end..].copy_from_slice(&crc.to_le_bytes());
}

struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Rd { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos + n;
        if end > self.buf.len() {
            return Err(FrameError::Truncated { needed: end, got: self.buf.len() });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn id(&mut self, field: &'static str) -> Result<usize, FrameError> {
        let v = self.u32()?;
        if v > MAX_WIRE_ID {
            return Err(FrameError::OutOfRange { field, value: u64::from(v) });
        }
        Ok(v as usize)
    }

    fn seq(&mut self, field: &'static str) -> Result<u64, FrameError> {
        let v = self.u64()?;
        if v > MAX_WIRE_SEQ {
            return Err(FrameError::OutOfRange { field, value: v });
        }
        Ok(v)
    }

    fn boolean(&mut self, field: &'static str) -> Result<bool, FrameError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(FrameError::BadBool { field, value }),
        }
    }

    fn addr(&mut self) -> Result<Address, FrameError> {
        let kind = self.u8()?;
        let id = self.id("address id")?;
        match kind {
            ADDR_RESOURCE => Ok(Address::Resource(id)),
            ADDR_CONTROLLER => Ok(Address::Controller(id)),
            ADDR_CONTROL_PLANE => Ok(Address::ControlPlane),
            ADDR_COLLECTOR => Ok(Address::Collector),
            tag => Err(FrameError::BadAddress { tag }),
        }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn finite(field: &'static str, v: f64) -> Result<f64, FrameError> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(FrameError::NonFiniteFloat { field })
    }
}

fn in_domain(
    field: &'static str,
    v: f64,
    lo_excl: bool,
    lo: f64,
    hi: f64,
) -> Result<(), FrameError> {
    let below = if lo_excl { v <= lo } else { v < lo };
    if below || v > hi {
        return Err(FrameError::InvalidFloat { field, value: v });
    }
    Ok(())
}

/// Semantic validation of a (possibly decoded) message: every float must
/// be finite and inside its domain, every count inside its wire cap.
///
/// This is the second half of the `decode → validate` pipeline; it is
/// also usable standalone by agents that receive struct-passed messages
/// (non-wire mode) and want the same guardrails.
///
/// # Errors
///
/// Returns the [`FrameError`] describing the first violated constraint.
pub fn validate(msg: &Message) -> Result<(), FrameError> {
    match *msg {
        Message::Price { mu, .. } => {
            finite("price mu", mu)?;
            in_domain("price mu", mu, false, 0.0, MAX_WIRE_PRICE)?;
        }
        Message::Latency { latency, .. } => {
            finite("latency", latency)?;
            in_domain("latency", latency, true, 0.0, MAX_WIRE_LATENCY)?;
        }
        Message::AvailabilityUpdate { availability, .. } => {
            finite("availability", availability)?;
            in_domain("availability", availability, true, 0.0, 1.0)?;
        }
        Message::ReplicaUpdate { replicas, .. } => {
            if replicas == 0 || replicas > MAX_WIRE_REPLICAS {
                return Err(FrameError::OutOfRange {
                    field: "replicas",
                    value: u64::from(replicas),
                });
            }
        }
        Message::GammaCalm { max_multiple, .. } => {
            finite("gamma-calm max multiple", max_multiple)?;
            in_domain("gamma-calm max multiple", max_multiple, false, 1.0, MAX_WIRE_MULTIPLE)?;
        }
        Message::TelemetryReport { watermark, ref deltas, .. } => {
            finite("report watermark", watermark)?;
            in_domain("report watermark", watermark, false, 0.0, MAX_WIRE_WATERMARK)?;
            if deltas.len() > MAX_WIRE_REPORT_ENTRIES {
                return Err(FrameError::OutOfRange {
                    field: "report entries",
                    value: deltas.len() as u64,
                });
            }
            // Slots strictly increasing: rejects forged duplicates and
            // keeps the encoding canonical (one byte layout per report).
            let mut prev: Option<u8> = None;
            for &(slot, _) in deltas {
                if slot > MAX_WIRE_REPORT_SLOT {
                    return Err(FrameError::OutOfRange {
                        field: "report slot",
                        value: u64::from(slot),
                    });
                }
                if prev.is_some_and(|p| slot <= p) {
                    return Err(FrameError::OutOfRange {
                        field: "report slot order",
                        value: u64::from(slot),
                    });
                }
                prev = Some(slot);
            }
        }
        Message::AvailabilityAck { .. }
        | Message::TaskJoin { .. }
        | Message::TaskLeave { .. }
        | Message::ResourceJoin { .. }
        | Message::ResourceRetire { .. }
        | Message::Evict { .. }
        | Message::MembershipAck { .. }
        | Message::DualResync { .. }
        | Message::CommandAck { .. } => {}
    }
    Ok(())
}

/// Decodes and validates exactly one frame that must span the whole
/// buffer.
///
/// # Errors
///
/// Any [`FrameError`]; in particular [`FrameError::TrailingBytes`] if the
/// buffer continues past the frame.
pub fn decode(bytes: &[u8]) -> Result<Message, FrameError> {
    let (msg, used) = decode_frame(bytes)?;
    if used != bytes.len() {
        return Err(FrameError::TrailingBytes { extra: bytes.len() - used });
    }
    Ok(msg)
}

/// Decodes and validates one frame from the front of `bytes`, returning
/// the message and the number of bytes consumed (for stream decoding).
///
/// # Errors
///
/// Any [`FrameError`] raised by the transport, framing, or semantic
/// layer.
pub fn decode_frame(bytes: &[u8]) -> Result<(Message, usize), FrameError> {
    if bytes.len() < 4 {
        return Err(FrameError::Truncated { needed: 4, got: bytes.len() });
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if len == 0 || len > MAX_BODY {
        return Err(FrameError::BadLength { len });
    }
    let total = 4 + len + 4;
    if bytes.len() < total {
        return Err(FrameError::Truncated { needed: total, got: bytes.len() });
    }
    let body = &bytes[4..4 + len];
    let carried = u32::from_le_bytes([
        bytes[4 + len],
        bytes[4 + len + 1],
        bytes[4 + len + 2],
        bytes[4 + len + 3],
    ]);
    let expected = crc32(body);
    if carried != expected {
        return Err(FrameError::BadChecksum { expected, got: carried });
    }
    let mut rd = Rd::new(body);
    let tag = rd.u8()?;
    let msg = match tag {
        TAG_PRICE => Message::Price {
            resource: rd.id("price resource")?,
            mu: rd.f64()?,
            congested: rd.boolean("price congested")?,
        },
        TAG_LATENCY => Message::Latency {
            task: rd.id("latency task")?,
            subtask: rd.id("latency subtask")?,
            latency: rd.f64()?,
        },
        TAG_AVAILABILITY_UPDATE => Message::AvailabilityUpdate {
            resource: rd.id("availability resource")?,
            availability: rd.f64()?,
            seq: rd.seq("availability seq")?,
        },
        TAG_AVAILABILITY_ACK => Message::AvailabilityAck {
            resource: rd.id("ack resource")?,
            seq: rd.seq("ack seq")?,
            from: rd.addr()?,
        },
        TAG_TASK_JOIN => Message::TaskJoin {
            slot: rd.id("join slot")?,
            epoch: rd.seq("join epoch")?,
            seq: rd.seq("join seq")?,
        },
        TAG_TASK_LEAVE => Message::TaskLeave {
            slot: rd.id("leave slot")?,
            epoch: rd.seq("leave epoch")?,
            seq: rd.seq("leave seq")?,
        },
        TAG_RESOURCE_JOIN => Message::ResourceJoin {
            slot: rd.id("join slot")?,
            epoch: rd.seq("join epoch")?,
            seq: rd.seq("join seq")?,
        },
        TAG_RESOURCE_RETIRE => Message::ResourceRetire {
            slot: rd.id("retire slot")?,
            epoch: rd.seq("retire epoch")?,
            seq: rd.seq("retire seq")?,
        },
        TAG_EVICT => Message::Evict {
            slot: rd.id("evict slot")?,
            epoch: rd.seq("evict epoch")?,
            seq: rd.seq("evict seq")?,
        },
        TAG_MEMBERSHIP_ACK => Message::MembershipAck {
            epoch: rd.seq("ack epoch")?,
            seq: rd.seq("ack seq")?,
            from: rd.addr()?,
        },
        TAG_REPLICA_UPDATE => Message::ReplicaUpdate {
            slot: rd.id("replica slot")?,
            replicas: rd.u32()?,
            epoch: rd.seq("replica epoch")?,
            seq: rd.seq("replica seq")?,
        },
        TAG_GAMMA_CALM => Message::GammaCalm { max_multiple: rd.f64()?, seq: rd.seq("calm seq")? },
        TAG_DUAL_RESYNC => Message::DualResync { seq: rd.seq("resync seq")? },
        TAG_COMMAND_ACK => Message::CommandAck { seq: rd.seq("ack seq")?, from: rd.addr()? },
        TAG_TELEMETRY_REPORT => {
            let from = rd.addr()?;
            let seq = rd.seq("report seq")?;
            let watermark = rd.f64()?;
            let count = rd.u8()? as usize;
            if count > MAX_WIRE_REPORT_ENTRIES {
                return Err(FrameError::OutOfRange {
                    field: "report entries",
                    value: count as u64,
                });
            }
            let mut deltas = Vec::with_capacity(count);
            for _ in 0..count {
                let slot = rd.u8()?;
                let delta = rd.u32()?;
                deltas.push((slot, delta));
            }
            Message::TelemetryReport { from, seq, watermark, deltas }
        }
        tag => return Err(FrameError::UnknownTag { tag }),
    };
    if rd.remaining() != 0 {
        return Err(FrameError::TrailingBytes { extra: rd.remaining() });
    }
    validate(&msg)?;
    Ok((msg, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_variant() -> Vec<Message> {
        let from = Address::Controller(3);
        vec![
            Message::Price { resource: 2, mu: 1.75, congested: true },
            Message::Latency { task: 1, subtask: 4, latency: 12.5 },
            Message::AvailabilityUpdate { resource: 0, availability: 0.9, seq: 7 },
            Message::AvailabilityAck { resource: 0, seq: 7, from },
            Message::TaskJoin { slot: 5, epoch: 2, seq: 9 },
            Message::TaskLeave { slot: 5, epoch: 3, seq: 10 },
            Message::ResourceJoin { slot: 6, epoch: 4, seq: 11 },
            Message::ResourceRetire { slot: 6, epoch: 5, seq: 12 },
            Message::Evict { slot: 1, epoch: 6, seq: 13 },
            Message::MembershipAck { epoch: 6, seq: 13, from: Address::Resource(6) },
            Message::ReplicaUpdate { slot: 6, replicas: 3, epoch: 7, seq: 14 },
            Message::GammaCalm { max_multiple: 8.0, seq: 15 },
            Message::DualResync { seq: 16 },
            Message::CommandAck { seq: 16, from: Address::ControlPlane },
            Message::TelemetryReport {
                from: Address::Resource(2),
                seq: 17,
                watermark: 190.0,
                deltas: vec![(0, 19), (3, 2), (5, 40)],
            },
        ]
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_every_variant() {
        for msg in every_variant() {
            let frame = encode(&msg);
            let back = decode(&frame).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn round_trip_preserves_float_bits_exactly() {
        let mu = 0.1 + 0.2; // a value with a non-terminating binary tail
        let frame = encode(&Message::Price { resource: 0, mu, congested: false });
        match decode(&frame).unwrap() {
            Message::Price { mu: back, .. } => assert_eq!(back.to_bits(), mu.to_bits()),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        for msg in every_variant() {
            let frame = encode(&msg);
            for byte in 0..frame.len() {
                for bit in 0..8 {
                    let mut bad = frame.clone();
                    bad[byte] ^= 1 << bit;
                    assert!(
                        decode(&bad).is_err(),
                        "flip of byte {byte} bit {bit} in {msg:?} went undetected"
                    );
                }
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        for msg in every_variant() {
            let frame = encode(&msg);
            for cut in 0..frame.len() {
                assert!(decode(&frame[..cut]).is_err(), "prefix {cut} of {msg:?} decoded");
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = encode(&Message::DualResync { seq: 1 });
        frame.push(0xAA);
        assert_eq!(decode(&frame), Err(FrameError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn zero_and_oversized_lengths_are_rejected() {
        let mut frame = encode(&Message::DualResync { seq: 1 });
        frame[..4].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(decode(&frame), Err(FrameError::BadLength { len: 0 }));
        let huge = u32::try_from(MAX_BODY + 1).unwrap();
        frame[..4].copy_from_slice(&huge.to_le_bytes());
        assert_eq!(decode(&frame), Err(FrameError::BadLength { len: MAX_BODY + 1 }));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut frame = encode(&Message::DualResync { seq: 1 });
        frame[4] = 0xFF;
        refresh_checksum(&mut frame);
        assert_eq!(decode(&frame), Err(FrameError::UnknownTag { tag: 0xFF }));
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let frame = encode(&Message::Price { resource: 0, mu: bad, congested: false });
            assert_eq!(decode(&frame), Err(FrameError::NonFiniteFloat { field: "price mu" }));
        }
    }

    #[test]
    fn out_of_domain_floats_are_rejected() {
        let cases = [
            Message::Price { resource: 0, mu: -1.0, congested: false },
            Message::Price { resource: 0, mu: MAX_WIRE_PRICE * 2.0, congested: false },
            Message::Latency { task: 0, subtask: 0, latency: 0.0 },
            Message::Latency { task: 0, subtask: 0, latency: -2.0 },
            Message::AvailabilityUpdate { resource: 0, availability: 0.0, seq: 1 },
            Message::AvailabilityUpdate { resource: 0, availability: 1.5, seq: 1 },
            Message::GammaCalm { max_multiple: 0.5, seq: 1 },
        ];
        for msg in cases {
            let frame = encode(&msg);
            match decode(&frame) {
                Err(FrameError::InvalidFloat { .. }) => {}
                other => panic!("{msg:?} decoded to {other:?}"),
            }
        }
    }

    #[test]
    fn out_of_range_ids_and_seqs_are_rejected() {
        let frame = encode(&Message::Price {
            resource: MAX_WIRE_ID as usize + 1,
            mu: 1.0,
            congested: false,
        });
        assert!(matches!(
            decode(&frame),
            Err(FrameError::OutOfRange { field: "price resource", .. })
        ));
        let frame = encode(&Message::DualResync { seq: MAX_WIRE_SEQ + 1 });
        assert!(matches!(decode(&frame), Err(FrameError::OutOfRange { field: "resync seq", .. })));
        let frame = encode(&Message::ReplicaUpdate { slot: 0, replicas: 0, epoch: 1, seq: 1 });
        assert!(matches!(
            decode(&frame),
            Err(FrameError::OutOfRange { field: "replicas", value: 0 })
        ));
    }

    #[test]
    fn bad_bool_and_bad_address_are_rejected() {
        let mut frame = encode(&Message::Price { resource: 0, mu: 1.0, congested: false });
        let congested_at = frame.len() - 4 - 1; // last body byte
        frame[congested_at] = 7;
        refresh_checksum(&mut frame);
        assert_eq!(decode(&frame), Err(FrameError::BadBool { field: "price congested", value: 7 }));

        let mut frame = encode(&Message::CommandAck { seq: 1, from: Address::ControlPlane });
        let addr_kind_at = 4 + 1 + 8; // len prefix + tag + seq
        frame[addr_kind_at] = 9;
        refresh_checksum(&mut frame);
        assert_eq!(decode(&frame), Err(FrameError::BadAddress { tag: 9 }));
    }

    #[test]
    fn decode_frame_reports_consumed_length_for_streams() {
        let a = encode(&Message::DualResync { seq: 1 });
        let b = encode(&Message::GammaCalm { max_multiple: 4.0, seq: 2 });
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let (m1, used) = decode_frame(&stream).unwrap();
        assert_eq!(m1, Message::DualResync { seq: 1 });
        assert_eq!(used, a.len());
        let (m2, used2) = decode_frame(&stream[used..]).unwrap();
        assert_eq!(m2, Message::GammaCalm { max_multiple: 4.0, seq: 2 });
        assert_eq!(used2, b.len());
    }

    #[test]
    fn validate_rejects_struct_passed_poison() {
        assert!(validate(&Message::Price { resource: 0, mu: f64::NAN, congested: false }).is_err());
        assert!(validate(&Message::Latency { task: 0, subtask: 0, latency: -1.0 }).is_err());
        assert!(validate(&Message::DualResync { seq: 3 }).is_ok());
    }

    #[test]
    fn telemetry_report_garbage_is_rejected() {
        let base = |deltas: Vec<(u8, u32)>| Message::TelemetryReport {
            from: Address::Resource(0),
            seq: 1,
            watermark: 10.0,
            deltas,
        };
        // Non-increasing slots (dup or out of order) are forged layouts.
        for deltas in [vec![(3, 1), (3, 2)], vec![(5, 1), (2, 2)]] {
            assert!(matches!(
                validate(&base(deltas)),
                Err(FrameError::OutOfRange { field: "report slot order", .. })
            ));
        }
        assert!(matches!(
            validate(&base(vec![(MAX_WIRE_REPORT_SLOT + 1, 1)])),
            Err(FrameError::OutOfRange { field: "report slot", .. })
        ));
        let too_many: Vec<(u8, u32)> =
            (0..=MAX_WIRE_REPORT_ENTRIES as u8).map(|i| (i, 1)).collect();
        assert!(matches!(
            validate(&base(too_many)),
            Err(FrameError::OutOfRange { field: "report entries", .. })
        ));
        let mut bad = base(vec![]);
        if let Message::TelemetryReport { watermark, .. } = &mut bad {
            *watermark = f64::NAN;
        }
        assert!(matches!(
            validate(&bad),
            Err(FrameError::NonFiniteFloat { field: "report watermark" })
        ));
    }

    #[test]
    fn full_size_telemetry_report_fits_the_body_cap() {
        let deltas: Vec<(u8, u32)> =
            (0..MAX_WIRE_REPORT_ENTRIES as u8).map(|i| (i, u32::MAX)).collect();
        let msg = Message::TelemetryReport {
            from: Address::Collector,
            seq: MAX_WIRE_SEQ,
            watermark: MAX_WIRE_WATERMARK,
            deltas,
        };
        let frame = encode(&msg);
        assert!(frame.len() - FRAME_OVERHEAD <= MAX_BODY, "{} bytes", frame.len());
        assert_eq!(decode(&frame).unwrap(), msg);
    }

    #[test]
    fn error_display_is_lowercase_and_concise() {
        let e = FrameError::BadLength { len: 0 };
        assert!(!e.to_string().is_empty());
        assert!(!e.to_string().ends_with('.'));
        assert_eq!(e.cause(), "bad-length");
    }
}
