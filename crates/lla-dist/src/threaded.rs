//! A threaded deployment: every agent on its own OS thread, exchanging
//! messages over channels — real concurrency rather than virtual time.
//!
//! Two drive modes:
//!
//! * [`ThreadedLla::run_rounds`] — phase-barriered rounds (controllers
//!   tick, all latency messages flush, resources tick, all price messages
//!   flush). Deterministic and equivalent to the centralized optimizer.
//! * [`ThreadedLla::run_free`] — agents tick freely on their own cadence
//!   for a wall-clock duration; prices and latencies are read at whatever
//!   staleness the scheduling produces, demonstrating LLA's tolerance to
//!   asynchrony.

use crate::agents::{ResourceAgent, SharedLats, TaskController};
use crate::protocol::{Address, Message};
use crate::runtime::{Actor, Outbox};
use crossbeam::channel::{unbounded, Receiver, Sender};
use lla_core::{Allocation, AllocationSettings, Problem, StepSizePolicy};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

enum Ctl {
    /// Drain the inbox, tick once, confirm.
    Tick,
    /// Drain the inbox, tick, repeat freely every `interval` until `Stop`.
    Free {
        interval: Duration,
    },
    Stop,
}

enum RouterCtl {
    Forward(Address, Message),
    /// Reply on the given channel once all previously queued messages have
    /// been forwarded (channel FIFO makes this a flush barrier).
    Flush(Sender<()>),
    Stop,
}

struct AgentHandle {
    /// Human-readable agent name (its protocol address), reported when
    /// the thread is found panicked at shutdown.
    name: String,
    ctl: Sender<Ctl>,
    done: Receiver<()>,
    join: JoinHandle<()>,
}

/// Shutdown found one or more agent threads dead of a panic. The
/// remaining threads were still stopped and joined — the deployment is
/// fully torn down when this error is returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownError {
    /// Names (protocol addresses) of the agents whose threads panicked.
    pub panicked: Vec<String>,
}

impl std::fmt::Display for ShutdownError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "agent thread(s) panicked: {}", self.panicked.join(", "))
    }
}

impl std::error::Error for ShutdownError {}

/// A running threaded deployment.
#[derive(Debug)]
pub struct ThreadedLla {
    problem: Arc<Problem>,
    telemetry: SharedLats,
    controllers: Vec<AgentHandleOpaque>,
    resources: Vec<AgentHandleOpaque>,
    router_ctl: Sender<RouterCtl>,
    router_join: Option<JoinHandle<()>>,
}

// AgentHandle contains a JoinHandle (not Debug); wrap opaquely.
struct AgentHandleOpaque(AgentHandle);

impl std::fmt::Debug for AgentHandleOpaque {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AgentHandle")
    }
}

fn spawn_agent(
    name: String,
    mut actor: Box<dyn Actor>,
    inbox: Receiver<Message>,
    router: Sender<RouterCtl>,
) -> AgentHandle {
    let (ctl_tx, ctl_rx) = unbounded::<Ctl>();
    let (done_tx, done_rx) = unbounded::<()>();
    let join = std::thread::spawn(move || {
        let drain_and_tick = |actor: &mut Box<dyn Actor>| {
            let mut outbox = Outbox::default();
            while let Ok(msg) = inbox.try_recv() {
                actor.on_message(0.0, msg, &mut outbox);
            }
            actor.on_tick(0.0, &mut outbox);
            for (to, msg) in outbox.into_messages() {
                // A closed router means shutdown is racing us; stop sending.
                if router.send(RouterCtl::Forward(to, msg)).is_err() {
                    break;
                }
            }
        };
        while let Ok(cmd) = ctl_rx.recv() {
            match cmd {
                Ctl::Tick => {
                    drain_and_tick(&mut actor);
                    let _ = done_tx.send(());
                }
                Ctl::Free { interval } => loop {
                    match ctl_rx.recv_timeout(interval) {
                        Ok(Ctl::Stop) => return,
                        Ok(_) => {}
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            drain_and_tick(&mut actor);
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    }
                },
                Ctl::Stop => return,
            }
        }
    });
    AgentHandle { name, ctl: ctl_tx, done: done_rx, join }
}

impl ThreadedLla {
    /// Spawns one thread per resource agent and per task controller.
    pub fn new(problem: Problem, policy: StepSizePolicy, settings: AllocationSettings) -> Self {
        let problem = Arc::new(problem);
        let telemetry: SharedLats = Arc::new(Mutex::new(problem.initial_allocation()));

        // Build inbox channels for every actor and the router map.
        let mut senders: HashMap<Address, Sender<Message>> = HashMap::new();
        let mut controller_inboxes = Vec::new();
        let mut resource_inboxes = Vec::new();
        for t in 0..problem.tasks().len() {
            let (tx, rx) = unbounded();
            senders.insert(Address::Controller(t), tx);
            controller_inboxes.push(rx);
        }
        for r in 0..problem.resources().len() {
            let (tx, rx) = unbounded();
            senders.insert(Address::Resource(r), tx);
            resource_inboxes.push(rx);
        }

        let (router_tx, router_rx) = unbounded::<RouterCtl>();
        let router_join = std::thread::spawn(move || {
            while let Ok(cmd) = router_rx.recv() {
                match cmd {
                    RouterCtl::Forward(to, msg) => {
                        if let Some(tx) = senders.get(&to) {
                            let _ = tx.send(msg);
                        }
                    }
                    RouterCtl::Flush(reply) => {
                        let _ = reply.send(());
                    }
                    RouterCtl::Stop => break,
                }
            }
        });

        let controllers: Vec<AgentHandleOpaque> = controller_inboxes
            .into_iter()
            .enumerate()
            .map(|(t, inbox)| {
                let actor: Box<dyn Actor> = Box::new(TaskController::new(
                    t,
                    (*problem).clone(),
                    policy,
                    settings,
                    Arc::clone(&telemetry),
                ));
                AgentHandleOpaque(spawn_agent(
                    Address::Controller(t).to_string(),
                    actor,
                    inbox,
                    router_tx.clone(),
                ))
            })
            .collect();
        let resources: Vec<AgentHandleOpaque> = resource_inboxes
            .into_iter()
            .enumerate()
            .map(|(r, inbox)| {
                let actor: Box<dyn Actor> =
                    Box::new(ResourceAgent::new(r, (*problem).clone(), policy));
                AgentHandleOpaque(spawn_agent(
                    Address::Resource(r).to_string(),
                    actor,
                    inbox,
                    router_tx.clone(),
                ))
            })
            .collect();

        ThreadedLla {
            problem,
            telemetry,
            controllers,
            resources,
            router_ctl: router_tx,
            router_join: Some(router_join),
        }
    }

    /// The deployed problem.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    fn flush_router(&self) {
        let (tx, rx) = unbounded();
        if self.router_ctl.send(RouterCtl::Flush(tx)).is_ok() {
            let _ = rx.recv();
        }
    }

    fn phase(&self, group: &[AgentHandleOpaque]) {
        for h in group {
            let _ = h.0.ctl.send(Ctl::Tick);
        }
        for h in group {
            let _ = h.0.done.recv();
        }
        // All outbox sends happened before `done`; flushing the router
        // guarantees they reached the destination inboxes.
        self.flush_router();
    }

    /// Runs `n` barriered rounds (controllers phase, then resources phase).
    pub fn run_rounds(&mut self, n: usize) {
        for _ in 0..n {
            self.phase(&self.controllers);
            self.phase(&self.resources);
        }
    }

    /// Lets every agent tick freely every `interval` for `duration`
    /// (wall-clock). Demonstrates asynchronous operation; the outcome
    /// depends on OS scheduling and is therefore only approximately
    /// reproducible.
    pub fn run_free(&mut self, interval: Duration, duration: Duration) {
        for h in self.controllers.iter().chain(&self.resources) {
            let _ = h.0.ctl.send(Ctl::Free { interval });
        }
        std::thread::sleep(duration);
        for h in self.controllers.iter().chain(&self.resources) {
            let _ = h.0.ctl.send(Ctl::Stop);
        }
        // Agents notice Stop within one interval (recv_timeout); re-join
        // happens at shutdown.
        std::thread::sleep(interval);
        self.flush_router();
    }

    /// The latest allocation reported by the controllers.
    pub fn allocation(&self) -> Allocation {
        Allocation::from_lats(self.telemetry.lock().clone())
    }

    /// The current total utility.
    pub fn utility(&self) -> f64 {
        self.problem.total_utility(&self.telemetry.lock())
    }

    /// Stops all threads and waits for them.
    ///
    /// # Errors
    ///
    /// [`ShutdownError`] naming every agent whose thread had died of a
    /// panic — a panic on an agent thread must surface, not vanish into
    /// a swallowed [`JoinHandle`]. The deployment is fully torn down
    /// either way.
    pub fn shutdown(mut self) -> Result<(), ShutdownError> {
        let panicked = self.shutdown_inner();
        if panicked.is_empty() {
            Ok(())
        } else {
            Err(ShutdownError { panicked })
        }
    }

    fn shutdown_inner(&mut self) -> Vec<String> {
        let mut panicked = Vec::new();
        for h in self.controllers.drain(..).chain(self.resources.drain(..)) {
            let _ = h.0.ctl.send(Ctl::Stop);
            if h.0.join.join().is_err() {
                panicked.push(h.0.name);
            }
        }
        let _ = self.router_ctl.send(RouterCtl::Stop);
        if let Some(j) = self.router_join.take() {
            let _ = j.join();
        }
        panicked
    }

    /// Spawns an extra agent whose thread panics on its first tick —
    /// test scaffolding for the panic-propagation contract.
    #[cfg(test)]
    fn spawn_panicker_for_test(&mut self, name: &str) {
        #[derive(Debug)]
        struct Panicker(String);
        impl Actor for Panicker {
            fn on_tick(&mut self, _now: f64, _outbox: &mut Outbox) {
                panic!("{} exploded (test)", self.0);
            }
            fn on_message(&mut self, _now: f64, _msg: Message, _outbox: &mut Outbox) {}
            fn as_any(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let (_tx, rx) = unbounded::<Message>();
        let handle = spawn_agent(
            name.to_string(),
            Box::new(Panicker(name.to_string())),
            rx,
            self.router_ctl.clone(),
        );
        self.controllers.push(AgentHandleOpaque(handle));
    }
}

impl Drop for ThreadedLla {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lla_core::{
        Optimizer, OptimizerConfig, Resource, ResourceId, ResourceKind, TaskBuilder, TaskId,
    };

    fn problem() -> Problem {
        let resources = vec![
            Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
            Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
        ];
        let mut tasks = Vec::new();
        for (i, c) in [(0usize, 40.0), (1usize, 60.0)] {
            let mut b = TaskBuilder::new(format!("t{i}"));
            let a = b.subtask("a", ResourceId::new(0), 2.0);
            let d = b.subtask("b", ResourceId::new(1), 3.0);
            b.edge(a, d).unwrap();
            b.critical_time(c);
            tasks.push(b.build(TaskId::new(i)).unwrap());
        }
        Problem::new(resources, tasks).unwrap()
    }

    fn settings() -> AllocationSettings {
        AllocationSettings { throughput_floor: false, ..Default::default() }
    }

    #[test]
    fn barriered_rounds_match_centralized() {
        let mut dist = ThreadedLla::new(problem(), StepSizePolicy::default(), settings());
        dist.run_rounds(300);
        let threaded_u = dist.utility();
        dist.shutdown().expect("no agent panicked");

        let mut opt = Optimizer::new(
            problem(),
            OptimizerConfig { allocation: settings(), ..OptimizerConfig::default() },
        );
        opt.run(300);
        assert!(
            (threaded_u - opt.utility()).abs() < 1e-9,
            "threaded {threaded_u} != centralized {}",
            opt.utility()
        );
    }

    #[test]
    fn free_running_improves_and_stays_feasible() {
        let mut dist = ThreadedLla::new(problem(), StepSizePolicy::default(), settings());
        let initial = dist.utility();
        dist.run_free(Duration::from_micros(200), Duration::from_millis(700));
        let achieved = dist.utility();
        let feasible = dist.problem().is_feasible(dist.allocation().lats(), 5e-2);
        dist.shutdown().expect("no agent panicked");
        assert!(achieved > initial, "free run should improve utility: {achieved} <= {initial}");
        assert!(feasible, "free run should approach feasibility");
    }

    #[test]
    fn shutdown_reports_panicked_agents_by_name() {
        let mut dist = ThreadedLla::new(problem(), StepSizePolicy::default(), settings());
        dist.spawn_panicker_for_test("controller[99]");
        // The panicker dies on its first tick; the healthy agents keep
        // working and the round still completes.
        dist.run_rounds(3);
        let err = dist.shutdown().expect_err("panic must surface at shutdown");
        assert_eq!(err.panicked, vec!["controller[99]".to_string()]);
        assert!(err.to_string().contains("controller[99]"), "display names the agent: {err}");
    }
}
