//! The fleet telemetry plane: per-agent scoped metrics shipped over the
//! wire to a collector agent with a deterministic SLO alerting engine.
//!
//! Every [`ResourceAgent`](crate::agents::ResourceAgent) and
//! [`TaskController`](crate::agents::TaskController) carries an
//! [`AgentTelemetry`]: a per-agent [`AgentScope`] of counters (labeled
//! `agent="resource[r]"` / `agent="controller[t]"` series on the shared
//! registry) plus, when shipping is enabled, a [`DeltaTracker`] that
//! periodically drains the deltas into a
//! [`Message::TelemetryReport`] addressed to [`Address::Collector`].
//! Reports ride the same simulated network — and, in wire mode, the same
//! validated codec — as protocol traffic, so they are lost, duplicated,
//! reordered, partitioned, and corrupted exactly like data-plane
//! messages.
//!
//! The [`CollectorAgent`] merges whatever arrives into a deterministic
//! fleet view (a [`TelemetryCollector`]) and evaluates declarative
//! [`SloRule`]s on the virtual clock every tick, emitting
//! pending → firing → resolved alert transitions as structured events.
//! Shipping defaults *off* ([`DistConfig::report_cadence`] `= 0.0`):
//! with it off no collector is registered, no report is ever sent, and a
//! deployment is byte-identical to one built before this module existed.
//!
//! [`DistConfig::report_cadence`]: crate::system::DistConfig::report_cadence

use crate::protocol::{Address, Message};
use crate::runtime::{Actor, Outbox};
use crate::telemetry::DistTelemetry;
use lla_telemetry::{
    AgentScope, AlertCmp, AlertSeverity, DeltaTracker, FiringAlert, MetricDef, SloEngine, SloRule,
    TelemetryCollector, TelemetryReport,
};

/// Dictionary slot: agent ticks executed (dormant agents excluded).
pub const M_TICKS: usize = 0;
/// Dictionary slot: resource price (μ) gradient steps applied.
pub const M_PRICE_UPDATES: usize = 1;
/// Dictionary slot: controller latency re-allocations computed.
pub const M_LATENCY_UPDATES: usize = 2;
/// Dictionary slot: protocol messages delivered to the agent.
pub const M_MESSAGES_IN: usize = 3;
/// Dictionary slot: protocol messages the agent handed to the network.
pub const M_MESSAGES_OUT: usize = 4;
/// Dictionary slot: ticks spent frozen on last-known-good state.
pub const M_DEGRADED_TICKS: usize = 5;
/// Dictionary slot: resource ticks that saw usage exceed availability —
/// the overload signal the default SLO rules alert on.
pub const M_OVERLOADED_TICKS: usize = 6;
/// Dictionary slot: message values refused by numeric guardrails.
pub const M_VALUE_REJECTIONS: usize = 7;
/// Dictionary slot: controller checkpoints written.
pub const M_CHECKPOINTS: usize = 8;

/// The fleet metric dictionary, shared verbatim by every reporting agent
/// and the collector: reports carry `M_*` slot indices, not names.
pub const AGENT_METRICS: &[MetricDef] = &[
    MetricDef { name: "ticks", help: "agent ticks executed" },
    MetricDef { name: "price_updates", help: "resource price gradient steps applied" },
    MetricDef { name: "latency_updates", help: "controller latency re-allocations computed" },
    MetricDef { name: "messages_in", help: "protocol messages delivered to the agent" },
    MetricDef { name: "messages_out", help: "protocol messages handed to the network" },
    MetricDef { name: "degraded_ticks", help: "ticks spent frozen on last-known-good state" },
    MetricDef { name: "overloaded_ticks", help: "resource ticks with usage above availability" },
    MetricDef { name: "value_rejections", help: "message values refused by numeric guardrails" },
    MetricDef { name: "checkpoints", help: "controller checkpoints written" },
];

/// Shipping state for one agent: how often to report and what has
/// already been shipped.
#[derive(Debug, Clone)]
struct Shipper {
    tracker: DeltaTracker,
    cadence: f64,
    next_at: f64,
}

/// One agent's slice of the fleet telemetry plane: a scoped counter set
/// plus (when shipping is enabled) the delta tracker that drains it onto
/// the wire.
///
/// The scope writes are passive — labeled counters on the shared
/// registry, no messages, no randomness — so an agent with shipping
/// disabled behaves bit-identically to an uninstrumented one. The
/// shipping books (sequence number, shipped totals) are treated as
/// *durable* agent state: they survive [`Actor::on_crash`] untouched, so
/// the per-agent sequence stays monotone across restarts and the
/// collector never sees a sequence rewind.
#[derive(Debug, Clone)]
pub struct AgentTelemetry {
    scope: AgentScope,
    shipper: Option<Shipper>,
}

impl AgentTelemetry {
    /// A scope labeled `agent = addr` on `tel`'s registry; shipping every
    /// `cadence` virtual ms (`0.0` disables shipping entirely).
    pub fn new(tel: &DistTelemetry, addr: Address, cadence: f64) -> Self {
        let scope = AgentScope::new(&tel.registry, &addr.to_string(), AGENT_METRICS);
        let shipper = (cadence > 0.0).then(|| Shipper {
            tracker: DeltaTracker::new(AGENT_METRICS.len()),
            cadence,
            next_at: cadence,
        });
        AgentTelemetry { scope, shipper }
    }

    /// An inert scope (disabled registry, no shipping) — the default for
    /// agents constructed outside a deployment.
    pub fn noop() -> Self {
        AgentTelemetry {
            scope: AgentScope::new(
                &lla_telemetry::MetricsRegistry::disabled(),
                "noop",
                AGENT_METRICS,
            ),
            shipper: None,
        }
    }

    /// Increment dictionary slot `slot` by one.
    pub fn inc(&self, slot: usize) {
        self.scope.inc(slot);
    }

    /// Increment dictionary slot `slot` by `n`.
    pub fn add(&self, slot: usize, n: u64) {
        self.scope.add(slot, n);
    }

    /// Reports emitted so far (the last shipped sequence number).
    pub fn emitted(&self) -> u64 {
        self.shipper.as_ref().map_or(0, |s| s.tracker.emitted())
    }

    /// If shipping is enabled and the cadence has elapsed, drains the
    /// scope's deltas into a [`Message::TelemetryReport`] from `from` and
    /// queues it for [`Address::Collector`]. Called at the end of the
    /// owning agent's tick, so the watermark covers every update through
    /// `now` inclusive.
    pub fn maybe_report(&mut self, now: f64, from: Address, outbox: &mut Outbox) {
        let Some(shipper) = self.shipper.as_mut() else {
            return;
        };
        if now < shipper.next_at {
            return;
        }
        shipper.next_at = now + shipper.cadence;
        let report = shipper.tracker.drain(&self.scope, now);
        let deltas = report
            .deltas
            .iter()
            .map(|&(slot, delta)| (slot as u8, u32::try_from(delta).unwrap_or(u32::MAX)))
            .collect();
        outbox.send(
            Address::Collector,
            Message::TelemetryReport { from, seq: report.seq, watermark: report.watermark, deltas },
        );
    }
}

/// The default alert rules a deployment installs when shipping is
/// enabled. All thresholds compare the *per-evaluation delta* (one
/// collector tick, i.e. one round):
///
/// * `fleet-overload` (critical) — any resource tick saw usage above
///   availability, sustained for two rounds. The supervisor treats a
///   firing critical alert as a remediation trigger.
/// * `fleet-degraded` (warning) — agents are freezing on stale state.
/// * `fleet-value-rejections` (warning) — guardrails are refusing
///   in-flight values; fires immediately (each rejection is discrete
///   evidence of corruption or hostility).
pub fn default_slo_rules(round_length: f64) -> Vec<SloRule> {
    vec![
        SloRule {
            name: "fleet-overload".to_owned(),
            metric: "overloaded_ticks".to_owned(),
            agent: None,
            cmp: AlertCmp::Gt,
            threshold: 0.0,
            for_ms: 2.0 * round_length,
            severity: AlertSeverity::Critical,
        },
        SloRule {
            name: "fleet-degraded".to_owned(),
            metric: "degraded_ticks".to_owned(),
            agent: None,
            cmp: AlertCmp::Gt,
            threshold: 0.0,
            for_ms: 2.0 * round_length,
            severity: AlertSeverity::Warning,
        },
        SloRule {
            name: "fleet-value-rejections".to_owned(),
            metric: "value_rejections".to_owned(),
            agent: None,
            cmp: AlertCmp::Gt,
            threshold: 0.0,
            for_ms: 0.0,
            severity: AlertSeverity::Warning,
        },
    ]
}

/// The fleet telemetry collector, deployed at [`Address::Collector`]
/// when shipping is enabled. Purely a sink: it ingests
/// [`Message::TelemetryReport`]s in `on_message`, and on every tick
/// evaluates the SLO rules against the merged view and re-publishes the
/// fleet tables into the shared registry. It never sends a message, so
/// its presence cannot perturb the protocol.
#[derive(Debug)]
pub struct CollectorAgent {
    fleet: TelemetryCollector,
    slo: SloEngine,
    tel: DistTelemetry,
}

impl CollectorAgent {
    /// A collector over the [`AGENT_METRICS`] dictionary with the given
    /// alert rules, publishing into `tel`'s registry and event log.
    pub fn new(tel: DistTelemetry, rules: Vec<SloRule>) -> Self {
        CollectorAgent {
            fleet: TelemetryCollector::new(AGENT_METRICS),
            slo: SloEngine::new(rules),
            tel,
        }
    }

    /// The merged fleet view.
    pub fn fleet(&self) -> &TelemetryCollector {
        &self.fleet
    }

    /// The alert engine (rules, states, firing set).
    pub fn slo(&self) -> &SloEngine {
        &self.slo
    }

    /// Replace the alert rule set; all alert state resets to inactive.
    pub fn set_rules(&mut self, rules: Vec<SloRule>) {
        self.slo.set_rules(rules);
    }

    /// Every currently-firing alert.
    pub fn firing(&self) -> Vec<FiringAlert> {
        self.slo.firing()
    }
}

impl Actor for CollectorAgent {
    fn on_tick(&mut self, now: f64, _outbox: &mut Outbox) {
        self.slo.evaluate(now, &self.fleet, &self.tel.events);
        self.fleet.export_into(&self.tel.registry);
    }

    fn on_message(&mut self, _now: f64, msg: Message, _outbox: &mut Outbox) {
        if let Message::TelemetryReport { from, seq, watermark, deltas } = msg {
            let report = TelemetryReport {
                agent: from.to_string(),
                seq,
                watermark,
                deltas: deltas.iter().map(|&(s, d)| (s as usize, u64::from(d))).collect(),
            };
            self.fleet.ingest(&report);
        }
    }

    // A crashed collector keeps its merged view: the fleet tables are an
    // *observer's* books, and wiping them would turn every post-restart
    // report into a spurious duplicate (agents' sequence numbers are
    // durable). Semantically the collector checkpoints its view on every
    // merge.

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(agent: &mut AgentTelemetry, now: f64, from: Address) -> Vec<(Address, Message)> {
        let mut outbox = Outbox::default();
        agent.maybe_report(now, from, &mut outbox);
        outbox.into_messages()
    }

    #[test]
    fn noop_agent_telemetry_never_ships() {
        let mut agent = AgentTelemetry::noop();
        agent.inc(M_TICKS);
        assert!(tick(&mut agent, 1e9, Address::Resource(0)).is_empty());
        assert_eq!(agent.emitted(), 0);
    }

    #[test]
    fn cadence_gates_reports_and_deltas_are_slot_encoded() {
        // A live registry: scope increments on a disabled registry are
        // no-ops, so shipping only carries content when telemetry is on.
        let hub = lla_telemetry::TelemetryHub::recording();
        let tel = DistTelemetry::from_hub(&hub);
        let mut agent = AgentTelemetry::new(&tel, Address::Resource(3), 10.0);
        agent.inc(M_TICKS);
        agent.add(M_MESSAGES_OUT, 4);
        assert!(tick(&mut agent, 5.0, Address::Resource(3)).is_empty(), "before the cadence");
        let msgs = tick(&mut agent, 10.0, Address::Resource(3));
        assert_eq!(msgs.len(), 1);
        let (to, msg) = &msgs[0];
        assert_eq!(*to, Address::Collector);
        match msg {
            Message::TelemetryReport { from, seq, watermark, deltas } => {
                assert_eq!(*from, Address::Resource(3));
                assert_eq!(*seq, 1);
                assert_eq!(*watermark, 10.0);
                assert_eq!(deltas, &[(M_TICKS as u8, 1), (M_MESSAGES_OUT as u8, 4)]);
            }
            other => panic!("expected a telemetry report, got {other:?}"),
        }
        // Idle period: the next report still ships (empty deltas) so the
        // collector's watermark keeps advancing.
        let msgs = tick(&mut agent, 20.0, Address::Resource(3));
        match &msgs[0].1 {
            Message::TelemetryReport { seq, deltas, .. } => {
                assert_eq!(*seq, 2);
                assert!(deltas.is_empty());
            }
            other => panic!("expected a telemetry report, got {other:?}"),
        }
        assert_eq!(agent.emitted(), 2);
    }

    #[test]
    fn collector_merges_reports_and_default_rules_fire_on_overload() {
        use lla_telemetry::{AlertState, TelemetryHub};
        let hub = TelemetryHub::recording();
        let tel = DistTelemetry::from_hub(&hub);
        let mut collector = CollectorAgent::new(tel, default_slo_rules(10.0));
        let mut outbox = Outbox::default();
        let overload = |seq: u64, watermark: f64, n: u32| Message::TelemetryReport {
            from: Address::Resource(0),
            seq,
            watermark,
            deltas: if n > 0 { vec![(M_OVERLOADED_TICKS as u8, n)] } else { vec![] },
        };
        // Baseline evaluation, then two rounds of sustained overload.
        collector.on_message(9.0, overload(1, 9.0, 0), &mut outbox);
        collector.on_tick(9.0, &mut outbox);
        collector.on_message(19.0, overload(2, 19.0, 1), &mut outbox);
        collector.on_tick(19.0, &mut outbox);
        assert_eq!(collector.slo().state(0), AlertState::Pending { since: 19.0 });
        collector.on_message(29.0, overload(3, 29.0, 1), &mut outbox);
        collector.on_tick(29.0, &mut outbox);
        collector.on_message(39.0, overload(4, 39.0, 1), &mut outbox);
        collector.on_tick(39.0, &mut outbox);
        assert_eq!(collector.firing().len(), 1);
        assert_eq!(collector.firing()[0].rule, "fleet-overload");
        // Recovery resolves.
        collector.on_message(49.0, overload(5, 49.0, 0), &mut outbox);
        collector.on_tick(49.0, &mut outbox);
        assert!(collector.firing().is_empty());
        assert!(outbox.is_empty(), "the collector must never send");
        // The fleet view exported into the shared registry.
        let text = hub.metrics.prometheus_text();
        assert!(
            text.contains("lla_fleet_overloaded_ticks_total{agent=\"resource[0]\"} 3"),
            "{text}"
        );
        // The alert timeline landed in the event log.
        assert_eq!(hub.events.count_kind("alert"), 3, "pending, firing, resolved");
    }
}
