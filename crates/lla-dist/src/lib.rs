//! # `lla-dist` — distributed emulation of LLA
//!
//! The paper's algorithm is distributed by construction (§4.1): every
//! resource computes its own price and every task controller allocates its
//! own latencies, coordinated only through price/latency messages. This
//! crate deploys exactly that structure:
//!
//! * [`protocol`] — the `Price`/`Latency` message protocol and actor
//!   addresses.
//! * [`codec`] — a zero-dependency validated wire codec: every message
//!   encodes to a length-prefixed, CRC-checksummed frame and decodes
//!   through a strict `decode → validate` pipeline returning typed
//!   [`FrameError`]s, so no NaN price or absurd id ever crosses the wire
//!   boundary into agent state.
//! * [`network`] — a seeded delay/jitter/loss model standing in for a real
//!   network, plus [`FrameCorruptor`](network::FrameCorruptor): seeded
//!   byte-flip/truncation/field-fuzz corruption of encoded frames for
//!   adversarial-input soaks.
//! * [`runtime`] — a deterministic virtual-time actor runtime.
//! * [`fault`] — [`FaultPlan`](fault::FaultPlan): scheduled partitions,
//!   crashes/restarts, and availability drops on the virtual clock,
//!   enforced by the runtime.
//! * [`agents`] — [`ResourceAgent`](agents::ResourceAgent) (price
//!   computation, Eq. 8), [`TaskController`](agents::TaskController)
//!   (path prices + latency allocation, Eq. 7/9), and
//!   [`ControlPlaneAgent`](agents::ControlPlaneAgent) (reliable
//!   availability dissemination); the first two are thin wrappers over
//!   `lla-core`'s primitives so the distributed and centralized code paths
//!   share one implementation. Controllers checkpoint into a
//!   [`CheckpointStore`](agents::CheckpointStore) and degrade gracefully
//!   when prices go stale (see [`RobustnessConfig`](agents::RobustnessConfig)).
//! * [`supervisor`] — [`SupervisorEngine`]: closed-loop self-healing —
//!   diagnostic verdicts drive graduated remediation (gamma calm,
//!   checkpoint rollback, dual re-sync, escalating shedding) and
//!   price-driven elastic replica capacity.
//! * [`fleet`] — the fleet telemetry plane: per-agent
//!   [`AgentTelemetry`](fleet::AgentTelemetry) scopes shipped as
//!   delta-encoded, watermarked `TelemetryReport` frames to a
//!   [`CollectorAgent`](fleet::CollectorAgent) that merges them into a
//!   deterministic fleet view and evaluates SLO alert rules.
//! * [`system`] — [`DistributedLla`]: a full deployment on the virtual
//!   runtime. With a perfect network and round-based ticking it is
//!   **bit-equivalent** to the centralized [`lla_core::Optimizer`] (tested);
//!   with delay/jitter/loss it exercises LLA's tolerance to stale prices.
//! * [`threaded`] — [`ThreadedLla`]: the same agents on real OS threads
//!   with channel messaging, in barriered-round or free-running mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agents;
pub mod codec;
pub mod fault;
pub mod fleet;
pub mod network;
pub mod protocol;
pub mod runtime;
pub mod supervisor;
pub mod system;
pub mod telemetry;
pub mod threaded;

pub use agents::{
    CheckpointStore, ControlPlaneAgent, ControllerCheckpoint, MembershipCause, RobustnessConfig,
    TopologyEpoch, TopologyStore,
};
pub use codec::{decode, decode_frame, encode, FrameError};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use fleet::{default_slo_rules, AgentTelemetry, CollectorAgent, AGENT_METRICS};
pub use network::{CorruptionModel, FrameCorruptor, NetworkModel, NetworkSampler};
pub use protocol::{Address, Message};
pub use runtime::{Actor, Outbox, VirtualRuntime};
pub use supervisor::{
    run_supervised, Remediation, RemediationKind, SupervisorConfig, SupervisorEngine,
};
pub use system::{DistConfig, DistributedLla};
pub use telemetry::DistTelemetry;
pub use threaded::{ShutdownError, ThreadedLla};
