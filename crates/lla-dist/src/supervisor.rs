//! Closed-loop self-healing: a supervisor that watches the deployment's
//! convergence diagnostics and applies graduated remediation.
//!
//! The [`SupervisorEngine`] closes the loop that PR 5 left open: the
//! [`DiagnosticsEngine`](lla_telemetry::DiagnosticsEngine) can already
//! *classify* a run (converging / oscillating / gamma-thrash / diverging
//! / stalled), and PR 4's overload governor can already *shed*; this
//! module turns those read-only verdicts into deterministic actions on
//! the live deployment:
//!
//! | condition (sustained)        | remediation                                     |
//! |------------------------------|-------------------------------------------------|
//! | gamma thrash                 | [`GammaCalm`](crate::protocol::Message::GammaCalm) broadcast — reset adaptive steps, clamp growth; escalates by tightening the clamp |
//! | divergence                   | checkpoint rollback — brief scripted crash of every live controller, restoring epoch-validated checkpoints on restart |
//! | stall (frozen / pinned)      | [`DualResync`](crate::protocol::Message::DualResync) probe — every agent re-announces its duals, refreshing staleness clocks |
//! | sustained overload           | provision an elastic replica on the priciest saturated resource; if capacity is exhausted, escalating utility-aware shedding |
//! | high price + saturation      | provision an elastic replica (price-driven capacity) |
//! | idle replica + zero price    | retire an elastic replica (wide hysteresis band)    |
//!
//! Every action flows through the same facade paths ordinary membership
//! uses (topology epochs + reliable control-plane dissemination), every
//! decision input is derived from the virtual clock and seeded state, and
//! the engine itself draws no randomness — two seeded supervised runs are
//! bit-identical, and a disabled supervisor touches nothing at all (the
//! deployment's event log stays byte-identical to an unsupervised run).
//!
//! All policy thresholds are documented `pub const`s (mirroring the
//! diagnostics module); [`SupervisorConfig`] carries them so individual
//! deployments can tune without recompiling.

use lla_core::{select_victim, IterationReport, OverloadConfig, OverloadMonitor};
use lla_telemetry::{DiagnosticsEngine, Event as TelemetryEvent, Verdict};

use crate::fault::FaultPlan;
use crate::protocol::Address;
use crate::system::DistributedLla;

/// Rounds between supervisor checks (diagnostic sample + possible
/// action). Five rounds ≈ one price/latency settling exchange.
pub const CHECK_INTERVAL_ROUNDS: usize = 5;

/// Diagnostic window, in checks, fed to the verdict classifier.
pub const SUPERVISOR_WINDOW: usize = 32;

/// Checks skipped after any remediation before the next one may fire —
/// the hysteresis that lets an action take effect before it is judged.
pub const ACTION_COOLDOWN_CHECKS: u32 = 8;

/// First gamma-calm clamp: adaptive step sizes may grow to at most this
/// multiple of their initial value after the calm.
pub const CALM_INITIAL_MULTIPLE: f64 = 8.0;

/// Each escalated calm tightens the clamp by this factor.
pub const CALM_TIGHTEN: f64 = 0.5;

/// The clamp never tightens below this multiple (γ pinned at initial).
pub const CALM_FLOOR_MULTIPLE: f64 = 1.0;

/// Rollback outage length, in rounds: how long controllers stay down
/// during a checkpoint-rollback remediation.
pub const ROLLBACK_OUTAGE_ROUNDS: f64 = 0.5;

/// Price at or above which a resource is provision-eligible.
pub const PROVISION_PRICE_THRESHOLD: f64 = 1.0;

/// Usage/availability at or above which a pricey resource counts as
/// saturated (the admission probe for placement).
pub const PROVISION_USAGE_FRACTION: f64 = 0.95;

/// Consecutive checks of price-over-threshold saturation before a
/// replica is provisioned.
pub const PROVISION_SUSTAIN_CHECKS: u32 = 6;

/// Price at or below which a replica counts as idle (retire-eligible).
pub const RETIRE_PRICE_EPSILON: f64 = 1e-6;

/// Usage/availability at or below which a zero-price resource counts as
/// idle. The wide gap to [`PROVISION_USAGE_FRACTION`] is the
/// provision/retire hysteresis band.
pub const RETIRE_USAGE_FRACTION: f64 = 0.4;

/// Consecutive idle checks before a replica is retired (longer than the
/// provision sustain: capacity is cheap, thrash is not).
pub const RETIRE_SUSTAIN_CHECKS: u32 = 12;

/// Replica ceiling per resource.
pub const MAX_REPLICAS: u32 = 8;

/// Supervisor policy knobs. [`Default`] wires the documented consts;
/// `enabled: false` makes the engine inert (no samples, no actions — the
/// deployment behaves bit-identically to an unsupervised run).
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Master switch; `false` disables sampling and every action.
    pub enabled: bool,
    /// Rounds between checks ([`CHECK_INTERVAL_ROUNDS`]).
    pub check_interval_rounds: usize,
    /// Diagnostic window in checks ([`SUPERVISOR_WINDOW`]).
    pub window: usize,
    /// Checks skipped after an action ([`ACTION_COOLDOWN_CHECKS`]).
    pub action_cooldown_checks: u32,
    /// Replica ceiling per resource ([`MAX_REPLICAS`]).
    pub max_replicas: u32,
    /// Provision price bar ([`PROVISION_PRICE_THRESHOLD`]).
    pub provision_price_threshold: f64,
    /// Whether elastic capacity (provision/retire) is allowed; with
    /// `false` the supervisor falls back to shedding alone.
    pub elastic: bool,
    /// Overload detector settings, counted in *checks* (not rounds).
    pub overload: OverloadConfig,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            enabled: true,
            check_interval_rounds: CHECK_INTERVAL_ROUNDS,
            window: SUPERVISOR_WINDOW,
            action_cooldown_checks: ACTION_COOLDOWN_CHECKS,
            max_replicas: MAX_REPLICAS,
            provision_price_threshold: PROVISION_PRICE_THRESHOLD,
            elastic: true,
            overload: OverloadConfig {
                violation_threshold: 0.05,
                sustain_iters: 6,
                cooldown_iters: 24,
            },
        }
    }
}

impl SupervisorConfig {
    /// An inert supervisor: no samples taken, no actions applied.
    pub fn disabled() -> Self {
        SupervisorConfig { enabled: false, ..SupervisorConfig::default() }
    }
}

/// Stable remediation names (events, CSV, and report surfaces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemediationKind {
    /// Broadcast step-size reset + growth clamp.
    GammaCalm,
    /// Scripted controller outage restoring epoch-valid checkpoints.
    Rollback,
    /// Broadcast dual re-announcement probe.
    DualResync,
    /// Utility-aware eviction of the lowest-marginal elastic task.
    Shed,
    /// Elastic replica added to a saturated, pricey resource.
    Provision,
    /// Elastic replica removed from an idle, price-free resource.
    Retire,
}

impl RemediationKind {
    /// Stable lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            RemediationKind::GammaCalm => "gamma-calm",
            RemediationKind::Rollback => "rollback",
            RemediationKind::DualResync => "dual-resync",
            RemediationKind::Shed => "shed",
            RemediationKind::Provision => "provision",
            RemediationKind::Retire => "retire",
        }
    }
}

/// One action the supervisor applied.
#[derive(Debug, Clone, PartialEq)]
pub struct Remediation {
    /// Protocol round at which the action fired.
    pub round: usize,
    /// What was done.
    pub kind: RemediationKind,
    /// Affected slot (resource for provision/retire, task for shed).
    pub slot: Option<usize>,
    /// Action magnitude: clamp multiple, replica count, victims shed.
    pub value: f64,
}

/// The closed-loop supervisor. Drive it by alternating
/// [`DistributedLla::run_rounds`] with [`check`](Self::check), or let
/// [`run_supervised`] do the pacing.
#[derive(Debug)]
pub struct SupervisorEngine {
    config: SupervisorConfig,
    diag: DiagnosticsEngine,
    monitor: OverloadMonitor,
    checks: usize,
    cooldown: u32,
    calm_multiple: f64,
    shed_batch: usize,
    provision_streak: u32,
    retire_streak: (usize, u32),
    actions: Vec<Remediation>,
}

impl SupervisorEngine {
    /// A supervisor with the given policy.
    pub fn new(config: SupervisorConfig) -> Self {
        let diag = DiagnosticsEngine::with_window(config.window);
        let monitor = OverloadMonitor::new(config.overload);
        SupervisorEngine {
            config,
            diag,
            monitor,
            checks: 0,
            cooldown: 0,
            calm_multiple: CALM_INITIAL_MULTIPLE,
            shed_batch: 1,
            provision_streak: 0,
            retire_streak: (usize::MAX, 0),
            actions: Vec::new(),
        }
    }

    /// The active policy.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Every remediation applied so far, in order.
    pub fn actions(&self) -> &[Remediation] {
        &self.actions
    }

    /// Checks performed so far.
    pub fn checks(&self) -> usize {
        self.checks
    }

    /// The latest diagnosis of the supervisor's own window.
    pub fn diagnosis(&self) -> lla_telemetry::Diagnosis {
        self.diag.diagnose()
    }

    /// One supervision step: sample the deployment, classify, and apply
    /// at most one remediation class (graduated, cooldown-gated).
    /// Returns the actions applied this check (empty on a healthy or
    /// cooling system).
    pub fn check(&mut self, dist: &mut DistributedLla) -> Vec<Remediation> {
        if !self.config.enabled {
            return Vec::new();
        }
        self.checks += 1;
        let sample = dist.diag_sample();
        self.diag.push(sample);

        // The overload detector observes every check, cooldown or not —
        // its sustain counter must track real time.
        let lats = dist.allocation();
        let report = IterationReport {
            iteration: self.checks,
            utility: dist.utility(),
            max_resource_violation: dist.problem().max_resource_violation(lats.lats()),
            max_path_violation: dist.problem().max_path_violation(lats.lats()),
        };
        let overloaded = self.monitor.observe(&report);

        if self.cooldown > 0 {
            self.cooldown -= 1;
            return Vec::new();
        }

        let diagnosis = self.diag.diagnose();
        let mut fired = Vec::new();
        if overloaded {
            // Sustained overload outranks the verdict: it *causes*
            // divergence, and capacity/shedding (not rollback) is the
            // graduated response to it.
            self.remediate_overload(dist, &mut fired);
        } else {
            self.shed_batch = 1;
        }
        // Verdict-driven remediation — also the fallback when overload
        // remediation is exhausted (every task inelastic, capacity at
        // the ceiling): a thrash or stall verdict still gets its cure.
        if fired.is_empty() {
            if diagnosis.confident {
                match diagnosis.verdict {
                    Verdict::Stalled => self.remediate_stall(dist, &mut fired),
                    Verdict::GammaThrash => self.remediate_thrash(dist, &mut fired),
                    Verdict::Diverging => self.remediate_divergence(dist, &mut fired),
                    Verdict::Converging | Verdict::Oscillating => {
                        // A settled window ends the calm-escalation episode.
                        if diagnosis.verdict == Verdict::Converging {
                            self.calm_multiple = CALM_INITIAL_MULTIPLE;
                        }
                    }
                }
            }
            if fired.is_empty() && !overloaded {
                self.elastic_step(dist, &mut fired);
            }
        }
        if !fired.is_empty() {
            self.cooldown = self.config.action_cooldown_checks;
        }
        self.actions.extend(fired.iter().cloned());
        fired
    }

    fn record(
        &mut self,
        dist: &DistributedLla,
        kind: RemediationKind,
        slot: Option<usize>,
        value: f64,
        fired: &mut Vec<Remediation>,
    ) {
        let tel = dist.dist_telemetry();
        tel.remediations.inc();
        let mut ev = TelemetryEvent::new(dist.runtime().now(), "remediation")
            .with("action", kind.as_str())
            .with("value", value);
        if let Some(s) = slot {
            ev = ev.with("slot", s);
        }
        tel.events.emit(ev);
        fired.push(Remediation { round: dist.rounds(), kind, slot, value });
    }

    /// Stall: frozen agents or pinned prices while infeasible. A dual
    /// re-sync probe makes every agent re-announce immediately, which
    /// refreshes staleness clocks without waiting for tick phases.
    fn remediate_stall(&mut self, dist: &mut DistributedLla, fired: &mut Vec<Remediation>) {
        dist.broadcast_dual_resync();
        self.diag.clear();
        self.record(dist, RemediationKind::DualResync, None, 0.0, fired);
    }

    /// Gamma thrash: adaptive steps repeatedly doubling and resetting.
    /// Calm resets them and clamps future growth; each escalation within
    /// an episode tightens the clamp by [`CALM_TIGHTEN`].
    fn remediate_thrash(&mut self, dist: &mut DistributedLla, fired: &mut Vec<Remediation>) {
        let clamp = self.calm_multiple;
        dist.broadcast_gamma_calm(clamp);
        self.calm_multiple = (clamp * CALM_TIGHTEN).max(CALM_FLOOR_MULTIPLE);
        self.diag.clear();
        self.record(dist, RemediationKind::GammaCalm, None, clamp, fired);
    }

    /// Divergence: sustained constraint violation with no downward
    /// trend — the duals are poisoned. A brief scripted outage of every
    /// live controller forces a restart; each controller restores its
    /// last epoch-valid checkpoint (warm rollback) or restarts cold if
    /// validation rejects it.
    fn remediate_divergence(&mut self, dist: &mut DistributedLla, fired: &mut Vec<Remediation>) {
        let now = dist.runtime().now();
        let outage = ROLLBACK_OUTAGE_ROUNDS * dist.config().round_length;
        let mut plan = FaultPlan::new();
        let slots: Vec<usize> = dist.task_slots().to_vec();
        for &slot in &slots {
            plan = plan.crash_for(now + 1e-9, outage, Address::Controller(slot));
        }
        dist.schedule_faults(&plan);
        self.diag.clear();
        self.record(dist, RemediationKind::Rollback, None, slots.len() as f64, fired);
    }

    /// Sustained overload: capacity first (provision the priciest
    /// saturated resource), shedding as the fallback — and the shed
    /// batch escalates on every consecutive overloaded action.
    fn remediate_overload(&mut self, dist: &mut DistributedLla, fired: &mut Vec<Remediation>) {
        if self.try_provision(dist, fired) {
            return;
        }
        let batch = self.shed_batch;
        for _ in 0..batch {
            let lats = dist.allocation();
            let Some(victim) = select_victim(dist.problem(), lats.lats()) else {
                break;
            };
            let slot = dist.task_slots()[victim.index()];
            dist.evict_task(slot).expect("victim is live");
            self.monitor.note_eviction();
            self.record(dist, RemediationKind::Shed, Some(slot), batch as f64, fired);
        }
        if fired.is_empty() {
            // Every task is inelastic and capacity is exhausted: nothing
            // graduated is left. Surface it rather than spin.
            dist.dist_telemetry().events.emit(
                TelemetryEvent::new(dist.runtime().now(), "remediation_exhausted")
                    .with("violation", self.diag.diagnose().violation_factor),
            );
        } else {
            self.shed_batch += 1;
        }
    }

    /// Price-driven elastic capacity outside overload: provision on a
    /// sustained pricey+saturated signal, retire on a sustained
    /// idle+price-free signal. The provision and retire bars are far
    /// apart ([`PROVISION_USAGE_FRACTION`] vs [`RETIRE_USAGE_FRACTION`])
    /// so the loop cannot flap.
    fn elastic_step(&mut self, dist: &mut DistributedLla, fired: &mut Vec<Remediation>) {
        if !self.config.elastic {
            return;
        }
        if self.provision_candidate(dist).is_some() {
            self.provision_streak += 1;
            if self.provision_streak >= PROVISION_SUSTAIN_CHECKS {
                self.try_provision(dist, fired);
            }
        } else {
            self.provision_streak = 0;
        }
        if !fired.is_empty() {
            return;
        }
        if let Some(slot) = self.retire_candidate(dist) {
            let streak = if self.retire_streak.0 == slot { self.retire_streak.1 + 1 } else { 1 };
            self.retire_streak = (slot, streak);
            if streak >= RETIRE_SUSTAIN_CHECKS {
                let replicas = dist.resource_replicas(slot).expect("candidate is live") - 1;
                dist.set_resource_replicas(slot, replicas).expect("candidate is live");
                self.retire_streak = (usize::MAX, 0);
                self.record(dist, RemediationKind::Retire, Some(slot), f64::from(replicas), fired);
            }
        } else {
            self.retire_streak = (usize::MAX, 0);
        }
    }

    /// The priciest saturated resource still under the replica ceiling,
    /// as `(slot, price)` — the admission probe for placement.
    fn provision_candidate(&self, dist: &mut DistributedLla) -> Option<(usize, f64)> {
        let lats = dist.allocation();
        let mut best: Option<(usize, f64)> = None;
        for dense in 0..dist.problem().resources().len() {
            let slot = dist.resource_slots()[dense];
            let Some(mu) = dist.resource_price(slot) else { continue };
            let problem = dist.problem();
            let r = &problem.resources()[dense];
            let usage = problem.resource_usage(r.id(), lats.lats());
            let saturated =
                r.availability() > 0.0 && usage / r.availability() >= PROVISION_USAGE_FRACTION;
            if mu >= self.config.provision_price_threshold
                && saturated
                && r.replicas() < self.config.max_replicas
                && best.is_none_or(|(_, b)| mu > b)
            {
                best = Some((slot, mu));
            }
        }
        best
    }

    /// An idle elastic resource: more than one replica, zero price, low
    /// usage. Lowest-price first; dense order breaks ties.
    fn retire_candidate(&self, dist: &mut DistributedLla) -> Option<usize> {
        let lats = dist.allocation();
        for dense in 0..dist.problem().resources().len() {
            let slot = dist.resource_slots()[dense];
            let Some(mu) = dist.resource_price(slot) else { continue };
            let problem = dist.problem();
            let r = &problem.resources()[dense];
            let usage = problem.resource_usage(r.id(), lats.lats());
            if r.replicas() > 1
                && mu <= RETIRE_PRICE_EPSILON
                && r.availability() > 0.0
                && usage / r.availability() <= RETIRE_USAGE_FRACTION
            {
                return Some(slot);
            }
        }
        None
    }

    /// Provisions one replica on the current candidate; `true` if an
    /// action fired.
    fn try_provision(&mut self, dist: &mut DistributedLla, fired: &mut Vec<Remediation>) -> bool {
        if !self.config.elastic {
            return false;
        }
        let Some((slot, _)) = self.provision_candidate(dist) else {
            return false;
        };
        let replicas = dist.resource_replicas(slot).expect("candidate is live") + 1;
        dist.set_resource_replicas(slot, replicas).expect("candidate is live");
        self.monitor.note_admission();
        self.provision_streak = 0;
        self.record(dist, RemediationKind::Provision, Some(slot), f64::from(replicas), fired);
        true
    }
}

/// Runs `rounds` protocol rounds with supervision interleaved every
/// [`check_interval_rounds`](SupervisorConfig::check_interval_rounds).
/// With a disabled supervisor this is exactly
/// [`DistributedLla::run_rounds`] — same rounds, same messages, same
/// event log bytes. Returns the remediations applied during this span.
pub fn run_supervised(
    dist: &mut DistributedLla,
    sup: &mut SupervisorEngine,
    rounds: usize,
) -> Vec<Remediation> {
    if !sup.config().enabled {
        dist.run_rounds(rounds);
        return Vec::new();
    }
    let interval = sup.config().check_interval_rounds.max(1);
    let mut fired = Vec::new();
    let mut done = 0;
    while done < rounds {
        let chunk = interval.min(rounds - done);
        dist.run_rounds(chunk);
        done += chunk;
        fired.extend(sup.check(dist));
    }
    fired
}
