//! Closed-loop self-healing: a supervisor that watches the deployment's
//! convergence diagnostics and applies graduated remediation.
//!
//! The [`SupervisorEngine`] closes the loop that PR 5 left open: the
//! [`DiagnosticsEngine`](lla_telemetry::DiagnosticsEngine) can already
//! *classify* a run (converging / oscillating / gamma-thrash / diverging
//! / stalled), and PR 4's overload governor can already *shed*; this
//! module turns those read-only verdicts into deterministic actions on
//! the live deployment:
//!
//! | condition (sustained)        | remediation                                     |
//! |------------------------------|-------------------------------------------------|
//! | gamma thrash                 | [`GammaCalm`](crate::protocol::Message::GammaCalm) broadcast — reset adaptive steps, clamp growth; escalates by tightening the clamp |
//! | divergence                   | checkpoint rollback — brief scripted crash of every live controller, restoring epoch-validated checkpoints on restart |
//! | stall (frozen / pinned)      | [`DualResync`](crate::protocol::Message::DualResync) probe — every agent re-announces its duals, refreshing staleness clocks |
//! | sustained overload           | provision an elastic replica on the priciest saturated resource; if capacity is exhausted, escalating utility-aware shedding |
//! | high price + saturation      | provision an elastic replica (price-driven capacity) |
//! | idle replica + zero price    | retire an elastic replica (wide hysteresis band)    |
//!
//! Every action flows through the same facade paths ordinary membership
//! uses (topology epochs + reliable control-plane dissemination), every
//! decision input is derived from the virtual clock and seeded state, and
//! the engine itself draws no randomness — two seeded supervised runs are
//! bit-identical, and a disabled supervisor touches nothing at all (the
//! deployment's event log stays byte-identical to an unsupervised run).
//!
//! All policy thresholds are documented `pub const`s (mirroring the
//! diagnostics module); [`SupervisorConfig`] carries them so individual
//! deployments can tune without recompiling.

use lla_core::{select_victim, IterationReport, OverloadConfig, OverloadMonitor};
use lla_telemetry::{
    AgentScope, AlertSeverity, DiagnosticsEngine, Event as TelemetryEvent, Verdict,
};

use crate::fault::FaultPlan;
use crate::fleet::{AGENT_METRICS, M_TICKS};
use crate::protocol::Address;
use crate::system::DistributedLla;

/// Rounds between supervisor checks (diagnostic sample + possible
/// action). Five rounds ≈ one price/latency settling exchange.
pub const CHECK_INTERVAL_ROUNDS: usize = 5;

/// Diagnostic window, in checks, fed to the verdict classifier.
pub const SUPERVISOR_WINDOW: usize = 32;

/// Checks skipped after any remediation before the next one may fire —
/// the hysteresis that lets an action take effect before it is judged.
pub const ACTION_COOLDOWN_CHECKS: u32 = 8;

/// First gamma-calm clamp: adaptive step sizes may grow to at most this
/// multiple of their initial value after the calm.
pub const CALM_INITIAL_MULTIPLE: f64 = 8.0;

/// Each escalated calm tightens the clamp by this factor.
pub const CALM_TIGHTEN: f64 = 0.5;

/// The clamp never tightens below this multiple (γ pinned at initial).
pub const CALM_FLOOR_MULTIPLE: f64 = 1.0;

/// Rollback outage length, in rounds: how long controllers stay down
/// during a checkpoint-rollback remediation.
pub const ROLLBACK_OUTAGE_ROUNDS: f64 = 0.5;

/// Price at or above which a resource is provision-eligible.
pub const PROVISION_PRICE_THRESHOLD: f64 = 1.0;

/// Usage/availability at or above which a pricey resource counts as
/// saturated (the admission probe for placement).
pub const PROVISION_USAGE_FRACTION: f64 = 0.95;

/// Consecutive checks of price-over-threshold saturation before a
/// replica is provisioned.
pub const PROVISION_SUSTAIN_CHECKS: u32 = 6;

/// Price at or below which a replica counts as idle (retire-eligible).
pub const RETIRE_PRICE_EPSILON: f64 = 1e-6;

/// Usage/availability at or below which a zero-price resource counts as
/// idle. The wide gap to [`PROVISION_USAGE_FRACTION`] is the
/// provision/retire hysteresis band.
pub const RETIRE_USAGE_FRACTION: f64 = 0.4;

/// Consecutive idle checks before a replica is retired (longer than the
/// provision sustain: capacity is cheap, thrash is not).
pub const RETIRE_SUSTAIN_CHECKS: u32 = 12;

/// Replica ceiling per resource.
pub const MAX_REPLICAS: u32 = 8;

/// New frame rejections attributed to one sender within a single check
/// interval that trigger quarantine. One or two rejections are what
/// random corruption produces; a sustained per-sender stream is either a
/// sick agent or an adversary, and either way its traffic is poison.
pub const QUARANTINE_REJECTION_THRESHOLD: u64 = 3;

/// Checks a quarantined agent stays silenced. On release the supervisor
/// broadcasts a [`DualResync`](crate::protocol::Message::DualResync) so
/// the rehabilitated agent (and everyone who stopped hearing from it)
/// re-announces immediately instead of waiting out staleness TTLs.
pub const QUARANTINE_RELEASE_CHECKS: u32 = 4;

/// Supervisor policy knobs. [`Default`] wires the documented consts;
/// `enabled: false` makes the engine inert (no samples, no actions — the
/// deployment behaves bit-identically to an unsupervised run).
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Master switch; `false` disables sampling and every action.
    pub enabled: bool,
    /// Rounds between checks ([`CHECK_INTERVAL_ROUNDS`]).
    pub check_interval_rounds: usize,
    /// Diagnostic window in checks ([`SUPERVISOR_WINDOW`]).
    pub window: usize,
    /// Checks skipped after an action ([`ACTION_COOLDOWN_CHECKS`]).
    pub action_cooldown_checks: u32,
    /// Replica ceiling per resource ([`MAX_REPLICAS`]).
    pub max_replicas: u32,
    /// Provision price bar ([`PROVISION_PRICE_THRESHOLD`]).
    pub provision_price_threshold: f64,
    /// Whether elastic capacity (provision/retire) is allowed; with
    /// `false` the supervisor falls back to shedding alone.
    pub elastic: bool,
    /// Overload detector settings, counted in *checks* (not rounds).
    pub overload: OverloadConfig,
    /// Per-sender rejection delta per check that triggers quarantine
    /// ([`QUARANTINE_REJECTION_THRESHOLD`]).
    pub quarantine_rejection_threshold: u64,
    /// Quarantine term, in checks ([`QUARANTINE_RELEASE_CHECKS`]).
    pub quarantine_release_checks: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            enabled: true,
            check_interval_rounds: CHECK_INTERVAL_ROUNDS,
            window: SUPERVISOR_WINDOW,
            action_cooldown_checks: ACTION_COOLDOWN_CHECKS,
            max_replicas: MAX_REPLICAS,
            provision_price_threshold: PROVISION_PRICE_THRESHOLD,
            elastic: true,
            overload: OverloadConfig {
                violation_threshold: 0.05,
                sustain_iters: 6,
                cooldown_iters: 24,
            },
            quarantine_rejection_threshold: QUARANTINE_REJECTION_THRESHOLD,
            quarantine_release_checks: QUARANTINE_RELEASE_CHECKS,
        }
    }
}

impl SupervisorConfig {
    /// An inert supervisor: no samples taken, no actions applied.
    pub fn disabled() -> Self {
        SupervisorConfig { enabled: false, ..SupervisorConfig::default() }
    }
}

/// Stable remediation names (events, CSV, and report surfaces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemediationKind {
    /// Broadcast step-size reset + growth clamp.
    GammaCalm,
    /// Scripted controller outage restoring epoch-valid checkpoints.
    Rollback,
    /// Broadcast dual re-announcement probe.
    DualResync,
    /// Utility-aware eviction of the lowest-marginal elastic task.
    Shed,
    /// Elastic replica added to a saturated, pricey resource.
    Provision,
    /// Elastic replica removed from an idle, price-free resource.
    Retire,
    /// Sender silenced for repeatedly emitting invalid frames.
    Quarantine,
    /// Dual re-sync probe triggered by a firing critical SLO alert from
    /// the fleet collector.
    AlertProbe,
}

impl RemediationKind {
    /// Stable lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            RemediationKind::GammaCalm => "gamma-calm",
            RemediationKind::Rollback => "rollback",
            RemediationKind::DualResync => "dual-resync",
            RemediationKind::Shed => "shed",
            RemediationKind::Provision => "provision",
            RemediationKind::Retire => "retire",
            RemediationKind::Quarantine => "quarantine",
            RemediationKind::AlertProbe => "alert-probe",
        }
    }
}

/// One action the supervisor applied.
#[derive(Debug, Clone, PartialEq)]
pub struct Remediation {
    /// Protocol round at which the action fired.
    pub round: usize,
    /// What was done.
    pub kind: RemediationKind,
    /// Affected slot (resource for provision/retire, task for shed).
    pub slot: Option<usize>,
    /// Action magnitude: clamp multiple, replica count, victims shed.
    pub value: f64,
}

/// The closed-loop supervisor. Drive it by alternating
/// [`DistributedLla::run_rounds`] with [`check`](Self::check), or let
/// [`run_supervised`] do the pacing.
#[derive(Debug)]
pub struct SupervisorEngine {
    config: SupervisorConfig,
    diag: DiagnosticsEngine,
    monitor: OverloadMonitor,
    checks: usize,
    cooldown: u32,
    calm_multiple: f64,
    shed_batch: usize,
    provision_streak: u32,
    retire_streak: (usize, u32),
    actions: Vec<Remediation>,
    /// Per-sender rejected-frame totals at the previous check, for the
    /// quarantine policy's delta computation.
    last_rejections: Vec<(Address, u64)>,
    /// Quarantined agents and the checks left until release.
    quarantined: Vec<(Address, u32)>,
    /// Consecutive checks that saw new retransmit give-ups.
    give_up_strikes: u32,
    /// Give-up counter total at the previous check.
    last_give_ups: u64,
    /// The supervisor's own fleet scope (`agent="supervisor"` on the
    /// deployment's registry), created lazily on the first check since
    /// the engine is constructed before it meets a deployment.
    scope: Option<AgentScope>,
}

impl SupervisorEngine {
    /// A supervisor with the given policy.
    pub fn new(config: SupervisorConfig) -> Self {
        let diag = DiagnosticsEngine::with_window(config.window);
        let monitor = OverloadMonitor::new(config.overload);
        SupervisorEngine {
            config,
            diag,
            monitor,
            checks: 0,
            cooldown: 0,
            calm_multiple: CALM_INITIAL_MULTIPLE,
            shed_batch: 1,
            provision_streak: 0,
            retire_streak: (usize::MAX, 0),
            actions: Vec::new(),
            last_rejections: Vec::new(),
            quarantined: Vec::new(),
            give_up_strikes: 0,
            last_give_ups: 0,
            scope: None,
        }
    }

    /// The active policy.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Every remediation applied so far, in order.
    pub fn actions(&self) -> &[Remediation] {
        &self.actions
    }

    /// Checks performed so far.
    pub fn checks(&self) -> usize {
        self.checks
    }

    /// The latest diagnosis of the supervisor's own window.
    pub fn diagnosis(&self) -> lla_telemetry::Diagnosis {
        self.diag.diagnose()
    }

    /// One supervision step: sample the deployment, classify, and apply
    /// at most one remediation class (graduated, cooldown-gated).
    /// Returns the actions applied this check (empty on a healthy or
    /// cooling system).
    pub fn check(&mut self, dist: &mut DistributedLla) -> Vec<Remediation> {
        if !self.config.enabled {
            return Vec::new();
        }
        self.checks += 1;
        self.scope
            .get_or_insert_with(|| {
                AgentScope::new(&dist.dist_telemetry().registry, "supervisor", AGENT_METRICS)
            })
            .inc(M_TICKS);
        let sample = dist.diag_sample();
        self.diag.push(sample);

        // The overload detector observes every check, cooldown or not —
        // its sustain counter must track real time.
        let lats = dist.allocation();
        let report = IterationReport {
            iteration: self.checks,
            utility: dist.utility(),
            max_resource_violation: dist.problem().max_resource_violation(lats.lats()),
            max_path_violation: dist.problem().max_path_violation(lats.lats()),
        };
        let overloaded = self.monitor.observe(&report);

        // The quarantine book runs every check, cooldown or not: releases
        // are a scheduled obligation and an actively hostile sender must
        // not enjoy the hysteresis granted to convergence remediation.
        let mut fired = Vec::new();
        self.quarantine_step(dist, &mut fired);

        if self.cooldown > 0 {
            self.cooldown -= 1;
            self.actions.extend(fired.iter().cloned());
            return fired;
        }

        let diagnosis = self.diag.diagnose();
        if !fired.is_empty() {
            // A quarantine action this check: skip convergence remediation
            // (the traffic change must settle first) but start the cooldown.
            self.cooldown = self.config.action_cooldown_checks;
            self.actions.extend(fired.iter().cloned());
            return fired;
        }
        if overloaded {
            // Sustained overload outranks the verdict: it *causes*
            // divergence, and capacity/shedding (not rollback) is the
            // graduated response to it.
            self.remediate_overload(dist, &mut fired);
        } else {
            self.shed_batch = 1;
        }
        // Verdict-driven remediation — also the fallback when overload
        // remediation is exhausted (every task inelastic, capacity at
        // the ceiling): a thrash or stall verdict still gets its cure.
        if fired.is_empty() {
            if diagnosis.confident {
                match diagnosis.verdict {
                    Verdict::Stalled => self.remediate_stall(dist, &mut fired),
                    Verdict::GammaThrash => self.remediate_thrash(dist, &mut fired),
                    Verdict::Diverging => self.remediate_divergence(dist, &mut fired),
                    Verdict::Converging | Verdict::Oscillating => {
                        // A settled window ends the calm-escalation episode.
                        if diagnosis.verdict == Verdict::Converging {
                            self.calm_multiple = CALM_INITIAL_MULTIPLE;
                        }
                    }
                }
            }
            if fired.is_empty() {
                self.alert_step(dist, &mut fired);
            }
            if fired.is_empty() && !overloaded {
                self.elastic_step(dist, &mut fired);
            }
        }
        if !fired.is_empty() {
            self.cooldown = self.config.action_cooldown_checks;
        }
        self.actions.extend(fired.iter().cloned());
        fired
    }

    fn record(
        &mut self,
        dist: &DistributedLla,
        kind: RemediationKind,
        slot: Option<usize>,
        value: f64,
        fired: &mut Vec<Remediation>,
    ) {
        let tel = dist.dist_telemetry();
        tel.remediations.inc();
        let mut ev = TelemetryEvent::new(dist.runtime().now(), "remediation")
            .with("action", kind.as_str())
            .with("value", value);
        if let Some(s) = slot {
            ev = ev.with("slot", s);
        }
        tel.events.emit(ev);
        fired.push(Remediation { round: dist.rounds(), kind, slot, value });
    }

    /// Fleet-alert-driven remediation: when the collector has a firing
    /// *critical* SLO alert (e.g. sustained fleet overload seen through
    /// the telemetry plane rather than the facade's own books), broadcast
    /// a dual re-sync probe so every agent re-announces its duals and the
    /// fleet's view of the pressure refreshes. Warning-severity alerts
    /// are observability signals only. A no-op without a collector —
    /// deployments with shipping off behave exactly as before.
    fn alert_step(&mut self, dist: &mut DistributedLla, fired: &mut Vec<Remediation>) {
        let critical =
            dist.firing_alerts().iter().filter(|a| a.severity == AlertSeverity::Critical).count();
        if critical == 0 {
            return;
        }
        dist.broadcast_dual_resync();
        self.record(dist, RemediationKind::AlertProbe, None, critical as f64, fired);
    }

    /// Adversarial-traffic maintenance, run every check:
    ///
    /// 1. Quarantine terms count down; an expired term releases the agent
    ///    and broadcasts a dual re-sync so it warms back in immediately.
    /// 2. Any sender whose attributed frame-rejection count grew by
    ///    [`quarantine_rejection_threshold`](SupervisorConfig::quarantine_rejection_threshold)
    ///    or more since the last check is quarantined.
    /// 3. Retransmit give-ups escalate: the first striking check gets a
    ///    dual re-sync (the abandoned update's information re-flows with
    ///    the next announcements); repeated strikes quarantine the worst
    ///    rejection offender if one exists — an agent that both starves
    ///    the reliable path of acks and emits garbage is presumed sick.
    fn quarantine_step(&mut self, dist: &mut DistributedLla, fired: &mut Vec<Remediation>) {
        let mut released = false;
        self.quarantined.retain_mut(|(addr, left)| {
            if *left > 1 {
                *left -= 1;
                return true;
            }
            released |= dist.release_agent(*addr);
            false
        });
        if released {
            dist.broadcast_dual_resync();
            self.record(dist, RemediationKind::DualResync, None, 0.0, fired);
        }

        let current = dist.frame_rejections_by_sender();
        for &(addr, total) in &current {
            let before =
                self.last_rejections.iter().find(|&&(a, _)| a == addr).map_or(0, |&(_, n)| n);
            let delta = total.saturating_sub(before);
            if delta >= self.config.quarantine_rejection_threshold {
                self.quarantine(dist, addr, delta, fired);
            }
        }
        self.last_rejections = current;

        let give_ups = dist.dist_telemetry().retransmit_give_ups.get();
        let fresh_give_ups = give_ups.saturating_sub(self.last_give_ups);
        self.last_give_ups = give_ups;
        if fresh_give_ups == 0 {
            self.give_up_strikes = 0;
            return;
        }
        self.give_up_strikes += 1;
        if self.give_up_strikes == 1 {
            dist.broadcast_dual_resync();
            self.record(dist, RemediationKind::DualResync, None, fresh_give_ups as f64, fired);
        } else if let Some(&(addr, total)) =
            self.last_rejections.iter().max_by_key(|&&(_, n)| n).filter(|&&(_, n)| n > 0)
        {
            self.quarantine(dist, addr, total, fired);
        } else {
            dist.broadcast_dual_resync();
            self.record(dist, RemediationKind::DualResync, None, fresh_give_ups as f64, fired);
        }
    }

    /// Quarantines `addr` (idempotent) and records the action.
    fn quarantine(
        &mut self,
        dist: &mut DistributedLla,
        addr: Address,
        rejections: u64,
        fired: &mut Vec<Remediation>,
    ) {
        if !dist.quarantine_agent(addr) {
            return;
        }
        self.quarantined.push((addr, self.config.quarantine_release_checks.max(1)));
        let slot = match addr {
            Address::Resource(s) | Address::Controller(s) => Some(s),
            Address::ControlPlane | Address::Collector => None,
        };
        self.record(dist, RemediationKind::Quarantine, slot, rejections as f64, fired);
    }

    /// Stall: frozen agents or pinned prices while infeasible. A dual
    /// re-sync probe makes every agent re-announce immediately, which
    /// refreshes staleness clocks without waiting for tick phases.
    fn remediate_stall(&mut self, dist: &mut DistributedLla, fired: &mut Vec<Remediation>) {
        dist.broadcast_dual_resync();
        self.diag.clear();
        self.record(dist, RemediationKind::DualResync, None, 0.0, fired);
    }

    /// Gamma thrash: adaptive steps repeatedly doubling and resetting.
    /// Calm resets them and clamps future growth; each escalation within
    /// an episode tightens the clamp by [`CALM_TIGHTEN`].
    fn remediate_thrash(&mut self, dist: &mut DistributedLla, fired: &mut Vec<Remediation>) {
        let clamp = self.calm_multiple;
        dist.broadcast_gamma_calm(clamp);
        self.calm_multiple = (clamp * CALM_TIGHTEN).max(CALM_FLOOR_MULTIPLE);
        self.diag.clear();
        self.record(dist, RemediationKind::GammaCalm, None, clamp, fired);
    }

    /// Divergence: sustained constraint violation with no downward
    /// trend — the duals are poisoned. A brief scripted outage of every
    /// live controller forces a restart; each controller restores its
    /// last epoch-valid checkpoint (warm rollback) or restarts cold if
    /// validation rejects it.
    fn remediate_divergence(&mut self, dist: &mut DistributedLla, fired: &mut Vec<Remediation>) {
        let now = dist.runtime().now();
        let outage = ROLLBACK_OUTAGE_ROUNDS * dist.config().round_length;
        let mut plan = FaultPlan::new();
        let slots: Vec<usize> = dist.task_slots().to_vec();
        for &slot in &slots {
            plan = plan.crash_for(now + 1e-9, outage, Address::Controller(slot));
        }
        dist.schedule_faults(&plan);
        self.diag.clear();
        self.record(dist, RemediationKind::Rollback, None, slots.len() as f64, fired);
    }

    /// Sustained overload: capacity first (provision the priciest
    /// saturated resource), shedding as the fallback — and the shed
    /// batch escalates on every consecutive overloaded action.
    fn remediate_overload(&mut self, dist: &mut DistributedLla, fired: &mut Vec<Remediation>) {
        if self.try_provision(dist, fired) {
            return;
        }
        let batch = self.shed_batch;
        for _ in 0..batch {
            let lats = dist.allocation();
            let Some(victim) = select_victim(dist.problem(), lats.lats()) else {
                break;
            };
            let slot = dist.task_slots()[victim.index()];
            dist.evict_task(slot).expect("victim is live");
            self.monitor.note_eviction();
            self.record(dist, RemediationKind::Shed, Some(slot), batch as f64, fired);
        }
        if fired.is_empty() {
            // Every task is inelastic and capacity is exhausted: nothing
            // graduated is left. Surface it rather than spin.
            dist.dist_telemetry().events.emit(
                TelemetryEvent::new(dist.runtime().now(), "remediation_exhausted")
                    .with("violation", self.diag.diagnose().violation_factor),
            );
        } else {
            self.shed_batch += 1;
        }
    }

    /// Price-driven elastic capacity outside overload: provision on a
    /// sustained pricey+saturated signal, retire on a sustained
    /// idle+price-free signal. The provision and retire bars are far
    /// apart ([`PROVISION_USAGE_FRACTION`] vs [`RETIRE_USAGE_FRACTION`])
    /// so the loop cannot flap.
    fn elastic_step(&mut self, dist: &mut DistributedLla, fired: &mut Vec<Remediation>) {
        if !self.config.elastic {
            return;
        }
        if self.provision_candidate(dist).is_some() {
            self.provision_streak += 1;
            if self.provision_streak >= PROVISION_SUSTAIN_CHECKS {
                self.try_provision(dist, fired);
            }
        } else {
            self.provision_streak = 0;
        }
        if !fired.is_empty() {
            return;
        }
        if let Some(slot) = self.retire_candidate(dist) {
            let streak = if self.retire_streak.0 == slot { self.retire_streak.1 + 1 } else { 1 };
            self.retire_streak = (slot, streak);
            if streak >= RETIRE_SUSTAIN_CHECKS {
                let replicas = dist.resource_replicas(slot).expect("candidate is live") - 1;
                dist.set_resource_replicas(slot, replicas).expect("candidate is live");
                self.retire_streak = (usize::MAX, 0);
                self.record(dist, RemediationKind::Retire, Some(slot), f64::from(replicas), fired);
            }
        } else {
            self.retire_streak = (usize::MAX, 0);
        }
    }

    /// The priciest saturated resource still under the replica ceiling,
    /// as `(slot, price)` — the admission probe for placement.
    fn provision_candidate(&self, dist: &mut DistributedLla) -> Option<(usize, f64)> {
        let lats = dist.allocation();
        let mut best: Option<(usize, f64)> = None;
        for dense in 0..dist.problem().resources().len() {
            let slot = dist.resource_slots()[dense];
            let Some(mu) = dist.resource_price(slot) else { continue };
            let problem = dist.problem();
            let r = &problem.resources()[dense];
            let usage = problem.resource_usage(r.id(), lats.lats());
            let saturated =
                r.availability() > 0.0 && usage / r.availability() >= PROVISION_USAGE_FRACTION;
            if mu >= self.config.provision_price_threshold
                && saturated
                && r.replicas() < self.config.max_replicas
                && best.is_none_or(|(_, b)| mu > b)
            {
                best = Some((slot, mu));
            }
        }
        best
    }

    /// An idle elastic resource: more than one replica, zero price, low
    /// usage. Lowest-price first; dense order breaks ties.
    fn retire_candidate(&self, dist: &mut DistributedLla) -> Option<usize> {
        let lats = dist.allocation();
        for dense in 0..dist.problem().resources().len() {
            let slot = dist.resource_slots()[dense];
            let Some(mu) = dist.resource_price(slot) else { continue };
            let problem = dist.problem();
            let r = &problem.resources()[dense];
            let usage = problem.resource_usage(r.id(), lats.lats());
            if r.replicas() > 1
                && mu <= RETIRE_PRICE_EPSILON
                && r.availability() > 0.0
                && usage / r.availability() <= RETIRE_USAGE_FRACTION
            {
                return Some(slot);
            }
        }
        None
    }

    /// Provisions one replica on the current candidate; `true` if an
    /// action fired.
    fn try_provision(&mut self, dist: &mut DistributedLla, fired: &mut Vec<Remediation>) -> bool {
        if !self.config.elastic {
            return false;
        }
        let Some((slot, _)) = self.provision_candidate(dist) else {
            return false;
        };
        let replicas = dist.resource_replicas(slot).expect("candidate is live") + 1;
        dist.set_resource_replicas(slot, replicas).expect("candidate is live");
        self.monitor.note_admission();
        self.provision_streak = 0;
        self.record(dist, RemediationKind::Provision, Some(slot), f64::from(replicas), fired);
        true
    }
}

/// Runs `rounds` protocol rounds with supervision interleaved every
/// [`check_interval_rounds`](SupervisorConfig::check_interval_rounds).
/// With a disabled supervisor this is exactly
/// [`DistributedLla::run_rounds`] — same rounds, same messages, same
/// event log bytes. Returns the remediations applied during this span.
pub fn run_supervised(
    dist: &mut DistributedLla,
    sup: &mut SupervisorEngine,
    rounds: usize,
) -> Vec<Remediation> {
    if !sup.config().enabled {
        dist.run_rounds(rounds);
        return Vec::new();
    }
    let interval = sup.config().check_interval_rounds.max(1);
    let mut fired = Vec::new();
    let mut done = 0;
    while done < rounds {
        let chunk = interval.min(rounds - done);
        dist.run_rounds(chunk);
        done += chunk;
        fired.extend(sup.check(dist));
    }
    fired
}
