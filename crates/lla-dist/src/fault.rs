//! Scheduled fault injection for the virtual-time runtime.
//!
//! The paper's operational claim (§4.1–4.3) is that LLA runs
//! *continuously* on a real distributed system; real systems crash,
//! partition, and lose capacity. A [`FaultPlan`] scripts those events on
//! the virtual clock — deterministically, so every failure scenario is
//! exactly reproducible:
//!
//! * **Partitions** — for a time window, messages between two address
//!   groups are dropped (messages already in flight still arrive, as on a
//!   real network).
//! * **Crash / restart** — an actor loses its in-memory state
//!   ([`Actor::on_crash`](crate::runtime::Actor::on_crash)) and stops
//!   receiving ticks and messages; on restart it rebuilds from a
//!   checkpoint or from scratch
//!   ([`Actor::on_restart`](crate::runtime::Actor::on_restart)).
//! * **Availability drops** — a resource's capacity `B_r` changes; the
//!   update is disseminated through the control plane (reliably, if a
//!   [`ControlPlaneAgent`](crate::agents::ControlPlaneAgent) is
//!   registered).

use crate::protocol::Address;

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Virtual time at which the fault fires (ms).
    pub at: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// The kinds of injectable faults.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Drop all messages between group `a` and group `b` (both
    /// directions) for `duration` virtual ms from the event time.
    Partition {
        /// One side of the partition.
        a: Vec<Address>,
        /// The other side.
        b: Vec<Address>,
        /// How long the partition lasts (ms).
        duration: f64,
    },
    /// Crash the actor: wipe its volatile state and stop delivering ticks
    /// and messages to it.
    Crash {
        /// The actor to crash.
        addr: Address,
    },
    /// Restart a crashed actor: ticks and deliveries resume, and the
    /// actor may rebuild state from its checkpoint.
    Restart {
        /// The actor to restart.
        addr: Address,
    },
    /// Change resource `resource`'s availability to `availability`,
    /// announced through the control plane.
    SetAvailability {
        /// The resource index.
        resource: usize,
        /// The new availability fraction.
        availability: f64,
    },
    /// Change the wire-mode frame-corruption probability (no effect on a
    /// struct-passing run — there are no bytes to corrupt). Fault plans
    /// use paired events to open and close corruption windows for A/B
    /// survival soaks.
    SetCorruption {
        /// The new per-copy corruption probability, in `[0, 1]`.
        probability: f64,
    },
}

/// A deterministic schedule of faults, driven by the virtual clock.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a partition between `a` and `b` at time `at` for
    /// `duration` ms.
    ///
    /// # Panics
    ///
    /// Panics if `at` or `duration` is negative or non-finite.
    pub fn partition(
        mut self,
        at: f64,
        duration: f64,
        a: impl Into<Vec<Address>>,
        b: impl Into<Vec<Address>>,
    ) -> Self {
        assert!(at.is_finite() && at >= 0.0, "partition time must be finite and ≥ 0");
        assert!(duration.is_finite() && duration >= 0.0, "partition duration must be ≥ 0");
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::Partition { a: a.into(), b: b.into(), duration },
        });
        self
    }

    /// Schedules a crash of `addr` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is negative or non-finite.
    pub fn crash(mut self, at: f64, addr: Address) -> Self {
        assert!(at.is_finite() && at >= 0.0, "crash time must be finite and ≥ 0");
        self.events.push(FaultEvent { at, kind: FaultKind::Crash { addr } });
        self
    }

    /// Schedules a restart of `addr` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is negative or non-finite.
    pub fn restart(mut self, at: f64, addr: Address) -> Self {
        assert!(at.is_finite() && at >= 0.0, "restart time must be finite and ≥ 0");
        self.events.push(FaultEvent { at, kind: FaultKind::Restart { addr } });
        self
    }

    /// Schedules a crash at `at` followed by a restart `down_for` ms
    /// later.
    pub fn crash_for(self, at: f64, down_for: f64, addr: Address) -> Self {
        assert!(down_for.is_finite() && down_for >= 0.0, "downtime must be ≥ 0");
        self.crash(at, addr).restart(at + down_for, addr)
    }

    /// Schedules an availability change of resource `resource` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is negative/non-finite or `availability` is not in
    /// `(0, 1]`.
    pub fn set_availability(mut self, at: f64, resource: usize, availability: f64) -> Self {
        assert!(at.is_finite() && at >= 0.0, "event time must be finite and ≥ 0");
        assert!(
            availability.is_finite() && availability > 0.0 && availability <= 1.0,
            "availability {availability} outside (0, 1]"
        );
        self.events
            .push(FaultEvent { at, kind: FaultKind::SetAvailability { resource, availability } });
        self
    }

    /// Schedules a change of the wire-mode frame-corruption probability
    /// at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is negative/non-finite or `probability` is not in
    /// `[0, 1]`.
    pub fn set_corruption(mut self, at: f64, probability: f64) -> Self {
        assert!(at.is_finite() && at >= 0.0, "event time must be finite and ≥ 0");
        assert!(
            probability.is_finite() && (0.0..=1.0).contains(&probability),
            "corruption probability {probability} outside [0, 1]"
        );
        self.events.push(FaultEvent { at, kind: FaultKind::SetCorruption { probability } });
        self
    }

    /// Schedules a corruption window: probability `probability` from `at`
    /// for `duration` ms, then back to zero.
    pub fn corrupt_window(self, at: f64, duration: f64, probability: f64) -> Self {
        assert!(duration.is_finite() && duration >= 0.0, "window duration must be ≥ 0");
        self.set_corruption(at, probability).set_corruption(at + duration, 0.0)
    }

    /// The scheduled events, in insertion order (the runtime orders them
    /// by time on its event queue).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events_in_order() {
        let plan = FaultPlan::new()
            .partition(10.0, 5.0, vec![Address::Controller(0)], vec![Address::Resource(0)])
            .crash_for(20.0, 3.0, Address::Controller(1))
            .set_availability(30.0, 2, 0.5);
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
        assert_eq!(plan.events()[1].kind, FaultKind::Crash { addr: Address::Controller(1) });
        assert_eq!(plan.events()[2].at, 23.0);
        assert_eq!(
            plan.events()[3].kind,
            FaultKind::SetAvailability { resource: 2, availability: 0.5 }
        );
    }

    #[test]
    fn corruption_window_opens_and_closes() {
        let plan = FaultPlan::new().corrupt_window(50.0, 25.0, 0.1);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].kind, FaultKind::SetCorruption { probability: 0.1 });
        assert_eq!(plan.events()[1].at, 75.0);
        assert_eq!(plan.events()[1].kind, FaultKind::SetCorruption { probability: 0.0 });
    }

    #[test]
    #[should_panic(expected = "corruption probability")]
    fn rejects_corruption_probability_above_one() {
        let _ = FaultPlan::new().set_corruption(0.0, 1.2);
    }

    #[test]
    #[should_panic(expected = "availability")]
    fn rejects_zero_availability() {
        let _ = FaultPlan::new().set_availability(0.0, 0, 0.0);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn rejects_negative_partition_duration() {
        let _ = FaultPlan::new().partition(0.0, -1.0, vec![], vec![]);
    }
}
