//! The actor kinds of distributed LLA: resource price agents, task
//! controllers, and the control-plane agent that disseminates availability
//! changes reliably.

use crate::protocol::{Address, Message};
use crate::runtime::{Actor, Outbox};
use lla_core::{
    allocate_task, AllocationSettings, OptimizerState, PriceState, Problem, StepSizePolicy,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

// Agents own a private copy of the `Problem` rather than sharing an
// `Arc`: availability updates arrive as messages and each agent applies
// them to its local view, exactly as a deployed agent would. The problem
// is *configuration* (reloaded from the local config store on restart),
// so a crash does not wipe it — only algorithm state is volatile.

/// Shared telemetry sink the controllers write their latest allocations
/// into; the [`DistributedLla`](crate::DistributedLla) facade reads it.
pub type SharedLats = Arc<Mutex<Vec<Vec<f64>>>>;

/// Fault-tolerance knobs shared by the agents. The defaults disable every
/// mechanism, which keeps the fault-free protocol bit-equivalent to the
/// centralized optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessConfig {
    /// Virtual ms between controller checkpoints ([`f64::INFINITY`]
    /// disables checkpointing).
    pub checkpoint_interval: f64,
    /// Degrade gracefully once the newest price (controllers) or latency
    /// (resource agents) heard from a peer is older than this many virtual
    /// ms: freeze price steps and hold the last-known-good latencies
    /// instead of integrating stale gradients ([`f64::INFINITY`] never
    /// degrades).
    pub staleness_ttl: f64,
    /// Virtual ms between control-plane retransmissions of unacknowledged
    /// availability updates.
    pub retransmit_interval: f64,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            checkpoint_interval: f64::INFINITY,
            staleness_ttl: f64::INFINITY,
            retransmit_interval: 10.0,
        }
    }
}

/// A task controller's durable checkpoint: algorithm state in the
/// centralized [`Optimizer`](lla_core::Optimizer)'s export format, plus
/// the controller-local congestion bits.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerCheckpoint {
    /// Prices + latencies + iteration, as
    /// [`Optimizer::export_state`](lla_core::Optimizer::export_state)
    /// would capture them.
    pub state: OptimizerState,
    /// Last received congestion bit per resource.
    pub congested: Vec<bool>,
    /// Virtual time the checkpoint was taken.
    pub at: f64,
}

/// Stable storage for controller checkpoints, shared between the agents
/// and the runtime driver. Survives crashes by construction (a crashed
/// actor keeps no reference — it re-reads the store on restart).
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<HashMap<Address, ControllerCheckpoint>>>,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Writes (or overwrites) the checkpoint for `addr`.
    pub fn save(&self, addr: Address, ckpt: ControllerCheckpoint) {
        self.inner.lock().insert(addr, ckpt);
    }

    /// Reads the latest checkpoint for `addr`, if any.
    pub fn load(&self, addr: Address) -> Option<ControllerCheckpoint> {
        self.inner.lock().get(&addr).cloned()
    }

    /// Number of stored checkpoints.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the store holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// The price agent of one resource (§4.3, "Resource Price Computation").
///
/// Receives the latencies controllers assigned to the subtasks hosted
/// here, and on every tick recomputes `μ_r` by a projected gradient step
/// and broadcasts it (with the congestion bit) to the controllers of all
/// tasks with subtasks on this resource.
#[derive(Debug)]
pub struct ResourceAgent {
    r: usize,
    problem: Problem,
    policy: StepSizePolicy,
    prices: PriceState,
    /// Last received latency per hosted subtask, aligned with
    /// `problem.subtasks_on(r)`.
    latencies: Vec<f64>,
    subscribers: Vec<usize>,
    robustness: RobustnessConfig,
    /// Virtual time of the newest latency message heard.
    last_heard: f64,
    /// Congestion bit of the last non-degraded tick (rebroadcast while
    /// degraded).
    congested: bool,
    degraded: bool,
    /// Highest control-plane sequence applied (volatile; reset on crash).
    last_avail_seq: u64,
}

impl ResourceAgent {
    /// Creates the agent for resource `r`, seeding stored latencies from
    /// the problem's initial allocation.
    pub fn new(r: usize, problem: Problem, policy: StepSizePolicy) -> Self {
        let init = problem.initial_allocation();
        let rid = problem.resources()[r].id();
        let latencies: Vec<f64> = problem
            .subtasks_on(rid)
            .iter()
            .map(|sid| init[sid.task().index()][sid.index()])
            .collect();
        let mut subscribers: Vec<usize> =
            problem.subtasks_on(rid).iter().map(|sid| sid.task().index()).collect();
        subscribers.sort_unstable();
        subscribers.dedup();
        let prices = PriceState::new(&problem, policy);
        ResourceAgent {
            r,
            problem,
            policy,
            prices,
            latencies,
            subscribers,
            robustness: RobustnessConfig::default(),
            last_heard: 0.0,
            congested: false,
            degraded: false,
            last_avail_seq: 0,
        }
    }

    /// Sets the fault-tolerance configuration.
    pub fn with_robustness(mut self, robustness: RobustnessConfig) -> Self {
        self.robustness = robustness;
        self
    }

    /// The current price `μ_r`.
    pub fn mu(&self) -> f64 {
        self.prices.mu(self.r)
    }

    /// Whether the agent is currently holding its price because its
    /// latency inputs went stale.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The share sum currently demanded by the stored latencies.
    pub fn usage(&self) -> f64 {
        let rid = self.problem.resources()[self.r].id();
        self.problem
            .subtasks_on(rid)
            .iter()
            .zip(&self.latencies)
            .map(|(sid, &lat)| self.problem.share_model(*sid).share_for_latency(lat))
            .sum()
    }

    fn apply_availability(&mut self, resource: usize, availability: f64) {
        self.problem
            .set_resource_availability(self.problem.resources()[resource].id(), availability);
    }
}

impl Actor for ResourceAgent {
    fn on_tick(&mut self, now: f64, outbox: &mut Outbox) {
        self.degraded = now - self.last_heard > self.robustness.staleness_ttl;
        let mu = if self.degraded {
            // Latency inputs are stale (partition, crashed controllers):
            // integrating the frozen gradient would drift the price away
            // from the operating point. Hold and keep announcing it.
            self.prices.mu(self.r)
        } else {
            let usage = self.usage();
            let availability = self.problem.resources()[self.r].availability();
            let grad = availability - usage;
            self.congested = grad < 0.0;
            self.prices.apply_resource_step(self.r, grad)
        };
        for &t in &self.subscribers {
            outbox.send(
                Address::Controller(t),
                Message::Price { resource: self.r, mu, congested: self.congested },
            );
        }
    }

    fn on_message(&mut self, now: f64, msg: Message, outbox: &mut Outbox) {
        match msg {
            Message::Latency { task, subtask, latency } => {
                let rid = self.problem.resources()[self.r].id();
                let pos = self
                    .problem
                    .subtasks_on(rid)
                    .iter()
                    .position(|sid| sid.task().index() == task && sid.index() == subtask);
                if let Some(pos) = pos {
                    self.latencies[pos] = latency;
                    self.last_heard = now;
                }
            }
            Message::AvailabilityUpdate { resource, availability, seq } => {
                if seq == 0 {
                    // Out-of-band management command (bypass path).
                    if resource == self.r {
                        self.apply_availability(resource, availability);
                    }
                } else {
                    if resource == self.r && seq > self.last_avail_seq {
                        self.apply_availability(resource, availability);
                        self.last_avail_seq = seq;
                    }
                    // Always ack, even duplicates — the ack may have been
                    // the lost message.
                    outbox.send(
                        Address::ControlPlane,
                        Message::AvailabilityAck { resource, seq, from: Address::Resource(self.r) },
                    );
                }
            }
            _ => {}
        }
    }

    fn on_crash(&mut self, _now: f64) {
        // All algorithm state is volatile: the restarted agent re-learns
        // latencies from controller traffic and restarts its price from
        // the initial point.
        let init = self.problem.initial_allocation();
        let rid = self.problem.resources()[self.r].id();
        self.latencies = self
            .problem
            .subtasks_on(rid)
            .iter()
            .map(|sid| init[sid.task().index()][sid.index()])
            .collect();
        self.prices = PriceState::new(&self.problem, self.policy);
        self.last_heard = 0.0;
        self.congested = false;
        self.degraded = false;
        self.last_avail_seq = 0;
    }

    fn on_restart(&mut self, now: f64, _outbox: &mut Outbox) {
        // Give the staleness TTL a fresh grace period.
        self.last_heard = now;
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The controller of one task (§4.2, "Latency Allocation").
///
/// Holds the latest resource prices received from the price agents,
/// updates its paths' prices locally, re-solves its latency allocation,
/// and sends the new latencies to the resources its subtasks run on.
///
/// Fault tolerance (all opt-in via [`RobustnessConfig`]): the controller
/// records when it last heard each relevant resource's price and degrades
/// to holding its last-known-good latencies once any of them exceeds the
/// staleness TTL; it periodically writes a [`ControllerCheckpoint`] to a
/// [`CheckpointStore`] and restores from it after a crash.
#[derive(Debug)]
pub struct TaskController {
    t: usize,
    problem: Problem,
    policy: StepSizePolicy,
    prices: PriceState,
    congested: Vec<bool>,
    lats: Vec<f64>,
    settings: AllocationSettings,
    telemetry: SharedLats,
    robustness: RobustnessConfig,
    checkpoints: Option<CheckpointStore>,
    last_checkpoint: f64,
    /// Virtual time of the newest price heard, per resource.
    last_heard: Vec<f64>,
    /// Resource indices this task's subtasks actually use.
    used_resources: Vec<usize>,
    ticks: usize,
    degraded: bool,
    degraded_ticks: u64,
    /// Highest applied control-plane sequence, per resource (volatile).
    last_avail_seq: HashMap<usize, u64>,
}

impl TaskController {
    /// Creates the controller for task `t`.
    pub fn new(
        t: usize,
        problem: Problem,
        policy: StepSizePolicy,
        settings: AllocationSettings,
        telemetry: SharedLats,
    ) -> Self {
        let lats = problem.initial_allocation()[t].clone();
        let congested = vec![false; problem.resources().len()];
        let last_heard = vec![0.0; problem.resources().len()];
        let mut used_resources: Vec<usize> =
            problem.tasks()[t].subtasks().iter().map(|s| s.resource().index()).collect();
        used_resources.sort_unstable();
        used_resources.dedup();
        let prices = PriceState::new(&problem, policy);
        TaskController {
            t,
            problem,
            policy,
            prices,
            congested,
            lats,
            settings,
            telemetry,
            robustness: RobustnessConfig::default(),
            checkpoints: None,
            last_checkpoint: 0.0,
            last_heard,
            used_resources,
            ticks: 0,
            degraded: false,
            degraded_ticks: 0,
            last_avail_seq: HashMap::new(),
        }
    }

    /// Sets the fault-tolerance configuration.
    pub fn with_robustness(mut self, robustness: RobustnessConfig) -> Self {
        self.robustness = robustness;
        self
    }

    /// Attaches the stable store this controller checkpoints into (and
    /// restores from after a crash).
    pub fn with_checkpoints(mut self, store: CheckpointStore) -> Self {
        self.checkpoints = Some(store);
        self
    }

    /// The controller's current latency assignment.
    pub fn lats(&self) -> &[f64] {
        &self.lats
    }

    /// Whether the controller is currently holding its last-known-good
    /// latencies because some price went stale.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Ticks spent in degraded mode so far.
    pub fn degraded_ticks(&self) -> u64 {
        self.degraded_ticks
    }

    /// Captures the controller's algorithm state in the centralized
    /// optimizer's export format (rows of other tasks hold the initial
    /// allocation — this controller only owns its own row).
    pub fn export_state(&self) -> OptimizerState {
        let mut lats = self.problem.initial_allocation();
        lats[self.t] = self.lats.clone();
        OptimizerState::from_parts(self.prices.clone(), lats, self.ticks)
    }

    /// Restores algorithm state captured with
    /// [`export_state`](Self::export_state).
    pub fn import_state(&mut self, state: &OptimizerState) {
        self.prices = state.prices().clone();
        self.lats = state.lats()[self.t].clone();
        self.ticks = state.iteration();
    }

    /// Staleness of the oldest relevant price at virtual time `now`.
    fn staleness(&self, now: f64) -> f64 {
        self.used_resources.iter().map(|&r| now - self.last_heard[r]).fold(0.0, f64::max)
    }
}

impl Actor for TaskController {
    fn on_tick(&mut self, now: f64, outbox: &mut Outbox) {
        self.ticks += 1;
        self.degraded = self.staleness(now) > self.robustness.staleness_ttl;
        if self.degraded {
            // Graceful degradation: stale prices would make the gradient
            // steps integrate noise, so freeze both price layers and hold
            // the last-known-good latencies (the resources keep running
            // with them). Recovery is automatic: fresh prices reset the
            // staleness clock.
            self.degraded_ticks += 1;
        } else {
            let task = &self.problem.tasks()[self.t];

            // Path price computation from the *previous* allocation —
            // matching the centralized iteration order, where prices
            // computed at the end of step k−1 feed the allocation of step
            // k.
            for (p, path) in task.graph().paths().iter().enumerate() {
                let grad = 1.0 - path.latency(&self.lats) / task.critical_time();
                let traverses_congested = path
                    .subtasks()
                    .iter()
                    .any(|&s| self.congested[task.subtasks()[s].resource().index()]);
                self.prices.apply_path_step(self.t, p, grad, traverses_congested);
            }

            // Latency allocation at the stored resource prices.
            self.lats =
                allocate_task(&self.problem, task, &self.prices, &self.settings, &self.lats);
            self.telemetry.lock()[self.t] = self.lats.clone();

            for (s, sub) in task.subtasks().iter().enumerate() {
                outbox.send(
                    Address::Resource(sub.resource().index()),
                    Message::Latency { task: self.t, subtask: s, latency: self.lats[s] },
                );
            }
        }

        if let Some(store) = &self.checkpoints {
            if now - self.last_checkpoint >= self.robustness.checkpoint_interval {
                store.save(
                    Address::Controller(self.t),
                    ControllerCheckpoint {
                        state: self.export_state(),
                        congested: self.congested.clone(),
                        at: now,
                    },
                );
                self.last_checkpoint = now;
            }
        }
    }

    fn on_message(&mut self, now: f64, msg: Message, outbox: &mut Outbox) {
        match msg {
            Message::Price { resource, mu, congested } => {
                self.prices.set_mu(resource, mu);
                self.congested[resource] = congested;
                self.last_heard[resource] = now;
            }
            Message::AvailabilityUpdate { resource, availability, seq } => {
                // Controllers use B_r in their clamping bounds.
                let apply = if seq == 0 {
                    true
                } else {
                    let seen = self.last_avail_seq.entry(resource).or_insert(0);
                    let fresh = seq > *seen;
                    if fresh {
                        *seen = seq;
                    }
                    outbox.send(
                        Address::ControlPlane,
                        Message::AvailabilityAck {
                            resource,
                            seq,
                            from: Address::Controller(self.t),
                        },
                    );
                    fresh
                };
                if apply {
                    self.problem.set_resource_availability(
                        self.problem.resources()[resource].id(),
                        availability,
                    );
                }
            }
            _ => {}
        }
    }

    fn on_crash(&mut self, _now: f64) {
        // Volatile state is gone; the problem spec is configuration and
        // survives. Start from the initial point — on_restart may replace
        // this with a checkpoint.
        self.prices = PriceState::new(&self.problem, self.policy);
        self.lats = self.problem.initial_allocation()[self.t].clone();
        self.congested = vec![false; self.problem.resources().len()];
        self.last_heard = vec![0.0; self.problem.resources().len()];
        self.ticks = 0;
        self.degraded = false;
        self.last_avail_seq.clear();
    }

    fn on_restart(&mut self, now: f64, _outbox: &mut Outbox) {
        if let Some(ckpt) =
            self.checkpoints.as_ref().and_then(|s| s.load(Address::Controller(self.t)))
        {
            self.import_state(&ckpt.state);
            self.congested = ckpt.congested;
            self.last_checkpoint = now;
        }
        // Fresh staleness grace period either way.
        self.last_heard = vec![now; self.problem.resources().len()];
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The management-plane agent that disseminates availability changes
/// *reliably* over the same lossy network as data-plane traffic.
///
/// An operator submits a command as an [`AvailabilityUpdate`] with
/// `seq == 0`; the control plane assigns the next sequence number and
/// fans the update out to the affected resource agent and every task
/// controller, retransmitting on every tick until each recipient has
/// acknowledged the sequence. Recipients deduplicate by sequence, so
/// at-least-once delivery composes to exactly-once application.
///
/// [`AvailabilityUpdate`]: Message::AvailabilityUpdate
#[derive(Debug)]
pub struct ControlPlaneAgent {
    n_tasks: usize,
    next_seq: u64,
    pending: Vec<PendingUpdate>,
}

#[derive(Debug)]
struct PendingUpdate {
    resource: usize,
    availability: f64,
    seq: u64,
    awaiting: Vec<Address>,
}

impl ControlPlaneAgent {
    /// Creates the control plane for a deployment with `n_tasks` task
    /// controllers.
    pub fn new(n_tasks: usize) -> Self {
        ControlPlaneAgent { n_tasks, next_seq: 0, pending: Vec::new() }
    }

    /// Updates not yet acknowledged by every recipient.
    pub fn pending_updates(&self) -> usize {
        self.pending.len()
    }

    /// Sequence numbers assigned so far.
    pub fn sequences_assigned(&self) -> u64 {
        self.next_seq
    }

    fn recipients(&self, resource: usize) -> Vec<Address> {
        let mut v = Vec::with_capacity(self.n_tasks + 1);
        v.push(Address::Resource(resource));
        v.extend((0..self.n_tasks).map(Address::Controller));
        v
    }
}

impl Actor for ControlPlaneAgent {
    fn on_tick(&mut self, _now: f64, outbox: &mut Outbox) {
        // Retransmit every unacknowledged update to every recipient still
        // missing.
        for p in &self.pending {
            for &addr in &p.awaiting {
                outbox.send(
                    addr,
                    Message::AvailabilityUpdate {
                        resource: p.resource,
                        availability: p.availability,
                        seq: p.seq,
                    },
                );
            }
        }
    }

    fn on_message(&mut self, _now: f64, msg: Message, outbox: &mut Outbox) {
        match msg {
            Message::AvailabilityUpdate { resource, availability, seq: 0 } => {
                self.next_seq += 1;
                let seq = self.next_seq;
                let awaiting = self.recipients(resource);
                for &addr in &awaiting {
                    outbox.send(addr, Message::AvailabilityUpdate { resource, availability, seq });
                }
                self.pending.push(PendingUpdate { resource, availability, seq, awaiting });
            }
            Message::AvailabilityAck { seq, from, .. } => {
                for p in &mut self.pending {
                    if p.seq == seq {
                        p.awaiting.retain(|&a| a != from);
                    }
                }
                self.pending.retain(|p| !p.awaiting.is_empty());
            }
            _ => {}
        }
    }

    fn on_crash(&mut self, _now: f64) {
        // Pending retransmissions are volatile. Sequence numbers must stay
        // monotone across restarts; a real control plane would persist the
        // counter, which the round-up on restart emulates.
        self.pending.clear();
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lla_core::{Resource, ResourceId, ResourceKind, TaskBuilder, TaskId};

    fn problem() -> Problem {
        let resources = vec![
            Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
            Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
        ];
        let mut b = TaskBuilder::new("t");
        let a = b.subtask("a", ResourceId::new(0), 2.0);
        let c = b.subtask("b", ResourceId::new(1), 3.0);
        b.edge(a, c).unwrap();
        b.critical_time(30.0);
        Problem::new(resources, vec![b.build(TaskId::new(0)).unwrap()]).unwrap()
    }

    #[test]
    fn resource_agent_tracks_latencies_and_usage() {
        let p = problem();
        let mut agent = ResourceAgent::new(0, p, StepSizePolicy::fixed(1.0));
        // Initial allocation: 15ms each => usage = 3/15 = 0.2.
        assert!((agent.usage() - 0.2).abs() < 1e-12);
        let mut outbox = Outbox::default();
        agent.on_message(0.0, Message::Latency { task: 0, subtask: 0, latency: 3.0 }, &mut outbox);
        assert!((agent.usage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resource_agent_broadcasts_price_on_tick() {
        let p = problem();
        let mut agent = ResourceAgent::new(0, p, StepSizePolicy::fixed(1.0));
        let mut outbox = Outbox::default();
        agent.on_message(0.0, Message::Latency { task: 0, subtask: 0, latency: 1.0 }, &mut outbox);
        agent.on_tick(0.0, &mut outbox);
        assert_eq!(outbox.len(), 1, "one subscriber");
        assert!(agent.mu() > 0.0, "congestion must raise the price");
    }

    #[test]
    fn controller_allocates_and_reports() {
        let p = problem();
        let telemetry: SharedLats = Arc::new(Mutex::new(p.initial_allocation()));
        let mut ctl = TaskController::new(
            0,
            p.clone(),
            StepSizePolicy::fixed(1.0),
            AllocationSettings { throughput_floor: false, ..Default::default() },
            Arc::clone(&telemetry),
        );
        let mut outbox = Outbox::default();
        ctl.on_message(0.0, Message::Price { resource: 0, mu: 9.0, congested: false }, &mut outbox);
        ctl.on_message(
            0.0,
            Message::Price { resource: 1, mu: 16.0, congested: false },
            &mut outbox,
        );
        ctl.on_tick(0.0, &mut outbox);
        // One latency message per subtask.
        assert_eq!(outbox.len(), 2);
        // lat = sqrt(mu * demand): sqrt(27) and sqrt(64).
        let lats = telemetry.lock()[0].clone();
        assert!((lats[0] - 27f64.sqrt()).abs() < 1e-9);
        assert!((lats[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn controller_degrades_on_stale_prices_and_recovers() {
        let p = problem();
        let telemetry: SharedLats = Arc::new(Mutex::new(p.initial_allocation()));
        let mut ctl = TaskController::new(
            0,
            p,
            StepSizePolicy::fixed(1.0),
            AllocationSettings { throughput_floor: false, ..Default::default() },
            telemetry,
        )
        .with_robustness(RobustnessConfig { staleness_ttl: 20.0, ..Default::default() });
        let mut outbox = Outbox::default();
        ctl.on_message(0.0, Message::Price { resource: 0, mu: 9.0, congested: false }, &mut outbox);
        ctl.on_message(
            0.0,
            Message::Price { resource: 1, mu: 16.0, congested: false },
            &mut outbox,
        );
        ctl.on_tick(10.0, &mut outbox);
        assert!(!ctl.is_degraded());
        let held = ctl.lats().to_vec();
        // No prices for 30 ms > TTL: hold, send nothing.
        let before = outbox.len();
        ctl.on_tick(40.0, &mut outbox);
        assert!(ctl.is_degraded());
        assert_eq!(ctl.degraded_ticks(), 1);
        assert_eq!(outbox.len(), before, "degraded tick must not send");
        assert_eq!(ctl.lats(), held.as_slice(), "degraded tick must hold latencies");
        // Fresh prices end degradation.
        ctl.on_message(
            41.0,
            Message::Price { resource: 0, mu: 9.0, congested: false },
            &mut outbox,
        );
        ctl.on_message(
            41.0,
            Message::Price { resource: 1, mu: 16.0, congested: false },
            &mut outbox,
        );
        ctl.on_tick(42.0, &mut outbox);
        assert!(!ctl.is_degraded());
    }

    #[test]
    fn controller_checkpoints_and_restores_after_crash() {
        let p = problem();
        let telemetry: SharedLats = Arc::new(Mutex::new(p.initial_allocation()));
        let store = CheckpointStore::new();
        let mut ctl = TaskController::new(
            0,
            p,
            StepSizePolicy::fixed(1.0),
            AllocationSettings { throughput_floor: false, ..Default::default() },
            telemetry,
        )
        .with_robustness(RobustnessConfig { checkpoint_interval: 5.0, ..Default::default() })
        .with_checkpoints(store.clone());
        let mut outbox = Outbox::default();
        ctl.on_message(0.0, Message::Price { resource: 0, mu: 9.0, congested: false }, &mut outbox);
        ctl.on_message(
            0.0,
            Message::Price { resource: 1, mu: 16.0, congested: false },
            &mut outbox,
        );
        ctl.on_tick(6.0, &mut outbox);
        assert_eq!(store.len(), 1, "checkpoint written");
        let converged = ctl.lats().to_vec();

        ctl.on_crash(7.0);
        assert_ne!(ctl.lats(), converged.as_slice(), "crash wipes volatile state");
        ctl.on_restart(8.0, &mut outbox);
        assert_eq!(ctl.lats(), converged.as_slice(), "restart restores the checkpoint");
    }

    #[test]
    fn resource_agent_dedupes_by_sequence_and_acks() {
        let p = problem();
        let mut agent = ResourceAgent::new(0, p, StepSizePolicy::fixed(1.0));
        let mut outbox = Outbox::default();
        let update = Message::AvailabilityUpdate { resource: 0, availability: 0.5, seq: 3 };
        agent.on_message(0.0, update.clone(), &mut outbox);
        agent.on_message(1.0, update, &mut outbox);
        // A *lower* sequence must not roll availability back.
        agent.on_message(
            2.0,
            Message::AvailabilityUpdate { resource: 0, availability: 0.9, seq: 2 },
            &mut outbox,
        );
        let msgs = outbox.into_messages();
        assert_eq!(msgs.len(), 3, "every sequenced update is acked, even duplicates");
        assert!(msgs.iter().all(|(to, m)| *to == Address::ControlPlane
            && matches!(m, Message::AvailabilityAck { from: Address::Resource(0), .. })));
    }

    #[test]
    fn control_plane_retransmits_until_acked() {
        let mut cp = ControlPlaneAgent::new(2);
        let mut outbox = Outbox::default();
        cp.on_message(
            0.0,
            Message::AvailabilityUpdate { resource: 1, availability: 0.5, seq: 0 },
            &mut outbox,
        );
        // Fan-out to resource 1 + both controllers.
        assert_eq!(outbox.len(), 3);
        assert_eq!(cp.pending_updates(), 1);
        let sent = outbox.into_messages();
        assert!(sent
            .iter()
            .all(|(_, m)| *m
                == Message::AvailabilityUpdate { resource: 1, availability: 0.5, seq: 1 }));

        // Two of three ack: retransmit only to the silent one.
        for from in [Address::Resource(1), Address::Controller(0)] {
            let mut ob = Outbox::default();
            cp.on_message(1.0, Message::AvailabilityAck { resource: 1, seq: 1, from }, &mut ob);
        }
        let mut ob = Outbox::default();
        cp.on_tick(2.0, &mut ob);
        let retries = ob.into_messages();
        assert_eq!(retries.len(), 1);
        assert_eq!(retries[0].0, Address::Controller(1));

        // Final ack clears the pending set; ticks go quiet.
        let mut ob = Outbox::default();
        cp.on_message(
            3.0,
            Message::AvailabilityAck { resource: 1, seq: 1, from: Address::Controller(1) },
            &mut ob,
        );
        assert_eq!(cp.pending_updates(), 0);
        let mut ob = Outbox::default();
        cp.on_tick(4.0, &mut ob);
        assert!(ob.is_empty(), "an idle control plane is silent");
    }
}
