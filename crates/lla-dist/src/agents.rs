//! The two actor kinds of distributed LLA: resource price agents and task
//! controllers.

use crate::protocol::{Address, Message};
use crate::runtime::{Actor, Outbox};
use lla_core::{allocate_task, AllocationSettings, PriceState, Problem, StepSizePolicy};
use parking_lot::Mutex;
use std::sync::Arc;

// Agents own a private copy of the `Problem` rather than sharing an
// `Arc`: availability updates arrive as messages and each agent applies
// them to its local view, exactly as a deployed agent would.

/// Shared telemetry sink the controllers write their latest allocations
/// into; the [`DistributedLla`](crate::DistributedLla) facade reads it.
pub type SharedLats = Arc<Mutex<Vec<Vec<f64>>>>;

/// The price agent of one resource (§4.3, "Resource Price Computation").
///
/// Receives the latencies controllers assigned to the subtasks hosted
/// here, and on every tick recomputes `μ_r` by a projected gradient step
/// and broadcasts it (with the congestion bit) to the controllers of all
/// tasks with subtasks on this resource.
#[derive(Debug)]
pub struct ResourceAgent {
    r: usize,
    problem: Problem,
    prices: PriceState,
    /// Last received latency per hosted subtask, aligned with
    /// `problem.subtasks_on(r)`.
    latencies: Vec<f64>,
    subscribers: Vec<usize>,
}

impl ResourceAgent {
    /// Creates the agent for resource `r`, seeding stored latencies from
    /// the problem's initial allocation.
    pub fn new(r: usize, problem: Problem, policy: StepSizePolicy) -> Self {
        let init = problem.initial_allocation();
        let rid = problem.resources()[r].id();
        let latencies: Vec<f64> = problem
            .subtasks_on(rid)
            .iter()
            .map(|sid| init[sid.task().index()][sid.index()])
            .collect();
        let mut subscribers: Vec<usize> =
            problem.subtasks_on(rid).iter().map(|sid| sid.task().index()).collect();
        subscribers.sort_unstable();
        subscribers.dedup();
        let prices = PriceState::new(&problem, policy);
        ResourceAgent { r, problem, prices, latencies, subscribers }
    }

    /// The current price `μ_r`.
    pub fn mu(&self) -> f64 {
        self.prices.mu(self.r)
    }

    /// The share sum currently demanded by the stored latencies.
    pub fn usage(&self) -> f64 {
        let rid = self.problem.resources()[self.r].id();
        self.problem
            .subtasks_on(rid)
            .iter()
            .zip(&self.latencies)
            .map(|(sid, &lat)| self.problem.share_model(*sid).share_for_latency(lat))
            .sum()
    }
}

impl Actor for ResourceAgent {
    fn on_tick(&mut self, _now: f64, outbox: &mut Outbox) {
        let usage = self.usage();
        let availability = self.problem.resources()[self.r].availability();
        let grad = availability - usage;
        let mu = self.prices.apply_resource_step(self.r, grad);
        for &t in &self.subscribers {
            outbox.send(
                Address::Controller(t),
                Message::Price { resource: self.r, mu, congested: grad < 0.0 },
            );
        }
    }

    fn on_message(&mut self, _now: f64, msg: Message, _outbox: &mut Outbox) {
        match msg {
            Message::Latency { task, subtask, latency } => {
                let rid = self.problem.resources()[self.r].id();
                let pos = self
                    .problem
                    .subtasks_on(rid)
                    .iter()
                    .position(|sid| sid.task().index() == task && sid.index() == subtask);
                if let Some(pos) = pos {
                    self.latencies[pos] = latency;
                }
            }
            Message::AvailabilityUpdate { resource, availability } if resource == self.r => {
                self.problem.set_resource_availability(
                    self.problem.resources()[resource].id(),
                    availability,
                );
            }
            _ => {}
        }
    }
}

/// The controller of one task (§4.2, "Latency Allocation").
///
/// Holds the latest resource prices received from the price agents,
/// updates its paths' prices locally, re-solves its latency allocation,
/// and sends the new latencies to the resources its subtasks run on.
#[derive(Debug)]
pub struct TaskController {
    t: usize,
    problem: Problem,
    prices: PriceState,
    congested: Vec<bool>,
    lats: Vec<f64>,
    settings: AllocationSettings,
    telemetry: SharedLats,
}

impl TaskController {
    /// Creates the controller for task `t`.
    pub fn new(
        t: usize,
        problem: Problem,
        policy: StepSizePolicy,
        settings: AllocationSettings,
        telemetry: SharedLats,
    ) -> Self {
        let lats = problem.initial_allocation()[t].clone();
        let congested = vec![false; problem.resources().len()];
        let prices = PriceState::new(&problem, policy);
        TaskController { t, problem, prices, congested, lats, settings, telemetry }
    }

    /// The controller's current latency assignment.
    pub fn lats(&self) -> &[f64] {
        &self.lats
    }
}

impl Actor for TaskController {
    fn on_tick(&mut self, _now: f64, outbox: &mut Outbox) {
        let task = &self.problem.tasks()[self.t];

        // Path price computation from the *previous* allocation — matching
        // the centralized iteration order, where prices computed at the end
        // of step k−1 feed the allocation of step k.
        for (p, path) in task.graph().paths().iter().enumerate() {
            let grad = 1.0 - path.latency(&self.lats) / task.critical_time();
            let traverses_congested = path
                .subtasks()
                .iter()
                .any(|&s| self.congested[task.subtasks()[s].resource().index()]);
            self.prices.apply_path_step(self.t, p, grad, traverses_congested);
        }

        // Latency allocation at the stored resource prices.
        self.lats = allocate_task(&self.problem, task, &self.prices, &self.settings, &self.lats);
        self.telemetry.lock()[self.t] = self.lats.clone();

        for (s, sub) in task.subtasks().iter().enumerate() {
            outbox.send(
                Address::Resource(sub.resource().index()),
                Message::Latency { task: self.t, subtask: s, latency: self.lats[s] },
            );
        }
    }

    fn on_message(&mut self, _now: f64, msg: Message, _outbox: &mut Outbox) {
        match msg {
            Message::Price { resource, mu, congested } => {
                self.prices.set_mu(resource, mu);
                self.congested[resource] = congested;
            }
            Message::AvailabilityUpdate { resource, availability } => {
                // Controllers use B_r in their clamping bounds.
                self.problem.set_resource_availability(
                    self.problem.resources()[resource].id(),
                    availability,
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lla_core::{Resource, ResourceId, ResourceKind, TaskBuilder, TaskId};

    fn problem() -> Problem {
        let resources = vec![
            Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
            Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
        ];
        let mut b = TaskBuilder::new("t");
        let a = b.subtask("a", ResourceId::new(0), 2.0);
        let c = b.subtask("b", ResourceId::new(1), 3.0);
        b.edge(a, c).unwrap();
        b.critical_time(30.0);
        Problem::new(resources, vec![b.build(TaskId::new(0)).unwrap()]).unwrap()
    }

    #[test]
    fn resource_agent_tracks_latencies_and_usage() {
        let p = problem();
        let mut agent = ResourceAgent::new(0, p, StepSizePolicy::fixed(1.0));
        // Initial allocation: 15ms each => usage = 3/15 = 0.2.
        assert!((agent.usage() - 0.2).abs() < 1e-12);
        let mut outbox = Outbox::default();
        agent.on_message(0.0, Message::Latency { task: 0, subtask: 0, latency: 3.0 }, &mut outbox);
        assert!((agent.usage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resource_agent_broadcasts_price_on_tick() {
        let p = problem();
        let mut agent = ResourceAgent::new(0, p, StepSizePolicy::fixed(1.0));
        let mut outbox = Outbox::default();
        agent.on_message(0.0, Message::Latency { task: 0, subtask: 0, latency: 1.0 }, &mut outbox);
        agent.on_tick(0.0, &mut outbox);
        assert_eq!(outbox.len(), 1, "one subscriber");
        assert!(agent.mu() > 0.0, "congestion must raise the price");
    }

    #[test]
    fn controller_allocates_and_reports() {
        let p = problem();
        let telemetry: SharedLats = Arc::new(Mutex::new(p.initial_allocation()));
        let mut ctl = TaskController::new(
            0,
            p.clone(),
            StepSizePolicy::fixed(1.0),
            AllocationSettings { throughput_floor: false, ..Default::default() },
            Arc::clone(&telemetry),
        );
        let mut outbox = Outbox::default();
        ctl.on_message(0.0, Message::Price { resource: 0, mu: 9.0, congested: false }, &mut outbox);
        ctl.on_message(0.0, Message::Price { resource: 1, mu: 16.0, congested: false }, &mut outbox);
        ctl.on_tick(0.0, &mut outbox);
        // One latency message per subtask.
        assert_eq!(outbox.len(), 2);
        // lat = sqrt(mu * demand): sqrt(27) and sqrt(64).
        let lats = telemetry.lock()[0].clone();
        assert!((lats[0] - 27f64.sqrt()).abs() < 1e-9);
        assert!((lats[1] - 8.0).abs() < 1e-9);
    }
}
