//! The actor kinds of distributed LLA: resource price agents, task
//! controllers, and the control-plane agent that disseminates availability
//! changes reliably.

use crate::fleet::{
    AgentTelemetry, M_CHECKPOINTS, M_DEGRADED_TICKS, M_LATENCY_UPDATES, M_MESSAGES_IN,
    M_MESSAGES_OUT, M_OVERLOADED_TICKS, M_PRICE_UPDATES, M_TICKS, M_VALUE_REJECTIONS,
};
use crate::protocol::{Address, Message};
use crate::runtime::{Actor, Outbox};
use crate::telemetry::DistTelemetry;
use lla_core::{
    AllocationSettings, MembershipReport, OptimizerState, PriceState, Problem, StateImportError,
    StepSizePolicy, TaskPlan,
};
use lla_telemetry::Event as TelemetryEvent;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

// Agents own a private copy of the `Problem` rather than sharing an
// `Arc`: availability updates arrive as messages and each agent applies
// them to its local view, exactly as a deployed agent would. The problem
// is *configuration* (reloaded from the local config store on restart),
// so a crash does not wipe it — only algorithm state is volatile.

/// Shared telemetry sink the controllers write their latest allocations
/// into; the [`DistributedLla`](crate::DistributedLla) facade reads it.
pub type SharedLats = Arc<Mutex<Vec<Vec<f64>>>>;

/// Fault-tolerance knobs shared by the agents. The defaults disable every
/// mechanism, which keeps the fault-free protocol bit-equivalent to the
/// centralized optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessConfig {
    /// Virtual ms between controller checkpoints ([`f64::INFINITY`]
    /// disables checkpointing).
    pub checkpoint_interval: f64,
    /// Degrade gracefully once the newest price (controllers) or latency
    /// (resource agents) heard from a peer is older than this many virtual
    /// ms: freeze price steps and hold the last-known-good latencies
    /// instead of integrating stale gradients ([`f64::INFINITY`] never
    /// degrades).
    pub staleness_ttl: f64,
    /// Virtual ms between control-plane retransmissions of unacknowledged
    /// availability updates.
    pub retransmit_interval: f64,
    /// Cap (in retransmit ticks) on the control plane's exponential
    /// backoff between retransmissions of one pending update. The wait
    /// after the `n`-th retransmission is `min(2ⁿ, cap) − 1` skipped
    /// ticks; the default of `1` retransmits on every tick, which is the
    /// legacy behavior.
    pub retransmit_backoff_cap: u32,
    /// Retransmissions of one pending update before the control plane
    /// gives up on the still-silent recipients (emitting a
    /// `retransmit_give_up` event instead of resending forever). The
    /// default never gives up.
    pub max_retransmits: u64,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            checkpoint_interval: f64::INFINITY,
            staleness_ttl: f64::INFINITY,
            retransmit_interval: 10.0,
            retransmit_backoff_cap: 1,
            max_retransmits: u64::MAX,
        }
    }
}

/// A task controller's durable checkpoint: algorithm state in the
/// centralized [`Optimizer`](lla_core::Optimizer)'s export format, plus
/// the controller-local congestion bits.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerCheckpoint {
    /// Prices + latencies + iteration, as
    /// [`Optimizer::export_state`](lla_core::Optimizer::export_state)
    /// would capture them.
    pub state: OptimizerState,
    /// Last received congestion bit per resource.
    pub congested: Vec<bool>,
    /// Virtual time the checkpoint was taken.
    pub at: f64,
    /// Topology epoch the controller had applied when it checkpointed.
    /// Restore validates this against the restarting controller's epoch —
    /// a checkpoint from an older topology holds duals shaped for a
    /// different problem.
    pub epoch: u64,
}

/// Stable storage for controller checkpoints, shared between the agents
/// and the runtime driver. Survives crashes by construction (a crashed
/// actor keeps no reference — it re-reads the store on restart).
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<HashMap<Address, ControllerCheckpoint>>>,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Writes (or overwrites) the checkpoint for `addr`.
    pub fn save(&self, addr: Address, ckpt: ControllerCheckpoint) {
        self.inner.lock().insert(addr, ckpt);
    }

    /// Reads the latest checkpoint for `addr`, if any.
    pub fn load(&self, addr: Address) -> Option<ControllerCheckpoint> {
        self.inner.lock().get(&addr).cloned()
    }

    /// Number of stored checkpoints.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the store holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// Why a topology epoch was created.
///
/// Agents use the cause to decide whether their warm duals survive the
/// transition. An [`Evict`](MembershipCause::Evict) epoch exists *because*
/// sustained overload was detected — which means every agent's prices
/// integrated an unsatisfiable gradient for the whole detection window and
/// are arbitrarily inflated. Once the shed capacity lets the constraints
/// re-bind, those prices decay at `γ·slack` with `slack ≈ 0` and the
/// allocation stalls far from the optimum indefinitely. Eviction epochs
/// therefore restart prices from the initial point (bounded cold-start
/// re-convergence); every other cause warm-starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipCause {
    /// The initial deployment (epoch 0).
    Genesis,
    /// A task joined voluntarily.
    TaskJoin,
    /// A task left voluntarily.
    TaskLeave,
    /// The overload governor shed a task.
    Evict,
    /// A resource joined.
    ResourceJoin,
    /// A resource retired (drain-and-handoff).
    ResourceRetire,
    /// The supervisor provisioned an elastic replica of a resource.
    ReplicaProvision,
    /// The supervisor retired an elastic replica of a resource.
    ReplicaRetire,
}

/// One version of the deployment's topology: the problem at a given
/// membership epoch plus the slot assignment of its dense indices.
///
/// Protocol-level indices are *slots* — stable, never-reused identifiers
/// (see the [`protocol`](crate::protocol) docs) — while the
/// [`Problem`] keeps dense ids. Each epoch records the bijection.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyEpoch {
    /// Monotone epoch counter (0 is the initial deployment).
    pub epoch: u64,
    /// What created this epoch.
    pub cause: MembershipCause,
    /// The problem as of this epoch (dense ids).
    pub problem: Problem,
    /// `task_slots[dense task index] = slot`.
    pub task_slots: Vec<usize>,
    /// `resource_slots[dense resource index] = slot`.
    pub resource_slots: Vec<usize>,
}

/// The durable, shared log of topology epochs — the membership analogue of
/// the local config store the agents reload their [`Problem`] from. The
/// facade appends an epoch *before* announcing it through the control
/// plane, so by the time any agent hears about epoch `e` the store can
/// serve it. Agents that miss intermediate epochs (loss, crashes) jump
/// straight to the newest one they hear about — every epoch is a complete
/// snapshot, not a delta.
#[derive(Debug, Clone, Default)]
pub struct TopologyStore {
    inner: Arc<Mutex<Vec<TopologyEpoch>>>,
}

impl TopologyStore {
    /// An empty store.
    pub fn new() -> Self {
        TopologyStore::default()
    }

    /// Appends an epoch.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` does not extend the log monotonically.
    pub fn push(&self, epoch: TopologyEpoch) {
        let mut log = self.inner.lock();
        if let Some(last) = log.last() {
            assert!(epoch.epoch > last.epoch, "epochs must be monotone");
        }
        log.push(epoch);
    }

    /// The epoch numbered `epoch`, if recorded.
    pub fn at(&self, epoch: u64) -> Option<TopologyEpoch> {
        self.inner.lock().iter().find(|e| e.epoch == epoch).cloned()
    }

    /// The newest recorded epoch.
    pub fn latest(&self) -> Option<TopologyEpoch> {
        self.inner.lock().last().cloned()
    }

    /// Whether any epoch in `(after, upto]` was created by an eviction.
    /// Agents jumping several epochs at once use this to decide whether
    /// the warm duals survive the jump (see [`MembershipCause`]).
    pub fn evicted_between(&self, after: u64, upto: u64) -> bool {
        self.inner
            .lock()
            .iter()
            .any(|e| e.epoch > after && e.epoch <= upto && e.cause == MembershipCause::Evict)
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no epoch has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// The dense-index remap between two topology views, keyed by slots: old
/// dense index `i` maps to the position its slot occupies in the new view
/// (or `None` if the slot is gone). This is exactly the shape
/// [`PriceState::remap`] consumes to warm-start duals across an epoch.
fn epoch_report(
    old_task_slots: &[usize],
    old_resource_slots: &[usize],
    te: &TopologyEpoch,
) -> MembershipReport {
    MembershipReport {
        task_map: old_task_slots
            .iter()
            .map(|s| te.task_slots.iter().position(|x| x == s))
            .collect(),
        resource_map: old_resource_slots
            .iter()
            .map(|s| te.resource_slots.iter().position(|x| x == s))
            .collect(),
        added_task: None,
        added_resource: None,
    }
}

/// The price agent of one resource (§4.3, "Resource Price Computation").
///
/// Receives the latencies controllers assigned to the subtasks hosted
/// here, and on every tick recomputes `μ_r` by a projected gradient step
/// and broadcasts it (with the congestion bit) to the controllers of all
/// tasks with subtasks on this resource.
#[derive(Debug)]
pub struct ResourceAgent {
    r: usize,
    /// Protocol slot of this resource (== `r` until churn reorders dense
    /// indices).
    slot: usize,
    problem: Problem,
    policy: StepSizePolicy,
    prices: PriceState,
    /// Last received latency per hosted subtask, aligned with `hosted`.
    latencies: Vec<f64>,
    /// `(task slot, subtask index)` key of each hosted subtask, aligned
    /// with `latencies` — the epoch-stable identity warm state is carried
    /// under across membership changes.
    hosted: Vec<(usize, usize)>,
    /// Controller *slots* to broadcast the price to.
    subscribers: Vec<usize>,
    /// `task_slots[dense task index] = slot` in the applied epoch.
    task_slots: Vec<usize>,
    robustness: RobustnessConfig,
    topology: Option<TopologyStore>,
    /// Applied topology epoch.
    epoch: u64,
    /// Retired: acknowledge control traffic, do nothing else.
    dormant: bool,
    /// Virtual time of the newest latency message heard.
    last_heard: f64,
    /// Congestion bit of the last non-degraded tick (rebroadcast while
    /// degraded).
    congested: bool,
    degraded: bool,
    /// Highest control-plane sequence applied (volatile; reset on crash).
    last_avail_seq: u64,
    /// Highest supervisor-command sequence applied (volatile).
    last_cmd_seq: u64,
    tel: DistTelemetry,
    /// Per-agent fleet scope + shipping books. The shipping books are
    /// durable (see [`AgentTelemetry`]): `on_crash` leaves them alone so
    /// the report sequence stays monotone across restarts.
    ftel: AgentTelemetry,
}

impl ResourceAgent {
    /// Creates the agent for resource `r`, seeding stored latencies from
    /// the problem's initial allocation. Slot and dense index coincide at
    /// creation; [`with_membership`](Self::with_membership) overrides the
    /// slot for agents joining a churned deployment.
    pub fn new(r: usize, problem: Problem, policy: StepSizePolicy) -> Self {
        let prices = PriceState::new(&problem, policy);
        let task_slots: Vec<usize> = (0..problem.tasks().len()).collect();
        let mut agent = ResourceAgent {
            r,
            slot: r,
            problem,
            policy,
            prices,
            latencies: Vec::new(),
            hosted: Vec::new(),
            subscribers: Vec::new(),
            task_slots,
            robustness: RobustnessConfig::default(),
            topology: None,
            epoch: 0,
            dormant: false,
            last_heard: 0.0,
            congested: false,
            degraded: false,
            last_avail_seq: 0,
            last_cmd_seq: 0,
            tel: DistTelemetry::disabled(),
            ftel: AgentTelemetry::noop(),
        };
        agent.resync_from_problem();
        agent
    }

    /// Sets the fault-tolerance configuration.
    pub fn with_robustness(mut self, robustness: RobustnessConfig) -> Self {
        self.robustness = robustness;
        self
    }

    /// Attaches shared telemetry handles (counters + event log).
    pub fn with_telemetry(mut self, tel: DistTelemetry) -> Self {
        self.tel = tel;
        self
    }

    /// Attaches this agent's fleet scope (scoped counters + optional
    /// report shipping).
    pub fn with_fleet(mut self, ftel: AgentTelemetry) -> Self {
        self.ftel = ftel;
        self
    }

    /// Read access to the fleet scope, e.g. to compare reports emitted
    /// against the collector's merge accounting in tests.
    pub fn fleet_telemetry(&self) -> &AgentTelemetry {
        &self.ftel
    }

    /// Attaches the shared topology store and fixes the agent's protocol
    /// slot. The agent adopts the slot assignment of `epoch` (which the
    /// caller has already pushed to the store); membership messages for
    /// later epochs update it from there.
    pub fn with_membership(mut self, store: TopologyStore, slot: usize, epoch: u64) -> Self {
        self.slot = slot;
        self.epoch = epoch;
        if let Some(te) = store.at(epoch) {
            self.task_slots = te.task_slots.clone();
        }
        self.topology = Some(store);
        self.resync_from_problem();
        self
    }

    /// Protocol slot of this agent.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Applied topology epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the resource has retired and the agent only acknowledges
    /// control traffic.
    pub fn is_dormant(&self) -> bool {
        self.dormant
    }

    /// The current price `μ_r`.
    pub fn mu(&self) -> f64 {
        self.prices.mu(self.r)
    }

    /// Whether the agent is currently holding its price because its
    /// latency inputs went stale.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Adaptive step-size growth events recorded by this agent's price
    /// state (the supervisor's gamma-thrash evidence).
    pub fn gamma_doublings(&self) -> u64 {
        self.prices.gamma_doublings()
    }

    /// The share sum currently demanded by the stored latencies.
    pub fn usage(&self) -> f64 {
        let rid = self.problem.resources()[self.r].id();
        self.problem
            .subtasks_on(rid)
            .iter()
            .zip(&self.latencies)
            .map(|(sid, &lat)| self.problem.share_model(*sid).share_for_latency(lat))
            .sum()
    }

    /// Rebuilds `hosted`/`latencies`/`subscribers` from the current
    /// problem view, preserving warm latencies for subtasks that survive
    /// (keyed by task slot + subtask index) and seeding newcomers from the
    /// initial allocation.
    fn resync_from_problem(&mut self) {
        let warm: HashMap<(usize, usize), f64> =
            self.hosted.iter().copied().zip(self.latencies.iter().copied()).collect();
        let init = self.problem.initial_allocation();
        let rid = self.problem.resources()[self.r].id();
        let mut hosted = Vec::new();
        let mut latencies = Vec::new();
        let mut subscribers = Vec::new();
        for sid in self.problem.subtasks_on(rid) {
            let key = (self.task_slots[sid.task().index()], sid.index());
            hosted.push(key);
            latencies
                .push(warm.get(&key).copied().unwrap_or(init[sid.task().index()][sid.index()]));
            subscribers.push(key.0);
        }
        subscribers.sort_unstable();
        subscribers.dedup();
        self.hosted = hosted;
        self.latencies = latencies;
        self.subscribers = subscribers;
    }

    /// Adopts a newer topology epoch: rebind the dense index behind this
    /// agent's slot, warm-carry the price, and re-derive the hosted set.
    /// A retired slot sends the agent dormant.
    fn apply_epoch(&mut self, te: &TopologyEpoch) {
        let report = epoch_report(&self.task_slots, &[self.slot], te);
        self.epoch = te.epoch;
        let Some(new_r) = te.resource_slots.iter().position(|&s| s == self.slot) else {
            // Drain-and-handoff already moved the hosted subtasks in the
            // epoch's problem; nothing is left to serve.
            self.dormant = true;
            self.hosted.clear();
            self.latencies.clear();
            self.subscribers.clear();
            return;
        };
        // `epoch_report` built the resource map for this agent's slot
        // alone; widen it to the full old problem so the price remap stays
        // shaped correctly.
        let full_report = MembershipReport {
            resource_map: self
                .problem
                .resources()
                .iter()
                .enumerate()
                .map(|(i, _)| if i == self.r { Some(new_r) } else { None })
                .collect(),
            ..report
        };
        self.tel.warm_start_hits.inc();
        self.prices = self.prices.remap(&te.problem, &full_report);
        self.problem = te.problem.clone();
        self.r = new_r;
        self.task_slots = te.task_slots.clone();
        self.resync_from_problem();
    }

    /// Handles a membership message; returns `true` if it was one.
    fn on_membership(&mut self, msg: &Message, outbox: &mut Outbox) -> bool {
        let Some((_, epoch, seq)) = msg.membership_parts() else {
            return false;
        };
        if epoch > self.epoch {
            if let Some(te) = self.topology.as_ref().and_then(|s| s.at(epoch)) {
                let rehab =
                    self.topology.as_ref().is_some_and(|s| s.evicted_between(self.epoch, epoch));
                self.apply_epoch(&te);
                if rehab && !self.dormant {
                    // An eviction epoch means sustained overload poisoned
                    // the duals — restart the price (see MembershipCause).
                    self.prices = PriceState::new(&self.problem, self.policy);
                }
            }
        }
        // Always ack, even duplicates or already-superseded epochs — the
        // ack may have been the lost message.
        if seq > 0 {
            outbox.send(
                Address::ControlPlane,
                Message::MembershipAck { epoch, seq, from: Address::Resource(self.slot) },
            );
        }
        true
    }

    /// Applies an availability update, refusing values the model layer
    /// rejects (non-finite or outside `[0, 1]`) — a corrupted or hostile
    /// update must not poison `B_r` and with it every price gradient.
    fn apply_availability(&mut self, now: f64, availability: f64) {
        let id = self.problem.resources()[self.r].id();
        if self.problem.set_resource_availability(id, availability).is_err() {
            self.tel.values_rejected.inc();
            self.ftel.inc(M_VALUE_REJECTIONS);
            self.tel.events.emit(
                TelemetryEvent::new(now, "value_rejected")
                    .with("agent", "resource")
                    .with("slot", self.slot)
                    .with("field", "availability"),
            );
        }
    }

    /// Handles a supervisor command; returns `true` if it was one.
    /// Sequenced commands (`seq > 0`) are deduplicated and always acked
    /// — the ack may have been the lost message; `seq == 0` is the
    /// out-of-band bypass path.
    fn on_command(&mut self, msg: &Message, outbox: &mut Outbox) -> bool {
        let Some(seq) = msg.command_seq() else {
            return false;
        };
        let fresh = seq == 0 || seq > self.last_cmd_seq;
        if seq > 0 {
            if fresh {
                self.last_cmd_seq = seq;
            }
            outbox.send(
                Address::ControlPlane,
                Message::CommandAck { seq, from: Address::Resource(self.slot) },
            );
        }
        if fresh && !self.dormant {
            match *msg {
                Message::GammaCalm { max_multiple, .. } => self.prices.calm_gammas(max_multiple),
                Message::DualResync { .. } => {
                    // Re-announce the current price immediately so stalled
                    // controllers' staleness clocks refresh without
                    // waiting for the next tick phase.
                    let mu = self.prices.mu(self.r);
                    for &t in &self.subscribers {
                        outbox.send(
                            Address::Controller(t),
                            Message::Price { resource: self.slot, mu, congested: self.congested },
                        );
                    }
                }
                _ => unreachable!("command_seq() only matches supervisor commands"),
            }
        }
        true
    }
}

impl Actor for ResourceAgent {
    fn on_tick(&mut self, now: f64, outbox: &mut Outbox) {
        if self.dormant {
            // Dormant agents still report (empty deltas) so the fleet
            // watermark keeps advancing.
            self.ftel.maybe_report(now, Address::Resource(self.slot), outbox);
            return;
        }
        self.ftel.inc(M_TICKS);
        let was_degraded = self.degraded;
        self.degraded = now - self.last_heard > self.robustness.staleness_ttl;
        if self.degraded != was_degraded {
            if self.degraded {
                self.tel.staleness_freezes.inc();
                self.tel.events.emit(
                    TelemetryEvent::new(now, "degraded_enter")
                        .with("agent", "resource")
                        .with("slot", self.slot),
                );
            } else {
                self.tel.events.emit(
                    TelemetryEvent::new(now, "degraded_exit")
                        .with("agent", "resource")
                        .with("slot", self.slot),
                );
            }
        }
        if self.degraded {
            self.tel.degraded_ticks.inc();
            self.ftel.inc(M_DEGRADED_TICKS);
        }
        let mu = if self.degraded {
            // Latency inputs are stale (partition, crashed controllers):
            // integrating the frozen gradient would drift the price away
            // from the operating point. Hold and keep announcing it.
            self.prices.mu(self.r)
        } else {
            let usage = self.usage();
            let availability = self.problem.resources()[self.r].availability();
            let grad = availability - usage;
            self.congested = grad < 0.0;
            if self.congested {
                self.ftel.inc(M_OVERLOADED_TICKS);
            }
            self.ftel.inc(M_PRICE_UPDATES);
            self.prices.apply_resource_step(self.r, grad)
        };
        for &t in &self.subscribers {
            outbox.send(
                Address::Controller(t),
                Message::Price { resource: self.slot, mu, congested: self.congested },
            );
        }
        self.ftel.add(M_MESSAGES_OUT, self.subscribers.len() as u64);
        self.ftel.maybe_report(now, Address::Resource(self.slot), outbox);
    }

    fn on_message(&mut self, now: f64, msg: Message, outbox: &mut Outbox) {
        self.ftel.inc(M_MESSAGES_IN);
        if self.on_membership(&msg, outbox) {
            return;
        }
        if self.on_command(&msg, outbox) {
            return;
        }
        match msg {
            Message::Latency { task, subtask, latency } => {
                // `task` is a slot; `hosted` is keyed by slot, so stale
                // messages from departed tasks simply miss.
                if self.dormant {
                    return;
                }
                if !latency.is_finite() || latency <= 0.0 {
                    // A non-positive latency would push the price gradient
                    // through `share(lat) → ∞`; refuse it at the boundary.
                    self.tel.values_rejected.inc();
                    self.ftel.inc(M_VALUE_REJECTIONS);
                    self.tel.events.emit(
                        TelemetryEvent::new(now, "value_rejected")
                            .with("agent", "resource")
                            .with("slot", self.slot)
                            .with("field", "latency"),
                    );
                    return;
                }
                if let Some(pos) = self.hosted.iter().position(|&k| k == (task, subtask)) {
                    self.latencies[pos] = latency;
                    self.last_heard = now;
                }
            }
            Message::AvailabilityUpdate { resource, availability, seq } => {
                if seq == 0 {
                    // Out-of-band management command (bypass path).
                    if resource == self.slot && !self.dormant {
                        self.apply_availability(now, availability);
                    }
                } else {
                    if resource == self.slot && seq > self.last_avail_seq && !self.dormant {
                        self.apply_availability(now, availability);
                        self.last_avail_seq = seq;
                    }
                    // Always ack, even duplicates — the ack may have been
                    // the lost message.
                    outbox.send(
                        Address::ControlPlane,
                        Message::AvailabilityAck {
                            resource,
                            seq,
                            from: Address::Resource(self.slot),
                        },
                    );
                }
            }
            _ => {}
        }
    }

    fn on_crash(&mut self, _now: f64) {
        // All algorithm state is volatile: the restarted agent re-learns
        // latencies from controller traffic and restarts its price from
        // the initial point.
        self.hosted.clear();
        self.latencies.clear();
        self.resync_from_problem();
        self.prices = PriceState::new(&self.problem, self.policy);
        self.last_heard = 0.0;
        self.congested = false;
        self.degraded = false;
        self.last_avail_seq = 0;
        self.last_cmd_seq = 0;
    }

    fn on_restart(&mut self, now: f64, _outbox: &mut Outbox) {
        // The topology store is durable configuration: a restarted agent
        // rejoins at the newest epoch, whatever it missed while down.
        if let Some(te) = self.topology.as_ref().and_then(|s| s.latest()) {
            if te.epoch > self.epoch {
                self.apply_epoch(&te);
            }
        }
        // Give the staleness TTL a fresh grace period.
        self.last_heard = now;
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The controller of one task (§4.2, "Latency Allocation").
///
/// Holds the latest resource prices received from the price agents,
/// updates its paths' prices locally, re-solves its latency allocation,
/// and sends the new latencies to the resources its subtasks run on.
///
/// Fault tolerance (all opt-in via [`RobustnessConfig`]): the controller
/// records when it last heard each relevant resource's price and degrades
/// to holding its last-known-good latencies once any of them exceeds the
/// staleness TTL; it periodically writes a [`ControllerCheckpoint`] to a
/// [`CheckpointStore`] and restores from it after a crash.
#[derive(Debug)]
pub struct TaskController {
    t: usize,
    /// Protocol slot of this task (== `t` until churn reorders dense
    /// indices).
    slot: usize,
    problem: Problem,
    policy: StepSizePolicy,
    prices: PriceState,
    congested: Vec<bool>,
    lats: Vec<f64>,
    settings: AllocationSettings,
    telemetry: SharedLats,
    robustness: RobustnessConfig,
    checkpoints: Option<CheckpointStore>,
    topology: Option<TopologyStore>,
    /// Applied topology epoch.
    epoch: u64,
    /// Departed (left or evicted): acknowledge control traffic, do
    /// nothing else.
    dormant: bool,
    /// `task_slots[dense task index] = slot` in the applied epoch.
    task_slots: Vec<usize>,
    /// `resource_slots[dense resource index] = slot` in the applied epoch.
    resource_slots: Vec<usize>,
    last_checkpoint: f64,
    /// Virtual time of the newest price heard, per (dense) resource.
    last_heard: Vec<f64>,
    /// Dense resource indices this task's subtasks actually use.
    used_resources: Vec<usize>,
    ticks: usize,
    degraded: bool,
    degraded_ticks: u64,
    /// Highest applied control-plane sequence, per resource slot
    /// (volatile).
    last_avail_seq: HashMap<usize, u64>,
    /// Highest supervisor-command sequence applied (volatile).
    last_cmd_seq: u64,
    /// Compiled single-task allocation kernel (lla-core's plan lowering),
    /// re-lowered whenever the problem or this controller's task changes.
    plan: TaskPlan,
    /// Σλ accumulator reused by the plan kernel every tick.
    lambda_scratch: Vec<f64>,
    /// Output double-buffer the kernel writes into, then swapped with
    /// `lats` — no per-tick matrix allocation.
    next_lats: Vec<f64>,
    /// Cached initial allocation in the centralized export shape; only
    /// this controller's row is overwritten per checkpoint.
    checkpoint_template: Vec<Vec<f64>>,
    tel: DistTelemetry,
    /// Per-agent fleet scope + shipping books (durable across crashes,
    /// like the checkpoint store — see [`AgentTelemetry`]).
    ftel: AgentTelemetry,
}

impl TaskController {
    /// Creates the controller for task `t`. Slot and dense index coincide
    /// at creation; [`with_membership`](Self::with_membership) overrides
    /// the slot for controllers joining a churned deployment.
    pub fn new(
        t: usize,
        problem: Problem,
        policy: StepSizePolicy,
        settings: AllocationSettings,
        telemetry: SharedLats,
    ) -> Self {
        let checkpoint_template = problem.initial_allocation();
        let lats = checkpoint_template[t].clone();
        let congested = vec![false; problem.resources().len()];
        let last_heard = vec![0.0; problem.resources().len()];
        let mut used_resources: Vec<usize> =
            problem.tasks()[t].subtasks().iter().map(|s| s.resource().index()).collect();
        used_resources.sort_unstable();
        used_resources.dedup();
        let prices = PriceState::new(&problem, policy);
        let task_slots = (0..problem.tasks().len()).collect();
        let resource_slots = (0..problem.resources().len()).collect();
        let plan = TaskPlan::lower(&problem, problem.tasks()[t].id(), &settings);
        let lambda_scratch = vec![0.0; plan.len()];
        let next_lats = vec![0.0; plan.len()];
        TaskController {
            t,
            slot: t,
            problem,
            policy,
            prices,
            congested,
            lats,
            settings,
            telemetry,
            robustness: RobustnessConfig::default(),
            checkpoints: None,
            topology: None,
            epoch: 0,
            dormant: false,
            task_slots,
            resource_slots,
            last_checkpoint: 0.0,
            last_heard,
            used_resources,
            ticks: 0,
            degraded: false,
            degraded_ticks: 0,
            last_avail_seq: HashMap::new(),
            last_cmd_seq: 0,
            plan,
            lambda_scratch,
            next_lats,
            checkpoint_template,
            tel: DistTelemetry::disabled(),
            ftel: AgentTelemetry::noop(),
        }
    }

    /// Sets the fault-tolerance configuration.
    pub fn with_robustness(mut self, robustness: RobustnessConfig) -> Self {
        self.robustness = robustness;
        self
    }

    /// Attaches shared telemetry handles (counters + event log).
    pub fn with_telemetry(mut self, tel: DistTelemetry) -> Self {
        self.tel = tel;
        self
    }

    /// Attaches this controller's fleet scope (scoped counters + optional
    /// report shipping).
    pub fn with_fleet(mut self, ftel: AgentTelemetry) -> Self {
        self.ftel = ftel;
        self
    }

    /// Read access to the fleet scope, e.g. to compare reports emitted
    /// against the collector's merge accounting in tests.
    pub fn fleet_telemetry(&self) -> &AgentTelemetry {
        &self.ftel
    }

    /// Attaches the shared topology store and fixes the controller's
    /// protocol slot. The controller adopts the slot assignment of
    /// `epoch` (already pushed to the store by the caller); membership
    /// messages for later epochs update it from there.
    pub fn with_membership(mut self, store: TopologyStore, slot: usize, epoch: u64) -> Self {
        self.slot = slot;
        self.epoch = epoch;
        if let Some(te) = store.at(epoch) {
            self.task_slots = te.task_slots.clone();
            self.resource_slots = te.resource_slots.clone();
        }
        self.topology = Some(store);
        self
    }

    /// Protocol slot of this controller.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Applied topology epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the task has departed and the controller only acknowledges
    /// control traffic.
    pub fn is_dormant(&self) -> bool {
        self.dormant
    }

    /// Attaches the stable store this controller checkpoints into (and
    /// restores from after a crash).
    pub fn with_checkpoints(mut self, store: CheckpointStore) -> Self {
        self.checkpoints = Some(store);
        self
    }

    /// The controller's current latency assignment.
    pub fn lats(&self) -> &[f64] {
        &self.lats
    }

    /// Whether the controller is currently holding its last-known-good
    /// latencies because some price went stale.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Ticks spent in degraded mode so far.
    pub fn degraded_ticks(&self) -> u64 {
        self.degraded_ticks
    }

    /// Adaptive step-size growth events recorded by this controller's
    /// price state (the supervisor's gamma-thrash evidence).
    pub fn gamma_doublings(&self) -> u64 {
        self.prices.gamma_doublings()
    }

    /// Captures the controller's algorithm state in the centralized
    /// optimizer's export format (rows of other tasks hold the initial
    /// allocation — this controller only owns its own row).
    pub fn export_state(&self) -> OptimizerState {
        let mut lats = self.checkpoint_template.clone();
        lats[self.t].copy_from_slice(&self.lats);
        OptimizerState::from_parts(self.prices.clone(), lats, self.ticks)
    }

    /// Restores algorithm state captured with
    /// [`export_state`](Self::export_state).
    pub fn import_state(&mut self, state: &OptimizerState) {
        self.prices = state.prices().clone();
        self.lats = state.lats()[self.t].clone();
        self.ticks = state.iteration();
    }

    /// Validates `ckpt` against the controller's applied topology epoch
    /// and the current problem shapes, then restores it.
    ///
    /// # Errors
    ///
    /// Returns a typed [`StateImportError`] — and leaves the controller
    /// untouched — when the checkpoint was captured under a different
    /// epoch or its matrices no longer fit the problem.
    pub fn try_restore(&mut self, ckpt: &ControllerCheckpoint) -> Result<(), StateImportError> {
        if ckpt.epoch != self.epoch {
            return Err(StateImportError::EpochMismatch {
                expected: self.epoch,
                found: ckpt.epoch,
            });
        }
        if let Some(tagged) = ckpt.state.epoch() {
            if tagged != self.epoch {
                return Err(StateImportError::EpochMismatch {
                    expected: self.epoch,
                    found: tagged,
                });
            }
        }
        let n_tasks = self.problem.tasks().len();
        if ckpt.state.lats().len() != n_tasks {
            return Err(StateImportError::TaskCountMismatch {
                expected: n_tasks,
                found: ckpt.state.lats().len(),
            });
        }
        if ckpt.state.lats()[self.t].len() != self.lats.len() {
            return Err(StateImportError::RowShapeMismatch {
                task: self.t,
                expected: self.lats.len(),
                found: ckpt.state.lats()[self.t].len(),
            });
        }
        let n_res = self.problem.resources().len();
        if ckpt.congested.len() != n_res {
            return Err(StateImportError::ResourceCountMismatch {
                expected: n_res,
                found: ckpt.congested.len(),
            });
        }
        self.import_state(&ckpt.state);
        self.congested = ckpt.congested.clone();
        Ok(())
    }

    /// Re-lowers the compiled task plan and rebuilds the checkpoint
    /// template wholesale. Epoch transitions replace the problem (and may
    /// rebind this controller's dense task index), so everything derived
    /// from it is rebuilt.
    fn rebuild_plan(&mut self) {
        let id = self.problem.tasks()[self.t].id();
        self.plan = TaskPlan::lower(&self.problem, id, &self.settings);
        self.lambda_scratch.resize(self.plan.len(), 0.0);
        self.next_lats.resize(self.plan.len(), 0.0);
        self.checkpoint_template = self.problem.initial_allocation();
    }

    /// Incremental follow-up to a single resource's availability change:
    /// `B_r` feeds the clamping boxes, so the compiled plan is re-lowered
    /// only when this controller's task actually runs on `r`, and only the
    /// checkpoint-template rows of tasks touching `r` are recomputed —
    /// O(affected), not O(problem), per update.
    fn on_availability_applied(&mut self, r: usize) {
        for ti in 0..self.problem.tasks().len() {
            let task = &self.problem.tasks()[ti];
            if task.subtasks().iter().any(|s| s.resource().index() == r) {
                self.checkpoint_template[ti] = self.problem.initial_task_allocation(task.id());
            }
        }
        if self.used_resources.binary_search(&r).is_ok() {
            let id = self.problem.tasks()[self.t].id();
            self.plan = TaskPlan::lower(&self.problem, id, &self.settings);
        }
    }

    /// Staleness of the oldest relevant price at virtual time `now`.
    fn staleness(&self, now: f64) -> f64 {
        self.used_resources.iter().map(|&r| now - self.last_heard[r]).fold(0.0, f64::max)
    }

    /// Dense index of the resource in `slot` under the applied epoch.
    fn resource_dense(&self, slot: usize) -> Option<usize> {
        self.resource_slots.iter().position(|&s| s == slot)
    }

    /// Adopts a newer topology epoch: rebind this controller's dense
    /// index, warm-carry surviving duals, and remap the per-resource
    /// congestion/staleness books. A departed slot sends the controller
    /// dormant.
    fn apply_epoch(&mut self, now: f64, te: &TopologyEpoch) {
        let report = epoch_report(&self.task_slots, &self.resource_slots, te);
        self.epoch = te.epoch;
        let Some(new_t) = te.task_slots.iter().position(|&s| s == self.slot) else {
            self.dormant = true;
            return;
        };
        self.tel.warm_start_hits.inc();
        self.prices = self.prices.remap(&te.problem, &report);
        let n_res = te.problem.resources().len();
        let mut congested = vec![false; n_res];
        // Newcomer resources start with a fresh staleness grace period.
        let mut last_heard = vec![now; n_res];
        for (old, m) in report.resource_map.iter().enumerate() {
            if let Some(new) = m {
                congested[*new] = self.congested[old];
                last_heard[*new] = self.last_heard[old];
            }
        }
        self.congested = congested;
        self.last_heard = last_heard;
        self.problem = te.problem.clone();
        self.t = new_t;
        self.task_slots = te.task_slots.clone();
        self.resource_slots = te.resource_slots.clone();
        // The task's own subtask row never changes shape across epochs
        // (drain only rebinds resources), so the warm `lats` stay valid.
        let mut used: Vec<usize> =
            self.problem.tasks()[self.t].subtasks().iter().map(|s| s.resource().index()).collect();
        used.sort_unstable();
        used.dedup();
        self.used_resources = used;
        self.rebuild_plan();
    }

    /// Handles a membership message; returns `true` if it was one.
    fn on_membership(&mut self, now: f64, msg: &Message, outbox: &mut Outbox) -> bool {
        let Some((_, epoch, seq)) = msg.membership_parts() else {
            return false;
        };
        if epoch > self.epoch {
            if let Some(te) = self.topology.as_ref().and_then(|s| s.at(epoch)) {
                let rehab =
                    self.topology.as_ref().is_some_and(|s| s.evicted_between(self.epoch, epoch));
                self.apply_epoch(now, &te);
                if rehab && !self.dormant {
                    // An eviction epoch means sustained overload poisoned
                    // the duals — restart the prices (see MembershipCause).
                    self.prices = PriceState::new(&self.problem, self.policy);
                }
            }
        }
        if seq > 0 {
            outbox.send(
                Address::ControlPlane,
                Message::MembershipAck { epoch, seq, from: Address::Controller(self.slot) },
            );
        }
        true
    }

    /// Handles a supervisor command; returns `true` if it was one.
    /// Sequenced commands (`seq > 0`) are deduplicated and always acked;
    /// `seq == 0` is the out-of-band bypass path.
    fn on_command(&mut self, msg: &Message, outbox: &mut Outbox) -> bool {
        let Some(seq) = msg.command_seq() else {
            return false;
        };
        let fresh = seq == 0 || seq > self.last_cmd_seq;
        if seq > 0 {
            if fresh {
                self.last_cmd_seq = seq;
            }
            outbox.send(
                Address::ControlPlane,
                Message::CommandAck { seq, from: Address::Controller(self.slot) },
            );
        }
        if fresh && !self.dormant {
            match *msg {
                Message::GammaCalm { max_multiple, .. } => self.prices.calm_gammas(max_multiple),
                Message::DualResync { .. } => {
                    // Re-send the current latencies so stalled resources'
                    // staleness clocks refresh without waiting for the
                    // next tick phase.
                    let task = &self.problem.tasks()[self.t];
                    for (s, sub) in task.subtasks().iter().enumerate() {
                        outbox.send(
                            Address::Resource(self.resource_slots[sub.resource().index()]),
                            Message::Latency { task: self.slot, subtask: s, latency: self.lats[s] },
                        );
                    }
                }
                _ => unreachable!("command_seq() only matches supervisor commands"),
            }
        }
        true
    }
}

impl Actor for TaskController {
    fn on_tick(&mut self, now: f64, outbox: &mut Outbox) {
        if self.dormant {
            // Dormant controllers still report (empty deltas) so the
            // fleet watermark keeps advancing.
            self.ftel.maybe_report(now, Address::Controller(self.slot), outbox);
            return;
        }
        self.ticks += 1;
        self.ftel.inc(M_TICKS);
        let was_degraded = self.degraded;
        self.degraded = self.staleness(now) > self.robustness.staleness_ttl;
        if self.degraded != was_degraded {
            if self.degraded {
                self.tel.staleness_freezes.inc();
                self.tel.events.emit(
                    TelemetryEvent::new(now, "degraded_enter")
                        .with("agent", "controller")
                        .with("slot", self.slot),
                );
            } else {
                self.tel.events.emit(
                    TelemetryEvent::new(now, "degraded_exit")
                        .with("agent", "controller")
                        .with("slot", self.slot),
                );
            }
        }
        if self.degraded {
            // Graceful degradation: stale prices would make the gradient
            // steps integrate noise, so freeze both price layers and hold
            // the last-known-good latencies (the resources keep running
            // with them). Recovery is automatic: fresh prices reset the
            // staleness clock.
            self.degraded_ticks += 1;
            self.tel.degraded_ticks.inc();
            self.ftel.inc(M_DEGRADED_TICKS);
        } else {
            // Path price computation from the *previous* allocation —
            // matching the centralized iteration order, where prices
            // computed at the end of step k−1 feed the allocation of step
            // k. The compiled plan replays the same expressions over flat
            // arrays.
            let ct = self.plan.critical_time();
            for p in 0..self.plan.num_paths() {
                let grad = 1.0 - self.plan.path_latency(p, &self.lats) / ct;
                let traverses_congested = self.plan.path_traverses(p, &self.congested);
                self.prices.apply_path_step(self.t, p, grad, traverses_congested);
            }

            // Latency allocation at the stored resource prices, into the
            // reusable double buffer.
            self.plan.allocate_into(
                self.t,
                &self.prices,
                &self.lats,
                &mut self.lambda_scratch,
                &mut self.next_lats,
            );
            std::mem::swap(&mut self.lats, &mut self.next_lats);
            self.telemetry.lock()[self.slot].clone_from(&self.lats);

            let task = &self.problem.tasks()[self.t];
            for (s, sub) in task.subtasks().iter().enumerate() {
                outbox.send(
                    Address::Resource(self.resource_slots[sub.resource().index()]),
                    Message::Latency { task: self.slot, subtask: s, latency: self.lats[s] },
                );
            }
            self.ftel.inc(M_LATENCY_UPDATES);
            self.ftel.add(M_MESSAGES_OUT, task.subtasks().len() as u64);
        }

        if let Some(store) = &self.checkpoints {
            if now - self.last_checkpoint >= self.robustness.checkpoint_interval {
                store.save(
                    Address::Controller(self.slot),
                    ControllerCheckpoint {
                        state: self.export_state().with_epoch(self.epoch),
                        congested: self.congested.clone(),
                        at: now,
                        epoch: self.epoch,
                    },
                );
                self.last_checkpoint = now;
                self.tel.checkpoint_saves.inc();
                self.ftel.inc(M_CHECKPOINTS);
            }
        }
        self.ftel.maybe_report(now, Address::Controller(self.slot), outbox);
    }

    fn on_message(&mut self, now: f64, msg: Message, outbox: &mut Outbox) {
        self.ftel.inc(M_MESSAGES_IN);
        if self.on_membership(now, &msg, outbox) {
            return;
        }
        if self.on_command(&msg, outbox) {
            return;
        }
        match msg {
            Message::Price { resource, mu, congested } => {
                // `resource` is a slot; a price from a resource this
                // epoch no longer knows (e.g. just retired) misses.
                if self.dormant {
                    return;
                }
                if !mu.is_finite() || mu < 0.0 {
                    // A negative μ_r would feed `sqrt(μ·demand)` a negative
                    // argument and NaN the allocation; non-finite is the
                    // same poison one step later.
                    self.tel.values_rejected.inc();
                    self.ftel.inc(M_VALUE_REJECTIONS);
                    self.tel.events.emit(
                        TelemetryEvent::new(now, "value_rejected")
                            .with("agent", "controller")
                            .with("slot", self.slot)
                            .with("field", "mu"),
                    );
                    return;
                }
                if let Some(r) = self.resource_dense(resource) {
                    self.prices.set_mu(r, mu);
                    self.congested[r] = congested;
                    self.last_heard[r] = now;
                }
            }
            Message::AvailabilityUpdate { resource, availability, seq } => {
                // Controllers use B_r in their clamping bounds.
                let apply = if seq == 0 {
                    true
                } else {
                    let seen = self.last_avail_seq.entry(resource).or_insert(0);
                    let fresh = seq > *seen;
                    if fresh {
                        *seen = seq;
                    }
                    outbox.send(
                        Address::ControlPlane,
                        Message::AvailabilityAck {
                            resource,
                            seq,
                            from: Address::Controller(self.slot),
                        },
                    );
                    fresh
                };
                if apply && !self.dormant {
                    if let Some(r) = self.resource_dense(resource) {
                        let id = self.problem.resources()[r].id();
                        if self.problem.set_resource_availability(id, availability).is_ok() {
                            self.on_availability_applied(r);
                        } else {
                            self.tel.values_rejected.inc();
                            self.ftel.inc(M_VALUE_REJECTIONS);
                            self.tel.events.emit(
                                TelemetryEvent::new(now, "value_rejected")
                                    .with("agent", "controller")
                                    .with("slot", self.slot)
                                    .with("field", "availability"),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_crash(&mut self, _now: f64) {
        // Volatile state is gone; the problem spec is configuration and
        // survives. Start from the initial point — on_restart may replace
        // this with a checkpoint.
        self.prices = PriceState::new(&self.problem, self.policy);
        self.lats = self.problem.initial_task_allocation(self.problem.tasks()[self.t].id());
        self.congested = vec![false; self.problem.resources().len()];
        self.last_heard = vec![0.0; self.problem.resources().len()];
        self.ticks = 0;
        self.degraded = false;
        self.last_avail_seq.clear();
        self.last_cmd_seq = 0;
    }

    fn on_restart(&mut self, now: f64, _outbox: &mut Outbox) {
        // The topology store is durable configuration: rejoin at the
        // newest epoch before considering a checkpoint.
        let mut rehab = false;
        if let Some(te) = self.topology.as_ref().and_then(|s| s.latest()) {
            if te.epoch > self.epoch {
                rehab =
                    self.topology.as_ref().is_some_and(|s| s.evicted_between(self.epoch, te.epoch));
                self.apply_epoch(now, &te);
            }
        }
        // A checkpoint written before an eviction epoch holds poisoned
        // duals (see MembershipCause) — skip it; the crash already reset
        // the prices to the initial point.
        if rehab {
            self.last_heard = vec![now; self.problem.resources().len()];
            return;
        }
        if let Some(ckpt) =
            self.checkpoints.as_ref().and_then(|s| s.load(Address::Controller(self.slot)))
        {
            // A checkpoint taken under an older topology holds duals
            // shaped for a different problem; restoring it would corrupt
            // the dual state. `try_restore` validates the epoch tag and
            // every matrix shape before touching anything.
            match self.try_restore(&ckpt) {
                Ok(()) => {
                    self.last_checkpoint = now;
                    self.tel.checkpoint_restores.inc();
                    self.tel.events.emit(
                        TelemetryEvent::new(now, "checkpoint_restore")
                            .with("slot", self.slot)
                            .with("checkpoint_at", ckpt.at),
                    );
                }
                Err(e) => {
                    self.tel.checkpoint_rejections.inc();
                    self.tel.events.emit(
                        TelemetryEvent::new(now, "checkpoint_rejected")
                            .with("slot", self.slot)
                            .with("checkpoint_at", ckpt.at)
                            .with("reason", e.to_string()),
                    );
                }
            }
        }
        // Fresh staleness grace period either way.
        self.last_heard = vec![now; self.problem.resources().len()];
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The management-plane agent that disseminates availability changes
/// *reliably* over the same lossy network as data-plane traffic.
///
/// An operator submits a command as an [`AvailabilityUpdate`] with
/// `seq == 0`; the control plane assigns the next sequence number and
/// fans the update out to the affected resource agent and every task
/// controller, retransmitting on every tick until each recipient has
/// acknowledged the sequence. Recipients deduplicate by sequence, so
/// at-least-once delivery composes to exactly-once application.
///
/// [`AvailabilityUpdate`]: Message::AvailabilityUpdate
#[derive(Debug)]
pub struct ControlPlaneAgent {
    /// Live controller slots (dormant ones are pruned as they depart).
    controller_slots: Vec<usize>,
    /// Live resource slots.
    resource_slots: Vec<usize>,
    next_seq: u64,
    pending: Vec<Pending>,
    pending_membership: Vec<Pending>,
    pending_commands: Vec<Pending>,
    robustness: RobustnessConfig,
    tel: DistTelemetry,
}

/// One reliably-disseminated message awaiting acknowledgements, with its
/// retransmit-policy books (attempt count and backoff cooldown).
#[derive(Debug)]
struct Pending {
    /// The sequenced message being disseminated.
    msg: Message,
    awaiting: Vec<Address>,
    /// Retransmissions performed so far (the initial fan-out is free).
    attempts: u64,
    /// Retransmit ticks to skip before the next attempt (exponential
    /// backoff, capped by [`RobustnessConfig::retransmit_backoff_cap`]).
    cooldown: u64,
}

impl Pending {
    fn new(msg: Message, awaiting: Vec<Address>) -> Self {
        Pending { msg, awaiting, attempts: 0, cooldown: 0 }
    }

    /// The control-plane sequence this entry is waiting on acks for.
    fn seq(&self) -> u64 {
        match self.msg {
            Message::AvailabilityUpdate { seq, .. } => seq,
            _ => self
                .msg
                .membership_parts()
                .map(|(_, _, s)| s)
                .or_else(|| self.msg.command_seq())
                .expect("pending entries carry sequenced messages"),
        }
    }
}

impl ControlPlaneAgent {
    /// Creates the control plane for a deployment with `n_tasks` task
    /// controllers in slots `0..n_tasks` and `n_resources` resource agents
    /// in slots `0..n_resources`.
    pub fn new(n_tasks: usize, n_resources: usize) -> Self {
        ControlPlaneAgent {
            controller_slots: (0..n_tasks).collect(),
            resource_slots: (0..n_resources).collect(),
            next_seq: 0,
            pending: Vec::new(),
            pending_membership: Vec::new(),
            pending_commands: Vec::new(),
            robustness: RobustnessConfig::default(),
            tel: DistTelemetry::disabled(),
        }
    }

    /// Attaches shared telemetry handles (counters + event log).
    pub fn with_telemetry(mut self, tel: DistTelemetry) -> Self {
        self.tel = tel;
        self
    }

    /// Sets the fault-tolerance configuration (retransmit backoff cap
    /// and give-up budget).
    pub fn with_robustness(mut self, robustness: RobustnessConfig) -> Self {
        self.robustness = robustness;
        self
    }

    /// Updates not yet acknowledged by every recipient.
    pub fn pending_updates(&self) -> usize {
        self.pending.len()
    }

    /// Membership changes not yet acknowledged by every recipient.
    pub fn pending_membership(&self) -> usize {
        self.pending_membership.len()
    }

    /// Supervisor commands not yet acknowledged by every recipient.
    pub fn pending_commands(&self) -> usize {
        self.pending_commands.len()
    }

    /// Sequence numbers assigned so far.
    pub fn sequences_assigned(&self) -> u64 {
        self.next_seq
    }

    /// Controller slots the control plane currently fans out to.
    pub fn controller_slots(&self) -> &[usize] {
        &self.controller_slots
    }

    /// Resource slots the control plane currently fans out to.
    pub fn resource_slots(&self) -> &[usize] {
        &self.resource_slots
    }

    fn recipients(&self, resource: usize) -> Vec<Address> {
        let mut v = Vec::with_capacity(self.controller_slots.len() + 1);
        v.push(Address::Resource(resource));
        v.extend(self.controller_slots.iter().copied().map(Address::Controller));
        v
    }

    /// Everyone who must learn about a membership change: all live
    /// resource agents and controllers, *including* the departing agent
    /// (which needs the message to go dormant) and the joining one (which
    /// was created at the new epoch already and simply re-acks).
    fn membership_recipients(&self) -> Vec<Address> {
        let mut v: Vec<Address> =
            self.resource_slots.iter().copied().map(Address::Resource).collect();
        v.extend(self.controller_slots.iter().copied().map(Address::Controller));
        v
    }

    /// Folds an operator membership command into the live-slot books,
    /// *before* computing recipients (joins) or *after* (departures, so
    /// the departing agent still hears the news).
    fn note_membership_pre(&mut self, msg: &Message) {
        match *msg {
            Message::TaskJoin { slot, .. } if !self.controller_slots.contains(&slot) => {
                self.controller_slots.push(slot);
            }
            Message::ResourceJoin { slot, .. } if !self.resource_slots.contains(&slot) => {
                self.resource_slots.push(slot);
            }
            _ => {}
        }
    }

    fn note_membership_post(&mut self, msg: &Message) {
        match *msg {
            Message::TaskLeave { slot, .. } | Message::Evict { slot, .. } => {
                self.controller_slots.retain(|&s| s != slot);
            }
            Message::ResourceRetire { slot, .. } => {
                self.resource_slots.retain(|&s| s != slot);
            }
            _ => {}
        }
    }
}

impl ControlPlaneAgent {
    /// One retransmit tick over one pending queue: give up on entries
    /// whose budget is spent (telemetry event instead of resending
    /// forever), honor each survivor's backoff cooldown, and resend to
    /// every still-silent recipient otherwise.
    fn retransmit_queue(queue: &mut Vec<Pending>, policy: &RetransmitPolicy, outbox: &mut Outbox) {
        queue.retain_mut(|p| {
            if p.attempts >= policy.max_retransmits {
                policy.tel.retransmit_give_ups.inc();
                policy.tel.events.emit(
                    TelemetryEvent::new(policy.now, "retransmit_give_up")
                        .with("kind", p.msg.kind())
                        .with("seq", p.seq())
                        .with("unacked", p.awaiting.len()),
                );
                return false;
            }
            if p.cooldown > 0 {
                p.cooldown -= 1;
                return true;
            }
            for &addr in &p.awaiting {
                policy.tel.retransmits.inc();
                outbox.send(addr, p.msg.clone());
            }
            p.attempts += 1;
            p.cooldown = (1u64 << p.attempts.min(63)).min(policy.cap).saturating_sub(1);
            true
        });
    }
}

/// The per-tick retransmit parameters [`ControlPlaneAgent::on_tick`]
/// threads through its queues.
struct RetransmitPolicy<'a> {
    now: f64,
    cap: u64,
    max_retransmits: u64,
    tel: &'a DistTelemetry,
}

impl Actor for ControlPlaneAgent {
    fn on_tick(&mut self, now: f64, outbox: &mut Outbox) {
        let policy = RetransmitPolicy {
            now,
            cap: u64::from(self.robustness.retransmit_backoff_cap.max(1)),
            max_retransmits: self.robustness.max_retransmits,
            tel: &self.tel,
        };
        Self::retransmit_queue(&mut self.pending, &policy, outbox);
        Self::retransmit_queue(&mut self.pending_membership, &policy, outbox);
        Self::retransmit_queue(&mut self.pending_commands, &policy, outbox);
    }

    fn on_message(&mut self, _now: f64, msg: Message, outbox: &mut Outbox) {
        if let Some((_, _, 0)) = msg.membership_parts() {
            // Operator-submitted membership command: assign the next
            // sequence and disseminate reliably, exactly like
            // availability updates.
            self.next_seq += 1;
            let sequenced = msg.with_membership_seq(self.next_seq);
            self.note_membership_pre(&sequenced);
            let awaiting = self.membership_recipients();
            for &addr in &awaiting {
                outbox.send(addr, sequenced.clone());
            }
            self.note_membership_post(&sequenced);
            self.pending_membership.push(Pending::new(sequenced, awaiting));
            return;
        }
        if let Some(0) = msg.command_seq() {
            // Supervisor-submitted remediation command: same reliable
            // dissemination, fanned out to every live agent.
            self.next_seq += 1;
            let sequenced = msg.with_command_seq(self.next_seq);
            let awaiting = self.membership_recipients();
            for &addr in &awaiting {
                outbox.send(addr, sequenced.clone());
            }
            self.pending_commands.push(Pending::new(sequenced, awaiting));
            return;
        }
        match msg {
            Message::AvailabilityUpdate { resource, availability, seq: 0 } => {
                self.next_seq += 1;
                let seq = self.next_seq;
                let awaiting = self.recipients(resource);
                let sequenced = Message::AvailabilityUpdate { resource, availability, seq };
                for &addr in &awaiting {
                    outbox.send(addr, sequenced.clone());
                }
                self.pending.push(Pending::new(sequenced, awaiting));
            }
            Message::AvailabilityAck { seq, from, .. } => {
                for p in &mut self.pending {
                    if p.seq() == seq {
                        p.awaiting.retain(|&a| a != from);
                    }
                }
                self.pending.retain(|p| !p.awaiting.is_empty());
            }
            Message::MembershipAck { seq, from, .. } => {
                for p in &mut self.pending_membership {
                    if p.seq() == seq {
                        p.awaiting.retain(|&a| a != from);
                    }
                }
                self.pending_membership.retain(|p| !p.awaiting.is_empty());
            }
            Message::CommandAck { seq, from } => {
                for p in &mut self.pending_commands {
                    if p.seq() == seq {
                        p.awaiting.retain(|&a| a != from);
                    }
                }
                self.pending_commands.retain(|p| !p.awaiting.is_empty());
            }
            _ => {}
        }
    }

    fn on_crash(&mut self, _now: f64) {
        // Pending retransmissions are volatile. Sequence numbers must stay
        // monotone across restarts; a real control plane would persist the
        // counter, which the round-up on restart emulates.
        self.pending.clear();
        self.pending_membership.clear();
        self.pending_commands.clear();
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lla_core::{Resource, ResourceId, ResourceKind, TaskBuilder, TaskId};

    fn problem() -> Problem {
        let resources = vec![
            Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
            Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
        ];
        let mut b = TaskBuilder::new("t");
        let a = b.subtask("a", ResourceId::new(0), 2.0);
        let c = b.subtask("b", ResourceId::new(1), 3.0);
        b.edge(a, c).unwrap();
        b.critical_time(30.0);
        Problem::new(resources, vec![b.build(TaskId::new(0)).unwrap()]).unwrap()
    }

    #[test]
    fn resource_agent_tracks_latencies_and_usage() {
        let p = problem();
        let mut agent = ResourceAgent::new(0, p, StepSizePolicy::fixed(1.0));
        // Initial allocation: 15ms each => usage = 3/15 = 0.2.
        assert!((agent.usage() - 0.2).abs() < 1e-12);
        let mut outbox = Outbox::default();
        agent.on_message(0.0, Message::Latency { task: 0, subtask: 0, latency: 3.0 }, &mut outbox);
        assert!((agent.usage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resource_agent_broadcasts_price_on_tick() {
        let p = problem();
        let mut agent = ResourceAgent::new(0, p, StepSizePolicy::fixed(1.0));
        let mut outbox = Outbox::default();
        agent.on_message(0.0, Message::Latency { task: 0, subtask: 0, latency: 1.0 }, &mut outbox);
        agent.on_tick(0.0, &mut outbox);
        assert_eq!(outbox.len(), 1, "one subscriber");
        assert!(agent.mu() > 0.0, "congestion must raise the price");
    }

    #[test]
    fn controller_allocates_and_reports() {
        let p = problem();
        let telemetry: SharedLats = Arc::new(Mutex::new(p.initial_allocation()));
        let mut ctl = TaskController::new(
            0,
            p.clone(),
            StepSizePolicy::fixed(1.0),
            AllocationSettings { throughput_floor: false, ..Default::default() },
            Arc::clone(&telemetry),
        );
        let mut outbox = Outbox::default();
        ctl.on_message(0.0, Message::Price { resource: 0, mu: 9.0, congested: false }, &mut outbox);
        ctl.on_message(
            0.0,
            Message::Price { resource: 1, mu: 16.0, congested: false },
            &mut outbox,
        );
        ctl.on_tick(0.0, &mut outbox);
        // One latency message per subtask.
        assert_eq!(outbox.len(), 2);
        // lat = sqrt(mu * demand): sqrt(27) and sqrt(64).
        let lats = telemetry.lock()[0].clone();
        assert!((lats[0] - 27f64.sqrt()).abs() < 1e-9);
        assert!((lats[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn controller_degrades_on_stale_prices_and_recovers() {
        let p = problem();
        let telemetry: SharedLats = Arc::new(Mutex::new(p.initial_allocation()));
        let mut ctl = TaskController::new(
            0,
            p,
            StepSizePolicy::fixed(1.0),
            AllocationSettings { throughput_floor: false, ..Default::default() },
            telemetry,
        )
        .with_robustness(RobustnessConfig { staleness_ttl: 20.0, ..Default::default() });
        let mut outbox = Outbox::default();
        ctl.on_message(0.0, Message::Price { resource: 0, mu: 9.0, congested: false }, &mut outbox);
        ctl.on_message(
            0.0,
            Message::Price { resource: 1, mu: 16.0, congested: false },
            &mut outbox,
        );
        ctl.on_tick(10.0, &mut outbox);
        assert!(!ctl.is_degraded());
        let held = ctl.lats().to_vec();
        // No prices for 30 ms > TTL: hold, send nothing.
        let before = outbox.len();
        ctl.on_tick(40.0, &mut outbox);
        assert!(ctl.is_degraded());
        assert_eq!(ctl.degraded_ticks(), 1);
        assert_eq!(outbox.len(), before, "degraded tick must not send");
        assert_eq!(ctl.lats(), held.as_slice(), "degraded tick must hold latencies");
        // Fresh prices end degradation.
        ctl.on_message(
            41.0,
            Message::Price { resource: 0, mu: 9.0, congested: false },
            &mut outbox,
        );
        ctl.on_message(
            41.0,
            Message::Price { resource: 1, mu: 16.0, congested: false },
            &mut outbox,
        );
        ctl.on_tick(42.0, &mut outbox);
        assert!(!ctl.is_degraded());
    }

    #[test]
    fn controller_checkpoints_and_restores_after_crash() {
        let p = problem();
        let telemetry: SharedLats = Arc::new(Mutex::new(p.initial_allocation()));
        let store = CheckpointStore::new();
        let mut ctl = TaskController::new(
            0,
            p,
            StepSizePolicy::fixed(1.0),
            AllocationSettings { throughput_floor: false, ..Default::default() },
            telemetry,
        )
        .with_robustness(RobustnessConfig { checkpoint_interval: 5.0, ..Default::default() })
        .with_checkpoints(store.clone());
        let mut outbox = Outbox::default();
        ctl.on_message(0.0, Message::Price { resource: 0, mu: 9.0, congested: false }, &mut outbox);
        ctl.on_message(
            0.0,
            Message::Price { resource: 1, mu: 16.0, congested: false },
            &mut outbox,
        );
        ctl.on_tick(6.0, &mut outbox);
        assert_eq!(store.len(), 1, "checkpoint written");
        let converged = ctl.lats().to_vec();

        ctl.on_crash(7.0);
        assert_ne!(ctl.lats(), converged.as_slice(), "crash wipes volatile state");
        ctl.on_restart(8.0, &mut outbox);
        assert_eq!(ctl.lats(), converged.as_slice(), "restart restores the checkpoint");
    }

    #[test]
    fn resource_agent_dedupes_by_sequence_and_acks() {
        let p = problem();
        let mut agent = ResourceAgent::new(0, p, StepSizePolicy::fixed(1.0));
        let mut outbox = Outbox::default();
        let update = Message::AvailabilityUpdate { resource: 0, availability: 0.5, seq: 3 };
        agent.on_message(0.0, update.clone(), &mut outbox);
        agent.on_message(1.0, update, &mut outbox);
        // A *lower* sequence must not roll availability back.
        agent.on_message(
            2.0,
            Message::AvailabilityUpdate { resource: 0, availability: 0.9, seq: 2 },
            &mut outbox,
        );
        let msgs = outbox.into_messages();
        assert_eq!(msgs.len(), 3, "every sequenced update is acked, even duplicates");
        assert!(msgs.iter().all(|(to, m)| *to == Address::ControlPlane
            && matches!(m, Message::AvailabilityAck { from: Address::Resource(0), .. })));
    }

    #[test]
    fn control_plane_retransmits_until_acked() {
        let mut cp = ControlPlaneAgent::new(2, 2);
        let mut outbox = Outbox::default();
        cp.on_message(
            0.0,
            Message::AvailabilityUpdate { resource: 1, availability: 0.5, seq: 0 },
            &mut outbox,
        );
        // Fan-out to resource 1 + both controllers.
        assert_eq!(outbox.len(), 3);
        assert_eq!(cp.pending_updates(), 1);
        let sent = outbox.into_messages();
        assert!(sent
            .iter()
            .all(|(_, m)| *m
                == Message::AvailabilityUpdate { resource: 1, availability: 0.5, seq: 1 }));

        // Two of three ack: retransmit only to the silent one.
        for from in [Address::Resource(1), Address::Controller(0)] {
            let mut ob = Outbox::default();
            cp.on_message(1.0, Message::AvailabilityAck { resource: 1, seq: 1, from }, &mut ob);
        }
        let mut ob = Outbox::default();
        cp.on_tick(2.0, &mut ob);
        let retries = ob.into_messages();
        assert_eq!(retries.len(), 1);
        assert_eq!(retries[0].0, Address::Controller(1));

        // Final ack clears the pending set; ticks go quiet.
        let mut ob = Outbox::default();
        cp.on_message(
            3.0,
            Message::AvailabilityAck { resource: 1, seq: 1, from: Address::Controller(1) },
            &mut ob,
        );
        assert_eq!(cp.pending_updates(), 0);
        let mut ob = Outbox::default();
        cp.on_tick(4.0, &mut ob);
        assert!(ob.is_empty(), "an idle control plane is silent");
    }

    #[test]
    fn control_plane_backs_off_exponentially_and_gives_up() {
        use lla_telemetry::{EventLog, MetricsRegistry};
        let registry = MetricsRegistry::new();
        let tel = DistTelemetry::new(&registry, EventLog::recording());
        let mut cp = ControlPlaneAgent::new(2, 2)
            .with_robustness(RobustnessConfig {
                retransmit_backoff_cap: 4,
                max_retransmits: 3,
                ..Default::default()
            })
            .with_telemetry(tel.clone());
        let mut outbox = Outbox::default();
        cp.on_message(
            0.0,
            Message::AvailabilityUpdate { resource: 0, availability: 0.5, seq: 0 },
            &mut outbox,
        );
        assert_eq!(outbox.len(), 3, "initial fan-out is free");

        // Nobody ever acks. The wait after attempt n is min(2^n, cap) - 1
        // skipped ticks: attempt 1 then 1 skip, attempts 2 and 3 then 3
        // skips each, then the budget (3) is spent and the entry drops.
        let mut sends_per_tick = Vec::new();
        for tick in 1..=11 {
            let mut ob = Outbox::default();
            cp.on_tick(f64::from(tick), &mut ob);
            sends_per_tick.push(ob.len());
        }
        assert_eq!(sends_per_tick, vec![3, 0, 3, 0, 0, 0, 3, 0, 0, 0, 0]);
        assert_eq!(cp.pending_updates(), 0, "give-up drops the entry");
        assert_eq!(tel.retransmit_give_ups.get(), 1);
        assert_eq!(tel.retransmits.get(), 9, "three attempts to three silent recipients");
        let events = tel.events.snapshot();
        let give_up = events
            .iter()
            .find(|e| e.kind == "retransmit_give_up")
            .expect("give-up emits a telemetry event");
        assert_eq!(give_up.field("unacked").map(ToString::to_string), Some("3".to_string()));

        // The default config is the legacy behavior: every tick, forever.
        let mut legacy = ControlPlaneAgent::new(2, 2);
        let mut ob = Outbox::default();
        legacy.on_message(
            0.0,
            Message::AvailabilityUpdate { resource: 0, availability: 0.5, seq: 0 },
            &mut ob,
        );
        for tick in 1..=50 {
            let mut ob = Outbox::default();
            legacy.on_tick(f64::from(tick), &mut ob);
            assert_eq!(ob.len(), 3, "defaults retransmit on every tick");
        }
        assert_eq!(legacy.pending_updates(), 1, "defaults never give up");
    }

    #[test]
    fn resource_agent_dedupes_commands_and_acks_stale_ones() {
        let p = problem();
        let mut agent = ResourceAgent::new(0, p, StepSizePolicy::fixed(1.0));
        let mut outbox = Outbox::default();
        agent.on_message(0.0, Message::GammaCalm { max_multiple: 8.0, seq: 5 }, &mut outbox);
        // A stale (lower-seq) command is acked — the original ack may have
        // been lost — but must not be applied: no price re-announcement.
        agent.on_message(1.0, Message::DualResync { seq: 4 }, &mut outbox);
        let msgs = outbox.into_messages();
        assert_eq!(msgs.len(), 2, "both commands acked, stale resync not applied");
        assert!(msgs.iter().all(|(to, m)| *to == Address::ControlPlane
            && matches!(m, Message::CommandAck { from: Address::Resource(0), .. })));

        // A fresh resync is acked *and* re-announces the price to the
        // subscribed controller immediately.
        let mut outbox = Outbox::default();
        agent.on_message(2.0, Message::DualResync { seq: 6 }, &mut outbox);
        let msgs = outbox.into_messages();
        assert_eq!(msgs.len(), 2);
        assert!(msgs.iter().any(|(to, m)| *to == Address::ControlPlane
            && matches!(m, Message::CommandAck { seq: 6, .. })));
        assert!(msgs.iter().any(|(to, m)| *to == Address::Controller(0)
            && matches!(m, Message::Price { resource: 0, .. })));
    }

    #[test]
    fn controller_restore_rejects_mismatched_checkpoints_with_typed_errors() {
        let p = problem();
        let telemetry: SharedLats = Arc::new(Mutex::new(p.initial_allocation()));
        let mut ctl = TaskController::new(
            0,
            p,
            StepSizePolicy::fixed(1.0),
            AllocationSettings { throughput_floor: false, ..Default::default() },
            telemetry,
        );
        let mut outbox = Outbox::default();
        ctl.on_message(0.0, Message::Price { resource: 0, mu: 9.0, congested: false }, &mut outbox);
        ctl.on_message(
            0.0,
            Message::Price { resource: 1, mu: 16.0, congested: false },
            &mut outbox,
        );
        ctl.on_tick(0.0, &mut outbox);
        let good = ControllerCheckpoint {
            state: ctl.export_state(),
            congested: vec![false, false],
            at: 0.0,
            epoch: ctl.epoch(),
        };

        // Epoch mismatch: a checkpoint from an older topology must be
        // rejected without touching the controller.
        let before = ctl.lats().to_vec();
        let stale = ControllerCheckpoint { epoch: good.epoch + 1, ..good.clone() };
        match ctl.try_restore(&stale) {
            Err(StateImportError::EpochMismatch { expected, found }) => {
                assert_eq!(expected, good.epoch);
                assert_eq!(found, good.epoch + 1);
            }
            other => panic!("expected EpochMismatch, got {other:?}"),
        }
        assert_eq!(ctl.lats(), before.as_slice(), "rejected restore leaves state untouched");

        // Congestion vector shaped for a different resource set.
        let misshapen = ControllerCheckpoint { congested: vec![false], ..good.clone() };
        assert!(matches!(
            ctl.try_restore(&misshapen),
            Err(StateImportError::ResourceCountMismatch { expected: 2, found: 1 })
        ));

        // The matching checkpoint restores cleanly.
        assert!(ctl.try_restore(&good).is_ok());
    }
}
