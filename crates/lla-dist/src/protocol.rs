//! The message protocol between task controllers and resource agents.
//!
//! LLA's distributed structure (§4.1): each *resource* computes its own
//! price `μ_r` and sends it to the controllers of tasks with subtasks on
//! it; each *task controller* computes path prices locally and sends newly
//! allocated latencies to the resources where its subtasks run.
//!
//! Control-plane traffic (availability changes) travels over the same
//! lossy network as data-plane traffic, made reliable by sequence numbers
//! and retransmit-until-ack (see
//! [`ControlPlaneAgent`](crate::agents::ControlPlaneAgent)).

/// Address of an actor in the distributed runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Address {
    /// The price agent of resource `r` (one endpoint of a link computes
    /// prices for link resources, per the paper's footnote).
    Resource(usize),
    /// The controller of task `t`.
    Controller(usize),
    /// The management-plane agent that disseminates availability changes
    /// reliably (sequence numbers + retransmission) over the lossy
    /// network.
    ControlPlane,
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Address::Resource(r) => write!(f, "resource[{r}]"),
            Address::Controller(t) => write!(f, "controller[{t}]"),
            Address::ControlPlane => write!(f, "control-plane"),
        }
    }
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Resource → controller: the resource's current price and congestion
    /// bit (the congestion bit drives the adaptive step-size heuristic for
    /// paths traversing the resource, §5.2).
    Price {
        /// The resource index.
        resource: usize,
        /// The price `μ_r`.
        mu: f64,
        /// Whether the resource was congested at this update.
        congested: bool,
    },
    /// Controller → resource: the latency newly assigned to one subtask
    /// hosted on the resource (the resource derives the share demand from
    /// it via the share model).
    Latency {
        /// Task index.
        task: usize,
        /// Subtask index within the task.
        subtask: usize,
        /// Assigned latency (ms).
        latency: f64,
    },
    /// Control plane → any agent: a resource's availability `B_r` changed
    /// (failure, competing reservation). Resources use it in their price
    /// gradient; controllers in their clamping bounds. LLA re-converges.
    ///
    /// Delivery is at-least-once over the lossy network: the control plane
    /// retransmits until every recipient acknowledges `seq`, and
    /// recipients deduplicate/order by `seq` (per resource, monotonically
    /// increasing; a higher `seq` supersedes any lower one).
    AvailabilityUpdate {
        /// The resource index.
        resource: usize,
        /// The new availability fraction.
        availability: f64,
        /// Control-plane sequence number (0 on operator-submitted
        /// commands; the control plane assigns the real sequence).
        seq: u64,
    },
    /// Agent → control plane: acknowledges receipt of the availability
    /// update carrying `seq` for `resource`.
    AvailabilityAck {
        /// The resource index of the acknowledged update.
        resource: usize,
        /// The acknowledged sequence number.
        seq: u64,
        /// The acknowledging agent.
        from: Address,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_display() {
        assert_eq!(Address::Resource(2).to_string(), "resource[2]");
        assert_eq!(Address::Controller(0).to_string(), "controller[0]");
        assert_eq!(Address::ControlPlane.to_string(), "control-plane");
    }

    #[test]
    fn addresses_are_ordered_and_hashable() {
        let mut v = vec![
            Address::ControlPlane,
            Address::Controller(1),
            Address::Resource(0),
            Address::Controller(0),
        ];
        v.sort();
        assert_eq!(v[0], Address::Resource(0));
        let set: std::collections::HashSet<Address> = v.into_iter().collect();
        assert_eq!(set.len(), 4);
    }
}
