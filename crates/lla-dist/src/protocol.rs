//! The message protocol between task controllers and resource agents.
//!
//! LLA's distributed structure (§4.1): each *resource* computes its own
//! price `μ_r` and sends it to the controllers of tasks with subtasks on
//! it; each *task controller* computes path prices locally and sends newly
//! allocated latencies to the resources where its subtasks run.
//!
//! Control-plane traffic (availability changes, membership changes)
//! travels over the same lossy network as data-plane traffic, made
//! reliable by sequence numbers and retransmit-until-ack (see
//! [`ControlPlaneAgent`](crate::agents::ControlPlaneAgent)).
//!
//! ## Slots
//!
//! Protocol-level task and resource indices are **slots**: stable
//! identifiers assigned at join time and never reused, so in-flight
//! messages stay unambiguous across membership changes. In a problem that
//! has seen no churn, slot and dense index coincide; after churn the
//! per-epoch topology (see [`TopologyStore`](crate::agents::TopologyStore))
//! maps slots to the current dense indices.

/// Address of an actor in the distributed runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Address {
    /// The price agent of the resource in slot `r` (one endpoint of a link
    /// computes prices for link resources, per the paper's footnote).
    Resource(usize),
    /// The controller of the task in slot `t`.
    Controller(usize),
    /// The management-plane agent that disseminates availability changes
    /// reliably (sequence numbers + retransmission) over the lossy
    /// network.
    ControlPlane,
    /// The fleet telemetry collector: agents ship their
    /// [`Message::TelemetryReport`]s here. Registered only when telemetry
    /// shipping is enabled; it never sends, so it cannot perturb the
    /// protocol.
    Collector,
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Address::Resource(r) => write!(f, "resource[{r}]"),
            Address::Controller(t) => write!(f, "controller[{t}]"),
            Address::ControlPlane => write!(f, "control-plane"),
            Address::Collector => write!(f, "collector"),
        }
    }
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Resource → controller: the resource's current price and congestion
    /// bit (the congestion bit drives the adaptive step-size heuristic for
    /// paths traversing the resource, §5.2).
    Price {
        /// The resource index.
        resource: usize,
        /// The price `μ_r`.
        mu: f64,
        /// Whether the resource was congested at this update.
        congested: bool,
    },
    /// Controller → resource: the latency newly assigned to one subtask
    /// hosted on the resource (the resource derives the share demand from
    /// it via the share model).
    Latency {
        /// Task index.
        task: usize,
        /// Subtask index within the task.
        subtask: usize,
        /// Assigned latency (ms).
        latency: f64,
    },
    /// Control plane → any agent: a resource's availability `B_r` changed
    /// (failure, competing reservation). Resources use it in their price
    /// gradient; controllers in their clamping bounds. LLA re-converges.
    ///
    /// Delivery is at-least-once over the lossy network: the control plane
    /// retransmits until every recipient acknowledges `seq`, and
    /// recipients deduplicate/order by `seq` (per resource, monotonically
    /// increasing; a higher `seq` supersedes any lower one).
    AvailabilityUpdate {
        /// The resource index.
        resource: usize,
        /// The new availability fraction.
        availability: f64,
        /// Control-plane sequence number (0 on operator-submitted
        /// commands; the control plane assigns the real sequence).
        seq: u64,
    },
    /// Agent → control plane: acknowledges receipt of the availability
    /// update carrying `seq` for `resource`.
    AvailabilityAck {
        /// The resource index of the acknowledged update.
        resource: usize,
        /// The acknowledged sequence number.
        seq: u64,
        /// The acknowledging agent.
        from: Address,
    },
    /// Control plane → agents: the task in `slot` joined at topology
    /// `epoch`. Recipients load the epoch's problem view from the shared
    /// topology store and splice the newcomer in without restarting.
    ///
    /// Like [`Message::AvailabilityUpdate`], membership messages are
    /// reliable: retransmitted until acked, deduplicated by epoch (an
    /// agent already at `epoch` or later re-acks and ignores the body).
    TaskJoin {
        /// Slot of the joining task.
        slot: usize,
        /// Topology epoch that includes the newcomer.
        epoch: u64,
        /// Control-plane sequence (0 on operator commands).
        seq: u64,
    },
    /// Control plane → agents: the task in `slot` left voluntarily at
    /// `epoch`. Resource agents drop its subtasks; its controller goes
    /// dormant.
    TaskLeave {
        /// Slot of the leaving task.
        slot: usize,
        /// Topology epoch without the leaver.
        epoch: u64,
        /// Control-plane sequence (0 on operator commands).
        seq: u64,
    },
    /// Control plane → agents: the resource in `slot` joined at `epoch`
    /// (it starts empty and unpriced).
    ResourceJoin {
        /// Slot of the joining resource.
        slot: usize,
        /// Topology epoch that includes the newcomer.
        epoch: u64,
        /// Control-plane sequence (0 on operator commands).
        seq: u64,
    },
    /// Control plane → agents: the resource in `slot` retires at `epoch`.
    /// The epoch's problem has already drained its subtasks onto other
    /// resources (drain-and-handoff); the retiring agent goes dormant
    /// after processing this.
    ResourceRetire {
        /// Slot of the retiring resource.
        slot: usize,
        /// Topology epoch without the retiree.
        epoch: u64,
        /// Control-plane sequence (0 on operator commands).
        seq: u64,
    },
    /// Control plane → agents: the task in `slot` was *evicted* by
    /// overload shedding at `epoch`. Wire-identical to
    /// [`Message::TaskLeave`] but kept distinct so telemetry can tell
    /// voluntary departure from shedding.
    Evict {
        /// Slot of the evicted task.
        slot: usize,
        /// Topology epoch without the evictee.
        epoch: u64,
        /// Control-plane sequence (0 on operator commands).
        seq: u64,
    },
    /// Agent → control plane: acknowledges the membership change at
    /// `epoch` carrying `seq`.
    MembershipAck {
        /// The acknowledged topology epoch.
        epoch: u64,
        /// The acknowledged sequence number.
        seq: u64,
        /// The acknowledging agent.
        from: Address,
    },
    /// Control plane → agents: the resource in `slot` now runs `replicas`
    /// interchangeable replicas as of topology `epoch` (elastic capacity:
    /// effective `B_r` scales with the count). Rides the reliable
    /// membership machinery — the epoch's problem snapshot already
    /// carries the new count, so recipients warm-start across it like any
    /// other membership change.
    ReplicaUpdate {
        /// Slot of the scaled resource.
        slot: usize,
        /// The new replica count.
        replicas: u32,
        /// Topology epoch with the new capacity.
        epoch: u64,
        /// Control-plane sequence (0 on supervisor/operator commands).
        seq: u64,
    },
    /// Supervisor → agents (via the control plane, reliable): gamma-thrash
    /// remediation. Every recipient resets its adaptive step sizes to the
    /// policy's initial value and clamps future growth to
    /// `initial × max_multiple` (see
    /// [`PriceState::calm_gammas`](lla_core::PriceState::calm_gammas)).
    GammaCalm {
        /// New growth cap as a multiple of the initial step size (`≥ 1`).
        max_multiple: f64,
        /// Control-plane sequence (0 on supervisor commands).
        seq: u64,
    },
    /// Supervisor → agents (via the control plane, reliable): stall
    /// remediation probe. Recipients immediately re-announce their current
    /// state — resources rebroadcast prices, controllers re-send
    /// latencies — refreshing peers' staleness clocks without waiting for
    /// the next tick phase.
    DualResync {
        /// Control-plane sequence (0 on supervisor commands).
        seq: u64,
    },
    /// Agent → control plane: acknowledges the supervisor command
    /// carrying `seq`.
    CommandAck {
        /// The acknowledged sequence number.
        seq: u64,
        /// The acknowledging agent.
        from: Address,
    },
    /// Agent → collector: a delta-encoded, watermarked telemetry report
    /// (see [`lla_telemetry::collect`]). Fire-and-forget over the lossy
    /// network — the collector tolerates loss, duplication, and
    /// reordering via the per-agent sequence number, and accounts for
    /// every report as merged, stale, or lost.
    TelemetryReport {
        /// The reporting agent.
        from: Address,
        /// Per-agent report sequence, starting at 1.
        seq: u64,
        /// Virtual-clock watermark: every scope update up to this instant
        /// is covered by the deltas shipped through this report.
        watermark: f64,
        /// `(dictionary slot, counter delta)` pairs, slots strictly
        /// increasing, zero deltas omitted (delta encoding keeps the body
        /// far under the frame cap).
        deltas: Vec<(u8, u32)>,
    },
}

impl Message {
    /// Stable kebab-case variant name — the span name tracing uses for a
    /// delivery of this message.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Price { .. } => "price",
            Message::Latency { .. } => "latency",
            Message::AvailabilityUpdate { .. } => "availability-update",
            Message::AvailabilityAck { .. } => "availability-ack",
            Message::TaskJoin { .. } => "task-join",
            Message::TaskLeave { .. } => "task-leave",
            Message::ResourceJoin { .. } => "resource-join",
            Message::ResourceRetire { .. } => "resource-retire",
            Message::Evict { .. } => "evict",
            Message::MembershipAck { .. } => "membership-ack",
            Message::ReplicaUpdate { .. } => "replica-update",
            Message::GammaCalm { .. } => "gamma-calm",
            Message::DualResync { .. } => "dual-resync",
            Message::CommandAck { .. } => "command-ack",
            Message::TelemetryReport { .. } => "telemetry-report",
        }
    }

    /// For membership messages, the `(slot, epoch, seq)` triple; `None`
    /// for data-plane and availability messages.
    pub fn membership_parts(&self) -> Option<(usize, u64, u64)> {
        match *self {
            Message::TaskJoin { slot, epoch, seq }
            | Message::TaskLeave { slot, epoch, seq }
            | Message::ResourceJoin { slot, epoch, seq }
            | Message::ResourceRetire { slot, epoch, seq }
            | Message::Evict { slot, epoch, seq }
            | Message::ReplicaUpdate { slot, epoch, seq, .. } => Some((slot, epoch, seq)),
            _ => None,
        }
    }

    /// A copy of a membership message with the control-plane sequence
    /// replaced (used when the control plane assigns the real sequence to
    /// an operator-submitted `seq == 0` command).
    ///
    /// # Panics
    ///
    /// Panics when called on a non-membership message.
    pub fn with_membership_seq(&self, new_seq: u64) -> Message {
        let mut m = self.clone();
        match &mut m {
            Message::TaskJoin { seq, .. }
            | Message::TaskLeave { seq, .. }
            | Message::ResourceJoin { seq, .. }
            | Message::ResourceRetire { seq, .. }
            | Message::Evict { seq, .. }
            | Message::ReplicaUpdate { seq, .. } => *seq = new_seq,
            other => panic!("not a membership message: {other:?}"),
        }
        m
    }

    /// For supervisor commands ([`GammaCalm`](Message::GammaCalm),
    /// [`DualResync`](Message::DualResync)), the sequence number; `None`
    /// otherwise.
    pub fn command_seq(&self) -> Option<u64> {
        match *self {
            Message::GammaCalm { seq, .. } | Message::DualResync { seq } => Some(seq),
            _ => None,
        }
    }

    /// A copy of a supervisor command with the control-plane sequence
    /// replaced.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-command message.
    pub fn with_command_seq(&self, new_seq: u64) -> Message {
        let mut m = self.clone();
        match &mut m {
            Message::GammaCalm { seq, .. } | Message::DualResync { seq } => *seq = new_seq,
            other => panic!("not a supervisor command: {other:?}"),
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_display() {
        assert_eq!(Address::Resource(2).to_string(), "resource[2]");
        assert_eq!(Address::Controller(0).to_string(), "controller[0]");
        assert_eq!(Address::ControlPlane.to_string(), "control-plane");
        assert_eq!(Address::Collector.to_string(), "collector");
    }

    #[test]
    fn kind_names_every_variant() {
        let from = Address::Controller(0);
        let msgs = [
            (Message::Price { resource: 0, mu: 1.0, congested: false }, "price"),
            (Message::Latency { task: 0, subtask: 0, latency: 1.0 }, "latency"),
            (
                Message::AvailabilityUpdate { resource: 0, availability: 0.5, seq: 1 },
                "availability-update",
            ),
            (Message::AvailabilityAck { resource: 0, seq: 1, from }, "availability-ack"),
            (Message::TaskJoin { slot: 0, epoch: 1, seq: 1 }, "task-join"),
            (Message::TaskLeave { slot: 0, epoch: 1, seq: 1 }, "task-leave"),
            (Message::ResourceJoin { slot: 0, epoch: 1, seq: 1 }, "resource-join"),
            (Message::ResourceRetire { slot: 0, epoch: 1, seq: 1 }, "resource-retire"),
            (Message::Evict { slot: 0, epoch: 1, seq: 1 }, "evict"),
            (Message::MembershipAck { epoch: 1, seq: 1, from }, "membership-ack"),
            (Message::ReplicaUpdate { slot: 0, replicas: 2, epoch: 1, seq: 1 }, "replica-update"),
            (Message::GammaCalm { max_multiple: 4.0, seq: 1 }, "gamma-calm"),
            (Message::DualResync { seq: 1 }, "dual-resync"),
            (Message::CommandAck { seq: 1, from }, "command-ack"),
            (
                Message::TelemetryReport { from, seq: 1, watermark: 10.0, deltas: vec![(0, 1)] },
                "telemetry-report",
            ),
        ];
        for (msg, kind) in msgs {
            assert_eq!(msg.kind(), kind);
        }
    }

    #[test]
    fn replica_update_is_a_membership_message() {
        let m = Message::ReplicaUpdate { slot: 2, replicas: 3, epoch: 5, seq: 0 };
        assert_eq!(m.membership_parts(), Some((2, 5, 0)));
        assert_eq!(m.with_membership_seq(8).membership_parts(), Some((2, 5, 8)));
    }

    #[test]
    fn command_seq_round_trip() {
        let calm = Message::GammaCalm { max_multiple: 2.0, seq: 0 };
        assert_eq!(calm.command_seq(), Some(0));
        assert_eq!(calm.with_command_seq(4).command_seq(), Some(4));
        assert_eq!(Message::DualResync { seq: 7 }.command_seq(), Some(7));
        assert_eq!(Message::Price { resource: 0, mu: 0.0, congested: false }.command_seq(), None);
    }

    #[test]
    fn membership_parts_round_trip() {
        let m = Message::TaskJoin { slot: 3, epoch: 7, seq: 0 };
        assert_eq!(m.membership_parts(), Some((3, 7, 0)));
        let reseq = m.with_membership_seq(42);
        assert_eq!(reseq.membership_parts(), Some((3, 7, 42)));
        assert_eq!(
            Message::Evict { slot: 1, epoch: 2, seq: 9 }.membership_parts(),
            Some((1, 2, 9))
        );
        let data = Message::Price { resource: 0, mu: 1.0, congested: false };
        assert_eq!(data.membership_parts(), None);
    }

    #[test]
    fn addresses_are_ordered_and_hashable() {
        let mut v = vec![
            Address::ControlPlane,
            Address::Controller(1),
            Address::Resource(0),
            Address::Controller(0),
        ];
        v.sort();
        assert_eq!(v[0], Address::Resource(0));
        let set: std::collections::HashSet<Address> = v.into_iter().collect();
        assert_eq!(set.len(), 4);
    }
}
