//! A deterministic virtual-time actor runtime.
//!
//! Actors exchange [`Message`]s through a simulated [`NetworkModel`];
//! deliveries and periodic ticks are events on a virtual clock, processed
//! in timestamp order (FIFO among ties, via a sequence number). Everything
//! is seeded, so a distributed run is exactly reproducible — which the
//! equivalence tests against the centralized optimizer rely on.

use crate::network::{NetworkModel, NetworkSampler};
use crate::protocol::{Address, Message};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Messages an actor emits during a callback, with their destinations.
#[derive(Debug, Default)]
pub struct Outbox {
    msgs: Vec<(Address, Message)>,
}

impl Outbox {
    /// Queues a message for sending.
    pub fn send(&mut self, to: Address, msg: Message) {
        self.msgs.push((to, msg));
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the outbox is empty.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Consumes the outbox, yielding the queued `(destination, message)`
    /// pairs.
    pub fn into_messages(self) -> Vec<(Address, Message)> {
        self.msgs
    }
}

/// A participant in the distributed protocol.
pub trait Actor: Send + std::fmt::Debug {
    /// Called at every scheduled tick of this actor.
    fn on_tick(&mut self, now: f64, outbox: &mut Outbox);

    /// Called when a message is delivered to this actor.
    fn on_message(&mut self, now: f64, msg: Message, outbox: &mut Outbox);
}

#[derive(Debug)]
enum EventKind {
    Tick(Address),
    Deliver(Address, Message),
}

#[derive(Debug)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite times")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Per-actor tick schedule.
#[derive(Debug, Clone, Copy)]
struct TickSchedule {
    interval: f64,
    next: f64,
}

/// The virtual-time runtime.
#[derive(Debug)]
pub struct VirtualRuntime {
    actors: HashMap<Address, Box<dyn Actor>>,
    schedules: HashMap<Address, TickSchedule>,
    queue: BinaryHeap<Event>,
    network: NetworkSampler,
    now: f64,
    seq: u64,
    messages_sent: u64,
}

impl VirtualRuntime {
    /// Creates a runtime over the given network model; `seed` drives the
    /// network's randomness.
    pub fn new(network: NetworkModel, seed: u64) -> Self {
        VirtualRuntime {
            actors: HashMap::new(),
            schedules: HashMap::new(),
            queue: BinaryHeap::new(),
            network: NetworkSampler::new(network, seed),
            now: 0.0,
            seq: 0,
            messages_sent: 0,
        }
    }

    /// Registers an actor ticking every `interval` virtual ms starting at
    /// `phase`.
    ///
    /// # Panics
    ///
    /// Panics if the address is already registered or `interval ≤ 0`.
    pub fn register(&mut self, addr: Address, actor: Box<dyn Actor>, interval: f64, phase: f64) {
        assert!(interval > 0.0, "tick interval must be positive");
        assert!(
            self.actors.insert(addr, actor).is_none(),
            "address {addr} registered twice"
        );
        self.schedules.insert(addr, TickSchedule { interval, next: phase });
        self.push(phase, EventKind::Tick(addr));
    }

    fn push(&mut self, time: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { time, seq, kind });
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Total messages handed to the network so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Messages dropped by the network so far.
    pub fn messages_dropped(&self) -> u64 {
        self.network.dropped()
    }

    /// Runs until the virtual clock reaches `t_end` (events at exactly
    /// `t_end` are *not* processed, so consecutive `run_until` calls
    /// compose).
    pub fn run_until(&mut self, t_end: f64) {
        while let Some(head) = self.queue.peek() {
            if head.time >= t_end {
                break;
            }
            let event = self.queue.pop().expect("peeked");
            self.now = event.time;
            let mut outbox = Outbox::default();
            match event.kind {
                EventKind::Tick(addr) => {
                    if let Some(actor) = self.actors.get_mut(&addr) {
                        actor.on_tick(self.now, &mut outbox);
                    }
                    let sched = self.schedules.get_mut(&addr).expect("scheduled");
                    sched.next += sched.interval;
                    let next = sched.next;
                    self.push(next, EventKind::Tick(addr));
                }
                EventKind::Deliver(addr, msg) => {
                    if let Some(actor) = self.actors.get_mut(&addr) {
                        actor.on_message(self.now, msg, &mut outbox);
                    }
                }
            }
            for (to, msg) in outbox.msgs {
                self.messages_sent += 1;
                if let Some(delay) = self.network.sample() {
                    let at = self.now + delay;
                    self.push(at, EventKind::Deliver(to, msg));
                }
            }
        }
        self.now = t_end;
    }

    /// Mutable access to a registered actor (for telemetry extraction in
    /// tests and drivers).
    pub fn actor_mut(&mut self, addr: Address) -> Option<&mut Box<dyn Actor>> {
        self.actors.get_mut(&addr)
    }

    /// Delivers a control-plane message to an actor at the current virtual
    /// time, bypassing the network model (immediate and reliable).
    pub fn inject(&mut self, to: Address, msg: Message) {
        let now = self.now;
        self.push(now, EventKind::Deliver(to, msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every message back to a peer and counts ticks.
    #[derive(Debug)]
    struct Recorder {
        ticks: Vec<f64>,
        received: Vec<(f64, Message)>,
        reply_to: Option<Address>,
    }

    impl Actor for Recorder {
        fn on_tick(&mut self, now: f64, outbox: &mut Outbox) {
            self.ticks.push(now);
            if let Some(to) = self.reply_to {
                outbox.send(to, Message::Price { resource: 0, mu: now, congested: false });
            }
        }
        fn on_message(&mut self, now: f64, msg: Message, _outbox: &mut Outbox) {
            self.received.push((now, msg));
        }
    }

    fn recorder(reply_to: Option<Address>) -> Box<Recorder> {
        Box::new(Recorder { ticks: Vec::new(), received: Vec::new(), reply_to })
    }

    #[test]
    fn ticks_fire_at_schedule() {
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.register(Address::Resource(0), recorder(None), 10.0, 0.0);
        rt.run_until(35.0);
        // Downcast via Debug formatting is fragile; instead re-register and
        // inspect through actor_mut + Any is unavailable — so assert on the
        // runtime-visible side effects: time advanced, no messages.
        assert_eq!(rt.now(), 35.0);
        assert_eq!(rt.messages_sent(), 0);
    }

    #[test]
    fn messages_flow_between_actors() {
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 10.0, 0.0);
        rt.register(Address::Controller(0), recorder(None), 10.0, 5.0);
        rt.run_until(25.0);
        // Sender ticks at 0, 10, 20 => 3 messages.
        assert_eq!(rt.messages_sent(), 3);
        assert_eq!(rt.messages_dropped(), 0);
    }

    #[test]
    fn lossy_network_drops() {
        let mut rt = VirtualRuntime::new(NetworkModel::lossy(0.0, 0.0, 0.5), 3);
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 1.0, 0.0);
        rt.register(Address::Controller(0), recorder(None), 1000.0, 0.0);
        rt.run_until(1000.0);
        assert_eq!(rt.messages_sent(), 1000);
        let dropped = rt.messages_dropped();
        assert!((400..600).contains(&(dropped as usize)), "dropped {dropped}");
    }

    #[test]
    fn run_until_composes() {
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 10.0, 0.0);
        rt.register(Address::Controller(0), recorder(None), 10.0, 0.0);
        rt.run_until(10.0);
        let first = rt.messages_sent();
        rt.run_until(20.0);
        let second = rt.messages_sent();
        assert_eq!(first, 1, "tick at 0 only (event at 10 excluded)");
        assert_eq!(second, 2);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.register(Address::Resource(0), recorder(None), 1.0, 0.0);
        rt.register(Address::Resource(0), recorder(None), 1.0, 0.0);
    }
}
