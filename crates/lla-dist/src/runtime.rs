//! A deterministic virtual-time actor runtime.
//!
//! Actors exchange [`Message`]s through a simulated [`NetworkModel`];
//! deliveries and periodic ticks are events on a virtual clock, processed
//! in timestamp order (FIFO among ties, via a sequence number). Everything
//! is seeded, so a distributed run is exactly reproducible — which the
//! equivalence tests against the centralized optimizer rely on.
//!
//! Faults are first-class events on the same clock: a [`FaultPlan`]
//! schedules crashes, restarts, partitions, and availability drops, and
//! the runtime enforces their semantics (crashed actors receive nothing;
//! partitioned pairs drop messages at send time; in-flight messages
//! outlive both the sender's crash and a partition's onset, as on a real
//! network).

use crate::codec;
use crate::fault::{FaultKind, FaultPlan};
use crate::network::{CorruptionModel, FrameCorruptor, NetworkModel, NetworkSampler};
use crate::protocol::{Address, Message};
use crate::telemetry::DistTelemetry;
use lla_telemetry::{Event as TelemetryEvent, TraceCtx, Value};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Renders a partition side as a stable `+`-joined address list.
fn render_addrs(addrs: &[Address]) -> String {
    addrs.iter().map(|a| a.to_string()).collect::<Vec<_>>().join("+")
}

/// Messages an actor emits during a callback, with their destinations.
#[derive(Debug, Default)]
pub struct Outbox {
    msgs: Vec<(Address, Message)>,
}

impl Outbox {
    /// Queues a message for sending.
    pub fn send(&mut self, to: Address, msg: Message) {
        self.msgs.push((to, msg));
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the outbox is empty.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Consumes the outbox, yielding the queued `(destination, message)`
    /// pairs.
    pub fn into_messages(self) -> Vec<(Address, Message)> {
        self.msgs
    }
}

/// A participant in the distributed protocol.
pub trait Actor: Send + std::fmt::Debug {
    /// Called at every scheduled tick of this actor.
    fn on_tick(&mut self, now: f64, outbox: &mut Outbox);

    /// Called when a message is delivered to this actor.
    fn on_message(&mut self, now: f64, msg: Message, outbox: &mut Outbox);

    /// Called when the actor crashes: drop all volatile in-memory state
    /// (a real process would lose it). Durable state — e.g. a checkpoint
    /// written to a [`CheckpointStore`](crate::agents::CheckpointStore) —
    /// survives by construction.
    fn on_crash(&mut self, _now: f64) {}

    /// Called when a crashed actor restarts: rebuild state (from a
    /// checkpoint if one exists) and optionally emit recovery messages.
    fn on_restart(&mut self, _now: f64, _outbox: &mut Outbox) {}

    /// Downcast hook so drivers and tests can reach the concrete actor
    /// behind a `Box<dyn Actor>` (telemetry extraction, assertions).
    fn as_any(&mut self) -> &mut dyn std::any::Any;
}

#[derive(Debug)]
enum EventKind {
    Tick(Address),
    /// A message delivery, carrying its causal context at the envelope
    /// level — the [`Message`] itself is untouched by tracing, so wire
    /// equality and message counts are exactly those of an uninstrumented
    /// run.
    Deliver(Address, Message, TraceCtx),
    Fault(FaultKind),
}

#[derive(Debug)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite times")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Per-actor tick schedule.
#[derive(Debug, Clone, Copy)]
struct TickSchedule {
    interval: f64,
    next: f64,
}

/// An active network partition: messages between `a` and `b` drop until
/// the heal time.
#[derive(Debug)]
struct ActivePartition {
    a: HashSet<Address>,
    b: HashSet<Address>,
    until: f64,
}

impl ActivePartition {
    fn separates(&self, from: Address, to: Address) -> bool {
        (self.a.contains(&from) && self.b.contains(&to))
            || (self.b.contains(&from) && self.a.contains(&to))
    }
}

/// State of the opt-in wire mode: every delivery round-trips through the
/// [`codec`], optionally corrupted in flight.
#[derive(Debug)]
struct WireState {
    corruptor: FrameCorruptor,
    /// Frames refused by the decode → validate pipeline.
    frames_rejected: u64,
    /// Corrupted frames that still decoded to a *valid* message (in-domain
    /// field fuzz — the residual perturbation the optimizer re-converges
    /// through).
    corrupted_delivered: u64,
    /// Rejections attributed to each sender — the evidence book the
    /// supervisor's quarantine policy reads.
    rejections_by_sender: HashMap<Address, u64>,
}

/// The virtual-time runtime.
#[derive(Debug)]
pub struct VirtualRuntime {
    actors: HashMap<Address, Box<dyn Actor>>,
    schedules: HashMap<Address, TickSchedule>,
    queue: BinaryHeap<Event>,
    network: NetworkSampler,
    crashed: HashSet<Address>,
    partitions: Vec<ActivePartition>,
    now: f64,
    seq: u64,
    messages_sent: u64,
    dropped_by_partition: u64,
    dropped_at_crashed: u64,
    crashes: u64,
    restarts: u64,
    messages_reordered: u64,
    /// Latest scheduled arrival time per destination, for reorder
    /// detection: a new delivery landing before it means out-of-order.
    latest_arrival: HashMap<Address, f64>,
    /// Wire mode (encode → corrupt? → decode → validate per delivery);
    /// `None` keeps the struct-passing fast path.
    wire: Option<WireState>,
    /// Senders whose messages are currently dropped at the network
    /// ingress (supervisor quarantine). Acks still pass so the reliable
    /// control plane does not retransmit forever.
    quarantined: HashSet<Address>,
    /// Messages dropped because their sender was quarantined.
    quarantine_drops: u64,
    /// Passive instrumentation (counters + virtual-clock events);
    /// disabled by default. Never affects scheduling, sampling, or
    /// message flow.
    tel: DistTelemetry,
}

impl VirtualRuntime {
    /// Creates a runtime over the given network model; `seed` drives the
    /// network's randomness.
    pub fn new(network: NetworkModel, seed: u64) -> Self {
        VirtualRuntime {
            actors: HashMap::new(),
            schedules: HashMap::new(),
            queue: BinaryHeap::new(),
            network: NetworkSampler::new(network, seed),
            crashed: HashSet::new(),
            partitions: Vec::new(),
            now: 0.0,
            seq: 0,
            messages_sent: 0,
            dropped_by_partition: 0,
            dropped_at_crashed: 0,
            crashes: 0,
            restarts: 0,
            messages_reordered: 0,
            latest_arrival: HashMap::new(),
            wire: None,
            quarantined: HashSet::new(),
            quarantine_drops: 0,
            tel: DistTelemetry::disabled(),
        }
    }

    /// Switches the runtime into wire mode: every delivery is encoded to
    /// a frame, optionally corrupted by `corruption`, then decoded and
    /// validated before it reaches the receiver. The corruptor draws from
    /// its own RNG (seeded by `corruption_seed`), never from the network
    /// sampler's stream — so a wire-mode run with zero corruption is
    /// bit-identical to a plain run (pinned in tests).
    pub fn enable_wire_mode(&mut self, corruption: CorruptionModel, corruption_seed: u64) {
        self.wire = Some(WireState {
            corruptor: FrameCorruptor::new(corruption, corruption_seed),
            frames_rejected: 0,
            corrupted_delivered: 0,
            rejections_by_sender: HashMap::new(),
        });
    }

    /// Whether deliveries round-trip through the wire codec.
    pub fn wire_mode(&self) -> bool {
        self.wire.is_some()
    }

    /// Frames refused by the decode → validate pipeline (wire mode only).
    pub fn frames_rejected(&self) -> u64 {
        self.wire.as_ref().map_or(0, |w| w.frames_rejected)
    }

    /// Frames corrupted in flight so far (wire mode only).
    pub fn frames_corrupted(&self) -> u64 {
        self.wire.as_ref().map_or(0, |w| w.corruptor.corrupted())
    }

    /// Corrupted frames that still decoded to a valid message (in-domain
    /// field fuzz slipping past the validators by being plausible).
    pub fn corrupted_delivered(&self) -> u64 {
        self.wire.as_ref().map_or(0, |w| w.corrupted_delivered)
    }

    /// Frame rejections attributed to each sender, sorted by address —
    /// the evidence the supervisor's quarantine policy consumes.
    pub fn frame_rejections_by_sender(&self) -> Vec<(Address, u64)> {
        let Some(wire) = self.wire.as_ref() else { return Vec::new() };
        let mut book: Vec<(Address, u64)> =
            wire.rejections_by_sender.iter().map(|(a, n)| (*a, *n)).collect();
        book.sort_unstable_by_key(|(a, _)| *a);
        book
    }

    /// Quarantines `addr`: its future sends (except acks) are dropped at
    /// the network ingress. Returns whether the agent was newly
    /// quarantined.
    pub fn quarantine(&mut self, addr: Address) -> bool {
        self.quarantined.insert(addr)
    }

    /// Releases `addr` from quarantine. Returns whether it was
    /// quarantined.
    pub fn release_quarantine(&mut self, addr: Address) -> bool {
        self.quarantined.remove(&addr)
    }

    /// Whether `addr` is currently quarantined.
    pub fn is_quarantined(&self, addr: Address) -> bool {
        self.quarantined.contains(&addr)
    }

    /// Currently quarantined agents, sorted by address.
    pub fn quarantined_agents(&self) -> Vec<Address> {
        let mut v: Vec<Address> = self.quarantined.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Messages dropped because their sender was quarantined.
    pub fn quarantine_drops(&self) -> u64 {
        self.quarantine_drops
    }

    /// Attaches telemetry handles; subsequent runtime activity mirrors
    /// into the counters and emits virtual-clock fault events.
    pub fn attach_telemetry(&mut self, tel: DistTelemetry) {
        self.tel = tel;
    }

    /// Registers an actor ticking every `interval` virtual ms starting at
    /// `phase`.
    ///
    /// # Panics
    ///
    /// Panics if the address is already registered or `interval ≤ 0`.
    pub fn register(&mut self, addr: Address, actor: Box<dyn Actor>, interval: f64, phase: f64) {
        assert!(interval > 0.0, "tick interval must be positive");
        assert!(self.actors.insert(addr, actor).is_none(), "address {addr} registered twice");
        self.schedules.insert(addr, TickSchedule { interval, next: phase });
        self.push(phase, EventKind::Tick(addr));
    }

    /// Removes an actor and its tick schedule (a task left or a resource
    /// retired). Any still-queued events addressed to it are discarded
    /// when popped. Returns the actor, or `None` if the address was not
    /// registered.
    pub fn deregister(&mut self, addr: Address) -> Option<Box<dyn Actor>> {
        self.schedules.remove(&addr);
        self.crashed.remove(&addr);
        self.actors.remove(&addr)
    }

    /// Whether an actor is registered at `addr`.
    pub fn is_registered(&self, addr: Address) -> bool {
        self.actors.contains_key(&addr)
    }

    /// Schedules every event of `plan` on the virtual clock. May be
    /// called repeatedly; plans accumulate.
    pub fn schedule_faults(&mut self, plan: &FaultPlan) {
        for event in plan.events() {
            self.push(event.at, EventKind::Fault(event.kind.clone()));
        }
    }

    fn push(&mut self, time: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { time, seq, kind });
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Total messages handed to the network so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Messages dropped by the network's random loss so far.
    pub fn messages_dropped(&self) -> u64 {
        self.network.dropped()
    }

    /// Messages duplicated by the network so far.
    pub fn messages_duplicated(&self) -> u64 {
        self.network.duplicated()
    }

    /// Messages dropped because sender and receiver were partitioned.
    pub fn dropped_by_partition(&self) -> u64 {
        self.dropped_by_partition
    }

    /// Message deliveries discarded because the receiver was crashed.
    pub fn dropped_at_crashed(&self) -> u64 {
        self.dropped_at_crashed
    }

    /// Crash events executed so far.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Restart events executed so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Deliveries scheduled to arrive before an earlier send to the same
    /// destination (out-of-order arrivals caused by delay jitter).
    pub fn messages_reordered(&self) -> u64 {
        self.messages_reordered
    }

    /// Whether `addr` is currently crashed.
    pub fn is_crashed(&self, addr: Address) -> bool {
        self.crashed.contains(&addr)
    }

    /// Whether a currently active partition separates `from` and `to`.
    pub fn is_partitioned(&self, from: Address, to: Address) -> bool {
        let now = self.now;
        self.partitions.iter().any(|p| p.until > now && p.separates(from, to))
    }

    /// Sends everything in `outbox` from `from` through the network:
    /// partition check at send time, then loss/delay/duplication
    /// sampling per message. `parent` is the causal context of whatever
    /// produced the outbox (a tick root or a handled delivery); every
    /// delivery span, drop, and duplicate links to it. Span recording is
    /// passive — the network is sampled and events are queued exactly as
    /// in an untraced run.
    fn dispatch(&mut self, from: Address, outbox: Outbox, parent: TraceCtx) {
        let tracing = self.tel.spans.is_enabled();
        for (to, msg) in outbox.msgs {
            self.messages_sent += 1;
            self.tel.messages_sent.inc();
            // Quarantined senders are silenced at the network ingress —
            // except for acks, which must keep flowing or the reliable
            // control plane would retransmit to them forever.
            let is_ack = matches!(
                msg,
                Message::AvailabilityAck { .. }
                    | Message::MembershipAck { .. }
                    | Message::CommandAck { .. }
            );
            if !is_ack && self.quarantined.contains(&from) {
                self.quarantine_drops += 1;
                if tracing {
                    self.tel.spans.instant_with(
                        "quarantine-drop",
                        &from.to_string(),
                        self.now,
                        parent,
                        vec![("to", Value::from(to.to_string()))],
                    );
                }
                continue;
            }
            if self.is_partitioned(from, to) {
                self.dropped_by_partition += 1;
                self.tel.dropped_by_partition.inc();
                if tracing {
                    self.tel.spans.instant_with(
                        "partition-drop",
                        &from.to_string(),
                        self.now,
                        parent,
                        vec![("to", Value::from(to.to_string()))],
                    );
                }
                continue;
            }
            let deliveries = self.network.sample_deliveries();
            if deliveries.is_empty() {
                self.tel.messages_dropped.inc();
                if tracing {
                    self.tel.spans.instant_with(
                        "drop",
                        &from.to_string(),
                        self.now,
                        parent,
                        vec![("to", Value::from(to.to_string()))],
                    );
                }
            } else if deliveries.len() > 1 {
                self.tel.messages_duplicated.add(deliveries.len() as u64 - 1);
            }
            for (copy, delay) in deliveries.into_iter().enumerate() {
                // Wire mode: this copy travels as bytes — encode, maybe
                // corrupt, then decode → validate. A frame the pipeline
                // refuses never becomes a delivery event.
                let msg = if let Some(wire) = self.wire.as_mut() {
                    let mut frame = codec::encode(&msg);
                    let corrupted = wire.corruptor.maybe_corrupt(&mut frame);
                    if corrupted {
                        self.tel.frames_corrupted.inc();
                    }
                    match codec::decode(&frame)
                        .and_then(|decoded| codec::validate(&decoded).map(|()| decoded))
                    {
                        Ok(decoded) => {
                            if corrupted {
                                wire.corrupted_delivered += 1;
                            }
                            decoded
                        }
                        Err(err) => {
                            wire.frames_rejected += 1;
                            *wire.rejections_by_sender.entry(from).or_insert(0) += 1;
                            self.tel.frames_rejected.inc();
                            self.tel.events.emit(
                                TelemetryEvent::new(self.now, "frame_rejected")
                                    .with("from", from.to_string())
                                    .with("to", to.to_string())
                                    .with("cause", err.cause()),
                            );
                            if tracing {
                                self.tel.spans.instant_with(
                                    "frame-reject",
                                    &to.to_string(),
                                    self.now,
                                    parent,
                                    vec![("cause", Value::from(err.cause()))],
                                );
                            }
                            continue;
                        }
                    }
                } else {
                    msg.clone()
                };
                let at = self.now + delay;
                // A delivery landing before one already scheduled for the
                // same destination will arrive out of send order.
                let latest = self.latest_arrival.entry(to).or_insert(at);
                if at < *latest {
                    self.messages_reordered += 1;
                    self.tel.messages_reordered.inc();
                } else {
                    *latest = at;
                }
                // The delivery span covers [send, arrival] on the
                // *receiver's* track, so its duration is the link delay;
                // duplicated copies are marked and share the parent.
                let ctx = if tracing {
                    let mut fields = vec![("from", Value::from(from.to_string()))];
                    if copy > 0 {
                        fields.push(("dup", Value::from(true)));
                    }
                    self.tel.spans.span_with(
                        msg.kind(),
                        &to.to_string(),
                        self.now,
                        at,
                        parent,
                        fields,
                    )
                } else {
                    TraceCtx::NONE
                };
                self.push(at, EventKind::Deliver(to, msg, ctx));
            }
        }
    }

    fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Partition { a, b, duration } => {
                self.tel.events.emit(
                    TelemetryEvent::new(self.now, "partition")
                        .with("sides", format!("{}|{}", render_addrs(&a), render_addrs(&b)))
                        .with("until", self.now + duration),
                );
                self.partitions.push(ActivePartition {
                    a: a.into_iter().collect(),
                    b: b.into_iter().collect(),
                    until: self.now + duration,
                });
                // Healed partitions can never separate anything again;
                // drop them so long runs don't accumulate garbage.
                let now = self.now;
                self.partitions.retain(|p| p.until > now);
            }
            FaultKind::Crash { addr } => {
                if self.crashed.insert(addr) {
                    self.crashes += 1;
                    self.tel.crashes.inc();
                    self.tel.events.emit(
                        TelemetryEvent::new(self.now, "crash").with("addr", addr.to_string()),
                    );
                    if let Some(actor) = self.actors.get_mut(&addr) {
                        actor.on_crash(self.now);
                    }
                }
            }
            FaultKind::Restart { addr } => {
                if self.crashed.remove(&addr) {
                    self.restarts += 1;
                    self.tel.restarts.inc();
                    self.tel.events.emit(
                        TelemetryEvent::new(self.now, "restart").with("addr", addr.to_string()),
                    );
                    let mut outbox = Outbox::default();
                    if let Some(actor) = self.actors.get_mut(&addr) {
                        actor.on_restart(self.now, &mut outbox);
                    }
                    let ctx = if self.tel.spans.is_enabled() && !outbox.is_empty() {
                        self.tel.spans.instant(
                            "restart",
                            &addr.to_string(),
                            self.now,
                            TraceCtx::NONE,
                        )
                    } else {
                        TraceCtx::NONE
                    };
                    self.dispatch(addr, outbox, ctx);
                }
            }
            FaultKind::SetCorruption { probability } => {
                self.tel.events.emit(
                    TelemetryEvent::new(self.now, "corruption").with("probability", probability),
                );
                if let Some(wire) = self.wire.as_mut() {
                    wire.corruptor.set_probability(probability);
                }
            }
            FaultKind::SetAvailability { resource, availability } => {
                self.tel.events.emit(
                    TelemetryEvent::new(self.now, "availability")
                        .with("resource", resource)
                        .with("value", availability),
                );
                let msg = Message::AvailabilityUpdate { resource, availability, seq: 0 };
                // Root the whole dissemination chain in one fault span so
                // the update, its acks, and any retransmits read as a
                // single causal trace.
                let ctx = if self.tel.spans.is_enabled() {
                    self.tel.spans.instant_with(
                        "availability-fault",
                        "fault",
                        self.now,
                        TraceCtx::NONE,
                        vec![("resource", Value::from(resource))],
                    )
                } else {
                    TraceCtx::NONE
                };
                if self.actors.contains_key(&Address::ControlPlane) {
                    // Hand the command to the control plane, which
                    // disseminates it reliably over the network.
                    let now = self.now;
                    self.push(now, EventKind::Deliver(Address::ControlPlane, msg, ctx));
                } else {
                    // No control plane deployed: management-plane
                    // broadcast directly to every live actor (the legacy
                    // out-of-band path).
                    let mut addrs: Vec<Address> = self.actors.keys().copied().collect();
                    addrs.sort_unstable();
                    let now = self.now;
                    for addr in addrs {
                        self.push(now, EventKind::Deliver(addr, msg.clone(), ctx));
                    }
                }
            }
        }
    }

    /// Runs until the virtual clock reaches `t_end` (events at exactly
    /// `t_end` are *not* processed, so consecutive `run_until` calls
    /// compose).
    pub fn run_until(&mut self, t_end: f64) {
        while let Some(head) = self.queue.peek() {
            if head.time >= t_end {
                break;
            }
            let event = self.queue.pop().expect("peeked");
            self.now = event.time;
            let mut outbox = Outbox::default();
            match event.kind {
                EventKind::Tick(addr) => {
                    let _prof = self.tel.profiler.scope("tick");
                    if !self.crashed.contains(&addr) {
                        if let Some(actor) = self.actors.get_mut(&addr) {
                            actor.on_tick(self.now, &mut outbox);
                        }
                    }
                    // Reschedule even while crashed, so ticking resumes
                    // seamlessly after a restart. A deregistered actor has
                    // no schedule anymore: its tick chain ends here.
                    if let Some(sched) = self.schedules.get_mut(&addr) {
                        sched.next += sched.interval;
                        let next = sched.next;
                        self.push(next, EventKind::Tick(addr));
                    }
                    // A tick that produced messages roots a new trace;
                    // everything its messages cause links back here.
                    // Silent ticks record nothing.
                    let ctx = if self.tel.spans.is_enabled() && !outbox.is_empty() {
                        self.tel.spans.instant("tick", &addr.to_string(), self.now, TraceCtx::NONE)
                    } else {
                        TraceCtx::NONE
                    };
                    self.dispatch(addr, outbox, ctx);
                }
                EventKind::Deliver(addr, msg, ctx) => {
                    let _prof = self.tel.profiler.scope("dispatch");
                    if self.crashed.contains(&addr) {
                        self.dropped_at_crashed += 1;
                        self.tel.dropped_at_crashed.inc();
                        if self.tel.spans.is_enabled() {
                            self.tel.spans.instant(
                                "crashed-drop",
                                &addr.to_string(),
                                self.now,
                                ctx,
                            );
                        }
                    } else if let Some(actor) = self.actors.get_mut(&addr) {
                        actor.on_message(self.now, msg, &mut outbox);
                        // Replies (acks, forwarded updates) inherit the
                        // delivery's context: the chain stays one trace.
                        self.dispatch(addr, outbox, ctx);
                    }
                }
                EventKind::Fault(kind) => {
                    self.apply_fault(kind);
                }
            }
        }
        self.now = t_end;
    }

    /// Mutable access to a registered actor (for telemetry extraction in
    /// tests and drivers).
    pub fn actor_mut(&mut self, addr: Address) -> Option<&mut Box<dyn Actor>> {
        self.actors.get_mut(&addr)
    }

    /// Downcast access to the concrete actor registered at `addr`.
    pub fn actor_as<T: 'static>(&mut self, addr: Address) -> Option<&mut T> {
        self.actors.get_mut(&addr).and_then(|a| a.as_any().downcast_mut::<T>())
    }

    /// Delivers a control-plane message to an actor at the current virtual
    /// time, bypassing the network model (immediate and reliable).
    ///
    /// Queued after every event already scheduled at the current instant
    /// (FIFO among ties), and composes with [`run_until`]: injecting at
    /// the boundary time `t` of a previous `run_until(t)` makes the
    /// message processable by the next `run_until`.
    ///
    /// [`run_until`]: VirtualRuntime::run_until
    pub fn inject(&mut self, to: Address, msg: Message) {
        let now = self.now;
        let ctx = if self.tel.spans.is_enabled() {
            self.tel.spans.instant("inject", &to.to_string(), now, TraceCtx::NONE)
        } else {
            TraceCtx::NONE
        };
        self.push(now, EventKind::Deliver(to, msg, ctx));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every message back to a peer and counts ticks.
    #[derive(Debug)]
    struct Recorder {
        ticks: Vec<f64>,
        received: Vec<(f64, Message)>,
        reply_to: Option<Address>,
    }

    impl Actor for Recorder {
        fn on_tick(&mut self, now: f64, outbox: &mut Outbox) {
            self.ticks.push(now);
            if let Some(to) = self.reply_to {
                outbox.send(to, Message::Price { resource: 0, mu: now, congested: false });
            }
        }
        fn on_message(&mut self, now: f64, msg: Message, _outbox: &mut Outbox) {
            self.received.push((now, msg));
        }
        fn on_crash(&mut self, _now: f64) {
            self.ticks.clear();
            self.received.clear();
        }
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn recorder(reply_to: Option<Address>) -> Box<Recorder> {
        Box::new(Recorder { ticks: Vec::new(), received: Vec::new(), reply_to })
    }

    #[test]
    fn ticks_fire_at_schedule() {
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.register(Address::Resource(0), recorder(None), 10.0, 0.0);
        rt.run_until(35.0);
        assert_eq!(rt.now(), 35.0);
        assert_eq!(rt.messages_sent(), 0);
        let rec = rt.actor_as::<Recorder>(Address::Resource(0)).expect("registered");
        assert_eq!(rec.ticks, vec![0.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn messages_flow_between_actors() {
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 10.0, 0.0);
        rt.register(Address::Controller(0), recorder(None), 10.0, 5.0);
        rt.run_until(25.0);
        // Sender ticks at 0, 10, 20 => 3 messages.
        assert_eq!(rt.messages_sent(), 3);
        assert_eq!(rt.messages_dropped(), 0);
    }

    #[test]
    fn lossy_network_drops() {
        let mut rt = VirtualRuntime::new(NetworkModel::lossy(0.0, 0.0, 0.5), 3);
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 1.0, 0.0);
        rt.register(Address::Controller(0), recorder(None), 1000.0, 0.0);
        rt.run_until(1000.0);
        assert_eq!(rt.messages_sent(), 1000);
        let dropped = rt.messages_dropped();
        assert!((400..600).contains(&(dropped as usize)), "dropped {dropped}");
    }

    #[test]
    fn duplicating_network_delivers_extra_copies() {
        let mut rt = VirtualRuntime::new(NetworkModel::perfect().with_duplication(0.5), 5);
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 1.0, 0.0);
        rt.register(Address::Controller(0), recorder(None), 1000.0, 0.0);
        rt.run_until(1000.0);
        assert_eq!(rt.messages_sent(), 1000);
        let dup = rt.messages_duplicated();
        assert!((400..600).contains(&(dup as usize)), "duplicated {dup}");
        let rec = rt.actor_as::<Recorder>(Address::Controller(0)).expect("registered");
        assert_eq!(rec.received.len() as u64, 1000 + dup);
    }

    #[test]
    fn run_until_composes() {
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 10.0, 0.0);
        rt.register(Address::Controller(0), recorder(None), 10.0, 0.0);
        rt.run_until(10.0);
        let first = rt.messages_sent();
        rt.run_until(20.0);
        let second = rt.messages_sent();
        assert_eq!(first, 1, "tick at 0 only (event at 10 excluded)");
        assert_eq!(second, 2);
    }

    #[test]
    fn inject_delivers_fifo_among_ties_after_queued_deliveries() {
        // A network delivery and two injected messages all land at t=0;
        // processing must preserve enqueue order (the tick that produced
        // the network delivery ran first, so its message precedes the
        // injections, and the injections keep their relative order).
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 50.0, 0.0);
        rt.register(Address::Controller(0), recorder(None), 1000.0, 0.0);
        // Process the t=0 ticks; the resource's Price lands at t=0 too but
        // sits in the queue until the next run_until.
        rt.run_until(0.0 + f64::MIN_POSITIVE);
        rt.inject(
            Address::Controller(0),
            Message::AvailabilityUpdate { resource: 0, availability: 0.7, seq: 1 },
        );
        rt.inject(
            Address::Controller(0),
            Message::AvailabilityUpdate { resource: 0, availability: 0.6, seq: 2 },
        );
        rt.run_until(10.0);
        let rec = rt.actor_as::<Recorder>(Address::Controller(0)).expect("registered");
        assert_eq!(rec.received.len(), 3);
        assert!(
            matches!(rec.received[0].1, Message::Price { .. }),
            "queued network delivery must precede later injections: {:?}",
            rec.received
        );
        assert_eq!(
            rec.received[1].1,
            Message::AvailabilityUpdate { resource: 0, availability: 0.7, seq: 1 }
        );
        assert_eq!(
            rec.received[2].1,
            Message::AvailabilityUpdate { resource: 0, availability: 0.6, seq: 2 }
        );
        // All three were delivered at the same virtual instant.
        assert!(rec.received.iter().all(|(t, _)| *t < 1.0));
    }

    #[test]
    fn inject_survives_run_until_composition() {
        // Injecting exactly at a run_until boundary: the message sits at
        // t == boundary, which run_until(boundary) excludes, so the next
        // run_until picks it up — injections compose, none are lost.
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.register(Address::Controller(0), recorder(None), 7.0, 0.0);
        rt.run_until(10.0);
        rt.inject(
            Address::Controller(0),
            Message::AvailabilityUpdate { resource: 0, availability: 0.5, seq: 1 },
        );
        {
            let rec = rt.actor_as::<Recorder>(Address::Controller(0)).expect("registered");
            assert!(rec.received.is_empty(), "not yet processed");
        }
        rt.run_until(10.0); // same boundary: event at exactly t_end stays queued
        {
            let rec = rt.actor_as::<Recorder>(Address::Controller(0)).expect("registered");
            assert!(rec.received.is_empty(), "t_end events are excluded by contract");
        }
        rt.run_until(20.0);
        let rec = rt.actor_as::<Recorder>(Address::Controller(0)).expect("registered");
        assert_eq!(rec.received.len(), 1);
        assert_eq!(rec.received[0].0, 10.0, "delivered at the injection time");
    }

    #[test]
    fn crashed_actor_misses_ticks_and_messages_until_restart() {
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 10.0, 0.0);
        rt.register(Address::Controller(0), recorder(None), 10.0, 5.0);
        let plan = FaultPlan::new().crash_for(21.0, 20.0, Address::Controller(0));
        rt.schedule_faults(&plan);
        rt.run_until(60.0);
        assert_eq!(rt.crashes(), 1);
        assert_eq!(rt.restarts(), 1);
        assert!(!rt.is_crashed(Address::Controller(0)));
        // Messages sent at t=30 and t=40 hit a crashed receiver.
        assert_eq!(rt.dropped_at_crashed(), 2);
        let rec = rt.actor_as::<Recorder>(Address::Controller(0)).expect("registered");
        // on_crash cleared history; ticks resume at 45, 55 after restart,
        // and the receiver hears the t=50 price again.
        assert_eq!(rec.ticks, vec![45.0, 55.0]);
        assert_eq!(rec.received.len(), 1);
        assert_eq!(rec.received[0].0, 50.0);
    }

    #[test]
    fn partition_drops_messages_both_ways_then_heals() {
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 10.0, 0.0);
        rt.register(Address::Controller(0), recorder(Some(Address::Resource(0))), 10.0, 0.0);
        let plan = FaultPlan::new().partition(
            15.0,
            30.0,
            vec![Address::Resource(0)],
            vec![Address::Controller(0)],
        );
        rt.schedule_faults(&plan);
        rt.run_until(100.0);
        // Ticks at 20, 30, 40 fall inside [15, 45): 2 actors × 3 ticks.
        assert_eq!(rt.dropped_by_partition(), 6);
        assert!(!rt.is_partitioned(Address::Resource(0), Address::Controller(0)));
        let rec = rt.actor_as::<Recorder>(Address::Controller(0)).expect("registered");
        // 10 ticks total, 3 partitioned away.
        assert_eq!(rec.received.len(), 7);
    }

    #[test]
    fn in_flight_messages_survive_partition_onset() {
        // A message sent at t=0 with delay 10 is in flight when the
        // partition starts at t=5; like a real network, it still arrives.
        let mut rt = VirtualRuntime::new(NetworkModel::lossy(10.0, 0.0, 0.0), 0);
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 100.0, 0.0);
        rt.register(Address::Controller(0), recorder(None), 1000.0, 0.0);
        let plan = FaultPlan::new().partition(
            5.0,
            50.0,
            vec![Address::Resource(0)],
            vec![Address::Controller(0)],
        );
        rt.schedule_faults(&plan);
        rt.run_until(200.0);
        let rec = rt.actor_as::<Recorder>(Address::Controller(0)).expect("registered");
        let times: Vec<f64> = rec.received.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![10.0, 110.0], "t=0 send arrives; t=100 (partitioned) dropped");
        assert_eq!(rt.dropped_by_partition(), 0, "t=100 send is after heal at t=55");
    }

    #[test]
    fn deregister_ends_tick_chain_and_discards_deliveries() {
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 10.0, 0.0);
        rt.register(Address::Controller(0), recorder(None), 10.0, 5.0);
        rt.run_until(30.0);
        assert!(rt.is_registered(Address::Controller(0)));
        let gone = rt.deregister(Address::Controller(0));
        assert!(gone.is_some());
        assert!(!rt.is_registered(Address::Controller(0)));
        assert!(rt.deregister(Address::Controller(0)).is_none(), "second deregister is a no-op");
        // The resource keeps ticking and sending into the void; nothing
        // panics and the departed controller receives nothing.
        rt.run_until(100.0);
        let rec = rt.actor_as::<Recorder>(Address::Resource(0)).expect("still registered");
        assert_eq!(rec.ticks.len(), 10);
    }

    #[test]
    fn tracing_records_causal_chains_passively() {
        use lla_telemetry::SpanRecorder;
        // Delay-2 network: tick → price arrival is a 2 ms delivery span.
        let run = |spans: Option<SpanRecorder>| {
            let mut rt = VirtualRuntime::new(NetworkModel::lossy(2.0, 0.0, 0.0), 0);
            if let Some(s) = spans {
                rt.attach_telemetry(DistTelemetry::disabled().with_spans(s));
            }
            rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 10.0, 0.0);
            rt.register(Address::Controller(0), recorder(None), 10.0, 5.0);
            rt.run_until(35.0);
            rt.messages_sent()
        };
        let rec = SpanRecorder::recording();
        assert_eq!(run(Some(rec.clone())), run(None), "tracing must not change message flow");
        // Sender ticks at 0, 10, 20, 30 → 4 traces of tick → price; the
        // receiver's silent ticks record nothing.
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 8, "{spans:?}");
        assert_eq!(rec.trace_ids().len(), 4);
        assert_eq!(spans[0].name, "tick");
        assert_eq!(spans[1].name, "price");
        assert_eq!(spans[1].parent, spans[0].id);
        assert_eq!(spans[1].trace, spans[0].trace);
        assert_eq!(spans[1].duration(), 2.0, "delivery span duration is the link delay");
        let tracks = rec.track_names();
        assert_eq!(spans[0].track, tracks.iter().position(|t| t == "resource[0]").unwrap());
        assert_eq!(spans[1].track, tracks.iter().position(|t| t == "controller[0]").unwrap());
    }

    #[test]
    fn tracing_links_drops_to_their_parent() {
        use lla_telemetry::SpanRecorder;
        let rec = SpanRecorder::recording();
        // Total loss: every send becomes a drop span under its tick root.
        let mut rt = VirtualRuntime::new(NetworkModel::lossy(0.0, 0.0, 1.0), 0);
        rt.attach_telemetry(DistTelemetry::disabled().with_spans(rec.clone()));
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 10.0, 0.0);
        rt.register(Address::Controller(0), recorder(None), 1000.0, 0.0);
        rt.run_until(25.0);
        assert_eq!(rt.messages_dropped(), 3);
        let spans = rec.snapshot();
        let drops: Vec<_> = spans.iter().filter(|s| s.name == "drop").collect();
        assert_eq!(drops.len(), 3);
        for d in drops {
            assert_ne!(d.parent, 0, "drop must link to its tick root");
            assert_eq!(d.duration(), 0.0);
        }
    }

    #[test]
    fn tracing_marks_crashed_deliveries() {
        use lla_telemetry::SpanRecorder;
        let rec = SpanRecorder::recording();
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.attach_telemetry(DistTelemetry::disabled().with_spans(rec.clone()));
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 10.0, 0.0);
        rt.register(Address::Controller(0), recorder(None), 10.0, 5.0);
        rt.schedule_faults(&FaultPlan::new().crash_for(21.0, 20.0, Address::Controller(0)));
        rt.run_until(60.0);
        assert_eq!(rt.dropped_at_crashed(), 2);
        let spans = rec.snapshot();
        let crashed: Vec<_> = spans.iter().filter(|s| s.name == "crashed-drop").collect();
        assert_eq!(crashed.len(), 2);
        for c in crashed {
            assert_ne!(c.parent, 0, "crashed-drop links to the delivery span");
        }
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.register(Address::Resource(0), recorder(None), 1.0, 0.0);
        rt.register(Address::Resource(0), recorder(None), 1.0, 0.0);
    }

    #[test]
    fn wire_mode_without_corruption_is_bit_identical() {
        // Same seed, a deliberately messy network: the wire round-trip
        // must not change a single delivery, drop, duplicate, or arrival
        // time relative to struct passing.
        let run = |wire: bool| {
            let model =
                NetworkModel::lossy(1.0, 2.0, 0.1).with_duplication(0.1).with_reordering(0.1, 9.0);
            let mut rt = VirtualRuntime::new(model, 11);
            if wire {
                rt.enable_wire_mode(CorruptionModel::off(), 0xC0FFEE);
            }
            rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 5.0, 0.0);
            rt.register(Address::Controller(0), recorder(None), 5.0, 2.5);
            rt.run_until(500.0);
            let received = rt
                .actor_as::<Recorder>(Address::Controller(0))
                .expect("registered")
                .received
                .clone();
            (rt.messages_sent(), rt.messages_dropped(), rt.messages_reordered(), received)
        };
        let plain = run(false);
        let wired = run(true);
        assert_eq!(plain.0, wired.0);
        assert_eq!(plain.1, wired.1);
        assert_eq!(plain.2, wired.2);
        // Bit-exact payloads: compare the f64 bits of every delivery.
        assert_eq!(plain.3.len(), wired.3.len());
        for ((ta, ma), (tb, mb)) in plain.3.iter().zip(wired.3.iter()) {
            assert_eq!(ta.to_bits(), tb.to_bits());
            assert_eq!(ma, mb);
        }
    }

    #[test]
    fn corrupted_frames_are_rejected_and_attributed() {
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.enable_wire_mode(CorruptionModel::with_probability(1.0), 21);
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 1.0, 0.0);
        rt.register(Address::Controller(0), recorder(None), 1000.0, 0.0);
        rt.run_until(200.0);
        assert_eq!(rt.messages_sent(), 200);
        assert_eq!(rt.frames_corrupted(), 200, "p = 1 corrupts every frame");
        let rejected = rt.frames_rejected();
        let slipped = rt.corrupted_delivered();
        assert_eq!(rejected + slipped, 200, "every corrupted frame is rejected or slips as valid");
        assert!(rejected > 100, "most corruptions must be caught, got {rejected}");
        let book = rt.frame_rejections_by_sender();
        assert_eq!(book, vec![(Address::Resource(0), rejected)]);
        let rec = rt.actor_as::<Recorder>(Address::Controller(0)).expect("registered");
        assert_eq!(rec.received.len() as u64, slipped);
        // Whatever slipped through still carries only valid values.
        for (_, msg) in &rec.received {
            assert!(codec::validate(msg).is_ok());
        }
    }

    #[test]
    fn corruption_window_fault_opens_and_closes() {
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.enable_wire_mode(CorruptionModel::off(), 5);
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 1.0, 0.0);
        rt.register(Address::Controller(0), recorder(None), 1000.0, 0.0);
        rt.schedule_faults(&FaultPlan::new().corrupt_window(50.0, 50.0, 1.0));
        rt.run_until(200.0);
        // Ticks in [50, 100) are corrupted; everything else passes clean.
        assert_eq!(rt.frames_corrupted(), 50);
        let rec = rt.actor_as::<Recorder>(Address::Controller(0)).expect("registered");
        assert_eq!(rec.received.len() as u64, 150 + rt.corrupted_delivered());
    }

    #[test]
    fn quarantine_silences_sender_until_release() {
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.register(Address::Resource(0), recorder(Some(Address::Controller(0))), 10.0, 0.0);
        rt.register(Address::Controller(0), recorder(None), 1000.0, 0.0);
        rt.run_until(20.0);
        assert!(rt.quarantine(Address::Resource(0)), "newly quarantined");
        assert!(!rt.quarantine(Address::Resource(0)), "already quarantined");
        assert_eq!(rt.quarantined_agents(), vec![Address::Resource(0)]);
        rt.run_until(50.0);
        assert!(rt.release_quarantine(Address::Resource(0)));
        assert!(!rt.is_quarantined(Address::Resource(0)));
        rt.run_until(80.0);
        // Ticks at 0,10 delivered; 20,30,40 quarantined; 50,60,70 delivered.
        assert_eq!(rt.quarantine_drops(), 3);
        let rec = rt.actor_as::<Recorder>(Address::Controller(0)).expect("registered");
        assert_eq!(rec.received.len(), 5);
    }

    /// Replies to every delivery with an ack, so quarantine exemption is
    /// observable.
    #[derive(Debug)]
    struct Acker {
        acked: u64,
    }

    impl Actor for Acker {
        fn on_tick(&mut self, _now: f64, _outbox: &mut Outbox) {}
        fn on_message(&mut self, _now: f64, _msg: Message, outbox: &mut Outbox) {
            self.acked += 1;
            outbox.send(
                Address::ControlPlane,
                Message::AvailabilityAck {
                    resource: 0,
                    seq: self.acked,
                    from: Address::Resource(0),
                },
            );
        }
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn quarantined_sender_acks_still_pass() {
        let mut rt = VirtualRuntime::new(NetworkModel::perfect(), 0);
        rt.register(Address::Resource(0), Box::new(Acker { acked: 0 }), 1000.0, 0.0);
        rt.register(Address::ControlPlane, recorder(None), 1000.0, 0.0);
        rt.quarantine(Address::Resource(0));
        rt.inject(
            Address::Resource(0),
            Message::AvailabilityUpdate { resource: 0, availability: 0.5, seq: 1 },
        );
        rt.run_until(10.0);
        assert_eq!(rt.quarantine_drops(), 0, "acks are exempt");
        let rec = rt.actor_as::<Recorder>(Address::ControlPlane).expect("registered");
        assert_eq!(rec.received.len(), 1, "the ack reached the control plane");
    }
}
