//! Telemetry wiring for the distributed runtime and agents.
//!
//! [`DistTelemetry`] bundles the counter handles and the event log that
//! the runtime, the agents, and the [`DistributedLla`](crate::system::
//! DistributedLla) facade all share. Every handle is cheap to clone
//! (`Arc`s inside) and collapses to a branch-on-bool no-op when built
//! from a disabled hub, so the default deployment carries telemetry at
//! zero algorithmic cost — instrumentation is strictly *passive*: it
//! never sends messages, draws randomness, or touches a float the
//! algorithm uses, which is what keeps the perfect-network runs
//! bit-equivalent to the centralized optimizer.
//!
//! Frequency discipline: high-rate facts (messages, retransmits,
//! checkpoint saves, degraded ticks) are counters only; *transitions and
//! rare discrete facts* (crash, restart, partition, membership, shed,
//! checkpoint restore, staleness-freeze enter/exit) are additionally
//! emitted as [`Event`](lla_telemetry::Event)s stamped with the virtual
//! clock — which is why a fixed-seed chaos soak yields a byte-identical
//! JSONL event log on every run.

use lla_telemetry::{Counter, EventLog, MetricsRegistry, Profiler, SpanRecorder, TelemetryHub};

/// Shared counter handles + event log for the `lla-dist` layer.
#[derive(Debug, Clone)]
pub struct DistTelemetry {
    /// The registry every handle was created on — kept so per-agent
    /// [`AgentScope`](lla_telemetry::AgentScope)s and the fleet
    /// collector's export can register labeled series on the same
    /// surface. Disabled registries yield no-op handles, preserving the
    /// zero-cost default.
    pub registry: MetricsRegistry,
    /// Virtual-clock-stamped structured events.
    pub events: EventLog,
    /// Causal spans: one trace per tick-initiated message chain, stamped
    /// with the virtual clock (disabled by default; see
    /// [`with_spans`](Self::with_spans)).
    pub spans: SpanRecorder,
    /// Phase profiler for the event loop: `tick` / `dispatch` scopes per
    /// processed runtime event (disabled by default; see
    /// [`with_profiler`](Self::with_profiler)). Wall-clock only — never
    /// part of the deterministic virtual-clock exports.
    pub profiler: Profiler,
    /// Messages handed to the network.
    pub messages_sent: Counter,
    /// Messages dropped by random network loss.
    pub messages_dropped: Counter,
    /// Extra copies injected by network duplication.
    pub messages_duplicated: Counter,
    /// Deliveries scheduled to arrive before an earlier send to the same
    /// destination (out-of-order arrivals).
    pub messages_reordered: Counter,
    /// Messages dropped at send time by an active partition.
    pub dropped_by_partition: Counter,
    /// Deliveries discarded because the receiver was crashed.
    pub dropped_at_crashed: Counter,
    /// Crash faults executed.
    pub crashes: Counter,
    /// Restart faults executed.
    pub restarts: Counter,
    /// Controller checkpoints written to the store.
    pub checkpoint_saves: Counter,
    /// Controller restarts that restored from a checkpoint (failovers).
    pub checkpoint_restores: Counter,
    /// Transitions into staleness-TTL degraded mode (freezes).
    pub staleness_freezes: Counter,
    /// Ticks skipped while degraded (frozen, holding last-known-good).
    pub degraded_ticks: Counter,
    /// Reliable-dissemination retransmissions (unacked updates resent).
    pub retransmits: Counter,
    /// Pending updates abandoned after exhausting the retransmit budget.
    pub retransmit_give_ups: Counter,
    /// Checkpoint restores refused by epoch/shape validation.
    pub checkpoint_rejections: Counter,
    /// Membership changes applied through the facade.
    pub membership_changes: Counter,
    /// Tasks shed by the overload governor.
    pub sheds: Counter,
    /// Epoch applications where an agent's warm duals survived the jump.
    pub warm_start_hits: Counter,
    /// Remediation actions taken by the supervisor.
    pub remediations: Counter,
    /// Elastic replicas provisioned by the supervisor.
    pub replica_provisions: Counter,
    /// Elastic replicas retired by the supervisor.
    pub replica_retires: Counter,
    /// Frames corrupted in flight by injected network corruption.
    pub frames_corrupted: Counter,
    /// Frames refused by the wire codec's decode → validate pipeline.
    pub frames_rejected: Counter,
    /// Message values refused by agent-side numeric guardrails.
    pub values_rejected: Counter,
    /// Agents quarantined by the supervisor for repeated invalid traffic.
    pub agent_quarantines: Counter,
}

impl DistTelemetry {
    /// Registers the `lla_dist_*` metric family on `registry` and pairs
    /// it with `events`.
    pub fn new(registry: &MetricsRegistry, events: EventLog) -> Self {
        let c = |name, help| registry.counter(name, help);
        DistTelemetry {
            registry: registry.clone(),
            events,
            spans: SpanRecorder::disabled(),
            profiler: Profiler::disabled(),
            messages_sent: c("lla_dist_messages_sent_total", "messages handed to the network"),
            messages_dropped: c(
                "lla_dist_messages_dropped_total",
                "messages dropped by random network loss",
            ),
            messages_duplicated: c(
                "lla_dist_messages_duplicated_total",
                "extra copies injected by network duplication",
            ),
            messages_reordered: c(
                "lla_dist_messages_reordered_total",
                "deliveries scheduled before an earlier send to the same destination",
            ),
            dropped_by_partition: c(
                "lla_dist_messages_dropped_partition_total",
                "messages dropped at send time by an active partition",
            ),
            dropped_at_crashed: c(
                "lla_dist_messages_dropped_crashed_total",
                "deliveries discarded because the receiver was crashed",
            ),
            crashes: c("lla_dist_crashes_total", "crash faults executed"),
            restarts: c("lla_dist_restarts_total", "restart faults executed"),
            checkpoint_saves: c(
                "lla_dist_checkpoint_saves_total",
                "controller checkpoints written to the store",
            ),
            checkpoint_restores: c(
                "lla_dist_checkpoint_restores_total",
                "controller restarts restored from a checkpoint (failovers)",
            ),
            staleness_freezes: c(
                "lla_dist_staleness_freezes_total",
                "transitions into staleness-TTL degraded mode",
            ),
            degraded_ticks: c(
                "lla_dist_degraded_ticks_total",
                "agent ticks skipped while frozen on last-known-good prices",
            ),
            retransmits: c(
                "lla_dist_retransmits_total",
                "reliable-dissemination retransmissions (unacked updates resent)",
            ),
            retransmit_give_ups: c(
                "lla_dist_retransmit_give_ups_total",
                "pending updates abandoned after exhausting the retransmit budget",
            ),
            checkpoint_rejections: c(
                "lla_dist_checkpoint_rejections_total",
                "checkpoint restores refused by epoch/shape validation",
            ),
            membership_changes: c(
                "lla_dist_membership_changes_total",
                "membership changes applied through the facade",
            ),
            sheds: c("lla_dist_sheds_total", "tasks shed by the overload governor"),
            warm_start_hits: c(
                "lla_dist_warm_start_hits_total",
                "epoch applications where an agent's warm duals survived",
            ),
            remediations: c(
                "lla_dist_remediations_total",
                "remediation actions taken by the supervisor",
            ),
            replica_provisions: c(
                "lla_dist_replica_provisions_total",
                "elastic replicas provisioned by the supervisor",
            ),
            replica_retires: c(
                "lla_dist_replica_retires_total",
                "elastic replicas retired by the supervisor",
            ),
            frames_corrupted: c(
                "lla_dist_frames_corrupted_total",
                "frames corrupted in flight by injected network corruption",
            ),
            frames_rejected: c(
                "lla_dist_frames_rejected_total",
                "frames refused by the wire codec's decode/validate pipeline",
            ),
            values_rejected: c(
                "lla_dist_values_rejected_total",
                "message values refused by agent-side numeric guardrails",
            ),
            agent_quarantines: c(
                "lla_dist_agent_quarantines_total",
                "agents quarantined by the supervisor for repeated invalid traffic",
            ),
        }
    }

    /// Handles built from a [`TelemetryHub`] (registry + event log +
    /// span recorder — spans stay off unless the hub opted in).
    pub fn from_hub(hub: &TelemetryHub) -> Self {
        DistTelemetry::new(&hub.metrics, hub.events.clone()).with_spans(hub.spans.clone())
    }

    /// Replace the span channel (builder style) — usually with
    /// [`SpanRecorder::recording()`].
    #[must_use]
    pub fn with_spans(mut self, spans: SpanRecorder) -> Self {
        self.spans = spans;
        self
    }

    /// Replace the profiler channel (builder style) — usually with
    /// [`Profiler::recording()`].
    #[must_use]
    pub fn with_profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// All-no-op handles (the default for an un-instrumented deployment).
    pub fn disabled() -> Self {
        DistTelemetry::new(&MetricsRegistry::disabled(), EventLog::disabled())
    }
}
