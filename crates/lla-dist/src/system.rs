//! The distributed-LLA facade over the virtual-time runtime.

use crate::agents::{
    CheckpointStore, ControlPlaneAgent, ResourceAgent, RobustnessConfig, SharedLats, TaskController,
};
use crate::fault::{FaultKind, FaultPlan};
use crate::network::NetworkModel;
use crate::protocol::{Address, Message};
use crate::runtime::VirtualRuntime;
use lla_core::{Allocation, AllocationSettings, Problem, ResourceId, StepSizePolicy};
use parking_lot::Mutex;
use std::sync::Arc;

/// Configuration of a [`DistributedLla`] deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistConfig {
    /// Price step-size policy used by every agent.
    pub step_policy: StepSizePolicy,
    /// Latency-allocation solver settings used by every controller.
    pub allocation: AllocationSettings,
    /// The network between controllers and resources.
    pub network: NetworkModel,
    /// Seed for network randomness.
    pub seed: u64,
    /// Virtual length of one protocol round (ms). Controllers tick at
    /// `0.25·round`, resource agents at `0.75·round`; with one-way delays
    /// below a quarter round the protocol is *synchronous* and
    /// bit-equivalent to the centralized optimizer, with larger delays or
    /// loss the agents naturally fall back to stale state (the algorithm
    /// tolerates it).
    pub round_length: f64,
    /// Fraction of the round length by which each agent's tick interval
    /// and phase are randomly perturbed (seeded). `0` gives the
    /// synchronous round structure; positive values de-synchronize the
    /// agents entirely — a deterministic emulation of fully asynchronous
    /// operation.
    pub tick_jitter: f64,
    /// Fault-tolerance configuration for every agent (checkpoints,
    /// staleness TTL, control-plane retransmission). The default disables
    /// checkpointing and staleness degradation, preserving bit-equivalence
    /// with the centralized optimizer.
    pub robustness: RobustnessConfig,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            step_policy: StepSizePolicy::default(),
            allocation: AllocationSettings::default(),
            network: NetworkModel::perfect(),
            seed: 0,
            round_length: 10.0,
            tick_jitter: 0.0,
            robustness: RobustnessConfig::default(),
        }
    }
}

/// A full distributed deployment of LLA: one price agent per resource, one
/// controller per task, and a control-plane agent, exchanging messages
/// over a simulated network.
///
/// # Example
/// ```
/// use lla_dist::{DistConfig, DistributedLla};
/// use lla_core::{AllocationSettings, StepSizePolicy};
/// use lla_workloads::base_workload;
///
/// let mut dist = DistributedLla::new(base_workload(), DistConfig {
///     allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
///     ..DistConfig::default()
/// });
/// dist.run_rounds(600);
/// assert!(dist.problem().is_feasible(dist.allocation().lats(), 1e-3));
/// ```
#[derive(Debug)]
pub struct DistributedLla {
    problem: Arc<Problem>,
    runtime: VirtualRuntime,
    telemetry: SharedLats,
    checkpoints: CheckpointStore,
    config: DistConfig,
    rounds: usize,
    utilities: Vec<f64>,
    /// `(at, resource, availability)` of scheduled availability faults not
    /// yet reflected in the facade's own problem copy.
    pending_availability: Vec<(f64, usize, f64)>,
}

impl DistributedLla {
    /// Deploys agents for every resource and task of `problem`, plus the
    /// control-plane agent.
    pub fn new(problem: Problem, config: DistConfig) -> Self {
        let problem = Arc::new(problem);
        let telemetry: SharedLats = Arc::new(Mutex::new(problem.initial_allocation()));
        let checkpoints = CheckpointStore::new();
        let mut runtime = VirtualRuntime::new(config.network, config.seed);

        use rand::{Rng, SeedableRng};
        let mut jitter_rng = rand::rngs::StdRng::seed_from_u64(config.seed.wrapping_add(0xa5));
        let mut jittered = |base: f64| -> (f64, f64) {
            if config.tick_jitter > 0.0 {
                let j = config.tick_jitter * config.round_length;
                (
                    (config.round_length + jitter_rng.gen_range(-j..j)).max(1e-3),
                    base + jitter_rng.gen_range(0.0..j),
                )
            } else {
                (config.round_length, base)
            }
        };

        let controller_phase = 0.25 * config.round_length;
        let resource_phase = 0.75 * config.round_length;
        for t in 0..problem.tasks().len() {
            let (interval, phase) = jittered(controller_phase);
            runtime.register(
                Address::Controller(t),
                Box::new(
                    TaskController::new(
                        t,
                        (*problem).clone(),
                        config.step_policy,
                        config.allocation,
                        Arc::clone(&telemetry),
                    )
                    .with_robustness(config.robustness)
                    .with_checkpoints(checkpoints.clone()),
                ),
                interval,
                phase,
            );
        }
        for r in 0..problem.resources().len() {
            let (interval, phase) = jittered(resource_phase);
            runtime.register(
                Address::Resource(r),
                Box::new(
                    ResourceAgent::new(r, (*problem).clone(), config.step_policy)
                        .with_robustness(config.robustness),
                ),
                interval,
                phase,
            );
        }
        // The control plane ticks at the retransmission interval; idle it
        // sends nothing, so fault-free runs are unaffected.
        runtime.register(
            Address::ControlPlane,
            Box::new(ControlPlaneAgent::new(problem.tasks().len())),
            config.robustness.retransmit_interval,
            0.5 * config.round_length,
        );

        DistributedLla {
            problem,
            runtime,
            telemetry,
            checkpoints,
            config,
            rounds: 0,
            utilities: Vec::new(),
            pending_availability: Vec::new(),
        }
    }

    /// The deployed problem.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The underlying virtual runtime (fault counters, clock).
    pub fn runtime(&self) -> &VirtualRuntime {
        &self.runtime
    }

    /// Mutable access to the runtime — for inspecting agents via
    /// [`VirtualRuntime::actor_as`] in tests and drivers.
    pub fn runtime_mut(&mut self) -> &mut VirtualRuntime {
        &mut self.runtime
    }

    /// The stable store the controllers checkpoint into.
    pub fn checkpoints(&self) -> &CheckpointStore {
        &self.checkpoints
    }

    /// Schedules a fault plan on the runtime's virtual clock. Faults fire
    /// as their times are reached by [`run_rounds`](Self::run_rounds).
    pub fn schedule_faults(&mut self, plan: &FaultPlan) {
        for event in plan.events() {
            if let FaultKind::SetAvailability { resource, availability } = event.kind {
                self.pending_availability.push((event.at, resource, availability));
            }
        }
        self.runtime.schedule_faults(plan);
    }

    /// Runs `n` protocol rounds, recording the system utility after each.
    pub fn run_rounds(&mut self, n: usize) {
        for _ in 0..n {
            self.rounds += 1;
            let t_end = self.rounds as f64 * self.config.round_length;
            self.runtime.run_until(t_end);
            // Mirror fired availability faults into the facade's problem
            // copy, so feasibility/usage reporting sees them.
            let problem = Arc::make_mut(&mut self.problem);
            self.pending_availability.retain(|&(at, resource, availability)| {
                if at < t_end {
                    problem.set_resource_availability(
                        problem.resources()[resource].id(),
                        availability,
                    );
                    false
                } else {
                    true
                }
            });
            self.utilities.push(self.problem.total_utility(&self.telemetry.lock()));
        }
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The current allocation as reported by the controllers.
    pub fn allocation(&self) -> Allocation {
        Allocation::from_lats(self.telemetry.lock().clone())
    }

    /// The current total utility.
    pub fn utility(&self) -> f64 {
        self.problem.total_utility(&self.telemetry.lock())
    }

    /// Utility after each completed round.
    pub fn utilities(&self) -> &[f64] {
        &self.utilities
    }

    /// Total messages handed to the network.
    pub fn messages_sent(&self) -> u64 {
        self.runtime.messages_sent()
    }

    /// Messages dropped by the network.
    pub fn messages_dropped(&self) -> u64 {
        self.runtime.messages_dropped()
    }

    /// Announces a change of resource availability through the
    /// control-plane agent: the update is assigned a sequence number and
    /// disseminated over the (possibly lossy) network with
    /// retransmit-until-ack, so it reaches every agent even under heavy
    /// loss. LLA re-converges from the current prices.
    pub fn set_resource_availability(&mut self, r: ResourceId, availability: f64) {
        Arc::make_mut(&mut self.problem).set_resource_availability(r, availability);
        self.runtime.inject(
            Address::ControlPlane,
            Message::AvailabilityUpdate { resource: r.index(), availability, seq: 0 },
        );
    }

    /// Announces a change of resource availability out of band: delivered
    /// to every agent immediately and reliably, bypassing both the network
    /// model and the control plane. This is the idealized baseline the
    /// reliable path is tested against.
    pub fn set_resource_availability_bypass(&mut self, r: ResourceId, availability: f64) {
        Arc::make_mut(&mut self.problem).set_resource_availability(r, availability);
        let msg = Message::AvailabilityUpdate { resource: r.index(), availability, seq: 0 };
        self.runtime.inject(Address::Resource(r.index()), msg.clone());
        for t in 0..self.problem.tasks().len() {
            self.runtime.inject(Address::Controller(t), msg.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lla_core::{
        Optimizer, OptimizerConfig, Resource, ResourceId, ResourceKind, TaskBuilder, TaskId,
    };

    fn problem() -> Problem {
        let resources = vec![
            Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
            Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
        ];
        let mut tasks = Vec::new();
        for (i, c) in [(0usize, 40.0), (1usize, 60.0)] {
            let mut b = TaskBuilder::new(format!("t{i}"));
            let a = b.subtask("a", ResourceId::new(0), 2.0);
            let d = b.subtask("b", ResourceId::new(1), 3.0);
            b.edge(a, d).unwrap();
            b.critical_time(c);
            tasks.push(b.build(TaskId::new(i)).unwrap());
        }
        Problem::new(resources, tasks).unwrap()
    }

    fn config() -> DistConfig {
        DistConfig {
            allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
            ..DistConfig::default()
        }
    }

    #[test]
    fn perfect_network_matches_centralized_exactly() {
        let rounds = 300;
        let mut dist = DistributedLla::new(problem(), config());
        dist.run_rounds(rounds);

        let mut opt = Optimizer::new(
            problem(),
            OptimizerConfig {
                allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
                ..OptimizerConfig::default()
            },
        );
        let reports = opt.run(rounds);
        for (round, (d, c)) in dist.utilities().iter().zip(reports.iter()).enumerate() {
            assert!(
                (d - c.utility).abs() < 1e-9,
                "round {round}: distributed {d} != centralized {}",
                c.utility
            );
        }
    }

    #[test]
    fn lossy_network_still_converges_close() {
        let mut dist = DistributedLla::new(
            problem(),
            DistConfig { network: NetworkModel::lossy(0.5, 1.0, 0.1), seed: 11, ..config() },
        );
        dist.run_rounds(1_500);
        assert!(dist.messages_dropped() > 0, "loss model must be active");

        let mut opt = Optimizer::new(
            problem(),
            OptimizerConfig {
                allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
                ..OptimizerConfig::default()
            },
        );
        opt.run_to_convergence(5_000);
        let reference = opt.utility();
        let achieved = dist.utility();
        assert!(
            (achieved - reference).abs() <= 0.05 * reference.abs().max(1.0),
            "lossy distributed {achieved} too far from centralized {reference}"
        );
        assert!(dist.problem().is_feasible(dist.allocation().lats(), 1e-2));
    }

    #[test]
    fn delayed_network_converges() {
        // One-round delays => agents work with stale prices.
        let mut dist = DistributedLla::new(
            problem(),
            DistConfig { network: NetworkModel::lossy(12.0, 5.0, 0.0), seed: 3, ..config() },
        );
        dist.run_rounds(1_500);
        assert!(dist.problem().is_feasible(dist.allocation().lats(), 1e-2));
    }

    #[test]
    fn availability_update_reconverges_distributed() {
        let mut dist = DistributedLla::new(problem(), config());
        dist.run_rounds(800);
        let before = dist.utility();

        dist.set_resource_availability(ResourceId::new(0), 0.5);
        dist.run_rounds(1_500);
        let after = dist.utility();
        assert!(after <= before + 1e-6, "losing capacity cannot raise utility: {after} > {before}");
        // The new allocation respects the reduced availability.
        let alloc = dist.allocation();
        let usage = dist.problem().resource_usage(ResourceId::new(0), alloc.lats());
        assert!(usage <= 0.5 + 1e-3, "usage {usage} exceeds degraded availability");

        // And it matches a centralized optimizer subjected to the same
        // change after the same number of iterations.
        let mut opt = Optimizer::new(
            problem(),
            OptimizerConfig {
                allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
                ..OptimizerConfig::default()
            },
        );
        opt.run(800);
        opt.set_resource_availability(ResourceId::new(0), 0.5);
        opt.run(1_500);
        assert!(
            (dist.utility() - opt.utility()).abs() < 1e-9,
            "distributed {} vs centralized {} after availability change",
            dist.utility(),
            opt.utility()
        );
    }

    #[test]
    fn reliable_path_matches_bypass_on_perfect_network() {
        // Over a perfect network the control-plane dissemination applies
        // the update at the same virtual instant as the out-of-band
        // bypass, so the runs stay bit-equal round by round.
        let mut reliable = DistributedLla::new(problem(), config());
        let mut bypass = DistributedLla::new(problem(), config());
        reliable.run_rounds(400);
        bypass.run_rounds(400);
        reliable.set_resource_availability(ResourceId::new(0), 0.5);
        bypass.set_resource_availability_bypass(ResourceId::new(0), 0.5);
        reliable.run_rounds(400);
        bypass.run_rounds(400);
        for (round, (a, b)) in
            reliable.utilities().iter().zip(bypass.utilities().iter()).enumerate()
        {
            assert!((a - b).abs() < 1e-12, "round {round}: reliable {a} != bypass {b}");
        }
    }

    #[test]
    fn desynchronized_ticks_still_converge() {
        // Fully asynchronous agents: every interval and phase jittered by
        // up to 40% of a round. Prices and latencies are arbitrarily stale
        // relative to each other, yet the dual dynamics still settle on a
        // feasible allocation near the synchronous optimum.
        let mut sync = DistributedLla::new(problem(), config());
        sync.run_rounds(2_000);
        let mut async_ =
            DistributedLla::new(problem(), DistConfig { tick_jitter: 0.4, seed: 5, ..config() });
        async_.run_rounds(2_000);
        let gap = (async_.utility() - sync.utility()).abs() / sync.utility().abs().max(1.0);
        assert!(
            gap < 0.05,
            "async gap {gap} too large: {} vs {}",
            async_.utility(),
            sync.utility()
        );
        assert!(async_.problem().is_feasible(async_.allocation().lats(), 1e-2));
    }

    #[test]
    fn message_counting() {
        let mut dist = DistributedLla::new(problem(), config());
        dist.run_rounds(10);
        // Per round: 2 controllers × 2 latency msgs + 2 resources × (tasks
        // hosted) price msgs = 4 + 4. The idle control plane sends nothing.
        assert_eq!(dist.messages_sent(), 80);
        assert_eq!(dist.messages_dropped(), 0);
    }

    #[test]
    fn scheduled_availability_fault_reaches_facade_problem() {
        let mut dist = DistributedLla::new(problem(), config());
        let plan = FaultPlan::new().set_availability(95.0, 0, 0.5);
        dist.schedule_faults(&plan);
        dist.run_rounds(8);
        assert!(
            (dist.problem().resources()[0].availability() - 1.0).abs() < 1e-12,
            "fault at 95 must not fire before round 10"
        );
        dist.run_rounds(800);
        assert!((dist.problem().resources()[0].availability() - 0.5).abs() < 1e-12);
        let usage = dist.problem().resource_usage(ResourceId::new(0), dist.allocation().lats());
        assert!(usage <= 0.5 + 1e-3, "usage {usage} exceeds degraded availability");
    }
}
