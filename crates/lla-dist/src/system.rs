//! The distributed-LLA facade over the virtual-time runtime.

use crate::agents::{
    CheckpointStore, ControlPlaneAgent, MembershipCause, ResourceAgent, RobustnessConfig,
    SharedLats, TaskController, TopologyEpoch, TopologyStore,
};
use crate::fault::{FaultKind, FaultPlan};
use crate::fleet::{AgentTelemetry, CollectorAgent};
use crate::network::NetworkModel;
use crate::protocol::{Address, Message};
use crate::runtime::VirtualRuntime;
use crate::telemetry::DistTelemetry;
use lla_core::{
    Allocation, AllocationSettings, ModelError, Problem, Resource, ResourceId, StepSizePolicy,
    TaskBuilder, TaskId,
};
use lla_telemetry::{DiagSample, Event as TelemetryEvent};
use parking_lot::Mutex;
use std::sync::Arc;

/// Configuration of a [`DistributedLla`] deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistConfig {
    /// Price step-size policy used by every agent.
    pub step_policy: StepSizePolicy,
    /// Latency-allocation solver settings used by every controller.
    pub allocation: AllocationSettings,
    /// The network between controllers and resources.
    pub network: NetworkModel,
    /// Seed for network randomness.
    pub seed: u64,
    /// Virtual length of one protocol round (ms). Controllers tick at
    /// `0.25·round`, resource agents at `0.75·round`; with one-way delays
    /// below a quarter round the protocol is *synchronous* and
    /// bit-equivalent to the centralized optimizer, with larger delays or
    /// loss the agents naturally fall back to stale state (the algorithm
    /// tolerates it).
    pub round_length: f64,
    /// Fraction of the round length by which each agent's tick interval
    /// and phase are randomly perturbed (seeded). `0` gives the
    /// synchronous round structure; positive values de-synchronize the
    /// agents entirely — a deterministic emulation of fully asynchronous
    /// operation.
    pub tick_jitter: f64,
    /// Fault-tolerance configuration for every agent (checkpoints,
    /// staleness TTL, control-plane retransmission). The default disables
    /// checkpointing and staleness degradation, preserving bit-equivalence
    /// with the centralized optimizer.
    pub robustness: RobustnessConfig,
    /// When `true`, every delivery round-trips through the validated wire
    /// codec ([`crate::codec`]): encode → (optional corruption) → decode,
    /// with malformed frames rejected and counted. With zero corruption
    /// the round trip is bit-exact, so a wire-mode run is bit-identical
    /// to a struct-passing one (tested).
    pub wire_mode: bool,
    /// Per-copy frame-corruption probability in wire mode, in `[0, 1]`.
    /// Ignored unless [`wire_mode`](Self::wire_mode) is on.
    pub corruption: f64,
    /// Virtual ms between per-agent telemetry reports; `0.0` (the
    /// default) disables the fleet telemetry plane entirely — no
    /// collector is registered and no report is ever sent, so a default
    /// deployment is byte-identical to one without the plane. When
    /// positive, every agent ships delta-encoded, watermarked
    /// [`Message::TelemetryReport`]s to the
    /// [`CollectorAgent`](crate::fleet::CollectorAgent) at this cadence
    /// over the same (lossy, reordering, partitionable) network as
    /// protocol traffic.
    pub report_cadence: f64,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            step_policy: StepSizePolicy::default(),
            allocation: AllocationSettings::default(),
            network: NetworkModel::perfect(),
            seed: 0,
            round_length: 10.0,
            tick_jitter: 0.0,
            robustness: RobustnessConfig::default(),
            wire_mode: false,
            corruption: 0.0,
            report_cadence: 0.0,
        }
    }
}

/// A full distributed deployment of LLA: one price agent per resource, one
/// controller per task, and a control-plane agent, exchanging messages
/// over a simulated network.
///
/// # Example
/// ```
/// use lla_dist::{DistConfig, DistributedLla};
/// use lla_core::{AllocationSettings, StepSizePolicy};
/// use lla_workloads::base_workload;
///
/// let mut dist = DistributedLla::new(base_workload(), DistConfig {
///     allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
///     ..DistConfig::default()
/// });
/// dist.run_rounds(600);
/// assert!(dist.problem().is_feasible(dist.allocation().lats(), 1e-3));
/// ```
#[derive(Debug)]
pub struct DistributedLla {
    problem: Arc<Problem>,
    runtime: VirtualRuntime,
    telemetry: SharedLats,
    checkpoints: CheckpointStore,
    topology: TopologyStore,
    /// Current topology epoch (0 = initial deployment).
    epoch: u64,
    /// `task_slots[dense task index] = slot`; slots are never reused.
    task_slots: Vec<usize>,
    /// `resource_slots[dense resource index] = slot`.
    resource_slots: Vec<usize>,
    next_task_slot: usize,
    next_resource_slot: usize,
    config: DistConfig,
    rounds: usize,
    utilities: Vec<f64>,
    /// `(at, resource slot, availability)` of scheduled availability
    /// faults not yet reflected in the facade's own problem copy.
    pending_availability: Vec<(f64, usize, f64)>,
    /// Prices observed at the previous [`diag_sample`](Self::diag_sample)
    /// call, for the relative-step statistic.
    last_diag_prices: Vec<f64>,
    tel: DistTelemetry,
}

impl DistributedLla {
    /// Deploys agents for every resource and task of `problem`, plus the
    /// control-plane agent. Telemetry is disabled; use
    /// [`with_telemetry`](Self::with_telemetry) to instrument the
    /// deployment.
    pub fn new(problem: Problem, config: DistConfig) -> Self {
        DistributedLla::with_telemetry(problem, config, DistTelemetry::disabled())
    }

    /// Like [`new`](Self::new), but every layer — the runtime, all
    /// agents, and the facade's membership operations — shares the given
    /// telemetry handles. Instrumentation is passive (counters and
    /// virtual-clock events only), so an instrumented run is
    /// bit-identical to an un-instrumented one.
    pub fn with_telemetry(problem: Problem, config: DistConfig, tel: DistTelemetry) -> Self {
        let problem = Arc::new(problem);
        let telemetry: SharedLats = Arc::new(Mutex::new(problem.initial_allocation()));
        let checkpoints = CheckpointStore::new();
        let topology = TopologyStore::new();
        let task_slots: Vec<usize> = (0..problem.tasks().len()).collect();
        let resource_slots: Vec<usize> = (0..problem.resources().len()).collect();
        topology.push(TopologyEpoch {
            epoch: 0,
            cause: MembershipCause::Genesis,
            problem: (*problem).clone(),
            task_slots: task_slots.clone(),
            resource_slots: resource_slots.clone(),
        });
        let mut runtime = VirtualRuntime::new(config.network, config.seed);
        runtime.attach_telemetry(tel.clone());
        if config.wire_mode {
            // The corruptor's stream is derived from — but independent of —
            // the network sampler's, so opening a corruption window never
            // shifts delay/loss decisions.
            runtime.enable_wire_mode(
                crate::network::CorruptionModel::with_probability(config.corruption),
                config.seed.wrapping_add(0xC0DEC),
            );
        }

        use rand::{Rng, SeedableRng};
        let mut jitter_rng = rand::rngs::StdRng::seed_from_u64(config.seed.wrapping_add(0xa5));
        let mut jittered = |base: f64| -> (f64, f64) {
            if config.tick_jitter > 0.0 {
                let j = config.tick_jitter * config.round_length;
                (
                    (config.round_length + jitter_rng.gen_range(-j..j)).max(1e-3),
                    base + jitter_rng.gen_range(0.0..j),
                )
            } else {
                (config.round_length, base)
            }
        };

        let controller_phase = 0.25 * config.round_length;
        let resource_phase = 0.75 * config.round_length;
        for t in 0..problem.tasks().len() {
            let (interval, phase) = jittered(controller_phase);
            runtime.register(
                Address::Controller(t),
                Box::new(
                    TaskController::new(
                        t,
                        (*problem).clone(),
                        config.step_policy,
                        config.allocation,
                        Arc::clone(&telemetry),
                    )
                    .with_robustness(config.robustness)
                    .with_checkpoints(checkpoints.clone())
                    .with_membership(topology.clone(), t, 0)
                    .with_telemetry(tel.clone())
                    .with_fleet(AgentTelemetry::new(
                        &tel,
                        Address::Controller(t),
                        config.report_cadence,
                    )),
                ),
                interval,
                phase,
            );
        }
        for r in 0..problem.resources().len() {
            let (interval, phase) = jittered(resource_phase);
            runtime.register(
                Address::Resource(r),
                Box::new(
                    ResourceAgent::new(r, (*problem).clone(), config.step_policy)
                        .with_robustness(config.robustness)
                        .with_membership(topology.clone(), r, 0)
                        .with_telemetry(tel.clone())
                        .with_fleet(AgentTelemetry::new(
                            &tel,
                            Address::Resource(r),
                            config.report_cadence,
                        )),
                ),
                interval,
                phase,
            );
        }
        // The control plane ticks at the retransmission interval; idle it
        // sends nothing, so fault-free runs are unaffected.
        runtime.register(
            Address::ControlPlane,
            Box::new(
                ControlPlaneAgent::new(problem.tasks().len(), problem.resources().len())
                    .with_robustness(config.robustness)
                    .with_telemetry(tel.clone()),
            ),
            config.robustness.retransmit_interval,
            0.5 * config.round_length,
        );
        if config.report_cadence > 0.0 {
            // The collector ticks late in the round (phase 0.9·round) so
            // each evaluation sees the reports shipped earlier that round.
            // It never sends, so registering it cannot perturb the
            // protocol; with cadence 0 it is not registered at all and the
            // deployment is byte-identical to a pre-fleet one.
            runtime.register(
                Address::Collector,
                Box::new(CollectorAgent::new(
                    tel.clone(),
                    crate::fleet::default_slo_rules(config.round_length),
                )),
                config.round_length,
                0.9 * config.round_length,
            );
        }

        let next_task_slot = task_slots.len();
        let next_resource_slot = resource_slots.len();
        DistributedLla {
            problem,
            runtime,
            telemetry,
            checkpoints,
            topology,
            epoch: 0,
            task_slots,
            resource_slots,
            next_task_slot,
            next_resource_slot,
            config,
            rounds: 0,
            utilities: Vec::new(),
            pending_availability: Vec::new(),
            last_diag_prices: Vec::new(),
            tel,
        }
    }

    /// The telemetry handles shared across the deployment.
    pub fn dist_telemetry(&self) -> &DistTelemetry {
        &self.tel
    }

    /// The deployed problem.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The deployment configuration.
    pub fn config(&self) -> &DistConfig {
        &self.config
    }

    /// Current price `μ` of the live resource agent in `slot` (`None`
    /// while the agent is crashed or the slot is dormant).
    pub fn resource_price(&mut self, slot: usize) -> Option<f64> {
        self.runtime.actor_as::<ResourceAgent>(Address::Resource(slot)).map(|a| a.mu())
    }

    /// The underlying virtual runtime (fault counters, clock).
    pub fn runtime(&self) -> &VirtualRuntime {
        &self.runtime
    }

    /// Mutable access to the runtime — for inspecting agents via
    /// [`VirtualRuntime::actor_as`] in tests and drivers.
    pub fn runtime_mut(&mut self) -> &mut VirtualRuntime {
        &mut self.runtime
    }

    /// The stable store the controllers checkpoint into.
    pub fn checkpoints(&self) -> &CheckpointStore {
        &self.checkpoints
    }

    /// Schedules a fault plan on the runtime's virtual clock. Faults fire
    /// as their times are reached by [`run_rounds`](Self::run_rounds).
    pub fn schedule_faults(&mut self, plan: &FaultPlan) {
        for event in plan.events() {
            if let FaultKind::SetAvailability { resource, availability } = event.kind {
                self.pending_availability.push((event.at, resource, availability));
            }
        }
        self.runtime.schedule_faults(plan);
    }

    /// Runs `n` protocol rounds, recording the system utility after each.
    pub fn run_rounds(&mut self, n: usize) {
        for _ in 0..n {
            self.rounds += 1;
            let t_end = self.rounds as f64 * self.config.round_length;
            self.runtime.run_until(t_end);
            // Mirror fired availability faults into the facade's problem
            // copy, so feasibility/usage reporting sees them. Fault plans
            // address resources by slot.
            let problem = Arc::make_mut(&mut self.problem);
            let resource_slots = &self.resource_slots;
            self.pending_availability.retain(|&(at, slot, availability)| {
                if at < t_end {
                    if let Some(dense) = resource_slots.iter().position(|&s| s == slot) {
                        problem
                            .set_resource_availability(
                                problem.resources()[dense].id(),
                                availability,
                            )
                            .expect("fault plans validate availability at construction");
                    }
                    false
                } else {
                    true
                }
            });
            let lats = self.dense_lats();
            self.utilities.push(self.problem.total_utility(&lats));
        }
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The telemetry rows of the *live* tasks, in dense order. Telemetry
    /// is indexed by slot (rows only ever grow); departed tasks keep
    /// their last row but drop out of the dense view.
    fn dense_lats(&self) -> Vec<Vec<f64>> {
        let tel = self.telemetry.lock();
        self.task_slots.iter().map(|&s| tel[s].clone()).collect()
    }

    /// The current allocation as reported by the controllers.
    pub fn allocation(&self) -> Allocation {
        Allocation::from_lats(self.dense_lats())
    }

    /// The current total utility.
    pub fn utility(&self) -> f64 {
        self.problem.total_utility(&self.dense_lats())
    }

    /// Utility after each completed round.
    pub fn utilities(&self) -> &[f64] {
        &self.utilities
    }

    /// One [`DiagSample`] of the deployment's current state, for the
    /// [`DiagnosticsEngine`](lla_telemetry::DiagnosticsEngine). Take one
    /// per round (or every few rounds) and push it into the engine.
    ///
    /// Prices come from the live resource agents; `frozen_agents` counts
    /// agents currently in staleness-TTL degraded mode; the relative
    /// price step is measured between consecutive `diag_sample` calls.
    /// `gamma_doublings` sums the step-adaptation growth events of every
    /// live agent's price state — an agent crash resets its contribution,
    /// which the engine's saturating window delta absorbs.
    pub fn diag_sample(&mut self) -> DiagSample {
        let lats = self.dense_lats();
        let mut worst = 0.0f64;
        for r in self.problem.resources() {
            let usage = self.problem.resource_usage(r.id(), &lats);
            let factor = if r.availability() > 0.0 {
                usage / r.availability()
            } else if usage > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            worst = worst.max(factor);
        }
        for (t, task) in self.problem.tasks().iter().enumerate() {
            if task.critical_time() > 0.0 {
                let (_, cp) = task.graph().critical_path(&lats[t]);
                worst = worst.max(cp / task.critical_time());
            }
        }
        let mut frozen = 0u64;
        let mut doublings = 0u64;
        let mut prices = Vec::with_capacity(self.resource_slots.len());
        for &slot in &self.resource_slots {
            match self.runtime.actor_as::<ResourceAgent>(Address::Resource(slot)) {
                Some(agent) => {
                    prices.push(agent.mu());
                    doublings += agent.gamma_doublings();
                    if agent.is_degraded() {
                        frozen += 1;
                    }
                }
                None => prices.push(f64::NAN),
            }
        }
        for &slot in &self.task_slots {
            if let Some(ctl) = self.runtime.actor_as::<TaskController>(Address::Controller(slot)) {
                doublings += ctl.gamma_doublings();
                if ctl.is_degraded() {
                    frozen += 1;
                }
            }
        }
        let max_rel_price_step = if self.last_diag_prices.len() == prices.len() {
            prices
                .iter()
                .zip(&self.last_diag_prices)
                .map(|(new, old)| (new - old).abs() / (1.0 + new.abs()))
                .fold(0.0f64, f64::max)
        } else {
            0.0
        };
        self.last_diag_prices = prices.clone();
        DiagSample {
            iteration: self.rounds as u64,
            utility: self.utility(),
            worst_violation_factor: worst,
            gamma_doublings: doublings,
            max_rel_price_step,
            frozen_agents: frozen,
            prices,
        }
    }

    /// Total messages handed to the network.
    pub fn messages_sent(&self) -> u64 {
        self.runtime.messages_sent()
    }

    /// Messages dropped by the network.
    pub fn messages_dropped(&self) -> u64 {
        self.runtime.messages_dropped()
    }

    /// Frames the decode → validate pipeline refused (wire mode only).
    pub fn frames_rejected(&self) -> u64 {
        self.runtime.frames_rejected()
    }

    /// Frames mutated in flight by injected corruption (wire mode only).
    pub fn frames_corrupted(&self) -> u64 {
        self.runtime.frames_corrupted()
    }

    /// Corrupted frames that still decoded and validated — in-domain
    /// field fuzz the codec cannot distinguish from a legitimate value.
    /// LLA absorbs these as ordinary perturbations and re-converges.
    pub fn corrupted_delivered(&self) -> u64 {
        self.runtime.corrupted_delivered()
    }

    /// Rejected-frame counts attributed to each sender, sorted by
    /// address. The supervisor's quarantine policy reads deltas of this.
    pub fn frame_rejections_by_sender(&self) -> Vec<(Address, u64)> {
        self.runtime.frame_rejections_by_sender()
    }

    /// Quarantines `addr`: the runtime drops its outbound messages (acks
    /// excepted, so reliable dissemination can still settle) until
    /// [`release_agent`](Self::release_agent). Returns `false` if it was
    /// already quarantined.
    pub fn quarantine_agent(&mut self, addr: Address) -> bool {
        let fresh = self.runtime.quarantine(addr);
        if fresh {
            self.tel.agent_quarantines.inc();
            self.tel.events.emit(
                TelemetryEvent::new(self.runtime.now(), "agent_quarantined")
                    .with("agent", addr.to_string()),
            );
        }
        fresh
    }

    /// Releases `addr` from quarantine. Returns `false` if it was not
    /// quarantined.
    pub fn release_agent(&mut self, addr: Address) -> bool {
        let released = self.runtime.release_quarantine(addr);
        if released {
            self.tel.events.emit(
                TelemetryEvent::new(self.runtime.now(), "agent_released")
                    .with("agent", addr.to_string()),
            );
        }
        released
    }

    /// The currently quarantined agents, sorted by address.
    pub fn quarantined_agents(&self) -> Vec<Address> {
        self.runtime.quarantined_agents()
    }

    /// Messages dropped at the ingress gate because their sender was
    /// quarantined.
    pub fn quarantine_drops(&self) -> u64 {
        self.runtime.quarantine_drops()
    }

    /// Announces a change of resource availability through the
    /// control-plane agent: the update is assigned a sequence number and
    /// disseminated over the (possibly lossy) network with
    /// retransmit-until-ack, so it reaches every agent even under heavy
    /// loss. LLA re-converges from the current prices.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownResourceId`] or
    /// [`ModelError::InvalidParameter`] (non-finite or out-of-`[0, 1]`
    /// availability); nothing is announced on error.
    pub fn set_resource_availability(
        &mut self,
        r: ResourceId,
        availability: f64,
    ) -> Result<(), ModelError> {
        let slot = self.resource_slots[r.index()];
        Arc::make_mut(&mut self.problem).set_resource_availability(r, availability)?;
        self.runtime.inject(
            Address::ControlPlane,
            Message::AvailabilityUpdate { resource: slot, availability, seq: 0 },
        );
        Ok(())
    }

    /// Announces a change of resource availability out of band: delivered
    /// to every agent immediately and reliably, bypassing both the network
    /// model and the control plane. This is the idealized baseline the
    /// reliable path is tested against.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownResourceId`] or
    /// [`ModelError::InvalidParameter`] (non-finite or out-of-`[0, 1]`
    /// availability); nothing is announced on error.
    pub fn set_resource_availability_bypass(
        &mut self,
        r: ResourceId,
        availability: f64,
    ) -> Result<(), ModelError> {
        let slot = self.resource_slots[r.index()];
        Arc::make_mut(&mut self.problem).set_resource_availability(r, availability)?;
        let msg = Message::AvailabilityUpdate { resource: slot, availability, seq: 0 };
        self.runtime.inject(Address::Resource(slot), msg.clone());
        for &t in &self.task_slots {
            self.runtime.inject(Address::Controller(t), msg.clone());
        }
        Ok(())
    }

    /// Current topology epoch (0 until the first membership change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Slot of each live task, in dense order.
    pub fn task_slots(&self) -> &[usize] {
        &self.task_slots
    }

    /// Slot of each live resource, in dense order.
    pub fn resource_slots(&self) -> &[usize] {
        &self.resource_slots
    }

    /// The shared epoch log agents reload topology from.
    pub fn topology(&self) -> &TopologyStore {
        &self.topology
    }

    /// Records the post-change topology as a new epoch in the shared
    /// store, *before* the change is announced — so any agent that hears
    /// about the epoch can immediately load it.
    fn push_epoch(&mut self, cause: MembershipCause) {
        self.epoch += 1;
        self.topology.push(TopologyEpoch {
            epoch: self.epoch,
            cause,
            problem: (*self.problem).clone(),
            task_slots: self.task_slots.clone(),
            resource_slots: self.resource_slots.clone(),
        });
    }

    /// First tick time strictly after `now` for an agent phased at
    /// `frac` of a round (0.25 for controllers, 0.75 for resources).
    fn next_phase(&self, frac: f64) -> f64 {
        let round = self.config.round_length;
        let offset = frac * round;
        let now = self.runtime.now();
        (((now - offset) / round).floor() + 1.0) * round + offset
    }

    /// Splices a new task into the running deployment: expands the
    /// problem, records a new topology epoch, registers a controller for
    /// the newcomer (first tick at the next controller phase), and
    /// announces the join through the control plane's reliable path. The
    /// incumbents keep their dual state; only the newcomer starts cold.
    ///
    /// Returns the newcomer's protocol *slot* (stable across later
    /// churn, unlike its dense [`TaskId`]).
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`]s from building the candidate task.
    pub fn join_task(&mut self, builder: &TaskBuilder) -> Result<usize, ModelError> {
        let report = Arc::make_mut(&mut self.problem).add_task(builder)?;
        let dense = report.added_task.expect("add_task reports the new id").index();
        let slot = self.next_task_slot;
        self.next_task_slot += 1;
        self.task_slots.push(slot);
        self.push_epoch(MembershipCause::TaskJoin);
        {
            let mut tel = self.telemetry.lock();
            while tel.len() <= slot {
                tel.push(Vec::new());
            }
            tel[slot] = self.problem.initial_allocation()[dense].clone();
        }
        self.runtime.register(
            Address::Controller(slot),
            Box::new(
                TaskController::new(
                    dense,
                    (*self.problem).clone(),
                    self.config.step_policy,
                    self.config.allocation,
                    Arc::clone(&self.telemetry),
                )
                .with_robustness(self.config.robustness)
                .with_checkpoints(self.checkpoints.clone())
                .with_membership(self.topology.clone(), slot, self.epoch)
                .with_telemetry(self.tel.clone())
                .with_fleet(AgentTelemetry::new(
                    &self.tel,
                    Address::Controller(slot),
                    self.config.report_cadence,
                )),
            ),
            self.config.round_length,
            self.next_phase(0.25),
        );
        self.tel.membership_changes.inc();
        self.tel.events.emit(
            TelemetryEvent::new(self.runtime.now(), "task_join")
                .with("slot", slot)
                .with("epoch", self.epoch),
        );
        self.runtime
            .inject(Address::ControlPlane, Message::TaskJoin { slot, epoch: self.epoch, seq: 0 });
        Ok(slot)
    }

    /// Dense index of the task in `slot`, or an `UnknownTask` error
    /// (reported with the slot as the id, since departed slots have no
    /// dense id).
    fn task_dense(&self, slot: usize) -> Result<usize, ModelError> {
        self.task_slots
            .iter()
            .position(|&s| s == slot)
            .ok_or(ModelError::UnknownTask { task: TaskId::new(slot), len: self.task_slots.len() })
    }

    /// Dense index of the resource in `slot`.
    fn resource_dense(&self, slot: usize) -> Result<usize, ModelError> {
        self.resource_slots.iter().position(|&s| s == slot).ok_or(ModelError::UnknownResourceId {
            resource: ResourceId::new(slot),
            len: self.resource_slots.len(),
        })
    }

    fn depart_task(&mut self, slot: usize, evict: bool) -> Result<(), ModelError> {
        let dense = self.task_dense(slot)?;
        Arc::make_mut(&mut self.problem).remove_task(TaskId::new(dense))?;
        self.task_slots.remove(dense);
        self.push_epoch(if evict { MembershipCause::Evict } else { MembershipCause::TaskLeave });
        let msg = if evict {
            Message::Evict { slot, epoch: self.epoch, seq: 0 }
        } else {
            Message::TaskLeave { slot, epoch: self.epoch, seq: 0 }
        };
        self.tel.membership_changes.inc();
        self.tel.events.emit(
            TelemetryEvent::new(
                self.runtime.now(),
                if evict { "task_evict" } else { "task_leave" },
            )
            .with("slot", slot)
            .with("epoch", self.epoch),
        );
        self.runtime.inject(Address::ControlPlane, msg);
        Ok(())
    }

    /// Removes the task in `slot` from the running deployment
    /// (voluntary departure). Its controller stays registered but goes
    /// dormant once the announcement reaches it; survivors keep their
    /// dual state and re-converge to the freed capacity.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownTask`] if no live task occupies `slot`.
    pub fn leave_task(&mut self, slot: usize) -> Result<(), ModelError> {
        self.depart_task(slot, false)
    }

    /// Removes the task in `slot` because overload shedding chose it.
    /// Announced as an [`Message::Evict`] and recorded as an
    /// [`MembershipCause::Evict`] epoch, which makes every surviving
    /// agent restart its duals from the initial point: eviction only
    /// happens after *sustained* overload, which is exactly when the
    /// warm duals are poisoned (they integrated an unsatisfiable
    /// gradient and would stall the survivors' re-convergence — see
    /// [`MembershipCause`]).
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownTask`] if no live task occupies `slot`.
    pub fn evict_task(&mut self, slot: usize) -> Result<(), ModelError> {
        self.depart_task(slot, true)
    }

    /// Splices a new resource into the running deployment. The resource's
    /// id must be dense-next (`problem.resources().len()`); it starts
    /// empty — tasks joining later may place subtasks on it.
    ///
    /// Returns the newcomer's protocol slot.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`]s from [`Problem::add_resource`].
    pub fn join_resource(&mut self, resource: Resource) -> Result<usize, ModelError> {
        let report = Arc::make_mut(&mut self.problem).add_resource(resource)?;
        let dense = report.added_resource.expect("add_resource reports the new id").index();
        let slot = self.next_resource_slot;
        self.next_resource_slot += 1;
        self.resource_slots.push(slot);
        self.push_epoch(MembershipCause::ResourceJoin);
        self.runtime.register(
            Address::Resource(slot),
            Box::new(
                ResourceAgent::new(dense, (*self.problem).clone(), self.config.step_policy)
                    .with_robustness(self.config.robustness)
                    .with_membership(self.topology.clone(), slot, self.epoch)
                    .with_telemetry(self.tel.clone())
                    .with_fleet(AgentTelemetry::new(
                        &self.tel,
                        Address::Resource(slot),
                        self.config.report_cadence,
                    )),
            ),
            self.config.round_length,
            self.next_phase(0.75),
        );
        self.tel.membership_changes.inc();
        self.tel.events.emit(
            TelemetryEvent::new(self.runtime.now(), "resource_join")
                .with("slot", slot)
                .with("epoch", self.epoch),
        );
        self.runtime.inject(
            Address::ControlPlane,
            Message::ResourceJoin { slot, epoch: self.epoch, seq: 0 },
        );
        Ok(slot)
    }

    /// Retires the resource in `slot` with drain-and-handoff: every
    /// subtask it hosts is rebound onto the resource in `handoff_slot`
    /// (share models rebuilt for the destination), then the retiree
    /// leaves the topology. Its agent goes dormant once the announcement
    /// reaches it; the handoff target picks the drained subtasks up from
    /// the new epoch and re-learns their latencies from controller
    /// traffic within a round.
    ///
    /// Returns the number of subtasks drained.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownResourceId`] if either slot is not live, or
    /// any error from the underlying reassign/retire.
    pub fn retire_resource(
        &mut self,
        slot: usize,
        handoff_slot: usize,
    ) -> Result<usize, ModelError> {
        let dense_from = self.resource_dense(slot)?;
        let dense_to = self.resource_dense(handoff_slot)?;
        let problem = Arc::make_mut(&mut self.problem);
        let from_id = problem.resources()[dense_from].id();
        let to_id = problem.resources()[dense_to].id();
        let moved = problem.reassign_resource(from_id, to_id)?;
        problem.retire_resource(from_id)?;
        self.resource_slots.remove(dense_from);
        self.push_epoch(MembershipCause::ResourceRetire);
        self.tel.membership_changes.inc();
        self.tel.events.emit(
            TelemetryEvent::new(self.runtime.now(), "resource_retire")
                .with("slot", slot)
                .with("handoff_slot", handoff_slot)
                .with("epoch", self.epoch)
                .with("moved", moved),
        );
        self.runtime.inject(
            Address::ControlPlane,
            Message::ResourceRetire { slot, epoch: self.epoch, seq: 0 },
        );
        Ok(moved)
    }

    /// Replica count of the resource in `slot`.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownResourceId`] if no live resource occupies
    /// `slot`.
    pub fn resource_replicas(&self, slot: usize) -> Result<u32, ModelError> {
        Ok(self.problem.resources()[self.resource_dense(slot)?].replicas())
    }

    /// Elastic capacity: sets the replica count of the resource in
    /// `slot`. Effective availability scales to `replicas × base`; the
    /// change is recorded as a new topology epoch (cause
    /// [`ReplicaProvision`](MembershipCause::ReplicaProvision) or
    /// [`ReplicaRetire`](MembershipCause::ReplicaRetire)) and announced
    /// through the control plane's reliable membership path, so every
    /// agent warm-starts across it like any other capacity change.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownResourceId`] if no live resource occupies
    /// `slot`, or [`ModelError::InvalidParameter`] if `replicas == 0`
    /// (retire the resource instead).
    pub fn set_resource_replicas(&mut self, slot: usize, replicas: u32) -> Result<(), ModelError> {
        let dense = self.resource_dense(slot)?;
        let problem = Arc::make_mut(&mut self.problem);
        let id = problem.resources()[dense].id();
        let before = problem.resources()[dense].replicas();
        if replicas == before {
            return Ok(());
        }
        problem.set_resource_replicas(id, replicas)?;
        let (cause, kind) = if replicas > before {
            self.tel.replica_provisions.inc();
            (MembershipCause::ReplicaProvision, "replica_provision")
        } else {
            self.tel.replica_retires.inc();
            (MembershipCause::ReplicaRetire, "replica_retire")
        };
        self.push_epoch(cause);
        self.tel.membership_changes.inc();
        self.tel.events.emit(
            TelemetryEvent::new(self.runtime.now(), kind)
                .with("slot", slot)
                .with("replicas", u64::from(replicas))
                .with("epoch", self.epoch),
        );
        self.runtime.inject(
            Address::ControlPlane,
            Message::ReplicaUpdate { slot, replicas, epoch: self.epoch, seq: 0 },
        );
        Ok(())
    }

    /// Supervisor remediation: broadcast a [`Message::GammaCalm`] through
    /// the control plane's reliable path — every live agent resets its
    /// adaptive step sizes and clamps future growth to
    /// `initial × max_multiple`.
    pub fn broadcast_gamma_calm(&mut self, max_multiple: f64) {
        self.tel.events.emit(
            TelemetryEvent::new(self.runtime.now(), "gamma_calm")
                .with("max_multiple", max_multiple),
        );
        self.runtime.inject(Address::ControlPlane, Message::GammaCalm { max_multiple, seq: 0 });
    }

    /// Supervisor remediation: broadcast a [`Message::DualResync`] probe
    /// through the control plane's reliable path — every live agent
    /// immediately re-announces its current prices/latencies, refreshing
    /// peers' staleness clocks.
    pub fn broadcast_dual_resync(&mut self) {
        self.tel.events.emit(TelemetryEvent::new(self.runtime.now(), "dual_resync"));
        self.runtime.inject(Address::ControlPlane, Message::DualResync { seq: 0 });
    }

    /// The fleet collector, if the deployment has one (i.e.
    /// [`DistConfig::report_cadence`] is positive).
    pub fn collector(&mut self) -> Option<&CollectorAgent> {
        self.runtime.actor_as::<CollectorAgent>(Address::Collector).map(|c| &*c)
    }

    /// The merged fleet view, if a collector is deployed.
    pub fn fleet_view(&mut self) -> Option<&lla_telemetry::TelemetryCollector> {
        self.collector().map(CollectorAgent::fleet)
    }

    /// Every currently-firing SLO alert (empty without a collector).
    pub fn firing_alerts(&mut self) -> Vec<lla_telemetry::FiringAlert> {
        self.collector().map(CollectorAgent::firing).unwrap_or_default()
    }

    /// Replaces the collector's SLO rule set (resets alert state).
    /// Returns `false` when no collector is deployed.
    pub fn install_slo_rules(&mut self, rules: Vec<lla_telemetry::SloRule>) -> bool {
        match self.runtime.actor_as::<CollectorAgent>(Address::Collector) {
            Some(collector) => {
                collector.set_rules(rules);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lla_core::{
        Optimizer, OptimizerConfig, Resource, ResourceId, ResourceKind, TaskBuilder, TaskId,
    };

    fn problem() -> Problem {
        let resources = vec![
            Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
            Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
        ];
        let mut tasks = Vec::new();
        for (i, c) in [(0usize, 40.0), (1usize, 60.0)] {
            let mut b = TaskBuilder::new(format!("t{i}"));
            let a = b.subtask("a", ResourceId::new(0), 2.0);
            let d = b.subtask("b", ResourceId::new(1), 3.0);
            b.edge(a, d).unwrap();
            b.critical_time(c);
            tasks.push(b.build(TaskId::new(i)).unwrap());
        }
        Problem::new(resources, tasks).unwrap()
    }

    fn config() -> DistConfig {
        DistConfig {
            allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
            ..DistConfig::default()
        }
    }

    #[test]
    fn perfect_network_matches_centralized_exactly() {
        let rounds = 300;
        let mut dist = DistributedLla::new(problem(), config());
        dist.run_rounds(rounds);

        let mut opt = Optimizer::new(
            problem(),
            OptimizerConfig {
                allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
                ..OptimizerConfig::default()
            },
        );
        let reports = opt.run(rounds);
        for (round, (d, c)) in dist.utilities().iter().zip(reports.iter()).enumerate() {
            assert!(
                (d - c.utility).abs() < 1e-9,
                "round {round}: distributed {d} != centralized {}",
                c.utility
            );
        }
    }

    #[test]
    fn lossy_network_still_converges_close() {
        let mut dist = DistributedLla::new(
            problem(),
            DistConfig { network: NetworkModel::lossy(0.5, 1.0, 0.1), seed: 11, ..config() },
        );
        dist.run_rounds(1_500);
        assert!(dist.messages_dropped() > 0, "loss model must be active");

        let mut opt = Optimizer::new(
            problem(),
            OptimizerConfig {
                allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
                ..OptimizerConfig::default()
            },
        );
        opt.run_to_convergence(5_000);
        let reference = opt.utility();
        let achieved = dist.utility();
        assert!(
            (achieved - reference).abs() <= 0.05 * reference.abs().max(1.0),
            "lossy distributed {achieved} too far from centralized {reference}"
        );
        assert!(dist.problem().is_feasible(dist.allocation().lats(), 1e-2));
    }

    #[test]
    fn delayed_network_converges() {
        // One-round delays => agents work with stale prices.
        let mut dist = DistributedLla::new(
            problem(),
            DistConfig { network: NetworkModel::lossy(12.0, 5.0, 0.0), seed: 3, ..config() },
        );
        dist.run_rounds(1_500);
        assert!(dist.problem().is_feasible(dist.allocation().lats(), 1e-2));
    }

    #[test]
    fn availability_update_reconverges_distributed() {
        let mut dist = DistributedLla::new(problem(), config());
        dist.run_rounds(800);
        let before = dist.utility();

        dist.set_resource_availability(ResourceId::new(0), 0.5).unwrap();
        dist.run_rounds(1_500);
        let after = dist.utility();
        assert!(after <= before + 1e-6, "losing capacity cannot raise utility: {after} > {before}");
        // The new allocation respects the reduced availability.
        let alloc = dist.allocation();
        let usage = dist.problem().resource_usage(ResourceId::new(0), alloc.lats());
        assert!(usage <= 0.5 + 1e-3, "usage {usage} exceeds degraded availability");

        // And it matches a centralized optimizer subjected to the same
        // change after the same number of iterations.
        let mut opt = Optimizer::new(
            problem(),
            OptimizerConfig {
                allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
                ..OptimizerConfig::default()
            },
        );
        opt.run(800);
        opt.set_resource_availability(ResourceId::new(0), 0.5).unwrap();
        opt.run(1_500);
        assert!(
            (dist.utility() - opt.utility()).abs() < 1e-9,
            "distributed {} vs centralized {} after availability change",
            dist.utility(),
            opt.utility()
        );
    }

    #[test]
    fn reliable_path_matches_bypass_on_perfect_network() {
        // Over a perfect network the control-plane dissemination applies
        // the update at the same virtual instant as the out-of-band
        // bypass, so the runs stay bit-equal round by round.
        let mut reliable = DistributedLla::new(problem(), config());
        let mut bypass = DistributedLla::new(problem(), config());
        reliable.run_rounds(400);
        bypass.run_rounds(400);
        reliable.set_resource_availability(ResourceId::new(0), 0.5).unwrap();
        bypass.set_resource_availability_bypass(ResourceId::new(0), 0.5).unwrap();
        reliable.run_rounds(400);
        bypass.run_rounds(400);
        for (round, (a, b)) in
            reliable.utilities().iter().zip(bypass.utilities().iter()).enumerate()
        {
            assert!((a - b).abs() < 1e-12, "round {round}: reliable {a} != bypass {b}");
        }
    }

    #[test]
    fn desynchronized_ticks_still_converge() {
        // Fully asynchronous agents: every interval and phase jittered by
        // up to 40% of a round. Prices and latencies are arbitrarily stale
        // relative to each other, yet the dual dynamics still settle on a
        // feasible allocation near the synchronous optimum.
        let mut sync = DistributedLla::new(problem(), config());
        sync.run_rounds(2_000);
        let mut async_ =
            DistributedLla::new(problem(), DistConfig { tick_jitter: 0.4, seed: 5, ..config() });
        async_.run_rounds(2_000);
        let gap = (async_.utility() - sync.utility()).abs() / sync.utility().abs().max(1.0);
        assert!(
            gap < 0.05,
            "async gap {gap} too large: {} vs {}",
            async_.utility(),
            sync.utility()
        );
        assert!(async_.problem().is_feasible(async_.allocation().lats(), 1e-2));
    }

    #[test]
    fn message_counting() {
        let mut dist = DistributedLla::new(problem(), config());
        dist.run_rounds(10);
        // Per round: 2 controllers × 2 latency msgs + 2 resources × (tasks
        // hosted) price msgs = 4 + 4. The idle control plane sends nothing.
        assert_eq!(dist.messages_sent(), 80);
        assert_eq!(dist.messages_dropped(), 0);
    }

    #[test]
    fn task_join_splices_in_and_matches_fresh_oracle() {
        let mut dist = DistributedLla::new(problem(), config());
        dist.run_rounds(500);

        let mut b = TaskBuilder::new("newcomer");
        let a = b.subtask("a", ResourceId::new(0), 2.0);
        let d = b.subtask("b", ResourceId::new(1), 3.0);
        b.edge(a, d).unwrap();
        b.critical_time(50.0);
        let slot = dist.join_task(&b).unwrap();
        assert_eq!(slot, 2);
        assert_eq!(dist.epoch(), 1);
        assert_eq!(dist.problem().tasks().len(), 3);

        dist.run_rounds(2_000);
        assert!(dist.problem().is_feasible(dist.allocation().lats(), 1e-2));
        // Every agent adopted the epoch.
        for t in dist.task_slots().to_vec() {
            let ctl = dist.runtime_mut().actor_as::<TaskController>(Address::Controller(t));
            assert_eq!(ctl.expect("registered").epoch(), 1, "controller {t} missed the epoch");
        }

        // Within a few percent of a cold centralized solve of the same
        // expanded problem.
        let mut oracle = Optimizer::new(
            dist.problem().clone(),
            OptimizerConfig {
                allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
                ..OptimizerConfig::default()
            },
        );
        oracle.run_to_convergence(10_000);
        let gap = (dist.utility() - oracle.utility()).abs() / oracle.utility().abs().max(1.0);
        assert!(gap < 0.05, "join gap {gap}: {} vs oracle {}", dist.utility(), oracle.utility());
    }

    #[test]
    fn task_leave_frees_capacity_and_survivors_reconverge() {
        let mut dist = DistributedLla::new(problem(), config());
        dist.run_rounds(500);
        dist.leave_task(0).unwrap();
        assert_eq!(dist.epoch(), 1);
        assert_eq!(dist.problem().tasks().len(), 1);
        assert_eq!(dist.task_slots(), &[1], "slot 1 survives, densely reindexed to 0");
        dist.run_rounds(1_500);

        // The departed controller is dormant, not gone.
        let ctl = dist.runtime_mut().actor_as::<TaskController>(Address::Controller(0));
        assert!(ctl.expect("still registered").is_dormant());

        assert!(dist.problem().is_feasible(dist.allocation().lats(), 1e-2));
        let mut oracle = Optimizer::new(
            dist.problem().clone(),
            OptimizerConfig {
                allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
                ..OptimizerConfig::default()
            },
        );
        oracle.run_to_convergence(10_000);
        let gap = (dist.utility() - oracle.utility()).abs() / oracle.utility().abs().max(1.0);
        assert!(gap < 0.05, "leave gap {gap}");
    }

    #[test]
    fn resource_retire_drains_onto_handoff_target() {
        let mut dist = DistributedLla::new(problem(), config());
        dist.run_rounds(500);
        let moved = dist.retire_resource(1, 0).unwrap();
        assert_eq!(moved, 2, "each task had one subtask on resource 1");
        assert_eq!(dist.problem().resources().len(), 1);
        dist.run_rounds(2_500);

        use crate::agents::ResourceAgent;
        let retired = dist.runtime_mut().actor_as::<ResourceAgent>(Address::Resource(1));
        assert!(retired.expect("still registered").is_dormant());

        assert!(dist.problem().is_feasible(dist.allocation().lats(), 1e-2));
        let usage = dist.problem().resource_usage(ResourceId::new(0), dist.allocation().lats());
        assert!(usage <= 1.0 + 1e-3, "handoff target overloaded: {usage}");
    }

    #[test]
    fn membership_announcements_survive_a_lossy_network() {
        let mut dist = DistributedLla::new(
            problem(),
            DistConfig { network: NetworkModel::lossy(0.5, 1.0, 0.25), seed: 7, ..config() },
        );
        dist.run_rounds(300);
        let mut b = TaskBuilder::new("newcomer");
        let a = b.subtask("a", ResourceId::new(0), 2.0);
        let d = b.subtask("b", ResourceId::new(1), 3.0);
        b.edge(a, d).unwrap();
        b.critical_time(50.0);
        dist.join_task(&b).unwrap();
        dist.leave_task(0).unwrap();
        dist.run_rounds(2_000);
        assert!(dist.messages_dropped() > 0);

        // Retransmit-until-ack got both epochs to every live agent.
        for t in dist.task_slots().to_vec() {
            let ctl = dist.runtime_mut().actor_as::<TaskController>(Address::Controller(t));
            assert_eq!(ctl.expect("registered").epoch(), 2, "controller {t} missed an epoch");
        }
        use crate::agents::ControlPlaneAgent;
        let cp = dist
            .runtime_mut()
            .actor_as::<ControlPlaneAgent>(Address::ControlPlane)
            .expect("control plane");
        assert_eq!(cp.pending_membership(), 0, "all membership changes acked");
        assert!(dist.problem().is_feasible(dist.allocation().lats(), 1e-2));
    }

    #[test]
    fn evict_rehabilitates_duals_while_leave_keeps_them_warm() {
        // Leave warm-starts the survivors' duals; evict — which only
        // happens after detected sustained overload — restarts them (the
        // epoch's MembershipCause carries the distinction). Both must
        // land on the same per-epoch optimum.
        let mut leave = DistributedLla::new(problem(), config());
        let mut evict = DistributedLla::new(problem(), config());
        leave.run_rounds(400);
        evict.run_rounds(400);
        leave.leave_task(0).unwrap();
        evict.evict_task(0).unwrap();
        leave.run_rounds(30);
        evict.run_rounds(30);
        let transient_gap: f64 = leave
            .utilities()
            .iter()
            .skip(401)
            .zip(evict.utilities().iter().skip(401))
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(
            transient_gap > 1e-9,
            "the dual restart must be observable in the re-convergence transient"
        );
        leave.run_rounds(1_600);
        evict.run_rounds(1_600);
        let mut opt = Optimizer::new(
            leave.problem().clone(),
            OptimizerConfig {
                step_policy: StepSizePolicy::adaptive(1.0),
                ..OptimizerConfig::default()
            },
        );
        opt.run_to_convergence(20_000);
        let scale = opt.utility().abs().max(1.0);
        for (label, u) in [("leave", leave.utility()), ("evict", evict.utility())] {
            let gap = (u - opt.utility()).abs() / scale;
            assert!(gap < 0.05, "{label} must re-converge: gap {gap}");
        }
    }

    #[test]
    fn departed_slot_errors_and_slots_are_never_reused() {
        let mut dist = DistributedLla::new(problem(), config());
        dist.run_rounds(100);
        dist.leave_task(1).unwrap();
        assert!(dist.leave_task(1).is_err(), "slot 1 is gone");
        let mut b = TaskBuilder::new("late");
        b.subtask("a", ResourceId::new(0), 2.0);
        b.critical_time(50.0);
        let slot = dist.join_task(&b).unwrap();
        assert_eq!(slot, 2, "departed slot 1 must not be recycled");
    }

    #[test]
    fn instrumented_run_is_bit_identical_and_counts_messages() {
        use lla_telemetry::{SpanRecorder, TelemetryHub};
        // Full instrumentation including causal span tracing: the run must
        // stay bit-identical to an uninstrumented one.
        let hub = TelemetryHub::recording().with_spans(SpanRecorder::recording());
        let mut plain = DistributedLla::new(problem(), config());
        let mut wired =
            DistributedLla::with_telemetry(problem(), config(), DistTelemetry::from_hub(&hub));
        plain.run_rounds(200);
        wired.run_rounds(200);
        for (round, (a, b)) in plain.utilities().iter().zip(wired.utilities().iter()).enumerate() {
            assert!((a - b).abs() == 0.0, "round {round}: instrumentation changed the run");
        }
        // Counter mirrors the runtime's own books exactly.
        let tel = wired.dist_telemetry();
        assert_eq!(tel.messages_sent.get(), wired.messages_sent());
        assert_eq!(tel.messages_dropped.get(), 0);
        let text = hub.metrics.prometheus_text();
        assert!(
            text.contains("lla_dist_messages_sent_total 1600"),
            "missing sent counter:\n{text}"
        );
        // Per round: 4 tick roots (2 controllers + 2 resources) + 8
        // delivery spans = 12 spans; over 200 rounds, 2400.
        assert_eq!(hub.spans.len(), 2400);
        // Every round's critical path names a real agent as its gate.
        let rounds = hub.spans.round_critical_paths(10.0);
        assert_eq!(rounds.len(), 200);
        for r in &rounds {
            assert!(
                r.gating_track.starts_with("resource[")
                    || r.gating_track.starts_with("controller["),
                "round {}: gated by {:?}",
                r.round,
                r.gating_track
            );
            assert!(!r.chain.is_empty());
        }
    }

    #[test]
    fn diag_samples_feed_the_diagnostics_engine() {
        use lla_telemetry::{DiagnosticsEngine, Verdict};
        let mut dist = DistributedLla::new(problem(), config());
        let mut engine =
            DiagnosticsEngine::new().with_resource_names(vec!["cpu0".into(), "cpu1".into()]);
        dist.run_rounds(600);
        for _ in 0..32 {
            dist.run_rounds(1);
            engine.push(dist.diag_sample());
        }
        let d = engine.diagnose();
        assert!(d.confident);
        assert_eq!(d.verdict, Verdict::Converging, "{}", d.render());
        assert_eq!(d.evidence.len(), 2);
        assert!(d.evidence.iter().all(|e| e.mean_price.is_finite()));
        assert!(d.frozen_fraction == 0.0);
    }

    #[test]
    fn membership_ops_emit_events_and_count() {
        use lla_telemetry::TelemetryHub;
        let hub = TelemetryHub::recording();
        let mut dist =
            DistributedLla::with_telemetry(problem(), config(), DistTelemetry::from_hub(&hub));
        dist.run_rounds(300);
        let mut b = TaskBuilder::new("newcomer");
        let a = b.subtask("a", ResourceId::new(0), 2.0);
        let d = b.subtask("b", ResourceId::new(1), 3.0);
        b.edge(a, d).unwrap();
        b.critical_time(50.0);
        let slot = dist.join_task(&b).unwrap();
        dist.run_rounds(100);
        dist.evict_task(slot).unwrap();
        dist.run_rounds(100);
        let tel = dist.dist_telemetry();
        assert_eq!(tel.membership_changes.get(), 2);
        assert_eq!(hub.events.count_kind("task_join"), 1);
        assert_eq!(hub.events.count_kind("task_evict"), 1);
        // Incumbent agents warm-carried their duals across the join epoch
        // (2 controllers + 2 resources, plus epoch re-application on the
        // evict for the survivors).
        assert!(tel.warm_start_hits.get() >= 4, "hits: {}", tel.warm_start_hits.get());
    }

    #[test]
    fn scheduled_availability_fault_reaches_facade_problem() {
        let mut dist = DistributedLla::new(problem(), config());
        let plan = FaultPlan::new().set_availability(95.0, 0, 0.5);
        dist.schedule_faults(&plan);
        dist.run_rounds(8);
        assert!(
            (dist.problem().resources()[0].availability() - 1.0).abs() < 1e-12,
            "fault at 95 must not fire before round 10"
        );
        dist.run_rounds(800);
        assert!((dist.problem().resources()[0].availability() - 0.5).abs() < 1e-12);
        let usage = dist.problem().resource_usage(ResourceId::new(0), dist.allocation().lats());
        assert!(usage <= 0.5 + 1e-3, "usage {usage} exceeds degraded availability");
    }
}
