//! The specification parser.

use crate::error::SpecError;
use lla_core::{
    Aggregation, PercentileSpec, Problem, Resource, ResourceId, ResourceKind, Task, TaskBuilder,
    TaskId, TriggerSpec, UtilityFn,
};
use std::collections::HashMap;

/// Parses a workload specification into a validated [`Problem`].
///
/// See the [crate documentation](crate) for the format.
///
/// # Errors
///
/// Returns a [`SpecError`] with the offending line number for syntax
/// problems, and wraps [`lla_core::ModelError`] for semantic ones (cyclic
/// graphs, invalid parameters, …).
pub fn parse(text: &str) -> Result<Problem, SpecError> {
    Parser::default().run(text)
}

/// One `key=value` token, split and line-tagged.
struct Pairs<'a> {
    line: usize,
    map: HashMap<&'a str, &'a str>,
}

impl<'a> Pairs<'a> {
    fn new(line: usize, tokens: &[&'a str], allowed: &[&str]) -> Result<Self, SpecError> {
        let mut map = HashMap::new();
        for token in tokens {
            let (k, v) = token
                .split_once('=')
                .ok_or_else(|| SpecError::MalformedPair { line, token: token.to_string() })?;
            if !allowed.contains(&k) {
                return Err(SpecError::UnknownKey { line, key: k.to_string() });
            }
            map.insert(k, v);
        }
        Ok(Pairs { line, map })
    }

    /// A float key. `f64::parse` happily accepts `NaN`, `inf`, and
    /// `-inf`; none of them is a meaningful model parameter and letting
    /// one through would poison every downstream gradient, so non-finite
    /// values are rejected here for *every* float key.
    fn float(&self, key: &str) -> Result<Option<f64>, SpecError> {
        match self.map.get(key) {
            None => Ok(None),
            Some(v) => match v.parse::<f64>() {
                Ok(x) if x.is_finite() => Ok(Some(x)),
                _ => Err(SpecError::InvalidValue {
                    line: self.line,
                    key: key.to_string(),
                    value: v.to_string(),
                }),
            },
        }
    }

    /// A float key that must also be non-negative — physical quantities
    /// (times, rates, capacities) where a negative value is never
    /// meaningful. Signed keys (the quadratic utility's `offset`, `lin`,
    /// `quad`, which the model validates by shape) use
    /// [`float`](Self::float) directly.
    fn nonneg_float(&self, key: &str) -> Result<Option<f64>, SpecError> {
        match self.float(key)? {
            Some(x) if x < 0.0 => Err(self.invalid(key)),
            other => Ok(other),
        }
    }

    fn required_nonneg(&self, key: &'static str) -> Result<f64, SpecError> {
        self.nonneg_float(key)?.ok_or(SpecError::MissingField { line: self.line, field: key })
    }

    fn usize(&self, key: &str) -> Result<Option<usize>, SpecError> {
        match self.map.get(key) {
            None => Ok(None),
            Some(v) => v.parse::<usize>().map(Some).map_err(|_| SpecError::InvalidValue {
                line: self.line,
                key: key.to_string(),
                value: v.to_string(),
            }),
        }
    }

    fn str(&self, key: &str) -> Option<&'a str> {
        self.map.get(key).copied()
    }

    fn invalid(&self, key: &str) -> SpecError {
        SpecError::InvalidValue {
            line: self.line,
            key: key.to_string(),
            value: self.str(key).unwrap_or("").to_string(),
        }
    }
}

/// A task being accumulated (subtasks/edges arrive on later lines).
struct PendingTask {
    line: usize,
    builder: TaskBuilder,
    subtask_names: HashMap<String, usize>,
    has_subtask: bool,
}

#[derive(Default)]
struct Parser {
    resources: Vec<Resource>,
    resource_names: HashMap<String, ResourceId>,
    tasks: Vec<Task>,
    current: Option<PendingTask>,
}

impl Parser {
    fn run(mut self, text: &str) -> Result<Problem, SpecError> {
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let tokens: Vec<&str> = content.split_whitespace().collect();
            match tokens[0] {
                "resource" => self.resource(line, &tokens[1..])?,
                "task" => self.task(line, &tokens[1..])?,
                "subtask" => self.subtask(line, &tokens[1..])?,
                "edge" => self.edge(line, &tokens[1..])?,
                "chain" => self.chain(line, &tokens[1..])?,
                other => {
                    return Err(SpecError::UnknownDeclaration { line, keyword: other.to_string() })
                }
            }
        }
        self.finish_task()?;
        Ok(Problem::new(self.resources, self.tasks)?)
    }

    fn resource(&mut self, line: usize, tokens: &[&str]) -> Result<(), SpecError> {
        let name =
            tokens.first().copied().ok_or(SpecError::MissingField { line, field: "name" })?;
        if self.resource_names.contains_key(name) {
            return Err(SpecError::DuplicateName { line, name: name.to_string() });
        }
        let pairs = Pairs::new(line, &tokens[1..], &["kind", "lag", "availability"])?;
        let kind = match pairs.str("kind").unwrap_or("cpu") {
            "cpu" => ResourceKind::Cpu,
            "link" => ResourceKind::NetworkLink,
            _ => return Err(pairs.invalid("kind")),
        };
        let id = ResourceId::new(self.resources.len());
        let mut r = Resource::new(id, kind).with_name(name);
        if let Some(lag) = pairs.nonneg_float("lag")? {
            r = r.with_lag(lag);
        }
        if let Some(b) = pairs.nonneg_float("availability")? {
            r = r.with_availability(b);
        }
        self.resource_names.insert(name.to_string(), id);
        self.resources.push(r);
        Ok(())
    }

    fn task(&mut self, line: usize, tokens: &[&str]) -> Result<(), SpecError> {
        self.finish_task()?;
        let name =
            tokens.first().copied().ok_or(SpecError::MissingField { line, field: "name" })?;
        let pairs = Pairs::new(
            line,
            &tokens[1..],
            &[
                "critical",
                "utility",
                "k",
                "umax",
                "sharpness",
                "offset",
                "lin",
                "quad",
                "trigger",
                "period",
                "rate",
                "burst",
                "aggregation",
                "percentile",
            ],
        )?;
        let critical = pairs.required_nonneg("critical")?;

        let utility = match pairs.str("utility").unwrap_or("linear") {
            "linear" => {
                let k = pairs.nonneg_float("k")?.unwrap_or(2.0);
                if k < 1.0 || critical <= 0.0 {
                    return Err(pairs.invalid("k"));
                }
                UtilityFn::linear_for_deadline(k, critical)
            }
            "negative_latency" => UtilityFn::negative_latency(),
            "inelastic" => {
                let umax = pairs.nonneg_float("umax")?.unwrap_or(100.0);
                let sharpness = pairs.nonneg_float("sharpness")?.unwrap_or(6.0);
                if umax <= 0.0 || sharpness <= 0.0 || critical <= 0.0 {
                    return Err(pairs.invalid("umax"));
                }
                UtilityFn::smooth_inelastic(umax, critical, sharpness)
            }
            "quadratic" => UtilityFn::Quadratic {
                offset: pairs.float("offset")?.unwrap_or(0.0),
                lin: pairs.float("lin")?.unwrap_or(1.0),
                quad: pairs.float("quad")?.unwrap_or(0.0),
            },
            _ => return Err(pairs.invalid("utility")),
        };

        let trigger = match pairs.str("trigger").unwrap_or("periodic") {
            "periodic" => {
                TriggerSpec::Periodic { period: pairs.nonneg_float("period")?.unwrap_or(100.0) }
            }
            "poisson" => TriggerSpec::Poisson {
                rate: pairs
                    .nonneg_float("rate")?
                    .ok_or(SpecError::MissingField { line, field: "rate" })?,
            },
            "bursty" => TriggerSpec::Bursty {
                period: pairs.nonneg_float("period")?.unwrap_or(100.0),
                burst: pairs
                    .usize("burst")?
                    .ok_or(SpecError::MissingField { line, field: "burst" })?,
            },
            _ => return Err(pairs.invalid("trigger")),
        };

        let aggregation = match pairs.str("aggregation").unwrap_or("path_weighted") {
            "sum" => Aggregation::Sum,
            "path_weighted" => Aggregation::PathWeighted,
            _ => return Err(pairs.invalid("aggregation")),
        };

        let percentile = match pairs.str("percentile") {
            None | Some("worst") => PercentileSpec::WorstCase,
            Some(v) => {
                let p: f64 = v.parse().map_err(|_| pairs.invalid("percentile"))?;
                if !p.is_finite() || !(0.0..=100.0).contains(&p) {
                    return Err(pairs.invalid("percentile"));
                }
                PercentileSpec::Percentile(p)
            }
        };

        let mut builder = TaskBuilder::new(name);
        builder
            .critical_time(critical)
            .utility(utility)
            .trigger(trigger)
            .aggregation(aggregation)
            .percentile(percentile);
        self.current =
            Some(PendingTask { line, builder, subtask_names: HashMap::new(), has_subtask: false });
        Ok(())
    }

    fn subtask(&mut self, line: usize, tokens: &[&str]) -> Result<(), SpecError> {
        let name =
            tokens.first().copied().ok_or(SpecError::MissingField { line, field: "name" })?;
        let pairs = Pairs::new(line, &tokens[1..], &["resource", "exec", "max_latency"])?;
        let resource_name =
            pairs.str("resource").ok_or(SpecError::MissingField { line, field: "resource" })?;
        let resource = *self.resource_names.get(resource_name).ok_or_else(|| {
            SpecError::UnknownName { line, entity: "resource", name: resource_name.to_string() }
        })?;
        let exec = pairs.required_nonneg("exec")?;
        let cap = pairs.nonneg_float("max_latency")?;

        let task =
            self.current.as_mut().ok_or(SpecError::OutsideTask { line, keyword: "subtask" })?;
        if task.subtask_names.contains_key(name) {
            return Err(SpecError::DuplicateName { line, name: name.to_string() });
        }
        let idx = match cap {
            Some(cap) => task.builder.subtask_with_max_latency(name, resource, exec, cap),
            None => task.builder.subtask(name, resource, exec),
        };
        task.subtask_names.insert(name.to_string(), idx);
        task.has_subtask = true;
        Ok(())
    }

    fn resolve(&self, line: usize, name: &str) -> Result<usize, SpecError> {
        let task = self.current.as_ref().ok_or(SpecError::OutsideTask { line, keyword: "edge" })?;
        task.subtask_names.get(name).copied().ok_or_else(|| SpecError::UnknownName {
            line,
            entity: "subtask",
            name: name.to_string(),
        })
    }

    fn edge(&mut self, line: usize, tokens: &[&str]) -> Result<(), SpecError> {
        if tokens.len() != 2 {
            return Err(SpecError::MissingField { line, field: "edge endpoints" });
        }
        let from = self.resolve(line, tokens[0])?;
        let to = self.resolve(line, tokens[1])?;
        let task = self.current.as_mut().expect("checked by resolve");
        task.builder.edge(from, to)?;
        Ok(())
    }

    fn chain(&mut self, line: usize, tokens: &[&str]) -> Result<(), SpecError> {
        if tokens.len() < 2 {
            return Err(SpecError::MissingField { line, field: "chain members" });
        }
        let indices: Vec<usize> =
            tokens.iter().map(|t| self.resolve(line, t)).collect::<Result<_, _>>()?;
        let task = self.current.as_mut().expect("checked by resolve");
        task.builder.chain(&indices)?;
        Ok(())
    }

    fn finish_task(&mut self) -> Result<(), SpecError> {
        if let Some(pending) = self.current.take() {
            if !pending.has_subtask {
                return Err(SpecError::MissingField { line: pending.line, field: "subtask" });
            }
            let id = TaskId::new(self.tasks.len());
            self.tasks.push(pending.builder.build(id)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALID: &str = "
# A two-task system.
resource cpu0 kind=cpu lag=1.0 availability=0.9
resource link0 kind=link lag=0.5

task trading critical=25 utility=inelastic umax=100 sharpness=6 trigger=bursty period=50 burst=2
  subtask recv resource=link0 exec=1.0
  subtask parse resource=cpu0 exec=2.0 max_latency=50
  edge recv parse

task batch critical=80 utility=negative_latency trigger=poisson rate=0.01 aggregation=sum
  subtask a resource=cpu0 exec=6.0
  subtask b resource=link0 exec=1.0
  chain a b
";

    #[test]
    fn parses_valid_spec() {
        let p = parse(VALID).unwrap();
        assert_eq!(p.resources().len(), 2);
        assert_eq!(p.tasks().len(), 2);
        assert_eq!(p.resources()[0].name(), "cpu0");
        assert_eq!(p.resources()[0].availability(), 0.9);
        assert_eq!(p.resources()[1].kind(), ResourceKind::NetworkLink);

        let trading = &p.tasks()[0];
        assert_eq!(trading.name(), "trading");
        assert_eq!(trading.critical_time(), 25.0);
        assert_eq!(trading.len(), 2);
        assert_eq!(trading.subtasks()[1].max_latency(), Some(50.0));
        assert!(matches!(trading.trigger(), TriggerSpec::Bursty { burst: 2, .. }));
        assert!(matches!(trading.utility_fn(), UtilityFn::ExponentialPenalty { .. }));

        let batch = &p.tasks()[1];
        assert_eq!(batch.aggregation(), Aggregation::Sum);
        assert!(batch.graph().is_chain());
        assert!(matches!(batch.trigger(), TriggerSpec::Poisson { .. }));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse("# only\n\nresource r kind=cpu\ntask t critical=10\n subtask s resource=r exec=1 # eol\n").unwrap();
        assert_eq!(p.num_subtasks(), 1);
    }

    #[test]
    fn defaults_apply() {
        let p = parse("resource r\ntask t critical=40\n subtask s resource=r exec=1\n").unwrap();
        let t = &p.tasks()[0];
        // Defaults: linear k=2, periodic 100ms, path-weighted, worst case.
        assert_eq!(t.utility_fn().value(0.0), 80.0);
        assert!(matches!(t.trigger(), TriggerSpec::Periodic { period } if period == 100.0));
        assert_eq!(t.aggregation(), Aggregation::PathWeighted);
        assert_eq!(t.percentile(), PercentileSpec::WorstCase);
        assert_eq!(p.resources()[0].kind(), ResourceKind::Cpu);
    }

    #[test]
    fn percentile_value_parses() {
        let p =
            parse("resource r\ntask t critical=40 percentile=99\n subtask s resource=r exec=1\n")
                .unwrap();
        assert_eq!(p.tasks()[0].percentile(), PercentileSpec::Percentile(99.0));
    }

    #[test]
    fn unknown_declaration_rejected() {
        let e = parse("frobnicate x\n").unwrap_err();
        assert!(matches!(e, SpecError::UnknownDeclaration { line: 1, .. }));
    }

    #[test]
    fn missing_critical_rejected() {
        let e = parse("resource r\ntask t\n subtask s resource=r exec=1\n").unwrap_err();
        assert!(matches!(e, SpecError::MissingField { line: 2, field: "critical" }));
    }

    #[test]
    fn unknown_resource_rejected() {
        let e = parse("task t critical=10\n subtask s resource=ghost exec=1\n").unwrap_err();
        assert!(matches!(e, SpecError::UnknownName { entity: "resource", .. }));
    }

    #[test]
    fn unknown_subtask_in_edge_rejected() {
        let e =
            parse("resource r\ntask t critical=10\n subtask a resource=r exec=1\n edge a ghost\n")
                .unwrap_err();
        assert!(matches!(e, SpecError::UnknownName { entity: "subtask", .. }));
    }

    #[test]
    fn subtask_outside_task_rejected() {
        let e = parse("resource r\nsubtask s resource=r exec=1\n").unwrap_err();
        assert!(matches!(e, SpecError::OutsideTask { keyword: "subtask", .. }));
    }

    #[test]
    fn duplicate_names_rejected() {
        let e = parse("resource r\nresource r\n").unwrap_err();
        assert!(matches!(e, SpecError::DuplicateName { line: 2, .. }));
        let e = parse(
            "resource r\ntask t critical=10\n subtask s resource=r exec=1\n subtask s resource=r exec=1\n",
        )
        .unwrap_err();
        assert!(matches!(e, SpecError::DuplicateName { line: 4, .. }));
    }

    #[test]
    fn malformed_pair_rejected() {
        let e = parse("resource r lag\n").unwrap_err();
        assert!(matches!(e, SpecError::MalformedPair { .. }));
    }

    #[test]
    fn unknown_key_rejected() {
        let e = parse("resource r color=blue\n").unwrap_err();
        assert!(matches!(e, SpecError::UnknownKey { .. }));
    }

    #[test]
    fn bad_float_rejected() {
        let e = parse("resource r lag=fast\n").unwrap_err();
        assert!(matches!(e, SpecError::InvalidValue { .. }));
    }

    #[test]
    fn non_finite_floats_rejected_everywhere() {
        // `f64::parse` accepts all of these spellings; the parser must not.
        for spec in [
            "resource r lag=NaN\n",
            "resource r availability=inf\n",
            "resource r lag=-infinity\n",
            "resource r\ntask t critical=nan\n subtask s resource=r exec=1\n",
            "resource r\ntask t critical=10 trigger=poisson rate=inf\n subtask s resource=r exec=1\n",
            "resource r\ntask t critical=10 utility=quadratic offset=NaN\n subtask s resource=r exec=1\n",
            "resource r\ntask t critical=10\n subtask s resource=r exec=Infinity\n",
        ] {
            let e = parse(spec).unwrap_err();
            assert!(matches!(e, SpecError::InvalidValue { .. }), "{spec:?} got {e:?}");
        }
    }

    #[test]
    fn negative_physical_quantities_rejected() {
        for spec in [
            "resource r lag=-1\n",
            "resource r availability=-0.5\n",
            "resource r\ntask t critical=-10\n subtask s resource=r exec=1\n",
            "resource r\ntask t critical=10 period=-5\n subtask s resource=r exec=1\n",
            "resource r\ntask t critical=10\n subtask s resource=r exec=-1\n",
            "resource r\ntask t critical=10\n subtask s resource=r exec=1 max_latency=-2\n",
        ] {
            let e = parse(spec).unwrap_err();
            assert!(matches!(e, SpecError::InvalidValue { .. }), "{spec:?} got {e:?}");
        }
    }

    #[test]
    fn signed_utility_offset_still_parses() {
        // The quadratic offset is legitimately signed — only the
        // non-finite spellings are barred for it.
        let p = parse(
            "resource r\ntask t critical=10 utility=quadratic offset=-5 lin=0.5 quad=0.01\n subtask s resource=r exec=1\n",
        )
        .unwrap();
        assert!(
            matches!(p.tasks()[0].utility_fn(), UtilityFn::Quadratic { offset, .. } if *offset == -5.0)
        );
    }

    #[test]
    fn out_of_range_percentile_rejected() {
        for spec in [
            "resource r\ntask t critical=10 percentile=NaN\n subtask s resource=r exec=1\n",
            "resource r\ntask t critical=10 percentile=101\n subtask s resource=r exec=1\n",
            "resource r\ntask t critical=10 percentile=-1\n subtask s resource=r exec=1\n",
        ] {
            let e = parse(spec).unwrap_err();
            assert!(matches!(e, SpecError::InvalidValue { .. }), "{spec:?} got {e:?}");
        }
    }

    #[test]
    fn empty_task_rejected() {
        let e = parse(
            "resource r\ntask t critical=10\ntask u critical=10\n subtask s resource=r exec=1\n",
        )
        .unwrap_err();
        assert!(matches!(e, SpecError::MissingField { line: 2, field: "subtask" }));
    }

    #[test]
    fn cyclic_graph_rejected_via_model_error() {
        let e = parse(
            "resource r0\nresource r1\ntask t critical=10\n subtask a resource=r0 exec=1\n subtask b resource=r1 exec=1\n edge a b\n edge b a\n",
        )
        .unwrap_err();
        assert!(matches!(e, SpecError::Model(_)));
    }

    #[test]
    fn parsed_problem_is_optimizable() {
        use lla_core::{Optimizer, OptimizerConfig, StepSizePolicy};
        let p = parse(VALID).unwrap();
        let mut opt = Optimizer::new(
            p,
            OptimizerConfig {
                step_policy: StepSizePolicy::sign_adaptive(1.0),
                ..OptimizerConfig::default()
            },
        );
        let outcome = opt.run_to_convergence(10_000);
        assert!(outcome.converged, "parsed workload should be schedulable: {outcome:?}");
    }
}
