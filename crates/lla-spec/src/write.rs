//! The specification writer: renders a [`Problem`] back to the text
//! format, such that `parse(write(p))` reproduces `p`.

use lla_core::{Aggregation, PercentileSpec, Problem, ResourceKind, TriggerSpec, UtilityFn};
use std::fmt::Write as _;

/// Renders a problem as a specification document.
///
/// The output round-trips: parsing it yields an equivalent problem
/// (same resources, tasks, graphs, and parameters).
pub fn write(problem: &Problem) -> String {
    let mut out = String::new();
    for r in problem.resources() {
        let kind = match r.kind() {
            ResourceKind::Cpu => "cpu",
            ResourceKind::NetworkLink => "link",
        };
        let _ = writeln!(
            out,
            "resource {} kind={kind} lag={} availability={}",
            sanitize(r.name()),
            r.lag(),
            r.availability()
        );
    }
    for task in problem.tasks() {
        out.push('\n');
        let _ = write!(out, "task {} critical={}", sanitize(task.name()), task.critical_time());
        match task.utility_fn() {
            UtilityFn::Linear { offset, slope } => {
                if *slope == -1.0 && *offset == 0.0 {
                    let _ = write!(out, " utility=negative_latency");
                } else {
                    // linear_for_deadline form: offset = k*C, slope = -1.
                    let k = offset / task.critical_time();
                    let _ = write!(out, " utility=linear k={k}");
                }
            }
            UtilityFn::Quadratic { offset, lin, quad } => {
                let _ = write!(out, " utility=quadratic offset={offset} lin={lin} quad={quad}");
            }
            UtilityFn::ExponentialPenalty { offset, a, b } => {
                // smooth_inelastic form: b = sharpness/C, a = umax/exp(b*C).
                let sharpness = b * task.critical_time();
                let umax = a * sharpness.exp();
                debug_assert!((umax - offset).abs() < 1e-6 * offset.abs().max(1.0));
                let _ = write!(out, " utility=inelastic umax={offset} sharpness={sharpness}");
            }
            // `UtilityFn` is non-exhaustive; future variants fall back to
            // the default linear utility on round-trip.
            _ => {}
        }
        match task.trigger() {
            TriggerSpec::Periodic { period } => {
                let _ = write!(out, " trigger=periodic period={period}");
            }
            TriggerSpec::Poisson { rate } => {
                let _ = write!(out, " trigger=poisson rate={rate}");
            }
            TriggerSpec::Bursty { period, burst } => {
                let _ = write!(out, " trigger=bursty period={period} burst={burst}");
            }
            _ => {}
        }
        let agg = match task.aggregation() {
            Aggregation::Sum => "sum",
            Aggregation::PathWeighted => "path_weighted",
        };
        let _ = write!(out, " aggregation={agg}");
        if let PercentileSpec::Percentile(p) = task.percentile() {
            let _ = write!(out, " percentile={p}");
        }
        out.push('\n');

        for s in task.subtasks() {
            let rname = sanitize(problem.resource(s.resource()).name());
            let _ = write!(
                out,
                "  subtask {} resource={rname} exec={}",
                sanitize(s.name()),
                s.exec_time()
            );
            if let Some(cap) = s.max_latency() {
                let _ = write!(out, " max_latency={cap}");
            }
            out.push('\n');
        }
        for (v, sub) in task.subtasks().iter().enumerate() {
            for &w in task.graph().successors(v) {
                let _ = writeln!(
                    out,
                    "  edge {} {}",
                    sanitize(sub.name()),
                    sanitize(task.subtasks()[w].name())
                );
            }
        }
    }
    out
}

/// Names are whitespace-delimited tokens in the format; replace anything
/// that would break tokenization.
fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_whitespace() || c == '#' || c == '=' { '_' } else { c }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn assert_roundtrip(problem: &Problem) {
        let text = write(problem);
        let back = parse(&text).unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n{text}"));
        assert_eq!(back.resources().len(), problem.resources().len());
        assert_eq!(back.tasks().len(), problem.tasks().len());
        for (a, b) in problem.resources().iter().zip(back.resources()) {
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.lag(), b.lag());
            assert_eq!(a.availability(), b.availability());
        }
        for (a, b) in problem.tasks().iter().zip(back.tasks()) {
            assert_eq!(a.critical_time(), b.critical_time());
            assert_eq!(a.aggregation(), b.aggregation());
            assert_eq!(a.percentile(), b.percentile());
            assert_eq!(a.trigger(), b.trigger());
            assert_eq!(a.len(), b.len());
            assert_eq!(a.graph().paths().len(), b.graph().paths().len());
            for (sa, sb) in a.subtasks().iter().zip(b.subtasks()) {
                assert_eq!(sa.resource(), sb.resource());
                assert_eq!(sa.exec_time(), sb.exec_time());
                assert_eq!(sa.max_latency(), sb.max_latency());
            }
            // Utilities agree pointwise.
            for lat in [0.0, 10.0, a.critical_time()] {
                let ua = a.utility_fn().value(lat);
                let ub = b.utility_fn().value(lat);
                assert!(
                    (ua - ub).abs() < 1e-9 * ua.abs().max(1.0),
                    "utility mismatch at {lat}: {ua} vs {ub}"
                );
            }
        }
    }

    #[test]
    fn paper_base_workload_roundtrips() {
        assert_roundtrip(&lla_workloads::base_workload());
    }

    #[test]
    fn prototype_workload_roundtrips() {
        assert_roundtrip(&lla_workloads::prototype_workload(&Default::default()));
    }

    #[test]
    fn random_workloads_roundtrip() {
        for seed in 0..10 {
            let problem = lla_workloads::RandomWorkloadConfig { seed, ..Default::default() }
                .generate()
                .unwrap();
            assert_roundtrip(&problem);
        }
    }

    #[test]
    fn all_utility_and_trigger_forms_roundtrip() {
        let text = "
resource r0 kind=cpu lag=1 availability=0.8
resource r1 kind=link lag=0.5

task a critical=20 utility=linear k=3 trigger=periodic period=50
  subtask s resource=r0 exec=1

task b critical=30 utility=negative_latency trigger=poisson rate=0.02 aggregation=sum
  subtask s resource=r1 exec=1 max_latency=25

task c critical=40 utility=inelastic umax=77 sharpness=4 trigger=bursty period=80 burst=3 percentile=95
  subtask s resource=r0 exec=2

task d critical=50 utility=quadratic offset=10 lin=0.5 quad=0.01
  subtask s resource=r1 exec=2
";
        assert_roundtrip(&parse(text).unwrap());
    }

    #[test]
    fn sanitize_protects_tokenization() {
        assert_eq!(sanitize("a b#c=d"), "a_b_c_d");
    }
}
