//! Parse and validation errors with line information.

use lla_core::ModelError;
use std::error::Error;
use std::fmt;

/// Error produced while parsing a workload specification.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpecError {
    /// A line did not start with a known declaration keyword.
    UnknownDeclaration {
        /// 1-based line number.
        line: usize,
        /// The offending keyword.
        keyword: String,
    },
    /// A declaration was missing a required field.
    MissingField {
        /// 1-based line number.
        line: usize,
        /// The missing key.
        field: &'static str,
    },
    /// A `key=value` pair had an unparsable or out-of-domain value.
    InvalidValue {
        /// 1-based line number.
        line: usize,
        /// The key whose value was rejected.
        key: String,
        /// The rejected raw value.
        value: String,
    },
    /// A `key=value` pair used a key the declaration does not accept.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The unknown key.
        key: String,
    },
    /// A token that should have been `key=value` was malformed.
    MalformedPair {
        /// 1-based line number.
        line: usize,
        /// The malformed token.
        token: String,
    },
    /// A declaration referenced a name that was never declared.
    UnknownName {
        /// 1-based line number.
        line: usize,
        /// What kind of entity was looked up (`resource`/`subtask`).
        entity: &'static str,
        /// The unresolved name.
        name: String,
    },
    /// A name was declared twice in the same scope.
    DuplicateName {
        /// 1-based line number.
        line: usize,
        /// The duplicated name.
        name: String,
    },
    /// `subtask`/`edge`/`chain` appeared before any `task`.
    OutsideTask {
        /// 1-based line number.
        line: usize,
        /// The declaration keyword.
        keyword: &'static str,
    },
    /// The assembled model failed semantic validation.
    Model(ModelError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownDeclaration { line, keyword } => {
                write!(f, "line {line}: unknown declaration `{keyword}`")
            }
            SpecError::MissingField { line, field } => {
                write!(f, "line {line}: missing required field `{field}`")
            }
            SpecError::InvalidValue { line, key, value } => {
                write!(f, "line {line}: invalid value `{value}` for `{key}`")
            }
            SpecError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown key `{key}`")
            }
            SpecError::MalformedPair { line, token } => {
                write!(f, "line {line}: expected key=value, got `{token}`")
            }
            SpecError::UnknownName { line, entity, name } => {
                write!(f, "line {line}: unknown {entity} `{name}`")
            }
            SpecError::DuplicateName { line, name } => {
                write!(f, "line {line}: duplicate name `{name}`")
            }
            SpecError::OutsideTask { line, keyword } => {
                write!(f, "line {line}: `{keyword}` must appear inside a task")
            }
            SpecError::Model(e) => write!(f, "model validation failed: {e}"),
        }
    }
}

impl Error for SpecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpecError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SpecError {
    fn from(e: ModelError) -> Self {
        SpecError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lla_core::TaskId;

    #[test]
    fn display_includes_line_numbers() {
        let e = SpecError::MissingField { line: 7, field: "critical" };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn model_error_wraps_with_source() {
        let e: SpecError = ModelError::EmptyTask { task: TaskId::new(0) }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("model validation failed"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpecError>();
    }
}
