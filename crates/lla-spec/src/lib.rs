//! # `lla-spec` — declarative workload specifications
//!
//! The paper assumes "task specifications" describing subtasks, resource
//! demands, triggering events and timeliness constraints (§2). This crate
//! provides a small line-oriented text format for those specifications, a
//! parser producing a validated [`lla_core::Problem`], and a writer that
//! round-trips it — so workloads can be defined, versioned, and fed to the
//! `lla` CLI without writing Rust.
//!
//! ## Format
//!
//! ```text
//! # Comments start with '#'. Declarations are one per line.
//! resource cpu0 kind=cpu lag=1.0 availability=0.9
//! resource link0 kind=link lag=0.5
//!
//! task trading critical=25 utility=linear k=2 trigger=periodic period=100
//!   subtask recv resource=link0 exec=1.0
//!   subtask parse resource=cpu0 exec=2.0 max_latency=50
//!   edge recv parse
//!
//! task batch critical=80 utility=negative_latency trigger=poisson rate=0.01
//!   subtask crunch resource=cpu0 exec=6.0
//! ```
//!
//! * `resource NAME key=value…` — keys: `kind` (`cpu`|`link`), `lag`,
//!   `availability`.
//! * `task NAME key=value…` — keys: `critical` (ms, required), `utility`
//!   (`linear`|`negative_latency`|`inelastic`|`quadratic`, default
//!   `linear`), utility parameters (`k`, `umax`, `sharpness`, `offset`,
//!   `lin`, `quad`), `trigger` (`periodic`|`poisson`|`bursty`, default
//!   `periodic`), `period`, `rate`, `burst`, `aggregation`
//!   (`sum`|`path_weighted`), `percentile` (`worst` or a number).
//! * `subtask NAME resource=R exec=E [max_latency=L]` — belongs to the
//!   most recent `task`.
//! * `edge A B` / `chain A B C …` — precedence between subtasks of the
//!   current task, by name.
//!
//! Names resolve to dense ids in order of first appearance.
//!
//! ## Example
//!
//! ```rust
//! let text = "
//! resource cpu0 kind=cpu lag=1
//! task t critical=20
//!   subtask only resource=cpu0 exec=2
//! ";
//! let problem = lla_spec::parse(text)?;
//! assert_eq!(problem.resources().len(), 1);
//! let round_trip = lla_spec::write(&problem);
//! assert_eq!(lla_spec::parse(&round_trip)?.num_subtasks(), 1);
//! # Ok::<(), lla_spec::SpecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod parse;
mod write;

pub use error::SpecError;
pub use parse::parse;
pub use write::write;
