//! A fluid proportional-share (GPS) resource model.
//!
//! Each subtask hosted on a resource is a *session* with a weight equal to
//! its enacted share. At any instant, every backlogged session is served at
//! rate
//!
//! ```text
//! rate_i = w_i / (Σ_{backlogged j} w_j + w_bg)
//! ```
//!
//! where `w_bg = 1 − B_r` models the permanently backlogged reservation
//! (e.g. the paper's Metronome garbage collector at 0.1). This is the
//! idealized fluid limit of surplus fair scheduling: it provides
//! *performance isolation* (whenever `Σ w_j ≤ B_r`, every backlogged
//! session gets at least its share) and is *work conserving* (spare
//! capacity is redistributed proportionally) — the two properties §3.2 of
//! the paper relies on.
//!
//! Within a session, jobs are served FIFO; only the head receives service,
//! so queueing delay appears as soon as a session's share falls below its
//! arrival rate × service demand.

use std::collections::VecDeque;

/// A unit of work queued at a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidJob {
    /// Identifier of the job set this job belongs to (simulator-assigned).
    pub set_id: u64,
    /// Remaining service demand in milliseconds at full resource speed.
    pub remaining: f64,
    /// Simulation time at which the job became eligible.
    pub released_at: f64,
}

#[derive(Debug, Clone)]
struct Session {
    share: f64,
    queue: VecDeque<FluidJob>,
}

/// One proportional-share resource with any number of sessions.
#[derive(Debug, Clone)]
pub struct PsResource {
    sessions: Vec<Session>,
    background_weight: f64,
}

impl PsResource {
    /// Creates a resource with availability `B_r ∈ (0, 1]`; the remaining
    /// `1 − B_r` acts as a permanently backlogged background session.
    ///
    /// # Panics
    ///
    /// Panics if `availability` is outside `(0, 1]`.
    pub fn new(availability: f64) -> Self {
        assert!(
            availability > 0.0 && availability <= 1.0,
            "availability must be in (0, 1], got {availability}"
        );
        PsResource { sessions: Vec::new(), background_weight: 1.0 - availability }
    }

    /// Adds a session with the given initial share; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `share` is not strictly positive.
    pub fn add_session(&mut self, share: f64) -> usize {
        assert!(share > 0.0, "session share must be positive");
        self.sessions.push(Session { share, queue: VecDeque::new() });
        self.sessions.len() - 1
    }

    /// Number of sessions.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Updates a session's share (enacting a new allocation).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or `share ≤ 0`.
    pub fn set_share(&mut self, session: usize, share: f64) {
        assert!(share > 0.0, "session share must be positive");
        self.sessions[session].share = share;
    }

    /// The share of a session.
    pub fn share(&self, session: usize) -> f64 {
        self.sessions[session].share
    }

    /// Queue length (including the job in service) of a session.
    pub fn queue_len(&self, session: usize) -> usize {
        self.sessions[session].queue.len()
    }

    /// Total queued jobs across sessions.
    pub fn backlog(&self) -> usize {
        self.sessions.iter().map(|s| s.queue.len()).sum()
    }

    /// Enqueues a job at a session.
    pub fn enqueue(&mut self, session: usize, job: FluidJob) {
        self.sessions[session].queue.push_back(job);
    }

    /// The instantaneous service rate of each session's head job
    /// (0 for idle sessions).
    pub fn rates(&self) -> Vec<f64> {
        let total: f64 =
            self.sessions.iter().filter(|s| !s.queue.is_empty()).map(|s| s.share).sum::<f64>()
                + self.background_weight;
        self.sessions
            .iter()
            .map(|s| if s.queue.is_empty() || total <= 0.0 { 0.0 } else { s.share / total })
            .collect()
    }

    /// Time until the next head-of-line completion at current rates, with
    /// the session index, or `None` if the resource is idle.
    pub fn next_completion(&self) -> Option<(f64, usize)> {
        let rates = self.rates();
        let mut best: Option<(f64, usize)> = None;
        for (i, s) in self.sessions.iter().enumerate() {
            if let Some(head) = s.queue.front() {
                let dt = head.remaining / rates[i];
                if best.is_none_or(|(b, _)| dt < b) {
                    best = Some((dt, i));
                }
            }
        }
        best
    }

    /// Advances fluid service by `dt` milliseconds at current rates.
    ///
    /// Callers must choose `dt` no larger than
    /// [`next_completion`](Self::next_completion)'s delta, so at most one
    /// head reaches zero remaining work (ties allowed).
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0);
        let rates = self.rates();
        for (s, &r) in self.sessions.iter_mut().zip(&rates) {
            if let Some(head) = s.queue.front_mut() {
                head.remaining = (head.remaining - r * dt).max(0.0);
            }
        }
    }

    /// Pops every completed head job (remaining ≤ `eps`), returning
    /// `(session, job)` pairs.
    pub fn pop_completed(&mut self, eps: f64) -> Vec<(usize, FluidJob)> {
        let mut done = Vec::new();
        for (i, s) in self.sessions.iter_mut().enumerate() {
            while let Some(head) = s.queue.front() {
                if head.remaining <= eps {
                    done.push((i, s.queue.pop_front().expect("front exists")));
                } else {
                    break;
                }
            }
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(remaining: f64) -> FluidJob {
        FluidJob { set_id: 0, remaining, released_at: 0.0 }
    }

    #[test]
    fn single_backlogged_session_gets_full_available_rate() {
        let mut r = PsResource::new(1.0);
        let s = r.add_session(0.2);
        r.enqueue(s, job(5.0));
        // Work conservation: alone on an unreserved resource => rate 1.
        assert_eq!(r.rates()[s], 1.0);
        let (dt, idx) = r.next_completion().unwrap();
        assert_eq!(idx, s);
        assert!((dt - 5.0).abs() < 1e-12);
    }

    #[test]
    fn background_reservation_limits_rate() {
        let mut r = PsResource::new(0.9);
        let s = r.add_session(0.2);
        r.enqueue(s, job(5.0));
        // rate = 0.2 / (0.2 + 0.1) = 2/3.
        assert!((r.rates()[s] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rates_are_proportional_to_shares() {
        let mut r = PsResource::new(1.0);
        let a = r.add_session(0.3);
        let b = r.add_session(0.6);
        r.enqueue(a, job(1.0));
        r.enqueue(b, job(1.0));
        let rates = r.rates();
        assert!((rates[b] / rates[a] - 2.0).abs() < 1e-12);
        // Work conserving: rates sum to 1 with no reservation.
        assert!((rates[a] + rates[b] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn isolation_guarantee_holds() {
        // With sum of shares <= B, every backlogged session gets >= share.
        let mut r = PsResource::new(0.9);
        let ids: Vec<usize> = [0.2, 0.2, 0.13, 0.13].iter().map(|&s| r.add_session(s)).collect();
        for &i in &ids {
            r.enqueue(i, job(1.0));
        }
        let rates = r.rates();
        for &i in &ids {
            assert!(
                rates[i] >= r.share(i) - 1e-12,
                "session {i}: rate {} below share {}",
                rates[i],
                r.share(i)
            );
        }
    }

    #[test]
    fn advance_and_complete() {
        let mut r = PsResource::new(1.0);
        let a = r.add_session(0.5);
        let b = r.add_session(0.5);
        r.enqueue(a, job(2.0));
        r.enqueue(b, job(4.0));
        let (dt, first) = r.next_completion().unwrap();
        assert_eq!(first, a);
        assert!((dt - 4.0).abs() < 1e-12, "2ms of work at rate 0.5");
        r.advance(dt);
        let done = r.pop_completed(1e-12);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, a);
        // Session b now alone: rate 1, remaining 2ms.
        let (dt2, second) = r.next_completion().unwrap();
        assert_eq!(second, b);
        assert!((dt2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fifo_within_session() {
        let mut r = PsResource::new(1.0);
        let s = r.add_session(1.0);
        r.enqueue(s, FluidJob { set_id: 1, remaining: 1.0, released_at: 0.0 });
        r.enqueue(s, FluidJob { set_id: 2, remaining: 1.0, released_at: 0.0 });
        r.advance(1.0);
        let done = r.pop_completed(1e-12);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.set_id, 1, "first enqueued job completes first");
        assert_eq!(r.queue_len(s), 1);
    }

    #[test]
    fn share_update_changes_rates() {
        let mut r = PsResource::new(1.0);
        let a = r.add_session(0.5);
        let b = r.add_session(0.5);
        r.enqueue(a, job(10.0));
        r.enqueue(b, job(10.0));
        r.set_share(a, 1.5);
        let rates = r.rates();
        assert!((rates[a] - 0.75).abs() < 1e-12);
        assert!((rates[b] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn idle_resource_has_no_completion() {
        let mut r = PsResource::new(0.9);
        r.add_session(0.5);
        assert_eq!(r.next_completion(), None);
        assert_eq!(r.backlog(), 0);
    }

    #[test]
    #[should_panic(expected = "share must be positive")]
    fn zero_share_rejected() {
        let mut r = PsResource::new(1.0);
        r.add_session(0.0);
    }
}
