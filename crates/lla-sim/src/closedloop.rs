//! The closed loop: optimizer ⇄ simulator with online error correction
//! (§6.3–6.4).
//!
//! Each *window* the loop (1) lets the simulator run under the currently
//! enacted shares, (2) compares measured high-percentile subtask latencies
//! against the uncorrected model predictions and folds the difference into
//! per-subtask [`ErrorCorrector`]s, (3) pushes the smoothed corrections
//! into the optimizer's share models, (4) re-runs LLA to convergence and
//! enacts the new shares. This reproduces the paper's prototype experiment
//! (Figure 8): with correction disabled the optimizer allocates according
//! to the conservative worst-case model; once enabled, it discovers that
//! the fast tasks meet their critical times with less share and hands the
//! surplus to the slow tasks.

use crate::correction::ErrorCorrector;
use crate::simulator::{SimConfig, Simulator};
use lla_core::{Optimizer, OptimizerConfig, Problem};
use lla_telemetry::{Counter, Gauge, MetricsRegistry};

/// How measured deviations are folded back into the share model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrectionMode {
    /// The paper's model (§6.3): an additive latency error `ê` with
    /// exponential smoothing, so `lat = (c+l)/share + ê`.
    Additive,
    /// A multiplicative alternative: scale the modeled demand so
    /// `lat = m·(c+l)/share`, with `m` the smoothed measured/predicted
    /// latency ratio. Compared in the ablation bench.
    DemandScaling,
}

/// Configuration of the closed loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedLoopConfig {
    /// Measurement window length (simulated milliseconds).
    pub window: f64,
    /// LLA iteration budget per window.
    pub optimizer_iters: usize,
    /// Exponential smoothing weight of the error corrector.
    pub correction_alpha: f64,
    /// Whether error correction starts enabled.
    pub correction_enabled: bool,
    /// How corrections are applied to the share model.
    pub correction_mode: CorrectionMode,
    /// Minimum measured samples before a subtask's correction updates.
    pub min_samples: usize,
    /// Lower clamp on enacted shares (the fluid scheduler needs > 0).
    pub min_share: f64,
    /// Enact a new allocation only when some share changed by at least
    /// this relative amount (§4.4: "allocations may be only enacted
    /// periodically or when significant changes occur"). `0` enacts every
    /// window.
    pub enact_threshold: f64,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        ClosedLoopConfig {
            window: 1_000.0,
            optimizer_iters: 2_000,
            correction_alpha: 0.3,
            correction_enabled: false,
            correction_mode: CorrectionMode::Additive,
            min_samples: 10,
            min_share: 1e-4,
            enact_threshold: 0.0,
        }
    }
}

/// Telemetry recorded at the end of each window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRecord {
    /// Simulation time at the window's end (ms).
    pub time: f64,
    /// Optimizer utility after re-optimization.
    pub utility: f64,
    /// Enacted shares `shares[t][s]` for the next window.
    pub shares: Vec<Vec<f64>>,
    /// Smoothed error corrections `ê[t][s]` (ms).
    pub corrections: Vec<Vec<f64>>,
    /// Measured high-percentile subtask latencies (ms; `NaN` when a subtask
    /// saw no samples in the window).
    pub measured: Vec<Vec<f64>>,
    /// Fraction of completed job sets that missed their critical time.
    pub miss_rate: Vec<f64>,
    /// Whether the re-optimized allocation was actually enacted (it is
    /// skipped when no share moved by at least the enactment threshold).
    pub enacted: bool,
}

/// Metric handles the loop publishes into at the end of each window.
#[derive(Debug)]
struct LoopTelemetry {
    windows: Counter,
    enactments: Counter,
    utility: Gauge,
    worst_miss_rate: Gauge,
    dropped: Gauge,
}

impl LoopTelemetry {
    fn new(registry: &MetricsRegistry) -> Self {
        LoopTelemetry {
            windows: registry
                .counter("lla_sim_windows_total", "measure/correct/re-optimize windows completed"),
            enactments: registry.counter(
                "lla_sim_enactments_total",
                "allocations actually pushed to the simulator",
            ),
            utility: registry.gauge("lla_sim_utility", "optimizer utility after the last window"),
            worst_miss_rate: registry.gauge(
                "lla_sim_worst_miss_rate",
                "worst per-task deadline miss fraction in the last window",
            ),
            dropped: registry
                .gauge("lla_sim_dropped_jobs", "job sets dropped by the simulator so far"),
        }
    }
}

/// The optimizer-in-the-loop driver.
#[derive(Debug)]
pub struct ClosedLoop {
    optimizer: Optimizer,
    simulator: Simulator,
    correctors: Vec<Vec<ErrorCorrector>>,
    config: ClosedLoopConfig,
    history: Vec<WindowRecord>,
    /// The shares the simulator is currently running with (may lag the
    /// optimizer's when the enactment threshold suppresses small changes).
    enacted: Vec<Vec<f64>>,
    enactments: usize,
    tel: Option<LoopTelemetry>,
}

impl ClosedLoop {
    /// Builds the loop: runs LLA once on the uncorrected model and enacts
    /// the resulting shares into a fresh simulator.
    pub fn new(
        problem: Problem,
        optimizer_config: OptimizerConfig,
        sim_config: SimConfig,
        config: ClosedLoopConfig,
    ) -> Self {
        let mut optimizer = Optimizer::new(problem.clone(), optimizer_config);
        optimizer.run_to_convergence(config.optimizer_iters);
        let shares = Self::shares_of(&optimizer, config.min_share);
        let simulator = Simulator::new(problem.clone(), &shares, sim_config);
        let correctors = problem
            .tasks()
            .iter()
            .map(|t| (0..t.len()).map(|_| ErrorCorrector::new(config.correction_alpha)).collect())
            .collect();
        ClosedLoop {
            optimizer,
            simulator,
            correctors,
            config,
            history: Vec::new(),
            enacted: shares,
            enactments: 1,
            tel: None,
        }
    }

    /// Registers the `lla_sim_*` metric family on `registry` and keeps it
    /// updated at the end of every window. Also forwards the optimizer's
    /// own `lla_opt_*` instrumentation to the same registry.
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry) {
        self.tel = Some(LoopTelemetry::new(registry));
        self.optimizer.attach_telemetry(registry);
    }

    fn shares_of(optimizer: &Optimizer, min_share: f64) -> Vec<Vec<f64>> {
        let alloc = optimizer.allocation();
        optimizer
            .problem()
            .tasks()
            .iter()
            .map(|task| {
                alloc
                    .shares(optimizer.problem(), task)
                    .into_iter()
                    .map(|s| s.clamp(min_share, 1.0))
                    .collect()
            })
            .collect()
    }

    /// The optimizer (for inspection).
    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    /// The simulator (for inspection).
    pub fn simulator(&self) -> &Simulator {
        &self.simulator
    }

    /// Recorded telemetry, one record per completed window.
    pub fn history(&self) -> &[WindowRecord] {
        &self.history
    }

    /// Enables or disables error correction (Figure 8 toggles this at
    /// t = 277s).
    pub fn set_correction_enabled(&mut self, enabled: bool) {
        self.config.correction_enabled = enabled;
    }

    /// Whether correction is currently enabled.
    pub fn correction_enabled(&self) -> bool {
        self.config.correction_enabled
    }

    /// The shares the simulator is currently running with.
    pub fn current_shares(&self) -> Vec<Vec<f64>> {
        self.enacted.clone()
    }

    /// Number of times a new allocation was actually pushed to the
    /// simulator (including the initial one).
    pub fn enactments(&self) -> usize {
        self.enactments
    }

    /// Runs one measure → correct → re-optimize → enact window and returns
    /// the record.
    pub fn step_window(&mut self) -> &WindowRecord {
        self.simulator.run_for(self.config.window);

        let problem = self.optimizer.problem();
        let mut measured = Vec::with_capacity(problem.tasks().len());
        let mut additive_updates = Vec::new();
        let mut scale_updates = Vec::new();
        for task in problem.tasks() {
            let t = task.id().index();
            let mut row = Vec::with_capacity(task.len());
            #[allow(clippy::needless_range_loop)] // `s` indexes three parallel tables
            for s in 0..task.len() {
                let stats = self.simulator.subtask_stats(t, s);
                let q = stats.quantile_estimate();
                row.push(q.unwrap_or(f64::NAN));
                if self.config.correction_enabled && stats.count() >= self.config.min_samples {
                    if let Some(q) = q {
                        let sid = task.subtask_id(s);
                        let model = problem.share_model(sid);
                        match self.config.correction_mode {
                            CorrectionMode::Additive => {
                                // Uncorrected model prediction at the share
                                // the simulator actually ran with.
                                let predicted = model.raw_demand() / self.enacted[t][s];
                                // Keep the corrected latency at the
                                // *throughput floor* share positive, so the
                                // allocator's upper clamp stays meaningful;
                                // larger negative errors would claim the
                                // subtask needs less share than its
                                // sustainable minimum, which the floor
                                // forbids anyway.
                                let min_share = (task.trigger().mean_rate()
                                    * task.subtasks()[s].exec_time())
                                .max(1e-9);
                                let floor = -0.95 * model.raw_demand() / min_share;
                                let e = self.correctors[t][s].update(q, predicted).max(floor);
                                additive_updates.push((sid, e));
                            }
                            CorrectionMode::DemandScaling => {
                                let predicted = model.raw_demand() / self.enacted[t][s];
                                // The corrector smooths (ratio − 1).
                                let est = self.correctors[t][s].update(q / predicted, 1.0);
                                let scale = (1.0 + est).clamp(0.05, 10.0);
                                scale_updates.push((sid, scale));
                            }
                        }
                    }
                }
            }
            measured.push(row);
        }
        for (sid, e) in additive_updates {
            self.optimizer.set_correction(sid, e);
        }
        for (sid, m) in scale_updates {
            self.optimizer.set_demand_scale(sid, m);
        }

        self.optimizer.run_to_convergence(self.config.optimizer_iters);
        let shares = Self::shares_of(&self.optimizer, self.config.min_share);
        // §4.4 batch mode: enact only on significant change.
        let max_rel_change = shares
            .iter()
            .flatten()
            .zip(self.enacted.iter().flatten())
            .map(|(new, old)| (new - old).abs() / old.max(1e-12))
            .fold(0.0f64, f64::max);
        let enact = max_rel_change >= self.config.enact_threshold;
        if enact {
            self.simulator.enact_shares(&shares);
            self.enacted = shares;
            self.enactments += 1;
        }
        let shares = self.enacted.clone();

        let problem = self.optimizer.problem();
        let miss_rate: Vec<f64> = (0..problem.tasks().len())
            .map(|t| {
                let done = self.simulator.completions(t);
                if done == 0 {
                    0.0
                } else {
                    self.simulator.deadline_misses(t) as f64 / done as f64
                }
            })
            .collect();
        let corrections: Vec<Vec<f64>> = self
            .correctors
            .iter()
            .map(|row| row.iter().map(ErrorCorrector::estimate).collect())
            .collect();

        if let Some(tel) = &self.tel {
            tel.windows.inc();
            if enact {
                tel.enactments.inc();
            }
            tel.utility.set(self.optimizer.utility());
            tel.worst_miss_rate.set(miss_rate.iter().copied().fold(0.0, f64::max));
            tel.dropped.set(self.simulator.dropped() as f64);
        }

        self.simulator.reset_stats();
        self.history.push(WindowRecord {
            time: self.simulator.now(),
            utility: self.optimizer.utility(),
            shares,
            corrections,
            measured,
            miss_rate,
            enacted: enact,
        });
        self.history.last().expect("just pushed")
    }

    /// Runs `n` windows.
    pub fn run_windows(&mut self, n: usize) {
        for _ in 0..n {
            self.step_window();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lla_core::{
        Aggregation, AllocationSettings, Resource, ResourceId, ResourceKind, StepSizePolicy,
        TaskBuilder, TaskId, TriggerSpec, UtilityFn,
    };

    /// Two pipeline tasks on two CPUs, moderately loaded.
    fn problem() -> Problem {
        let resources: Vec<Resource> = (0..2)
            .map(|i| {
                Resource::new(ResourceId::new(i), ResourceKind::Cpu)
                    .with_lag(2.0)
                    .with_availability(0.9)
            })
            .collect();
        let mut tasks = Vec::new();
        for i in 0..2 {
            let mut b = TaskBuilder::new(format!("t{i}"));
            let a = b.subtask("a", ResourceId::new(0), 4.0);
            let c = b.subtask("b", ResourceId::new(1), 4.0);
            b.edge(a, c).unwrap();
            b.critical_time(120.0)
                .utility(UtilityFn::negative_latency())
                .trigger(TriggerSpec::Periodic { period: 40.0 })
                .aggregation(Aggregation::Sum);
            tasks.push(b.build(TaskId::new(i)).unwrap());
        }
        Problem::new(resources, tasks).unwrap()
    }

    fn opt_config() -> OptimizerConfig {
        OptimizerConfig {
            step_policy: StepSizePolicy::adaptive(1.0),
            allocation: AllocationSettings::default(),
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn loop_runs_and_records() {
        let mut cl = ClosedLoop::new(
            problem(),
            opt_config(),
            SimConfig::default(),
            ClosedLoopConfig { window: 500.0, ..Default::default() },
        );
        cl.run_windows(3);
        assert_eq!(cl.history().len(), 3);
        let rec = &cl.history()[2];
        assert!(rec.time > 1_499.0);
        assert!(rec.utility.is_finite());
        assert_eq!(rec.shares.len(), 2);
    }

    #[test]
    fn telemetry_publishes_window_metrics() {
        let registry = MetricsRegistry::new();
        let mut cl = ClosedLoop::new(
            problem(),
            opt_config(),
            SimConfig::default(),
            ClosedLoopConfig { window: 500.0, ..Default::default() },
        );
        cl.attach_telemetry(&registry);
        cl.run_windows(3);
        let text = registry.prometheus_text();
        assert!(text.contains("lla_sim_windows_total 3"), "missing window counter:\n{text}");
        // The loop forwards the optimizer's own instrumentation too.
        assert!(text.contains("lla_opt_iterations_total"), "missing optimizer metrics:\n{text}");
        let last = cl.history().last().unwrap();
        assert!(text.contains(&format!("lla_sim_utility {}", last.utility)));
    }

    #[test]
    fn corrections_stay_zero_when_disabled() {
        let mut cl = ClosedLoop::new(
            problem(),
            opt_config(),
            SimConfig::default(),
            ClosedLoopConfig { window: 500.0, correction_enabled: false, ..Default::default() },
        );
        cl.run_windows(2);
        for rec in cl.history() {
            for row in &rec.corrections {
                for &e in row {
                    assert_eq!(e, 0.0);
                }
            }
        }
    }

    #[test]
    fn enabling_correction_discovers_overprediction() {
        let mut cl = ClosedLoop::new(
            problem(),
            opt_config(),
            SimConfig::default(),
            ClosedLoopConfig { window: 1_000.0, correction_enabled: false, ..Default::default() },
        );
        cl.run_windows(2);
        cl.set_correction_enabled(true);
        cl.run_windows(6);
        let last = cl.history().last().unwrap();
        // The worst-case model over-predicts under unsynchronized releases:
        // corrections should be negative for at least some subtasks.
        let any_negative = last.corrections.iter().flatten().any(|&e| e < -0.1);
        assert!(any_negative, "expected negative corrections, got {:?}", last.corrections);
    }

    #[test]
    fn demand_scaling_mode_also_discovers_overprediction() {
        let mut cl = ClosedLoop::new(
            problem(),
            opt_config(),
            SimConfig::default(),
            ClosedLoopConfig {
                window: 1_000.0,
                correction_enabled: true,
                correction_mode: CorrectionMode::DemandScaling,
                ..Default::default()
            },
        );
        cl.run_windows(8);
        // The worst-case model over-predicts, so learned scales fall
        // below 1 for at least some subtasks.
        let problem_ref = cl.optimizer().problem();
        let any_shrunk = problem_ref
            .tasks()
            .iter()
            .flat_map(|t| (0..t.len()).map(|s| problem_ref.share_model(t.subtask_id(s))))
            .any(|m| m.demand_scale() < 0.9);
        assert!(any_shrunk, "expected demand scales below 1");
        for rec in cl.history() {
            for &m in &rec.miss_rate {
                assert!(m < 0.05, "missed deadlines under demand scaling: {:?}", rec.miss_rate);
            }
        }
    }

    #[test]
    fn enact_threshold_suppresses_small_changes() {
        // Asymmetric fast/slow workload: corrections shift shares between
        // the classes early on, then stabilize.
        let mut cl = ClosedLoop::new(
            lla_workloads::prototype_workload(&Default::default()),
            opt_config(),
            SimConfig::default(),
            ClosedLoopConfig {
                window: 2_000.0,
                correction_enabled: true,
                enact_threshold: 0.02,
                ..Default::default()
            },
        );
        cl.run_windows(14);
        // Early windows enact (corrections move shares); once converged the
        // changes fall below 2% and enactment stops.
        let last = cl.history().last().unwrap();
        assert!(!last.enacted, "steady state should stop enacting");
        assert!(
            cl.enactments() < cl.history().len(),
            "some windows must have been suppressed: {} enactments over {} windows",
            cl.enactments(),
            cl.history().len()
        );
        // And at least one post-warmup window did enact.
        assert!(cl.history().iter().any(|r| r.enacted));
    }

    #[test]
    fn deadline_misses_stay_low_on_feasible_workload() {
        let mut cl = ClosedLoop::new(
            problem(),
            opt_config(),
            SimConfig::default(),
            ClosedLoopConfig { window: 1_000.0, ..Default::default() },
        );
        cl.run_windows(5);
        for rec in cl.history() {
            for &m in &rec.miss_rate {
                assert!(m < 0.05, "miss rate {m} too high: {:?}", rec.miss_rate);
            }
        }
    }
}
