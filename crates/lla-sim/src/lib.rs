//! # `lla-sim` — discrete-event proportional-share simulation for LLA
//!
//! The substrate standing in for the paper's prototype testbed (§6): a
//! fluid proportional-share scheduling simulator ([`ps`]), a discrete-event
//! engine releasing job sets through subtask DAGs ([`simulator`]),
//! streaming latency statistics with P² quantile estimation ([`stats`]),
//! the additive/exponentially-smoothed model error correction of §6.3
//! ([`correction`]), and the optimizer-in-the-loop driver ([`closedloop`])
//! that reproduces the Figure 8 experiment.
//!
//! ## Example: measure, correct, re-optimize
//!
//! ```rust
//! use lla_sim::{ClosedLoop, ClosedLoopConfig, SimConfig};
//! use lla_workloads::{prototype_workload, PrototypeParams};
//! use lla_core::OptimizerConfig;
//!
//! let problem = prototype_workload(&PrototypeParams::default());
//! let mut cl = ClosedLoop::new(
//!     problem,
//!     OptimizerConfig::default(),
//!     SimConfig::default(),
//!     ClosedLoopConfig { window: 1_000.0, ..Default::default() },
//! );
//! cl.run_windows(2);          // model-only operation
//! cl.set_correction_enabled(true);
//! cl.run_windows(2);          // now with online error correction
//! assert_eq!(cl.history().len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod closedloop;
pub mod correction;
pub mod ps;
pub mod simulator;
pub mod stats;

pub use arrivals::ArrivalProcess;
pub use closedloop::{ClosedLoop, ClosedLoopConfig, WindowRecord};
pub use correction::ErrorCorrector;
pub use ps::{FluidJob, PsResource};
pub use simulator::{SimConfig, Simulator};
pub use stats::{Histogram, LatencyStats, P2Quantile};
