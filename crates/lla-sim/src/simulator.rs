//! The discrete-event simulator: tasks releasing job sets through their
//! subtask DAGs onto fluid proportional-share resources.
//!
//! This is the substrate standing in for the paper's RTSJ prototype
//! (§6.1): it executes the *actual* queueing dynamics — unsynchronized job
//! releases, work-conserving surplus distribution, FIFO queueing within a
//! subtask — whose deviation from the worst-case share model is precisely
//! what the online error correction (§6.3) is designed to absorb.

use crate::arrivals::ArrivalProcess;
use crate::ps::{FluidJob, PsResource};
use crate::stats::{Histogram, LatencyStats};
use lla_core::Problem;
use lla_telemetry::Profiler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Completion tolerance on remaining fluid work (milliseconds).
const COMPLETION_EPS: f64 = 1e-9;
/// Tolerance when matching arrival instants (milliseconds).
const TIME_EPS: f64 = 1e-9;

/// How a job's actual service demand relates to the subtask's WCET.
///
/// Real systems rarely consume their worst case on every job; the gap is
/// one of the model inaccuracies the online error correction (§6.3)
/// absorbs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecTimeModel {
    /// Every job takes exactly `factor × WCET` (1.0 = worst case).
    Deterministic {
        /// Fraction of WCET.
        factor: f64,
    },
    /// Per-job demand uniform in `[lo, hi] × WCET` (seeded, reproducible).
    Uniform {
        /// Lower fraction of WCET.
        lo: f64,
        /// Upper fraction of WCET.
        hi: f64,
    },
}

impl Default for ExecTimeModel {
    fn default() -> Self {
        ExecTimeModel::Deterministic { factor: 1.0 }
    }
}

/// Configuration of the [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// The high quantile tracked by every latency statistic (the paper's
    /// error correction samples above the 90th percentile).
    pub quantile: f64,
    /// Seed for stochastic arrival processes and execution-time sampling.
    pub seed: u64,
    /// Maximum in-flight job sets per task; beyond it new releases are
    /// dropped (and counted), bounding memory under overload.
    pub max_in_flight: usize,
    /// Actual per-job service demand relative to WCET.
    pub exec_model: ExecTimeModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            quantile: 0.9,
            seed: 1,
            max_in_flight: 10_000,
            exec_model: ExecTimeModel::default(),
        }
    }
}

#[derive(Debug)]
struct JobSetState {
    task: usize,
    dispatched_at: f64,
    pending_preds: Vec<usize>,
    pending_leaves: usize,
}

/// The discrete-event simulation engine.
///
/// Owns a clone of the [`Problem`] (task structure and resource
/// parameters), one [`PsResource`] per resource, and one arrival process
/// per task. Shares are *enacted* via [`Simulator::enact_shares`] — in the
/// closed loop this is the optimizer's output.
#[derive(Debug)]
pub struct Simulator {
    problem: Problem,
    config: SimConfig,
    resources: Vec<PsResource>,
    /// `session_of[t][s]` is the session index of subtask `s` of task `t`
    /// on its resource.
    session_of: Vec<Vec<usize>>,
    /// `subtask_of[r][session]` is the `(task, subtask)` owning a session.
    subtask_of: Vec<Vec<(usize, usize)>>,
    arrivals: Vec<ArrivalProcess>,
    now: f64,
    next_set_id: u64,
    in_flight: HashMap<u64, JobSetState>,
    in_flight_per_task: Vec<usize>,
    subtask_stats: Vec<Vec<LatencyStats>>,
    task_stats: Vec<LatencyStats>,
    task_hists: Vec<Histogram>,
    completions: Vec<u64>,
    deadline_misses: Vec<u64>,
    dropped: u64,
    exec_rng: StdRng,
    /// Phase profiler for the event loop (disabled by default; see
    /// [`attach_profiler`](Self::attach_profiler)). Wall-clock only —
    /// it never reads or influences simulation state.
    profiler: Profiler,
}

impl Simulator {
    /// Creates a simulator over `problem` with the given initial shares
    /// (`shares[t][s] > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `shares` does not match the problem's shape or contains
    /// non-positive entries.
    pub fn new(problem: Problem, shares: &[Vec<f64>], config: SimConfig) -> Self {
        assert_eq!(shares.len(), problem.tasks().len(), "share shape mismatch");
        let mut resources: Vec<PsResource> = problem
            .resources()
            .iter()
            .map(|r| PsResource::new(r.availability().max(1e-6)))
            .collect();
        let mut session_of = Vec::with_capacity(problem.tasks().len());
        let mut subtask_of: Vec<Vec<(usize, usize)>> = vec![Vec::new(); problem.resources().len()];
        for task in problem.tasks() {
            let t = task.id().index();
            assert_eq!(shares[t].len(), task.len(), "share shape mismatch");
            let mut sess = Vec::with_capacity(task.len());
            for (s, sub) in task.subtasks().iter().enumerate() {
                let r = sub.resource().index();
                let idx = resources[r].add_session(shares[t][s]);
                debug_assert_eq!(idx, subtask_of[r].len());
                subtask_of[r].push((t, s));
                sess.push(idx);
            }
            session_of.push(sess);
        }
        let arrivals: Vec<ArrivalProcess> = problem
            .tasks()
            .iter()
            .map(|t| ArrivalProcess::new(t.trigger(), config.seed ^ (t.id().index() as u64)))
            .collect();
        // Per-subtask measurement quantiles (§2.1): a task tracking the
        // p-th end-to-end percentile needs each subtask measured at the
        // composed per-subtask percentile for its (longest) path length;
        // worst-case tasks fall back to the configured high quantile.
        let subtask_stats: Vec<Vec<LatencyStats>> = problem
            .tasks()
            .iter()
            .map(|t| {
                (0..t.len())
                    .map(|s| {
                        let q = match t.percentile().per_subtask(t.graph().max_path_len_through(s))
                        {
                            Some(p) => (p / 100.0).clamp(0.01, 0.999),
                            None => config.quantile,
                        };
                        LatencyStats::new(q)
                    })
                    .collect()
            })
            .collect();
        let task_stats: Vec<LatencyStats> = problem
            .tasks()
            .iter()
            .map(|t| {
                let q = match t.percentile() {
                    lla_core::PercentileSpec::Percentile(p) => (p / 100.0).clamp(0.01, 0.999),
                    _ => config.quantile,
                };
                LatencyStats::new(q)
            })
            .collect();
        let n_tasks = problem.tasks().len();
        let task_hists = (0..n_tasks).map(|_| Histogram::for_latencies()).collect();
        Simulator {
            problem,
            config,
            resources,
            session_of,
            subtask_of,
            arrivals,
            now: 0.0,
            next_set_id: 0,
            in_flight: HashMap::new(),
            in_flight_per_task: vec![0; n_tasks],
            subtask_stats,
            task_stats,
            task_hists,
            completions: vec![0; n_tasks],
            deadline_misses: vec![0; n_tasks],
            dropped: 0,
            exec_rng: StdRng::seed_from_u64(config.seed.wrapping_add(0x5eed)),
            profiler: Profiler::disabled(),
        }
    }

    /// Starts charging the event loop's phases to `profiler`: every
    /// [`run_until`](Self::run_until) event opens a `sim_event` scope
    /// with `advance` / `completions` / `arrivals` children. Purely
    /// passive; a disabled profiler costs one branch per scope.
    pub fn attach_profiler(&mut self, profiler: &Profiler) {
        self.profiler = profiler.clone();
    }

    /// Stops profiling (recorded scopes stay in the profiler).
    pub fn detach_profiler(&mut self) {
        self.profiler = Profiler::disabled();
    }

    /// Current simulation time (milliseconds).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The simulated problem.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Enacts a new share assignment (`shares[t][s] > 0`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or non-positive shares.
    pub fn enact_shares(&mut self, shares: &[Vec<f64>]) {
        assert_eq!(shares.len(), self.session_of.len(), "share shape mismatch");
        for (t, task) in self.problem.tasks().iter().enumerate() {
            assert_eq!(shares[t].len(), task.len(), "share shape mismatch");
            for (s, sub) in task.subtasks().iter().enumerate() {
                self.resources[sub.resource().index()]
                    .set_share(self.session_of[t][s], shares[t][s]);
            }
        }
    }

    /// Latency statistics of one subtask.
    pub fn subtask_stats(&self, task: usize, subtask: usize) -> &LatencyStats {
        &self.subtask_stats[task][subtask]
    }

    /// End-to-end latency statistics of one task.
    pub fn task_stats(&self, task: usize) -> &LatencyStats {
        &self.task_stats[task]
    }

    /// Full end-to-end latency distribution of one task (log-bucketed
    /// histogram; supports arbitrary quantile queries).
    pub fn task_histogram(&self, task: usize) -> &Histogram {
        &self.task_hists[task]
    }

    /// Completed job sets per task.
    pub fn completions(&self, task: usize) -> u64 {
        self.completions[task]
    }

    /// Job sets that finished after their critical time.
    pub fn deadline_misses(&self, task: usize) -> u64 {
        self.deadline_misses[task]
    }

    /// Job sets dropped because the per-task in-flight cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Job sets currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Clears all latency statistics and counters (not the queues) — used
    /// at measurement-window boundaries.
    pub fn reset_stats(&mut self) {
        for ts in &mut self.subtask_stats {
            for s in ts {
                s.reset();
            }
        }
        for s in &mut self.task_stats {
            s.reset();
        }
        for h in &mut self.task_hists {
            h.reset();
        }
        self.completions.iter_mut().for_each(|c| *c = 0);
        self.deadline_misses.iter_mut().for_each(|c| *c = 0);
        self.dropped = 0;
    }

    /// Replaces a task's arrival specification mid-run (workload step).
    pub fn set_trigger(&mut self, task: usize, spec: lla_core::TriggerSpec) {
        self.arrivals[task].set_spec(spec);
    }

    /// Runs the simulation until `t_end` (absolute simulation time).
    pub fn run_until(&mut self, t_end: f64) {
        while self.now < t_end - TIME_EPS {
            let t_arr =
                self.arrivals.iter().map(ArrivalProcess::peek).fold(f64::INFINITY, f64::min);
            let t_comp = self
                .resources
                .iter()
                .filter_map(PsResource::next_completion)
                .map(|(dt, _)| self.now + dt)
                .fold(f64::INFINITY, f64::min);
            let t_next = t_arr.min(t_comp).min(t_end);
            debug_assert!(t_next >= self.now - TIME_EPS, "time went backwards");

            let dt = (t_next - self.now).max(0.0);
            let _event_prof = self.profiler.scope("sim_event");
            {
                let _prof = self.profiler.scope("advance");
                for r in &mut self.resources {
                    r.advance(dt);
                }
            }
            self.now = t_next;

            {
                let _prof = self.profiler.scope("completions");
                self.drain_completions();
            }
            let _prof = self.profiler.scope("arrivals");
            self.drain_arrivals();
        }
    }

    /// Runs the simulation for `duration` more milliseconds.
    pub fn run_for(&mut self, duration: f64) {
        let t_end = self.now + duration;
        self.run_until(t_end);
    }

    fn drain_completions(&mut self) {
        // Keep draining: a completion may release a successor on another
        // resource whose queue head could already be complete only if its
        // demand were zero, which construction forbids — a single pass per
        // resource suffices, but successors released *now* must still be
        // enqueued before time advances, which happens here.
        for r in 0..self.resources.len() {
            let done = self.resources[r].pop_completed(COMPLETION_EPS);
            for (session, job) in done {
                self.handle_completion(r, session, job);
            }
        }
    }

    fn handle_completion(&mut self, resource: usize, session: usize, job: FluidJob) {
        let (t, s) = self.subtask_of[resource][session];
        self.subtask_stats[t][s].record(self.now - job.released_at);

        let task = &self.problem.tasks()[t];
        let graph = task.graph();
        let critical_time = task.critical_time();
        let is_leaf = graph.successors(s).is_empty();
        let successors: Vec<usize> = graph.successors(s).to_vec();

        let mut finished = false;
        if let Some(set) = self.in_flight.get_mut(&job.set_id) {
            for &succ in &successors {
                set.pending_preds[succ] -= 1;
            }
            if is_leaf {
                set.pending_leaves -= 1;
                if set.pending_leaves == 0 {
                    finished = true;
                }
            }
        }

        // Release successors whose predecessors are all complete.
        for &succ in &successors {
            let ready =
                self.in_flight.get(&job.set_id).is_some_and(|set| set.pending_preds[succ] == 0);
            if ready {
                self.release(job.set_id, t, succ);
            }
        }

        if finished {
            let set = self.in_flight.remove(&job.set_id).expect("set exists");
            let latency = self.now - set.dispatched_at;
            self.task_stats[t].record(latency);
            self.task_hists[t].record(latency);
            self.completions[t] += 1;
            if latency > critical_time {
                self.deadline_misses[t] += 1;
            }
            self.in_flight_per_task[set.task] -= 1;
        }
    }

    fn drain_arrivals(&mut self) {
        for t in 0..self.arrivals.len() {
            while self.arrivals[t].peek() <= self.now + TIME_EPS {
                let (_, batch) = self.arrivals[t].next_batch();
                for _ in 0..batch {
                    self.dispatch(t);
                }
            }
        }
    }

    fn dispatch(&mut self, t: usize) {
        if self.in_flight_per_task[t] >= self.config.max_in_flight {
            self.dropped += 1;
            return;
        }
        let task = &self.problem.tasks()[t];
        let graph = task.graph();
        let set_id = self.next_set_id;
        self.next_set_id += 1;
        let pending_preds: Vec<usize> =
            (0..task.len()).map(|s| graph.predecessors(s).len()).collect();
        self.in_flight.insert(
            set_id,
            JobSetState {
                task: t,
                dispatched_at: self.now,
                pending_preds,
                pending_leaves: graph.leaves().len(),
            },
        );
        self.in_flight_per_task[t] += 1;
        let root = graph.root();
        self.release(set_id, t, root);
    }

    fn release(&mut self, set_id: u64, t: usize, s: usize) {
        let task = &self.problem.tasks()[t];
        let sub = &task.subtasks()[s];
        let demand = sub.exec_time()
            * match self.config.exec_model {
                ExecTimeModel::Deterministic { factor } => factor,
                ExecTimeModel::Uniform { lo, hi } => {
                    if hi > lo {
                        self.exec_rng.gen_range(lo..=hi)
                    } else {
                        lo
                    }
                }
            };
        let job = FluidJob { set_id, remaining: demand, released_at: self.now };
        self.resources[sub.resource().index()].enqueue(self.session_of[t][s], job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lla_core::{
        Aggregation, Resource, ResourceId, ResourceKind, TaskBuilder, TaskId, TriggerSpec,
        UtilityFn,
    };

    /// One task, one subtask, periodic arrivals — analytically checkable.
    fn single_problem(period: f64, wcet: f64) -> Problem {
        let resources = vec![Resource::new(ResourceId::new(0), ResourceKind::Cpu)];
        let mut b = TaskBuilder::new("t");
        b.subtask("s", ResourceId::new(0), wcet);
        b.critical_time(1000.0)
            .utility(UtilityFn::negative_latency())
            .trigger(TriggerSpec::Periodic { period })
            .aggregation(Aggregation::Sum);
        Problem::new(resources, vec![b.build(TaskId::new(0)).unwrap()]).unwrap()
    }

    #[test]
    fn isolated_job_latency_is_work_over_rate() {
        // Single session, full resource => rate 1 => latency = WCET.
        let p = single_problem(100.0, 5.0);
        let mut sim = Simulator::new(p, &[vec![0.5]], SimConfig::default());
        sim.run_until(1000.0);
        let stats = sim.subtask_stats(0, 0);
        assert_eq!(stats.count(), 10);
        // Work conserving: alone on the resource, served at full rate.
        assert!((stats.mean().unwrap() - 5.0).abs() < 1e-9);
        assert_eq!(sim.completions(0), 10);
        assert_eq!(sim.deadline_misses(0), 0);
    }

    #[test]
    fn two_competing_tasks_share_proportionally() {
        let resources = vec![Resource::new(ResourceId::new(0), ResourceKind::Cpu)];
        let mut tasks = Vec::new();
        for i in 0..2 {
            let mut b = TaskBuilder::new(format!("t{i}"));
            b.subtask("s", ResourceId::new(0), 4.0);
            b.critical_time(1000.0)
                .utility(UtilityFn::negative_latency())
                .trigger(TriggerSpec::Periodic { period: 10.0 });
            tasks.push(b.build(TaskId::new(i)).unwrap());
        }
        let p = Problem::new(resources, tasks).unwrap();
        // Both tasks release at t=0, 10, 20, ... with equal shares: each
        // runs at rate 0.5 while both are backlogged => both 4ms jobs finish
        // at t=8 (latency 8); the resource idles 8..10.
        let mut sim = Simulator::new(p, &[vec![0.5], vec![0.5]], SimConfig::default());
        sim.run_until(100.0);
        for t in 0..2 {
            let m = sim.subtask_stats(t, 0).mean().unwrap();
            assert!((m - 8.0).abs() < 1e-9, "task {t} mean {m}");
        }
    }

    #[test]
    fn chain_precedence_is_respected() {
        let resources = vec![
            Resource::new(ResourceId::new(0), ResourceKind::Cpu),
            Resource::new(ResourceId::new(1), ResourceKind::Cpu),
        ];
        let mut b = TaskBuilder::new("chain");
        let a = b.subtask("a", ResourceId::new(0), 3.0);
        let c = b.subtask("b", ResourceId::new(1), 2.0);
        b.edge(a, c).unwrap();
        b.critical_time(1000.0).trigger(TriggerSpec::Periodic { period: 50.0 });
        let p = Problem::new(resources, vec![b.build(TaskId::new(0)).unwrap()]).unwrap();
        let mut sim = Simulator::new(p, &[vec![0.5, 0.5]], SimConfig::default());
        sim.run_until(500.0);
        // End-to-end = 3 + 2 = 5ms (each stage alone on its resource).
        assert!((sim.task_stats(0).mean().unwrap() - 5.0).abs() < 1e-9);
        assert_eq!(sim.completions(0), 10);
    }

    #[test]
    fn fanout_completes_when_all_leaves_finish() {
        let resources: Vec<Resource> =
            (0..3).map(|i| Resource::new(ResourceId::new(i), ResourceKind::Cpu)).collect();
        let mut b = TaskBuilder::new("fan");
        let root = b.subtask("r", ResourceId::new(0), 1.0);
        let l1 = b.subtask("l1", ResourceId::new(1), 2.0);
        let l2 = b.subtask("l2", ResourceId::new(2), 7.0);
        b.edge(root, l1).unwrap();
        b.edge(root, l2).unwrap();
        b.critical_time(1000.0).trigger(TriggerSpec::Periodic { period: 100.0 });
        let p = Problem::new(resources, vec![b.build(TaskId::new(0)).unwrap()]).unwrap();
        let mut sim = Simulator::new(p, &[vec![0.9, 0.9, 0.9]], SimConfig::default());
        sim.run_until(300.0);
        // End-to-end = 1 + max(2, 7) = 8.
        assert!((sim.task_stats(0).mean().unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn queueing_appears_when_share_below_throughput_floor() {
        // Task 0 (WCET 5ms every 10ms) needs share 0.5 but gets 0.2 while a
        // heavy competitor (WCET 6ms every 10ms, share 0.8) keeps the
        // resource saturated => task 0's queue grows without bound.
        let resources = vec![Resource::new(ResourceId::new(0), ResourceKind::Cpu)];
        let mut tasks = Vec::new();
        for (i, wcet) in [(0usize, 5.0), (1usize, 6.0)] {
            let mut b = TaskBuilder::new(format!("t{i}"));
            b.subtask("s", ResourceId::new(0), wcet);
            b.critical_time(10_000.0)
                .utility(UtilityFn::negative_latency())
                .trigger(TriggerSpec::Periodic { period: 10.0 });
            tasks.push(b.build(TaskId::new(i)).unwrap());
        }
        let p = Problem::new(resources, tasks).unwrap();
        let mut sim = Simulator::new(p, &[vec![0.2], vec![0.8]], SimConfig::default());
        sim.run_until(2_000.0);
        // Task 0 is underprovisioned (rate 0.25 < 0.5 needed): its backlog
        // grows without bound and latencies exceed the competitor's.
        let slow = sim.subtask_stats(0, 0).max().unwrap();
        let fast = sim.subtask_stats(1, 0).max().unwrap();
        assert!(slow > 10.0 * fast, "underprovisioned task should queue: {slow} vs {fast}");
        assert!(sim.in_flight() > 10, "backlog should accumulate");
    }

    #[test]
    fn overload_cap_drops_sets() {
        let p = single_problem(1.0, 5.0); // 5x overload
        let cfg = SimConfig { max_in_flight: 50, ..Default::default() };
        let mut sim = Simulator::new(p, &[vec![0.9]], cfg);
        sim.run_until(2_000.0);
        assert!(sim.dropped() > 0, "cap must drop sets under overload");
        assert!(sim.in_flight() <= 50);
    }

    #[test]
    fn bursty_arrivals_release_batches() {
        let resources = vec![Resource::new(ResourceId::new(0), ResourceKind::Cpu)];
        let mut b = TaskBuilder::new("burst");
        b.subtask("s", ResourceId::new(0), 1.0);
        b.critical_time(1000.0).trigger(TriggerSpec::Bursty { period: 100.0, burst: 4 });
        let p = Problem::new(resources, vec![b.build(TaskId::new(0)).unwrap()]).unwrap();
        let mut sim = Simulator::new(p, &[vec![1.0]], SimConfig::default());
        sim.run_until(100.0);
        // One burst of 4 jobs at t = 0, each 1ms, FIFO: latencies 1,2,3,4.
        let s = sim.subtask_stats(0, 0);
        assert_eq!(s.count(), 4);
        assert!((s.mean().unwrap() - 2.5).abs() < 1e-9);
        assert!((s.max().unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn enacting_higher_share_lowers_latency() {
        let resources = vec![Resource::new(ResourceId::new(0), ResourceKind::Cpu)];
        let mut tasks = Vec::new();
        for i in 0..2 {
            let mut b = TaskBuilder::new(format!("t{i}"));
            b.subtask("s", ResourceId::new(0), 5.0);
            b.critical_time(10_000.0).trigger(TriggerSpec::Periodic { period: 20.0 });
            tasks.push(b.build(TaskId::new(i)).unwrap());
        }
        let p = Problem::new(resources, tasks).unwrap();
        let mut sim = Simulator::new(p, &[vec![0.5], vec![0.5]], SimConfig::default());
        sim.run_until(1_000.0);
        let before = sim.subtask_stats(0, 0).mean().unwrap();
        sim.reset_stats();
        sim.enact_shares(&[vec![0.8], vec![0.2]]);
        sim.run_until(2_000.0);
        let after = sim.subtask_stats(0, 0).mean().unwrap();
        assert!(after < before, "more share must not slow a task: {after} !< {before}");
    }

    #[test]
    fn percentile_spec_selects_measurement_quantile() {
        use lla_core::PercentileSpec;
        // Bursts of 2 jobs (1ms each) at full share: latencies alternate
        // 1ms and 2ms, so the median is ~1ms while a high percentile is
        // ~2ms.
        let build = |spec: PercentileSpec| {
            let resources = vec![Resource::new(ResourceId::new(0), ResourceKind::Cpu)];
            let mut b = TaskBuilder::new("t");
            b.subtask("s", ResourceId::new(0), 1.0);
            b.critical_time(1000.0)
                .trigger(TriggerSpec::Bursty { period: 100.0, burst: 2 })
                .percentile(spec);
            Problem::new(resources, vec![b.build(TaskId::new(0)).unwrap()]).unwrap()
        };
        let mut median_sim = Simulator::new(
            build(PercentileSpec::Percentile(50.0)),
            &[vec![1.0]],
            SimConfig::default(),
        );
        let mut worst_sim =
            Simulator::new(build(PercentileSpec::WorstCase), &[vec![1.0]], SimConfig::default());
        median_sim.run_until(20_000.0);
        worst_sim.run_until(20_000.0);
        let median = median_sim.subtask_stats(0, 0).quantile_estimate().unwrap();
        let high = worst_sim.subtask_stats(0, 0).quantile_estimate().unwrap();
        assert!(median < 1.6, "median-tracking estimate too high: {median}");
        assert!(high > 1.6, "default 90th-percentile estimate too low: {high}");
    }

    #[test]
    fn composed_percentile_used_on_longer_paths() {
        use lla_core::PercentileSpec;
        // A 2-stage chain tracking the end-to-end median must measure each
        // subtask at the composed ~70.7th percentile, above the median.
        let resources = vec![
            Resource::new(ResourceId::new(0), ResourceKind::Cpu),
            Resource::new(ResourceId::new(1), ResourceKind::Cpu),
        ];
        let mut b = TaskBuilder::new("t");
        let a = b.subtask("a", ResourceId::new(0), 1.0);
        let c = b.subtask("b", ResourceId::new(1), 1.0);
        b.edge(a, c).unwrap();
        b.critical_time(1000.0)
            .trigger(TriggerSpec::Bursty { period: 100.0, burst: 2 })
            .percentile(PercentileSpec::Percentile(50.0));
        let p = Problem::new(resources, vec![b.build(TaskId::new(0)).unwrap()]).unwrap();
        let mut sim = Simulator::new(p, &[vec![1.0, 1.0]], SimConfig::default());
        sim.run_until(20_000.0);
        // Stage 0 latencies alternate 1 and 2ms; the 70.7th percentile of
        // that stream is 2ms (above the 1.?ms median).
        let q = sim.subtask_stats(0, 0).quantile_estimate().unwrap();
        assert!(q > 1.5, "composed percentile should sit in the upper half: {q}");
    }

    #[test]
    fn task_histogram_tracks_distribution() {
        let p = single_problem(10.0, 2.0);
        let mut sim = Simulator::new(p, &[vec![0.5]], SimConfig::default());
        sim.run_until(10_000.0);
        let h = sim.task_histogram(0);
        assert_eq!(h.count(), sim.completions(0));
        // All jobs take exactly 2ms (alone on the resource, rate 1); any
        // quantile lands on the 2ms bucket within resolution.
        let median = h.quantile(0.5).unwrap();
        assert!((median - 2.0).abs() / 2.0 < 0.15, "median {median}");
        sim.reset_stats();
        assert_eq!(sim.task_histogram(0).count(), 0);
    }

    #[test]
    fn uniform_exec_model_varies_demand() {
        let p = single_problem(100.0, 10.0);
        let cfg = SimConfig {
            exec_model: ExecTimeModel::Uniform { lo: 0.4, hi: 0.8 },
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(p, &[vec![0.5]], cfg);
        sim.run_until(50_000.0);
        let stats = sim.subtask_stats(0, 0);
        // Alone on the resource at rate 1: latency == sampled demand.
        assert!(stats.min().unwrap() >= 4.0 - 1e-9, "min {:?}", stats.min());
        assert!(stats.max().unwrap() <= 8.0 + 1e-9, "max {:?}", stats.max());
        let mean = stats.mean().unwrap();
        assert!((mean - 6.0).abs() < 0.3, "mean {mean} should be near 6");
    }

    #[test]
    fn exec_model_is_deterministic_per_seed() {
        let cfg = SimConfig {
            exec_model: ExecTimeModel::Uniform { lo: 0.5, hi: 1.0 },
            seed: 9,
            ..SimConfig::default()
        };
        let mut a = Simulator::new(single_problem(50.0, 5.0), &[vec![0.5]], cfg);
        let mut b = Simulator::new(single_problem(50.0, 5.0), &[vec![0.5]], cfg);
        a.run_until(5_000.0);
        b.run_until(5_000.0);
        assert_eq!(a.subtask_stats(0, 0).mean(), b.subtask_stats(0, 0).mean());
    }

    #[test]
    fn reset_stats_clears_counters() {
        let p = single_problem(10.0, 2.0);
        let mut sim = Simulator::new(p, &[vec![0.5]], SimConfig::default());
        sim.run_until(100.0);
        assert!(sim.completions(0) > 0);
        sim.reset_stats();
        assert_eq!(sim.completions(0), 0);
        assert_eq!(sim.subtask_stats(0, 0).count(), 0);
    }
}
