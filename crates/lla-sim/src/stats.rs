//! Streaming latency statistics: the P² quantile estimator and aggregate
//! moments.
//!
//! The error-correction loop (§6.3) samples *high-percentile* measured
//! latencies (> 90th percentile in the paper). The simulator processes
//! hundreds of thousands of jobs, so percentiles are estimated with the
//! classic **P² algorithm** (Jain & Chlamtac, 1985): five markers track the
//! quantile online in O(1) memory, with a parabolic (piecewise-quadratic)
//! adjustment of marker heights.

/// Streaming estimator of a single quantile using the P² algorithm.
///
/// Exact for the first five observations; afterwards maintains five markers
/// whose middle one estimates the `q`-quantile.
///
/// # Example
/// ```
/// use lla_sim::stats::P2Quantile;
/// let mut est = P2Quantile::new(0.5);
/// for x in 1..=1001 {
///     est.observe(x as f64);
/// }
/// let median = est.estimate().unwrap();
/// assert!((median - 501.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// Buffer for the first five observations.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile, `q ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1), got {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The target quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.count += 1;
        if self.count <= 5 {
            self.initial.push(x);
            if self.count == 5 {
                self.initial.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                for (i, &v) in self.initial.iter().enumerate() {
                    self.heights[i] = v;
                }
            }
            return;
        }

        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust the three interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let sign = d.signum();
                let candidate = self.parabolic(i, sign);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, sign)
                    };
                self.heights[i] = new_height;
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let n = &self.positions;
        let h = &self.heights;
        h[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate, or `None` with no observations.
    ///
    /// Exact (order statistic) while fewer than five observations have been
    /// seen.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            let mut v = self.initial.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let idx = ((self.q * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
            return Some(v[idx]);
        }
        Some(self.heights[2])
    }
}

/// A fixed-memory latency histogram with log-spaced buckets.
///
/// Complements [`P2Quantile`]: where P² tracks one pre-chosen quantile in
/// O(1), the histogram supports *any* quantile query after the fact (at
/// bucket resolution) plus distribution summaries — useful for offline
/// analysis of simulation runs. Buckets are geometrically spaced between
/// `min_value` and `max_value` so relative resolution is uniform across
/// the (heavy-tailed) latency range; samples outside the range land in
/// saturating edge buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min_value: f64,
    /// Precomputed `1/ln(growth)` for bucket index math.
    inv_log_growth: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `buckets` geometric buckets spanning
    /// `[min_value, max_value]`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets < 2`, `min_value <= 0`, or
    /// `max_value <= min_value`.
    pub fn new(min_value: f64, max_value: f64, buckets: usize) -> Self {
        assert!(buckets >= 2, "need at least 2 buckets");
        assert!(min_value > 0.0, "min_value must be positive");
        assert!(max_value > min_value, "max_value must exceed min_value");
        let growth = (max_value / min_value).powf(1.0 / (buckets - 1) as f64);
        Histogram {
            min_value,
            inv_log_growth: 1.0 / growth.ln(),
            counts: vec![0; buckets],
            total: 0,
            sum: 0.0,
        }
    }

    /// A default latency histogram: 0.01ms to 100s over 128 buckets.
    pub fn for_latencies() -> Self {
        Histogram::new(0.01, 100_000.0, 128)
    }

    fn bucket_of(&self, value: f64) -> usize {
        if value <= self.min_value {
            return 0;
        }
        let idx = ((value / self.min_value).ln() * self.inv_log_growth).round() as usize;
        idx.min(self.counts.len() - 1)
    }

    /// The representative (geometric center) value of bucket `i`.
    fn bucket_value(&self, i: usize) -> f64 {
        self.min_value * (i as f64 / self.inv_log_growth).exp()
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        debug_assert!(value.is_finite());
        let b = self.bucket_of(value);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of the recorded samples.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) at bucket resolution, or `None`
    /// with no samples.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return None;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bucket_value(i));
            }
        }
        Some(self.bucket_value(self.counts.len() - 1))
    }

    /// Merges another histogram with identical bucketing into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "bucket layouts differ");
        assert!(
            (self.min_value - other.min_value).abs() < 1e-12
                && (self.inv_log_growth - other.inv_log_growth).abs() < 1e-12,
            "bucket layouts differ"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0.0;
    }
}

/// Aggregate latency statistics for one measured entity (a subtask or a
/// task's end-to-end latency).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    count: usize,
    sum: f64,
    min: f64,
    max: f64,
    p2: P2Quantile,
}

impl LatencyStats {
    /// Creates statistics tracking the given high quantile (e.g. `0.9`).
    ///
    /// # Panics
    ///
    /// Panics if `quantile` is outside `(0, 1)`.
    pub fn new(quantile: f64) -> Self {
        LatencyStats {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            p2: P2Quantile::new(quantile),
        }
    }

    /// Records one latency sample (milliseconds).
    pub fn record(&mut self, latency: f64) {
        self.count += 1;
        self.sum += latency;
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
        self.p2.observe(latency);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Mean latency, or `None` with no samples.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum observed latency.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observed latency.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The tracked high-quantile estimate.
    pub fn quantile_estimate(&self) -> Option<f64> {
        self.p2.estimate()
    }

    /// Resets all counters (used when a measurement window closes).
    pub fn reset(&mut self) {
        *self = LatencyStats::new(self.p2.quantile());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exact_quantile(data: &mut [f64], q: f64) -> f64 {
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((q * data.len() as f64).ceil() as usize).clamp(1, data.len()) - 1;
        data[idx]
    }

    #[test]
    fn p2_exact_for_small_samples() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.estimate(), None);
        est.observe(10.0);
        assert_eq!(est.estimate(), Some(10.0));
        est.observe(20.0);
        est.observe(5.0);
        // Sorted: [5, 10, 20], ceil(0.5*3)=2 => 10.
        assert_eq!(est.estimate(), Some(10.0));
    }

    #[test]
    fn p2_median_of_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut est = P2Quantile::new(0.5);
        let mut data = Vec::new();
        for _ in 0..20_000 {
            let x: f64 = rng.gen_range(0.0..100.0);
            est.observe(x);
            data.push(x);
        }
        let exact = exact_quantile(&mut data, 0.5);
        let approx = est.estimate().unwrap();
        assert!((approx - exact).abs() < 1.5, "P2 median {approx} too far from exact {exact}");
    }

    #[test]
    fn p2_high_quantile_of_exponential() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut est = P2Quantile::new(0.9);
        let mut data = Vec::new();
        for _ in 0..50_000 {
            let u: f64 = rng.gen_range(0.0f64..1.0);
            let x = -(1.0 - u).ln() * 10.0; // Exp(mean 10)
            est.observe(x);
            data.push(x);
        }
        let exact = exact_quantile(&mut data, 0.9);
        let approx = est.estimate().unwrap();
        // Theoretical p90 of Exp(10) is 10*ln(10) ≈ 23.03.
        assert!((approx - exact).abs() / exact < 0.05, "P2 p90 {approx} vs exact {exact}");
    }

    #[test]
    fn p2_monotone_quantiles() {
        // For the same data, p10 <= p50 <= p99.
        let mut rng = StdRng::seed_from_u64(3);
        let mut q10 = P2Quantile::new(0.1);
        let mut q50 = P2Quantile::new(0.5);
        let mut q99 = P2Quantile::new(0.99);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            let x = x * x; // skewed
            q10.observe(x);
            q50.observe(x);
            q99.observe(x);
        }
        let (a, b, c) = (q10.estimate().unwrap(), q50.estimate().unwrap(), q99.estimate().unwrap());
        assert!(a <= b && b <= c, "quantiles not monotone: {a} {b} {c}");
    }

    #[test]
    fn p2_constant_stream() {
        let mut est = P2Quantile::new(0.9);
        for _ in 0..1000 {
            est.observe(42.0);
        }
        assert_eq!(est.estimate(), Some(42.0));
    }

    #[test]
    fn p2_handles_sorted_input() {
        let mut est = P2Quantile::new(0.5);
        for i in 0..10_000 {
            est.observe(i as f64);
        }
        let approx = est.estimate().unwrap();
        assert!((approx - 5_000.0).abs() < 150.0, "median of ramp: {approx}");
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn p2_rejects_bad_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn histogram_quantiles_match_exact_within_resolution() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut h = Histogram::for_latencies();
        let mut data = Vec::new();
        for _ in 0..30_000 {
            let u: f64 = rng.gen_range(0.0f64..1.0);
            let x = -(1.0 - u).ln() * 25.0; // Exp(mean 25ms)
            h.record(x);
            data.push(x);
        }
        for q in [0.5, 0.9, 0.99] {
            let exact = exact_quantile(&mut data, q);
            let approx = h.quantile(q).unwrap();
            // Geometric buckets over 7 decades with 128 buckets give ~13%
            // relative resolution.
            assert!(
                (approx - exact).abs() / exact < 0.15,
                "q={q}: histogram {approx} vs exact {exact}"
            );
        }
        assert!((h.mean().unwrap() - 25.0).abs() < 1.0);
    }

    #[test]
    fn histogram_edge_buckets_saturate() {
        let mut h = Histogram::new(1.0, 100.0, 10);
        h.record(0.0001);
        h.record(1e9);
        assert_eq!(h.count(), 2);
        let lo = h.quantile(0.0).unwrap();
        let hi = h.quantile(1.0).unwrap();
        assert!(lo <= 1.0 + 1e-9);
        assert!(hi >= 100.0 - 1e-9);
    }

    #[test]
    fn histogram_merge_equals_combined_stream() {
        let mut a = Histogram::new(0.1, 1000.0, 64);
        let mut b = a.clone();
        let mut combined = a.clone();
        for i in 1..500 {
            let x = i as f64 * 0.37;
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            combined.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        for q in [0.25, 0.5, 0.75, 0.95] {
            assert_eq!(a.quantile(q), combined.quantile(q));
        }
        assert!((a.mean().unwrap() - combined.mean().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty_and_reset() {
        let mut h = Histogram::for_latencies();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        h.record(5.0);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "bucket layouts differ")]
    fn histogram_merge_rejects_mismatched_layout() {
        let mut a = Histogram::new(1.0, 100.0, 16);
        let b = Histogram::new(1.0, 100.0, 32);
        a.merge(&b);
    }

    #[test]
    fn latency_stats_moments() {
        let mut s = LatencyStats::new(0.9);
        assert_eq!(s.mean(), None);
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert!(s.quantile_estimate().is_some());
    }

    #[test]
    fn latency_stats_reset() {
        let mut s = LatencyStats::new(0.9);
        s.record(5.0);
        s.reset();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
    }
}
