//! Online model error correction (§6.3).
//!
//! The share-function model `lat = (c_s + l_r)/share` is not always
//! accurate; one important source of inaccuracy is that job releases of
//! subtasks sharing a resource are not synchronized, which leads to
//! *over-prediction* of latency. The paper corrects this with a simple
//! **additive error model with exponential smoothing**, sampled from
//! high-percentile (> 90th) measured latencies:
//!
//! ```text
//! e_sample = measured_high_percentile − model_prediction
//! ê ← (1 − α)·ê + α·e_sample
//! ```
//!
//! The smoothed `ê` feeds back into the share model
//! ([`ShareModel::set_correction`](lla_core::ShareModel::set_correction)),
//! so the optimizer's next allocation accounts for the observed behaviour.

/// Additive error estimator with exponential smoothing for one subtask.
///
/// # Example
/// ```
/// use lla_sim::correction::ErrorCorrector;
/// let mut c = ErrorCorrector::new(0.5);
/// // Model predicted 50ms but we measured a 30ms high percentile.
/// let e1 = c.update(30.0, 50.0);
/// assert_eq!(e1, -10.0); // (1-α)·0 + α·(−20)
/// let e2 = c.update(30.0, 50.0);
/// assert_eq!(e2, -15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorCorrector {
    alpha: f64,
    estimate: f64,
    samples: usize,
}

impl ErrorCorrector {
    /// Creates a corrector with smoothing weight `α ∈ (0, 1]` given to the
    /// newest sample.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1], got {alpha}");
        ErrorCorrector { alpha, estimate: 0.0, samples: 0 }
    }

    /// The current smoothed error `ê` (milliseconds; negative when the
    /// model over-predicts).
    pub fn estimate(&self) -> f64 {
        self.estimate
    }

    /// Number of samples folded in so far.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Folds in one sample: the measured high-percentile latency against
    /// the model's (uncorrected) prediction. Returns the new `ê`.
    pub fn update(&mut self, measured: f64, predicted: f64) -> f64 {
        debug_assert!(measured.is_finite() && predicted.is_finite());
        let sample = measured - predicted;
        if self.samples == 0 {
            // Seed with the first sample rather than decaying from zero.
            self.estimate = self.alpha * sample;
        } else {
            self.estimate = (1.0 - self.alpha) * self.estimate + self.alpha * sample;
        }
        self.samples += 1;
        self.estimate
    }

    /// Resets the estimator to zero error.
    pub fn reset(&mut self) {
        self.estimate = 0.0;
        self.samples = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_constant_error() {
        let mut c = ErrorCorrector::new(0.3);
        for _ in 0..200 {
            c.update(35.0, 50.0);
        }
        assert!((c.estimate() + 15.0).abs() < 1e-9, "ê should approach −15, got {}", c.estimate());
    }

    #[test]
    fn smoothing_dampens_noise() {
        let mut smooth = ErrorCorrector::new(0.1);
        let mut jumpy = ErrorCorrector::new(1.0);
        // Alternate between −10 and −20 true error.
        let mut smooth_range = (f64::INFINITY, f64::NEG_INFINITY);
        for i in 0..100 {
            let measured = if i % 2 == 0 { 40.0 } else { 30.0 };
            let s = smooth.update(measured, 50.0);
            jumpy.update(measured, 50.0);
            if i > 50 {
                smooth_range.0 = smooth_range.0.min(s);
                smooth_range.1 = smooth_range.1.max(s);
            }
        }
        // The α=1 estimator swings the full 10ms; the smoothed one far less.
        assert!(smooth_range.1 - smooth_range.0 < 2.0);
    }

    #[test]
    fn positive_error_when_model_underpredicts() {
        let mut c = ErrorCorrector::new(0.5);
        c.update(60.0, 50.0);
        assert!(c.estimate() > 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = ErrorCorrector::new(0.5);
        c.update(10.0, 50.0);
        c.reset();
        assert_eq!(c.estimate(), 0.0);
        assert_eq!(c.samples(), 0);
    }

    #[test]
    fn alpha_one_tracks_latest_sample() {
        let mut c = ErrorCorrector::new(1.0);
        c.update(30.0, 50.0);
        assert_eq!(c.estimate(), -20.0);
        c.update(55.0, 50.0);
        assert_eq!(c.estimate(), 5.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn rejects_bad_alpha() {
        let _ = ErrorCorrector::new(0.0);
    }
}
