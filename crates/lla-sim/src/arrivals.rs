//! Arrival processes for triggering events.
//!
//! A [`TriggerSpec`] is a *specification*; this
//! module turns it into a concrete stream of arrival instants (batches of
//! job-set releases), optionally randomized.

use lla_core::TriggerSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generator of job-set arrival instants for one task.
///
/// # Example
/// ```
/// use lla_core::TriggerSpec;
/// use lla_sim::arrivals::ArrivalProcess;
/// let mut a = ArrivalProcess::new(TriggerSpec::Periodic { period: 100.0 }, 1);
/// assert_eq!(a.next_batch(), (0.0, 1));
/// assert_eq!(a.next_batch(), (100.0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    spec: TriggerSpec,
    rng: StdRng,
    next_time: f64,
}

impl ArrivalProcess {
    /// Creates an arrival process; `seed` controls the randomness of
    /// Poisson interarrivals (periodic and bursty processes are
    /// deterministic).
    pub fn new(spec: TriggerSpec, seed: u64) -> Self {
        ArrivalProcess { spec, rng: StdRng::seed_from_u64(seed), next_time: 0.0 }
    }

    /// The time of the next batch without consuming it.
    pub fn peek(&self) -> f64 {
        self.next_time
    }

    /// Returns the next `(time, batch_size)` pair and advances the process.
    pub fn next_batch(&mut self) -> (f64, usize) {
        let t = self.next_time;
        let batch = match self.spec {
            TriggerSpec::Periodic { period } => {
                self.next_time = t + period;
                1
            }
            TriggerSpec::Poisson { rate } => {
                let u: f64 = self.rng.gen_range(0.0f64..1.0);
                self.next_time = t + (-(1.0 - u).ln() / rate);
                1
            }
            TriggerSpec::Bursty { period, burst } => {
                self.next_time = t + period;
                burst
            }
            // `TriggerSpec` is non-exhaustive; future variants default to a
            // single release every 100ms rather than panicking mid-run.
            _ => {
                self.next_time = t + 100.0;
                1
            }
        };
        (t, batch)
    }

    /// Replaces the specification mid-run (workload variation); the next
    /// arrival time is preserved.
    pub fn set_spec(&mut self, spec: TriggerSpec) {
        self.spec = spec;
    }

    /// The current specification.
    pub fn spec(&self) -> TriggerSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_is_exact() {
        let mut a = ArrivalProcess::new(TriggerSpec::Periodic { period: 25.0 }, 0);
        let times: Vec<f64> = (0..4).map(|_| a.next_batch().0).collect();
        assert_eq!(times, vec![0.0, 25.0, 50.0, 75.0]);
    }

    #[test]
    fn bursty_releases_batches() {
        let mut a = ArrivalProcess::new(TriggerSpec::Bursty { period: 50.0, burst: 3 }, 0);
        assert_eq!(a.next_batch(), (0.0, 3));
        assert_eq!(a.next_batch(), (50.0, 3));
    }

    #[test]
    fn poisson_mean_rate_close_to_spec() {
        let rate = 0.04; // per ms
        let mut a = ArrivalProcess::new(TriggerSpec::Poisson { rate }, 123);
        let n = 20_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = a.next_batch().0;
        }
        let measured = (n as f64 - 1.0) / last;
        assert!((measured - rate).abs() / rate < 0.05, "measured rate {measured} vs {rate}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let spec = TriggerSpec::Poisson { rate: 0.1 };
        let mut a = ArrivalProcess::new(spec, 9);
        let mut b = ArrivalProcess::new(spec, 9);
        for _ in 0..100 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    fn spec_can_change_mid_run() {
        let mut a = ArrivalProcess::new(TriggerSpec::Periodic { period: 10.0 }, 0);
        a.next_batch();
        a.set_spec(TriggerSpec::Periodic { period: 100.0 });
        assert_eq!(a.next_batch().0, 10.0);
        assert_eq!(a.next_batch().0, 110.0);
    }
}
