//! Subtask precedence graphs: DAGs with a unique root.
//!
//! Edges represent precedence — either data transmission or a logical
//! ordering constraint. A *path* is a root-to-leaf sequence of subtasks; the
//! end-to-end latency of a task instance is determined by its paths, and the
//! *critical path* is the path of maximum latency.

use crate::error::ModelError;
use crate::ids::{PathId, TaskId};
use serde::{Deserialize, Serialize};

/// A root-to-leaf path through a task's subtask graph.
///
/// Stores per-task subtask indices in root-to-leaf order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    id: PathId,
    subtasks: Vec<usize>,
}

impl Path {
    /// The path identifier.
    pub fn id(&self) -> PathId {
        self.id
    }

    /// Subtask indices (within the owning task) in root-to-leaf order.
    pub fn subtasks(&self) -> &[usize] {
        &self.subtasks
    }

    /// Number of subtasks on this path.
    pub fn len(&self) -> usize {
        self.subtasks.len()
    }

    /// Whether the path is empty (never true for a valid graph).
    pub fn is_empty(&self) -> bool {
        self.subtasks.is_empty()
    }

    /// Sum of the given per-subtask latencies along this path.
    pub fn latency(&self, lats: &[f64]) -> f64 {
        self.subtasks.iter().map(|&s| lats[s]).sum()
    }
}

/// A validated subtask precedence DAG with a unique root.
///
/// Construction enumerates all root-to-leaf paths and computes, for every
/// subtask, the number of paths it belongs to (the *path weight* `w_s` used
/// by the path-weighted utility variant, §3.2 of the paper).
///
/// # Example
/// ```
/// use lla_core::{SubtaskGraph, TaskId};
/// // A fan-out: 0 -> 1, 0 -> 2.
/// let g = SubtaskGraph::new(TaskId::new(0), 3, &[(0, 1), (0, 2)])?;
/// assert_eq!(g.root(), 0);
/// assert_eq!(g.paths().len(), 2);
/// assert_eq!(g.path_weight(0), 2); // the root lies on both paths
/// assert_eq!(g.path_weight(1), 1);
/// # Ok::<(), lla_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubtaskGraph {
    n: usize,
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
    root: usize,
    leaves: Vec<usize>,
    topo: Vec<usize>,
    paths: Vec<Path>,
    weights: Vec<usize>,
}

impl SubtaskGraph {
    /// Builds and validates a subtask graph over `n` subtasks with the given
    /// precedence edges `(from, to)`.
    ///
    /// A single isolated subtask (`n == 1`, no edges) is a valid graph with
    /// one trivial path.
    ///
    /// # Errors
    ///
    /// * [`ModelError::UnknownSubtaskIndex`] if an edge endpoint is `>= n`.
    /// * [`ModelError::SelfLoop`] if an edge connects a node to itself.
    /// * [`ModelError::GraphCycle`] if the edges contain a cycle.
    /// * [`ModelError::NoUniqueRoot`] if there is not exactly one node with
    ///   in-degree zero.
    /// * [`ModelError::UnreachableSubtask`] if some node cannot be reached
    ///   from the root.
    /// * [`ModelError::EmptyTask`] if `n == 0`.
    pub fn new(task: TaskId, n: usize, edges: &[(usize, usize)]) -> Result<Self, ModelError> {
        if n == 0 {
            return Err(ModelError::EmptyTask { task });
        }
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a >= n {
                return Err(ModelError::UnknownSubtaskIndex { index: a, len: n });
            }
            if b >= n {
                return Err(ModelError::UnknownSubtaskIndex { index: b, len: n });
            }
            if a == b {
                return Err(ModelError::SelfLoop { index: a });
            }
            // Duplicate edges are idempotent in a precedence relation.
            if !succ[a].contains(&b) {
                succ[a].push(b);
                pred[b].push(a);
            }
        }

        // Unique root: exactly one node with in-degree 0.
        let roots: Vec<usize> = (0..n).filter(|&v| pred[v].is_empty()).collect();
        if roots.len() != 1 {
            return Err(ModelError::NoUniqueRoot { task, roots: roots.len() });
        }
        let root = roots[0];

        // Kahn topological sort; detects cycles.
        let mut indeg: Vec<usize> = pred.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = vec![root];
        let mut topo = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            topo.push(v);
            for &w in &succ[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        if topo.len() != n {
            // Remaining nodes are on a cycle or unreachable-from-root with a
            // nonzero in-degree; a cycle is the only way Kahn stalls when
            // every non-root node has in-degree > 0.
            return Err(ModelError::GraphCycle { task });
        }

        // Reachability from the root.
        let mut reach = vec![false; n];
        let mut stack = vec![root];
        reach[root] = true;
        while let Some(v) = stack.pop() {
            for &w in &succ[v] {
                if !reach[w] {
                    reach[w] = true;
                    stack.push(w);
                }
            }
        }
        if let Some(v) = (0..n).find(|&v| !reach[v]) {
            return Err(ModelError::UnreachableSubtask {
                subtask: crate::ids::SubtaskId::new(task, v),
            });
        }

        let leaves: Vec<usize> = (0..n).filter(|&v| succ[v].is_empty()).collect();

        // Enumerate all root-to-leaf paths by DFS.
        let mut paths = Vec::new();
        let mut current = vec![root];
        Self::enumerate(task, &succ, root, &mut current, &mut paths);

        // Path weights: number of paths each node lies on. Computed by DP so
        // the weights stay cheap even when enumeration is the expensive part:
        // w(v) = paths_from_root_to(v) * paths_from(v)_to_any_leaf.
        let mut to_node = vec![0usize; n];
        to_node[root] = 1;
        for &v in &topo {
            for &w in &succ[v] {
                to_node[w] += to_node[v];
            }
        }
        let mut from_node = vec![0usize; n];
        for &v in topo.iter().rev() {
            if succ[v].is_empty() {
                from_node[v] = 1;
            } else {
                from_node[v] = succ[v].iter().map(|&w| from_node[w]).sum();
            }
        }
        let weights: Vec<usize> = (0..n).map(|v| to_node[v] * from_node[v]).collect();

        debug_assert_eq!(weights[root], paths.len(), "root weight must equal total path count");

        Ok(SubtaskGraph { n, succ, pred, root, leaves, topo, paths, weights })
    }

    fn enumerate(
        task: TaskId,
        succ: &[Vec<usize>],
        v: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Path>,
    ) {
        if succ[v].is_empty() {
            out.push(Path { id: PathId::new(task, out.len()), subtasks: current.clone() });
            return;
        }
        for &w in &succ[v] {
            current.push(w);
            Self::enumerate(task, succ, w, current, out);
            current.pop();
        }
    }

    /// Builds a linear chain `0 -> 1 -> ... -> n-1`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyTask`] if `n == 0`.
    pub fn chain(task: TaskId, n: usize) -> Result<Self, ModelError> {
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        Self::new(task, n, &edges)
    }

    /// Number of subtasks.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no subtasks (never true for a validated graph).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The unique root (start subtask) index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Indices of the leaf (end) subtasks.
    pub fn leaves(&self) -> &[usize] {
        &self.leaves
    }

    /// Successors of subtask `v`.
    pub fn successors(&self, v: usize) -> &[usize] {
        &self.succ[v]
    }

    /// Predecessors of subtask `v`.
    pub fn predecessors(&self, v: usize) -> &[usize] {
        &self.pred[v]
    }

    /// A topological order of the subtasks (root first).
    pub fn topological_order(&self) -> &[usize] {
        &self.topo
    }

    /// All root-to-leaf paths, in enumeration order matching their
    /// [`PathId`] indices.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Number of root-to-leaf paths the subtask `v` lies on (`w_s`).
    pub fn path_weight(&self, v: usize) -> usize {
        self.weights[v]
    }

    /// Whether the graph is a simple chain (every node has at most one
    /// successor and one predecessor).
    pub fn is_chain(&self) -> bool {
        self.paths.len() == 1 && self.paths[0].len() == self.n
    }

    /// The number of subtasks on the *longest* root-to-leaf path passing
    /// through `v`.
    ///
    /// Used by the latency-percentile machinery (§2.1): when a task's
    /// utility is computed from the `p`-th end-to-end percentile, each
    /// subtask must use the per-subtask percentile for its path length;
    /// with heterogeneous path lengths the longest one is the conservative
    /// choice.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn max_path_len_through(&self, v: usize) -> usize {
        assert!(v < self.n, "subtask index out of range");
        // Longest chain of hops from the root to v and from v to a leaf.
        let mut to_node = vec![0usize; self.n];
        for &u in &self.topo {
            for &w in &self.succ[u] {
                to_node[w] = to_node[w].max(to_node[u] + 1);
            }
        }
        let mut from_node = vec![0usize; self.n];
        for &u in self.topo.iter().rev() {
            for &w in &self.succ[u] {
                from_node[u] = from_node[u].max(from_node[w] + 1);
            }
        }
        to_node[v] + from_node[v] + 1
    }

    /// Returns `(path index, latency)` of the critical path — the
    /// root-to-leaf path of maximum total latency — for the given
    /// per-subtask latencies.
    ///
    /// # Panics
    ///
    /// Panics if `lats.len()` differs from the number of subtasks.
    pub fn critical_path(&self, lats: &[f64]) -> (usize, f64) {
        assert_eq!(lats.len(), self.n, "latency vector length mismatch");
        let mut best = (0, f64::NEG_INFINITY);
        for (i, p) in self.paths.iter().enumerate() {
            let l = p.latency(lats);
            if l > best.1 {
                best = (i, l);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TaskId {
        TaskId::new(0)
    }

    #[test]
    fn single_node_graph() {
        let g = SubtaskGraph::new(t(), 1, &[]).unwrap();
        assert_eq!(g.root(), 0);
        assert_eq!(g.leaves(), &[0]);
        assert_eq!(g.paths().len(), 1);
        assert_eq!(g.paths()[0].subtasks(), &[0]);
        assert_eq!(g.path_weight(0), 1);
        assert!(g.is_chain());
    }

    #[test]
    fn chain_graph() {
        let g = SubtaskGraph::chain(t(), 4).unwrap();
        assert!(g.is_chain());
        assert_eq!(g.paths().len(), 1);
        assert_eq!(g.paths()[0].subtasks(), &[0, 1, 2, 3]);
        for v in 0..4 {
            assert_eq!(g.path_weight(v), 1);
        }
        assert_eq!(g.leaves(), &[3]);
    }

    #[test]
    fn fanout_tree_paths_and_weights() {
        // 0 -> 1 -> {2,3,4}: the push/multicast shape of the paper's Task 1.
        let g = SubtaskGraph::new(t(), 5, &[(0, 1), (1, 2), (1, 3), (1, 4)]).unwrap();
        assert_eq!(g.paths().len(), 3);
        assert_eq!(g.path_weight(0), 3);
        assert_eq!(g.path_weight(1), 3);
        assert_eq!(g.path_weight(2), 1);
        assert!(!g.is_chain());
    }

    #[test]
    fn diamond_join_counts_paths_through_join() {
        // 0 -> {1,2} -> 3.
        let g = SubtaskGraph::new(t(), 4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(g.paths().len(), 2);
        assert_eq!(g.path_weight(0), 2);
        assert_eq!(g.path_weight(3), 2);
        assert_eq!(g.path_weight(1), 1);
        assert_eq!(g.leaves(), &[3]);
    }

    #[test]
    fn cycle_is_rejected() {
        // 0 -> 1 -> 2 -> 1 is a cycle.
        let err = SubtaskGraph::new(t(), 3, &[(0, 1), (1, 2), (2, 1)]).unwrap_err();
        assert!(matches!(err, ModelError::GraphCycle { .. }));
    }

    #[test]
    fn two_roots_rejected() {
        let err = SubtaskGraph::new(t(), 3, &[(0, 2), (1, 2)]).unwrap_err();
        assert!(matches!(err, ModelError::NoUniqueRoot { roots: 2, .. }));
    }

    #[test]
    fn zero_roots_rejected() {
        // 0 <-> 1 cycle means no in-degree-0 node.
        let err = SubtaskGraph::new(t(), 2, &[(0, 1), (1, 0)]).unwrap_err();
        assert!(matches!(err, ModelError::NoUniqueRoot { roots: 0, .. }));
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let err = SubtaskGraph::new(t(), 2, &[(0, 5)]).unwrap_err();
        assert!(matches!(err, ModelError::UnknownSubtaskIndex { index: 5, len: 2 }));
    }

    #[test]
    fn self_loop_rejected() {
        let err = SubtaskGraph::new(t(), 2, &[(1, 1)]).unwrap_err();
        assert!(matches!(err, ModelError::SelfLoop { index: 1 }));
    }

    #[test]
    fn empty_graph_rejected() {
        let err = SubtaskGraph::new(t(), 0, &[]).unwrap_err();
        assert!(matches!(err, ModelError::EmptyTask { .. }));
    }

    #[test]
    fn unreachable_node_rejected() {
        // Node 2 is a second root... actually 2 isolated => 2 roots.
        // Build: 0 -> 1, and 2 -> 3 with an edge 1 -> 2 missing; node 2 is a
        // root too, so craft reachability failure differently: 0->1, 3->2,
        // 1->3 missing gives roots {0,3}. A genuinely unreachable node with a
        // unique root requires in-degree > 0 but no path from root, which in
        // an acyclic graph is impossible. So reachability failures only arise
        // with cycles, already covered; assert the validator agrees.
        let g = SubtaskGraph::new(t(), 4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(g.topological_order().len(), 4);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let g = SubtaskGraph::new(t(), 2, &[(0, 1), (0, 1), (0, 1)]).unwrap();
        assert_eq!(g.successors(0), &[1]);
        assert_eq!(g.paths().len(), 1);
    }

    #[test]
    fn critical_path_selects_longest() {
        let g = SubtaskGraph::new(t(), 4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let (idx, lat) = g.critical_path(&[1.0, 5.0, 2.0, 9.0]);
        assert_eq!(lat, 10.0);
        assert_eq!(g.paths()[idx].subtasks(), &[0, 3]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = SubtaskGraph::new(t(), 5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let topo = g.topological_order();
        let pos = |v: usize| topo.iter().position(|&x| x == v).unwrap();
        for v in 0..5 {
            for &w in g.successors(v) {
                assert!(pos(v) < pos(w), "edge {v}->{w} violated");
            }
        }
    }

    #[test]
    fn weights_sum_rule() {
        // Sum over leaves of weight == number of paths.
        let g = SubtaskGraph::new(t(), 6, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]).unwrap();
        let total: usize = g.leaves().iter().map(|&v| g.path_weight(v)).sum();
        assert_eq!(total, g.paths().len());
    }

    #[test]
    fn path_latency_sums_members() {
        let g = SubtaskGraph::chain(t(), 3).unwrap();
        assert_eq!(g.paths()[0].latency(&[1.0, 2.0, 4.0]), 7.0);
    }

    #[test]
    fn max_path_len_through_chain() {
        let g = SubtaskGraph::chain(t(), 4).unwrap();
        for v in 0..4 {
            assert_eq!(g.max_path_len_through(v), 4);
        }
    }

    #[test]
    fn max_path_len_through_mixed_lengths() {
        // 0 -> 1 (leaf), 0 -> 2 -> 3 (leaf): lengths 2 and 3.
        let g = SubtaskGraph::new(t(), 4, &[(0, 1), (0, 2), (2, 3)]).unwrap();
        assert_eq!(g.max_path_len_through(0), 3, "root lies on the length-3 path");
        assert_eq!(g.max_path_len_through(1), 2, "short leaf only sees its own path");
        assert_eq!(g.max_path_len_through(2), 3);
        assert_eq!(g.max_path_len_through(3), 3);
    }

    #[test]
    fn max_path_len_matches_enumeration() {
        let g =
            SubtaskGraph::new(t(), 6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5)]).unwrap();
        for v in 0..6 {
            let expected = g
                .paths()
                .iter()
                .filter(|p| p.subtasks().contains(&v))
                .map(Path::len)
                .max()
                .unwrap();
            assert_eq!(g.max_path_len_through(v), expected, "node {v}");
        }
    }
}
