//! Schedulability analysis via LLA (§5.4).
//!
//! LLA doubles as a schedulability test: on a schedulable workload the
//! utility converges and both constraint families are satisfied; on an
//! unschedulable workload the utility and share sums keep fluctuating and —
//! decisively — the critical-path latencies exceed the critical times by a
//! large factor (1.75–2.41× in the paper's Figure 7 experiment).

use crate::optimizer::{Optimizer, OptimizerConfig};
use crate::problem::Problem;
use serde::{Deserialize, Serialize};

/// Configuration for [`analyze_schedulability`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulabilityConfig {
    /// Optimizer configuration for the probe run.
    pub optimizer: OptimizerConfig,
    /// Iteration budget for the probe run.
    pub max_iters: usize,
    /// Critical-path ratio above which a non-converged run is declared
    /// unschedulable (`1.0` = exactly at the deadline; paper observes
    /// 1.75–2.41 on its unschedulable workload).
    pub violation_threshold: f64,
    /// Window (in iterations) over which final ratios are averaged.
    pub assessment_window: usize,
}

impl Default for SchedulabilityConfig {
    fn default() -> Self {
        SchedulabilityConfig {
            optimizer: OptimizerConfig::default(),
            max_iters: 2_000,
            violation_threshold: 1.1,
            assessment_window: 50,
        }
    }
}

/// The verdict of a schedulability probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchedulabilityVerdict {
    /// LLA converged to a feasible allocation.
    Schedulable {
        /// Iterations until convergence.
        iterations: usize,
        /// Converged total utility.
        utility: f64,
    },
    /// LLA did not converge and constraints are persistently violated —
    /// critical paths beyond critical times and/or share sums beyond
    /// resource availability (the two symptoms of §5.4's Figure 7).
    Unschedulable {
        /// Smallest per-task mean critical-path/critical-time ratio over
        /// the assessment window.
        min_violation_ratio: f64,
        /// Largest per-task mean ratio.
        max_violation_ratio: f64,
        /// Largest per-resource mean usage/availability ratio.
        max_resource_ratio: f64,
    },
    /// The budget elapsed without convergence but also without decisive
    /// constraint violations (possibly slow convergence — §5.4 warns that
    /// dampening fluctuations alone can be mistaken for this).
    Inconclusive {
        /// Utility oscillation amplitude over the assessment window.
        oscillation: f64,
    },
}

impl SchedulabilityVerdict {
    /// Whether the verdict is [`Schedulable`](SchedulabilityVerdict::Schedulable).
    pub fn is_schedulable(&self) -> bool {
        matches!(self, SchedulabilityVerdict::Schedulable { .. })
    }
}

/// Probes the schedulability of `problem` by running LLA and inspecting
/// convergence and critical-path ratios, per §5.4.
pub fn analyze_schedulability(
    problem: Problem,
    config: &SchedulabilityConfig,
) -> SchedulabilityVerdict {
    let mut opt_cfg = config.optimizer;
    opt_cfg.record_trace = true;
    let mut opt = Optimizer::new(problem, opt_cfg);
    let outcome = opt.run_to_convergence(config.max_iters);

    if outcome.converged {
        return SchedulabilityVerdict::Schedulable {
            iterations: outcome.iterations,
            utility: outcome.final_utility,
        };
    }

    // Average the per-task critical-path ratios and per-resource
    // usage/availability ratios over the trailing window. Depending on the
    // workload, persistent infeasibility shows up as stretched paths, as
    // over-committed resources, or both.
    let trace = opt.trace();
    let window = config.assessment_window.min(trace.len()).max(1);
    let records = &trace.records()[trace.len() - window..];
    let num_tasks = opt.problem().tasks().len();
    let num_resources = opt.problem().resources().len();
    let mut mean_ratio = vec![0.0f64; num_tasks];
    let mut mean_usage = vec![0.0f64; num_resources];
    for rec in records {
        for (t, &r) in rec.critical_path_ratio.iter().enumerate() {
            mean_ratio[t] += r;
        }
        for (r, &u) in rec.resource_usage.iter().enumerate() {
            mean_usage[r] += u;
        }
    }
    for m in mean_ratio.iter_mut().chain(&mut mean_usage) {
        *m /= window as f64;
    }
    let max_ratio = mean_ratio.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min_ratio = mean_ratio.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_resource_ratio = opt
        .problem()
        .resources()
        .iter()
        .map(|r| mean_usage[r.id().index()] / r.availability().max(1e-9))
        .fold(f64::NEG_INFINITY, f64::max);

    if max_ratio > config.violation_threshold || max_resource_ratio > config.violation_threshold {
        SchedulabilityVerdict::Unschedulable {
            min_violation_ratio: min_ratio,
            max_violation_ratio: max_ratio,
            max_resource_ratio,
        }
    } else {
        SchedulabilityVerdict::Inconclusive { oscillation: trace.utility_oscillation(window) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::AllocationSettings;
    use crate::ids::{ResourceId, TaskId};
    use crate::resource::{Resource, ResourceKind};
    use crate::task::TaskBuilder;

    fn problem(critical_time: f64, num_tasks: usize) -> Problem {
        let resources = vec![
            Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
            Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
        ];
        let mut tasks = Vec::new();
        for i in 0..num_tasks {
            let mut b = TaskBuilder::new(format!("t{i}"));
            let a = b.subtask("a", ResourceId::new(0), 2.0);
            let c = b.subtask("b", ResourceId::new(1), 3.0);
            b.edge(a, c).unwrap();
            b.critical_time(critical_time);
            tasks.push(b.build(TaskId::new(i)).unwrap());
        }
        Problem::new(resources, tasks).unwrap()
    }

    fn config() -> SchedulabilityConfig {
        SchedulabilityConfig {
            optimizer: OptimizerConfig {
                allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
                ..OptimizerConfig::default()
            },
            ..SchedulabilityConfig::default()
        }
    }

    #[test]
    fn generous_deadlines_are_schedulable() {
        let verdict = analyze_schedulability(problem(60.0, 2), &config());
        assert!(verdict.is_schedulable(), "verdict: {verdict:?}");
    }

    #[test]
    fn impossible_deadlines_are_unschedulable() {
        // 8 tasks × (share >= demand/C) with C = 7ms: each subtask needs
        // share >= 3/7 on resource 0 alone — wildly over capacity.
        let verdict = analyze_schedulability(problem(7.0, 8), &config());
        match verdict {
            SchedulabilityVerdict::Unschedulable {
                min_violation_ratio,
                max_violation_ratio,
                max_resource_ratio,
            } => {
                assert!(max_violation_ratio > 1.1 || max_resource_ratio > 1.1);
                assert!(min_violation_ratio <= max_violation_ratio);
            }
            other => panic!("expected unschedulable, got {other:?}"),
        }
    }

    #[test]
    fn verdict_reports_iterations_for_schedulable() {
        match analyze_schedulability(problem(80.0, 1), &config()) {
            SchedulabilityVerdict::Schedulable { iterations, utility } => {
                assert!(iterations > 0);
                assert!(utility.is_finite());
            }
            other => panic!("expected schedulable, got {other:?}"),
        }
    }
}
