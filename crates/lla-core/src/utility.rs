//! Utility functions: mapping end-to-end latency to application benefit.
//!
//! Following Jensen-style time-utility functions, a task's utility is a
//! *non-increasing* function of its (aggregated) latency. LLA additionally
//! requires utilities to be **concave and continuously differentiable** in
//! the region where the critical-time constraint holds, so that the dual
//! problem is well behaved (§3.2 of the paper).
//!
//! The paper's experiments use the linear form `f(lat) = k·C − lat`
//! ([`UtilityFn::linear_for_deadline`]) and the prototype uses `f(lat) = −lat`
//! ([`UtilityFn::negative_latency`]). This module also provides a concave
//! quadratic and a concave exponential-penalty family; the latter is a
//! smooth stand-in for *inelastic* (hard-deadline-like) tasks: nearly flat
//! far from the deadline and steeply dropping as latency approaches it.

use serde::{Deserialize, Serialize};

/// A concave, non-increasing, continuously differentiable utility function.
///
/// All variants map an aggregated latency (milliseconds) to a benefit value.
/// Construction validates the shape constraints so every value of this type
/// is a legal LLA utility.
///
/// # Example
/// ```
/// use lla_core::UtilityFn;
/// let u = UtilityFn::linear_for_deadline(2.0, 45.0); // f(lat) = 2*45 - lat
/// assert_eq!(u.value(45.0), 45.0);
/// assert_eq!(u.derivative(10.0), -1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum UtilityFn {
    /// `f(lat) = offset + slope · lat` with `slope ≤ 0`.
    ///
    /// The paper's simulation utility `f(lat) = k·C − lat` is
    /// `Linear { offset: k·C, slope: -1 }`; the prototype's `f(lat) = −lat`
    /// is `Linear { offset: 0, slope: -1 }`.
    Linear {
        /// Utility at zero latency.
        offset: f64,
        /// Marginal utility per millisecond (must be `≤ 0`).
        slope: f64,
    },
    /// `f(lat) = offset − lin·lat − quad·lat²` with `lin ≥ 0`, `quad ≥ 0`.
    ///
    /// Concave (f'' = −2·quad ≤ 0) and non-increasing for `lat ≥ 0`. Models
    /// elastic tasks whose marginal benefit of latency reduction grows as
    /// latency grows.
    Quadratic {
        /// Utility at zero latency.
        offset: f64,
        /// Linear decay coefficient (must be `≥ 0`).
        lin: f64,
        /// Quadratic decay coefficient (must be `≥ 0`).
        quad: f64,
    },
    /// `f(lat) = offset − a·exp(b·lat)` with `a > 0`, `b > 0`.
    ///
    /// Concave (f'' = −a·b²·e^{b·lat} < 0) and strictly decreasing; nearly
    /// flat for small latency and plunging as latency grows. With `b` chosen
    /// so the plunge happens near the critical time, this is a smooth,
    /// LLA-compatible approximation of an *inelastic* task (Figure 2,
    /// right): only completing before the deadline matters.
    ExponentialPenalty {
        /// Utility asymptote at zero latency (minus `a`).
        offset: f64,
        /// Penalty scale (must be `> 0`).
        a: f64,
        /// Penalty steepness per millisecond (must be `> 0`).
        b: f64,
    },
}

impl UtilityFn {
    /// The paper's simulation utility: `f(lat) = k·C − lat` with `k ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 1` or `critical_time ≤ 0` — these would not produce a
    /// meaningful benefit scale.
    pub fn linear_for_deadline(k: f64, critical_time: f64) -> Self {
        assert!(k >= 1.0, "k must be >= 1 (paper uses k = 2)");
        assert!(critical_time > 0.0, "critical time must be positive");
        UtilityFn::Linear { offset: k * critical_time, slope: -1.0 }
    }

    /// The prototype utility `f(lat) = −lat`.
    pub fn negative_latency() -> Self {
        UtilityFn::Linear { offset: 0.0, slope: -1.0 }
    }

    /// A smooth inelastic approximation that is ~`u_max` well before the
    /// deadline and crosses zero at the critical time.
    ///
    /// Uses `f(lat) = u_max − a·exp(b·lat)` with `b = sharpness/C` and `a`
    /// chosen so `f(C) = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `u_max ≤ 0`, `critical_time ≤ 0` or `sharpness ≤ 0`.
    pub fn smooth_inelastic(u_max: f64, critical_time: f64, sharpness: f64) -> Self {
        assert!(u_max > 0.0 && critical_time > 0.0 && sharpness > 0.0);
        let b = sharpness / critical_time;
        let a = u_max / (b * critical_time).exp();
        UtilityFn::ExponentialPenalty { offset: u_max, a, b }
    }

    /// Whether this utility encodes an inelastic (hard-deadline) task —
    /// the smooth inelastic approximation of §3.2. Load shedding never
    /// evicts inelastic tasks; they are admission-controlled instead.
    pub fn is_inelastic(&self) -> bool {
        matches!(self, UtilityFn::ExponentialPenalty { .. })
    }

    /// Evaluates the utility at the given aggregated latency.
    pub fn value(&self, lat: f64) -> f64 {
        match *self {
            UtilityFn::Linear { offset, slope } => offset + slope * lat,
            UtilityFn::Quadratic { offset, lin, quad } => offset - lin * lat - quad * lat * lat,
            UtilityFn::ExponentialPenalty { offset, a, b } => offset - a * (b * lat).exp(),
        }
    }

    /// Evaluates the derivative `f'(lat)` (always `≤ 0`).
    pub fn derivative(&self, lat: f64) -> f64 {
        match *self {
            UtilityFn::Linear { slope, .. } => slope,
            UtilityFn::Quadratic { lin, quad, .. } => -lin - 2.0 * quad * lat,
            UtilityFn::ExponentialPenalty { a, b, .. } => -a * b * (b * lat).exp(),
        }
    }

    /// Validates the shape constraints: non-increasing and concave on
    /// `lat ≥ 0`.
    ///
    /// Returns `true` when the parameters satisfy the constraints LLA
    /// requires. Invalid parameter combinations (e.g. a positive linear
    /// slope) make the dual non-concave and the algorithm may diverge.
    pub fn is_valid(&self) -> bool {
        match *self {
            UtilityFn::Linear { offset, slope } => {
                offset.is_finite() && slope.is_finite() && slope <= 0.0
            }
            UtilityFn::Quadratic { offset, lin, quad } => {
                offset.is_finite()
                    && lin.is_finite()
                    && quad.is_finite()
                    && lin >= 0.0
                    && quad >= 0.0
            }
            UtilityFn::ExponentialPenalty { offset, a, b } => {
                offset.is_finite() && a.is_finite() && b.is_finite() && a > 0.0 && b > 0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_nonincreasing_concave(u: &UtilityFn, lo: f64, hi: f64) {
        let n = 200;
        let step = (hi - lo) / n as f64;
        let mut prev_v = f64::INFINITY;
        let mut prev_d = f64::NEG_INFINITY;
        let mut prev_d_seen = false;
        for i in 0..=n {
            let x = lo + i as f64 * step;
            let v = u.value(x);
            let d = u.derivative(x);
            assert!(v <= prev_v + 1e-9, "value must be non-increasing at {x}");
            assert!(d <= 1e-12, "derivative must be <= 0 at {x}");
            if prev_d_seen {
                // Concavity: derivative is non-increasing.
                assert!(d <= prev_d + 1e-9, "derivative must be non-increasing at {x}");
            }
            prev_v = v;
            prev_d = d;
            prev_d_seen = true;
        }
    }

    #[test]
    fn linear_paper_form() {
        let u = UtilityFn::linear_for_deadline(2.0, 45.0);
        assert_eq!(u.value(0.0), 90.0);
        assert_eq!(u.value(44.9), 90.0 - 44.9);
        assert_eq!(u.derivative(1.0), -1.0);
        check_nonincreasing_concave(&u, 0.0, 100.0);
        assert!(u.is_valid());
    }

    #[test]
    fn negative_latency_form() {
        let u = UtilityFn::negative_latency();
        assert_eq!(u.value(105.0), -105.0);
        assert_eq!(u.derivative(0.0), -1.0);
        assert!(u.is_valid());
    }

    #[test]
    fn quadratic_shape() {
        let u = UtilityFn::Quadratic { offset: 100.0, lin: 0.5, quad: 0.01 };
        check_nonincreasing_concave(&u, 0.0, 80.0);
        assert!(u.is_valid());
    }

    #[test]
    fn exponential_penalty_shape() {
        let u = UtilityFn::ExponentialPenalty { offset: 10.0, a: 0.1, b: 0.1 };
        check_nonincreasing_concave(&u, 0.0, 60.0);
        assert!(u.is_valid());
    }

    #[test]
    fn smooth_inelastic_crosses_zero_at_deadline() {
        let u = UtilityFn::smooth_inelastic(10.0, 50.0, 8.0);
        assert!(u.value(50.0).abs() < 1e-9, "f(C) should be 0");
        // Far from the deadline the utility is close to u_max.
        assert!(u.value(5.0) > 9.9);
        // Past the deadline utility is sharply negative.
        assert!(u.value(60.0) < -10.0);
        check_nonincreasing_concave(&u, 0.0, 70.0);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let fns = [
            UtilityFn::linear_for_deadline(2.0, 53.0),
            UtilityFn::Quadratic { offset: 50.0, lin: 1.0, quad: 0.02 },
            UtilityFn::ExponentialPenalty { offset: 5.0, a: 0.2, b: 0.05 },
        ];
        let h = 1e-6;
        for u in &fns {
            for x in [0.5, 1.0, 10.0, 42.0] {
                let fd = (u.value(x + h) - u.value(x - h)) / (2.0 * h);
                assert!(
                    (fd - u.derivative(x)).abs() < 1e-4,
                    "finite difference mismatch for {u:?} at {x}"
                );
            }
        }
    }

    #[test]
    fn invalid_shapes_detected() {
        assert!(!UtilityFn::Linear { offset: 0.0, slope: 0.5 }.is_valid());
        assert!(!UtilityFn::Quadratic { offset: 0.0, lin: -1.0, quad: 0.0 }.is_valid());
        assert!(!UtilityFn::ExponentialPenalty { offset: 0.0, a: -1.0, b: 1.0 }.is_valid());
        assert!(!UtilityFn::Linear { offset: f64::NAN, slope: -1.0 }.is_valid());
    }

    #[test]
    #[should_panic(expected = "k must be >= 1")]
    fn linear_for_deadline_rejects_small_k() {
        let _ = UtilityFn::linear_for_deadline(0.5, 45.0);
    }
}
