//! Compiled structure-of-arrays iteration plan for the LLA hot path.
//!
//! [`Optimizer::step`](crate::optimizer::Optimizer::step) conceptually walks
//! `tasks → graphs → paths → subtasks` through nested heap structures every
//! iteration, re-deriving clamping boxes and memberships and allocating
//! fresh latency matrices each round. The per-round *math* is tiny — a few
//! multiplies per subtask — so at 10k-task scale the pointer chasing and
//! allocator traffic dominate wall-clock (§5.3 of the paper claims
//! convergence in *iterations* is scale-free; this module makes the
//! per-iteration cost scale-free in structure too).
//!
//! [`Plan::lower`] flattens a [`Problem`] once into dense CSR-style index
//! arrays (path→subtask, resource→subtask, subtask→resource) plus
//! per-subtask constants (demand `m·(c_s+l_r)`, correction `ê`, clamping
//! box, aggregation weight) and per-task descriptors (critical time,
//! utility). Every per-iteration primitive — latency allocation, price
//! update, utility, violations, Lagrangian, KKT residuals — then runs over
//! flat `&[f64]`/`&[u32]` slices with zero heap allocation, using the
//! reusable buffers of a [`PlanScratch`].
//!
//! # Bit-identity with the naive path
//!
//! Every kernel replicates the *exact* expression forms and iteration
//! orders of the nested reference implementation (`allocate_task`,
//! `PriceState::update`, `Problem::resource_usage`, …): sums fold
//! left-to-right from `0.0` in the same element order, the allocator keeps
//! the reference's skip-zero-λ accumulation, and clamping boxes are lowered
//! by calling [`clamping_box`] itself. IEEE-754 arithmetic is deterministic
//! for a fixed operation sequence, so plan-evaluated results are
//! bit-identical to the naive path — preserving the byte-determinism
//! contracts of checkpoint/restore and the churn soak.
//!
//! # Invalidation
//!
//! A plan snapshots the problem at a [`Problem::epoch`]. Owners compare
//! `plan.epoch() != problem.epoch()` and re-lower on mismatch; every
//! `&mut self` mutator of `Problem` (availability/correction/demand-scale
//! edits and all membership operations) bumps the epoch.
//!
//! # Parallelism (`parallel` feature)
//!
//! With the opt-in `parallel` feature, [`Plan::allocate_into`] fans the
//! per-task allocation out across a worker pool: tasks are split into
//! contiguous ranges and each worker writes its tasks' latencies into a
//! disjoint `split_at_mut` slice of the output. Task allocations are
//! mutually independent (they read shared prices and write only their own
//! rows), and every cross-task reduction (usage, utility, price steps)
//! stays sequential in fixed order — so parallel output is **bit-identical**
//! to sequential regardless of worker count.

use crate::allocation::{clamping_box, AllocationSettings};
use crate::ids::TaskId;
use crate::lagrangian::KktReport;
use crate::prices::PriceState;
use crate::problem::Problem;
use crate::utility::UtilityFn;

/// Fan out the parallel allocator only past this many subtasks; below it
/// thread startup dwarfs the work and the sequential kernel wins.
#[cfg(feature = "parallel")]
const PARALLEL_MIN_SUBTASKS: usize = 2048;

/// `Σ_s w_s·lat_s`, replicating `Task::aggregate_latency` exactly.
fn dot(lats: &[f64], weight: &[f64]) -> f64 {
    lats.iter().zip(weight).map(|(l, w)| l * w).sum()
}

/// The shared single-task allocation kernel (Eq. 7 + damped fixed point),
/// operating on dense plan arrays. Used by both [`Plan`] (global slices)
/// and [`TaskPlan`] (single-task slices). Replicates
/// [`crate::allocation::allocate_task`] expression-for-expression.
///
/// `path_off` holds `num_paths + 1` offsets into `path_subs`; `path_subs`
/// holds task-local subtask indices. `lambdas` is the task's λ row and
/// `mus` the global μ vector (indexed through `sub_res`).
#[allow(clippy::too_many_arguments)]
fn allocate_kernel(
    utility: &UtilityFn,
    settings: &AllocationSettings,
    weight: &[f64],
    demand: &[f64],
    correction: &[f64],
    lo: &[f64],
    hi: &[f64],
    sub_res: &[u32],
    path_off: &[usize],
    path_subs: &[u32],
    lambdas: &[f64],
    mus: &[f64],
    previous: &[f64],
    lambda_sum: &mut [f64],
    out: &mut [f64],
) {
    let n = out.len();
    debug_assert_eq!(previous.len(), n, "allocation shape mismatch");

    // Σ_{p∋s} λ_p with the reference's skip of zero-price paths.
    lambda_sum.fill(0.0);
    for (p, &lp) in lambdas.iter().enumerate() {
        if lp != 0.0 {
            for &s in &path_subs[path_off[p]..path_off[p + 1]] {
                lambda_sum[s as usize] += lp;
            }
        }
    }

    let solve_pass = |a: f64, dst: &mut [f64]| {
        let fprime = utility.derivative(a);
        for s in 0..n {
            let mu = mus[sub_res[s] as usize];
            let pressure = -weight[s] * fprime + lambda_sum[s];
            // `ShareModel::stationary_latency` inlined over the dense
            // demand/correction arrays (identical expression).
            let stationary = if pressure <= 0.0 {
                None
            } else {
                Some(correction[s] + (mu.max(0.0) * demand[s] / pressure).sqrt())
            };
            dst[s] = stationary.unwrap_or(hi[s]).clamp(lo[s], hi[s]);
        }
    };

    if matches!(utility, UtilityFn::Linear { .. }) {
        // f' is constant: a single pass is exact.
        solve_pass(0.0, out);
        return;
    }

    // General concave utility: damped fixed point on the aggregate A.
    let mut a = dot(previous, weight);
    for _ in 0..settings.fixed_point_max_iters {
        solve_pass(a, out);
        let a_new = dot(out, weight);
        let next = (1.0 - settings.damping) * a + settings.damping * a_new;
        if (next - a).abs() <= settings.fixed_point_tol * a.abs().max(1.0) {
            a = next;
            break;
        }
        a = next;
    }
    solve_pass(a, out);
}

/// Reusable scratch buffers for one [`Plan`]'s iteration kernels.
///
/// Sized by [`Plan::scratch`]; owning one per optimizer (or per thread)
/// makes every per-iteration primitive allocation-free.
#[derive(Debug, Clone)]
pub struct PlanScratch {
    pub(crate) prev: Vec<f64>,
    pub(crate) lats: Vec<f64>,
    pub(crate) lambda: Vec<f64>,
    pub(crate) usage: Vec<f64>,
    pub(crate) grad_r: Vec<f64>,
    pub(crate) path_lat: Vec<f64>,
    pub(crate) congested: Vec<bool>,
}

impl PlanScratch {
    /// The flat latency vector written by the most recent
    /// [`Plan::allocate_into`].
    pub fn lats(&self) -> &[f64] {
        &self.lats
    }

    /// Mutable access to the flat latency vector (e.g. to seed it via
    /// [`Plan::flatten_into`]).
    pub fn lats_mut(&mut self) -> &mut [f64] {
        &mut self.lats
    }

    /// Mutable access to the warm-start buffer read by
    /// [`Plan::allocate_into`].
    pub fn prev_mut(&mut self) -> &mut [f64] {
        &mut self.prev
    }

    /// Per-resource usage written by the most recent
    /// [`Plan::price_update`] (or [`Plan::usage_into`]).
    pub fn usage(&self) -> &[f64] {
        &self.usage
    }

    /// Per-path latencies written by the most recent
    /// [`Plan::price_update`] (or [`Plan::path_latencies_into`]).
    pub fn path_lat(&self) -> &[f64] {
        &self.path_lat
    }

    /// Congestion bits written by the most recent price phase (indexed by
    /// global resource).
    pub fn congested(&self) -> &[bool] {
        &self.congested
    }

    /// Mutable congestion bits — a sharded coordinator broadcasts shared-
    /// resource congestion into each shard's scratch through this.
    pub fn congested_mut(&mut self) -> &mut [bool] {
        &mut self.congested
    }

    /// Resizes this scratch in place to fit `plan`, reusing existing
    /// buffer capacity. Re-lowerings call this instead of
    /// [`Plan::scratch`] so a membership epoch does not reallocate every
    /// scratch buffer; contents are reset to zero.
    pub fn resize_for(&mut self, plan: &Plan) {
        fn fit(v: &mut Vec<f64>, n: usize) {
            v.clear();
            v.resize(n, 0.0);
        }
        let ns = plan.num_subtasks();
        let nr = plan.num_resources();
        fit(&mut self.prev, ns);
        fit(&mut self.lats, ns);
        fit(&mut self.lambda, ns);
        fit(&mut self.usage, nr);
        fit(&mut self.grad_r, nr);
        fit(&mut self.path_lat, plan.num_paths());
        self.congested.clear();
        self.congested.resize(nr, false);
    }
}

/// A compiled, structure-of-arrays lowering of one [`Problem`] at one
/// mutation epoch (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct Plan {
    epoch: u64,
    settings: AllocationSettings,
    /// `task_sub_off[t]..task_sub_off[t+1]` is task `t`'s slice of every
    /// per-subtask array (`len == num_tasks + 1`).
    task_sub_off: Vec<usize>,
    /// `task_path_off[t]..task_path_off[t+1]` is task `t`'s global path
    /// index range (`len == num_tasks + 1`).
    task_path_off: Vec<usize>,
    /// `path_sub_off[pp]..path_sub_off[pp+1]` is global path `pp`'s slice
    /// of `path_subs` (`len == num_paths + 1`).
    path_sub_off: Vec<usize>,
    /// Task-local subtask indices in root-to-leaf order.
    path_subs: Vec<u32>,
    /// `res_sub_off[r]..res_sub_off[r+1]` is resource `r`'s slice of
    /// `res_subs` (`len == num_resources + 1`).
    res_sub_off: Vec<usize>,
    /// Global (flat) subtask indices in `Problem::subtasks_on` order.
    res_subs: Vec<u32>,
    /// Global subtask → hosting resource index.
    sub_res: Vec<u32>,
    demand: Vec<f64>,
    correction: Vec<f64>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    weight: Vec<f64>,
    critical_time: Vec<f64>,
    utility: Vec<UtilityFn>,
    availability: Vec<f64>,
}

impl Plan {
    /// Lowers `problem` into a dense iteration plan, snapshotting its
    /// current [`Problem::epoch`].
    pub fn lower(problem: &Problem, settings: &AllocationSettings) -> Plan {
        Self::lower_impl(problem, settings, None)
    }

    /// Lowers only the given global task indices (plan-local task order =
    /// slice order), keeping **global** resource indexing: `sub_res` and
    /// the per-resource CSR windows still index the full resource set, so
    /// a subset plan shares μ vectors and usage/congestion layouts with
    /// every other subset of the same problem. Resources untouched by the
    /// subset get empty windows (their usage lowers to `0.0`). This is the
    /// shard lowering used by
    /// [`ShardedOptimizer`](crate::shard::ShardedOptimizer): re-lowering
    /// one shard after a membership epoch costs O(shard subtasks +
    /// resources), not O(problem).
    ///
    /// # Panics
    ///
    /// Panics if `tasks` contains an out-of-range index.
    pub fn lower_subset(problem: &Problem, settings: &AllocationSettings, tasks: &[usize]) -> Plan {
        Self::lower_impl(problem, settings, Some(tasks))
    }

    fn lower_impl(
        problem: &Problem,
        settings: &AllocationSettings,
        subset: Option<&[usize]>,
    ) -> Plan {
        let nt_global = problem.tasks().len();
        let nr = problem.resources().len();
        let ns_global = problem.num_subtasks();
        let np_global = problem.num_paths();
        assert!(ns_global < u32::MAX as usize, "problem too large for u32 subtask indices");
        let nt = subset.map_or(nt_global, <[usize]>::len);

        let mut task_sub_off = Vec::with_capacity(nt + 1);
        let mut task_path_off = Vec::with_capacity(nt + 1);
        let mut path_sub_off = Vec::with_capacity(if subset.is_some() { 1 } else { np_global + 1 });
        let mut path_subs = Vec::new();
        let mut demand = Vec::new();
        let mut correction = Vec::new();
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        let mut weight = Vec::new();
        let mut sub_res = Vec::new();
        let mut critical_time = Vec::with_capacity(nt);
        let mut utility = Vec::with_capacity(nt);
        // Global task index → flat subtask base within this plan
        // (usize::MAX for tasks outside the subset).
        let mut flat_base = vec![usize::MAX; nt_global];
        task_sub_off.push(0);
        task_path_off.push(0);
        path_sub_off.push(0);
        let mut lower_task = |gt: usize| {
            let task = &problem.tasks()[gt];
            let (lo_t, hi_t) = clamping_box(problem, task, settings);
            flat_base[gt] = demand.len();
            for s in 0..task.len() {
                let model = problem.share_model(task.subtask_id(s));
                demand.push(model.demand());
                correction.push(model.correction());
                sub_res.push(task.subtasks()[s].resource().index() as u32);
            }
            lo.extend_from_slice(&lo_t);
            hi.extend_from_slice(&hi_t);
            weight.extend_from_slice(task.weights());
            for path in task.graph().paths() {
                path_subs.extend(path.subtasks().iter().map(|&s| s as u32));
                path_sub_off.push(path_subs.len());
            }
            task_sub_off.push(demand.len());
            task_path_off.push(path_sub_off.len() - 1);
            critical_time.push(task.critical_time());
            utility.push(task.utility_fn().clone());
        };
        match subset {
            Some(tasks) => tasks.iter().for_each(|&gt| lower_task(gt)),
            None => (0..nt_global).for_each(&mut lower_task),
        }

        let mut res_sub_off = Vec::with_capacity(nr + 1);
        let mut res_subs = Vec::new();
        let mut availability = Vec::with_capacity(nr);
        res_sub_off.push(0);
        for r in problem.resources() {
            for sid in problem.subtasks_on(r.id()) {
                let base = flat_base[sid.task().index()];
                if base != usize::MAX {
                    res_subs.push((base + sid.index()) as u32);
                }
            }
            res_sub_off.push(res_subs.len());
            availability.push(r.availability());
        }

        Plan {
            epoch: problem.epoch(),
            settings: *settings,
            task_sub_off,
            task_path_off,
            path_sub_off,
            path_subs,
            res_sub_off,
            res_subs,
            sub_res,
            demand,
            correction,
            lo,
            hi,
            weight,
            critical_time,
            utility,
            availability,
        }
    }

    /// The [`Problem::epoch`] this plan was lowered at; a mismatch with the
    /// live problem means the plan is stale and must be re-lowered.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The allocation settings the plan's clamping boxes were lowered with.
    pub fn settings(&self) -> &AllocationSettings {
        &self.settings
    }

    /// Number of tasks in the lowered problem.
    pub fn num_tasks(&self) -> usize {
        self.task_sub_off.len() - 1
    }

    /// Number of resources in the lowered problem.
    pub fn num_resources(&self) -> usize {
        self.res_sub_off.len() - 1
    }

    /// Total number of subtasks (the length of every flat latency vector).
    pub fn num_subtasks(&self) -> usize {
        *self.task_sub_off.last().expect("offsets are never empty")
    }

    /// Total number of root-to-leaf paths.
    pub fn num_paths(&self) -> usize {
        self.path_sub_off.len() - 1
    }

    /// Task `t`'s range within the flat per-subtask arrays.
    pub fn task_range(&self, t: usize) -> std::ops::Range<usize> {
        self.task_sub_off[t]..self.task_sub_off[t + 1]
    }

    /// Allocates scratch buffers sized for this plan.
    pub fn scratch(&self) -> PlanScratch {
        PlanScratch {
            prev: vec![0.0; self.num_subtasks()],
            lats: vec![0.0; self.num_subtasks()],
            lambda: vec![0.0; self.num_subtasks()],
            usage: vec![0.0; self.num_resources()],
            grad_r: vec![0.0; self.num_resources()],
            path_lat: vec![0.0; self.num_paths()],
            congested: vec![false; self.num_resources()],
        }
    }

    /// Copies a nested `lats[t][s]` matrix into a flat plan-ordered vector.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch.
    pub fn flatten_into(&self, nested: &[Vec<f64>], flat: &mut [f64]) {
        assert_eq!(nested.len(), self.num_tasks(), "plan shape mismatch");
        for (t, row) in nested.iter().enumerate() {
            flat[self.task_sub_off[t]..self.task_sub_off[t + 1]].copy_from_slice(row);
        }
    }

    /// Copies a flat plan-ordered vector back into a nested `lats[t][s]`
    /// matrix, reusing the existing row buffers.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch.
    pub fn unflatten_into(&self, flat: &[f64], nested: &mut [Vec<f64>]) {
        assert_eq!(nested.len(), self.num_tasks(), "plan shape mismatch");
        for (t, row) in nested.iter_mut().enumerate() {
            row.copy_from_slice(&flat[self.task_sub_off[t]..self.task_sub_off[t + 1]]);
        }
    }

    /// One latency-allocation step over the whole problem:
    /// reads `scratch.prev`, writes `scratch.lats`. Dispatches to the
    /// threaded kernel when the `parallel` feature is on and the problem is
    /// large enough to amortize fan-out; results are bit-identical either
    /// way.
    pub fn allocate_into(&self, prices: &PriceState, scratch: &mut PlanScratch) {
        #[cfg(feature = "parallel")]
        if self.num_subtasks() >= PARALLEL_MIN_SUBTASKS {
            self.allocate_par(prices, scratch);
            return;
        }
        self.allocate_seq(prices, scratch);
    }

    /// The sequential latency-allocation kernel (always available; the
    /// reference for the bit-identity contract).
    pub fn allocate_seq(&self, prices: &PriceState, scratch: &mut PlanScratch) {
        let PlanScratch { prev, lats, lambda, .. } = scratch;
        for t in 0..self.num_tasks() {
            let range = self.task_range(t);
            self.allocate_one(t, prices, prev, &mut lambda[range.clone()], &mut lats[range]);
        }
    }

    /// The threaded latency-allocation kernel: contiguous task ranges fan
    /// out over `rayon::current_num_threads()` workers, each writing a
    /// disjoint slice of `scratch.lats`. Bit-identical to
    /// [`allocate_seq`](Self::allocate_seq) for any worker count because
    /// tasks are independent and no cross-task reduction happens here.
    #[cfg(feature = "parallel")]
    pub fn allocate_par(&self, prices: &PriceState, scratch: &mut PlanScratch) {
        let nt = self.num_tasks();
        let workers = rayon::current_num_threads().min(nt.max(1));
        if workers <= 1 {
            self.allocate_seq(prices, scratch);
            return;
        }
        let PlanScratch { prev, lats, lambda, .. } = scratch;
        let prev: &[f64] = prev;
        rayon::scope(|s| {
            let mut rest_lats: &mut [f64] = lats;
            let mut rest_lambda: &mut [f64] = lambda;
            let mut t0 = 0usize;
            for w in 0..workers {
                let t1 = nt * (w + 1) / workers;
                if t1 == t0 {
                    continue;
                }
                let nsub = self.task_sub_off[t1] - self.task_sub_off[t0];
                let (chunk_lats, rl) = std::mem::take(&mut rest_lats).split_at_mut(nsub);
                rest_lats = rl;
                let (chunk_lambda, rb) = std::mem::take(&mut rest_lambda).split_at_mut(nsub);
                rest_lambda = rb;
                let base = self.task_sub_off[t0];
                let range = t0..t1;
                s.spawn(move || {
                    for t in range {
                        let a = self.task_sub_off[t] - base;
                        let b = self.task_sub_off[t + 1] - base;
                        self.allocate_one(
                            t,
                            prices,
                            prev,
                            &mut chunk_lambda[a..b],
                            &mut chunk_lats[a..b],
                        );
                    }
                });
                t0 = t1;
            }
        });
    }

    /// Runs the allocation kernel for one task over plan slices.
    fn allocate_one(
        &self,
        t: usize,
        prices: &PriceState,
        prev_all: &[f64],
        lambda_sum: &mut [f64],
        out: &mut [f64],
    ) {
        let sub = self.task_range(t);
        let paths = self.task_path_off[t]..self.task_path_off[t + 1];
        allocate_kernel(
            &self.utility[t],
            &self.settings,
            &self.weight[sub.clone()],
            &self.demand[sub.clone()],
            &self.correction[sub.clone()],
            &self.lo[sub.clone()],
            &self.hi[sub.clone()],
            &self.sub_res[sub.clone()],
            &self.path_sub_off[paths.start..=paths.end],
            &self.path_subs,
            prices.lambdas(t),
            prices.mus(),
            &prev_all[sub],
            lambda_sum,
            out,
        );
    }

    /// Per-resource usage `Σ_{s∈S_r} share(lat_s)` into `usage`,
    /// replicating [`Problem::resource_usage`] order and arithmetic.
    pub fn usage_into(&self, lats: &[f64], usage: &mut [f64]) {
        for (u, rs) in usage.iter_mut().zip(self.res_sub_off.windows(2)) {
            *u = self.res_subs[rs[0]..rs[1]]
                .iter()
                .map(|&gs| {
                    let s = gs as usize;
                    let eff = lats[s] - self.correction[s];
                    if eff <= 0.0 {
                        f64::INFINITY
                    } else {
                        self.demand[s] / eff
                    }
                })
                .sum();
        }
    }

    /// Per-path latencies `Σ_{s∈p} lat_s` into `path_lat` (global path
    /// order), replicating [`crate::graph::Path::latency`].
    pub fn path_latencies_into(&self, lats: &[f64], path_lat: &mut [f64]) {
        for t in 0..self.num_tasks() {
            let base = self.task_sub_off[t];
            let paths = self.task_path_off[t]..self.task_path_off[t + 1];
            for (pl, ps) in path_lat[paths.clone()]
                .iter_mut()
                .zip(self.path_sub_off[paths.start..=paths.end].windows(2))
            {
                *pl = self.path_subs[ps[0]..ps[1]].iter().map(|&s| lats[base + s as usize]).sum();
            }
        }
    }

    /// One full price-computation step (Eqs. 8–9) over the plan: computes
    /// usage, path latencies, and congestion bits into `scratch` from
    /// `scratch.lats`, then applies the same per-resource / per-path steps
    /// in the same order as [`PriceState::update`].
    pub fn price_update(&self, prices: &mut PriceState, scratch: &mut PlanScratch) {
        let PlanScratch { lats, usage, grad_r, path_lat, congested, .. } = scratch;
        self.usage_into(lats, usage);
        self.path_latencies_into(lats, path_lat);
        for (r, g) in grad_r.iter_mut().enumerate() {
            *g = self.availability[r] - usage[r];
            congested[r] = *g < 0.0;
        }
        prices.reset_step_tracking();
        for (r, &g) in grad_r.iter().enumerate() {
            prices.apply_resource_step(r, g);
        }
        self.path_price_steps(prices, scratch);
    }

    /// The shard-local half of the price phase: computes usage and path
    /// latencies from `scratch.lats`, resets step tracking, then applies
    /// μ steps (Eq. 8) and congestion bits **only** for resources marked
    /// in `owned`. Unowned entries of `scratch.usage` still hold this
    /// plan's *partial* usage so a coordinator can aggregate them; their
    /// μ steps and congestion bits come from the coordinator round. The
    /// per-resource step order and arithmetic match [`price_update`]
    /// exactly, so with every resource owned this is bit-identical to the
    /// resource half of the monolithic step.
    pub fn owned_resource_steps(
        &self,
        prices: &mut PriceState,
        scratch: &mut PlanScratch,
        owned: &[bool],
    ) {
        let PlanScratch { lats, usage, grad_r, path_lat, congested, .. } = scratch;
        self.usage_into(lats, usage);
        self.path_latencies_into(lats, path_lat);
        prices.reset_step_tracking();
        for r in 0..self.num_resources() {
            if owned[r] {
                let g = self.availability[r] - usage[r];
                grad_r[r] = g;
                congested[r] = g < 0.0;
                prices.apply_resource_step(r, g);
            }
        }
    }

    /// The per-path half of the price phase (Eq. 9): applies one λ step
    /// per path from the path latencies and congestion bits already in
    /// `scratch`. Sharded drivers call this *after* the coordinator has
    /// broadcast shared-resource congestion into `scratch.congested`.
    pub fn path_price_steps(&self, prices: &mut PriceState, scratch: &PlanScratch) {
        let PlanScratch { path_lat, congested, .. } = scratch;
        for t in 0..self.num_tasks() {
            let ct = self.critical_time[t];
            let base = self.task_sub_off[t];
            for (p, pp) in (self.task_path_off[t]..self.task_path_off[t + 1]).enumerate() {
                let grad = 1.0 - path_lat[pp] / ct;
                let traverses_congested = self.path_subs
                    [self.path_sub_off[pp]..self.path_sub_off[pp + 1]]
                    .iter()
                    .any(|&s| congested[self.sub_res[base + s as usize] as usize]);
                prices.apply_path_step(t, p, grad, traverses_congested);
            }
        }
    }

    /// Per-resource availability `B_r` as lowered (global resource order).
    pub fn availability(&self) -> &[f64] {
        &self.availability
    }

    /// Number of root-to-leaf paths of plan-local task `t`.
    pub fn num_task_paths(&self, t: usize) -> usize {
        self.task_path_off[t + 1] - self.task_path_off[t]
    }

    /// Plan-local task `t`'s range within the flat per-path arrays.
    pub fn task_path_range(&self, t: usize) -> std::ops::Range<usize> {
        self.task_path_off[t]..self.task_path_off[t + 1]
    }

    /// `Σ_i U_i` over a flat latency vector, replicating
    /// [`Problem::total_utility`].
    pub fn total_utility(&self, lats: &[f64]) -> f64 {
        (0..self.num_tasks())
            .map(|t| {
                let sub = self.task_range(t);
                let a = dot(&lats[sub.clone()], &self.weight[sub]);
                self.utility[t].value(a)
            })
            .sum()
    }

    /// `max_r (usage_r − B_r)` from a precomputed usage vector,
    /// replicating [`Problem::max_resource_violation`].
    pub fn max_resource_violation(&self, usage: &[f64]) -> f64 {
        usage.iter().zip(&self.availability).map(|(u, b)| u - b).fold(f64::NEG_INFINITY, f64::max)
    }

    /// `max_p (path_latency/C_i − 1)` from precomputed path latencies,
    /// replicating [`Problem::max_path_violation`].
    pub fn max_path_violation(&self, path_lat: &[f64]) -> f64 {
        let mut worst = f64::NEG_INFINITY;
        for t in 0..self.num_tasks() {
            let ct = self.critical_time[t];
            for &pl in &path_lat[self.task_path_off[t]..self.task_path_off[t + 1]] {
                worst = worst.max(pl / ct - 1.0);
            }
        }
        worst
    }

    /// Per-task `critical_path_latency / C_i` ratios (trace column) from
    /// precomputed path latencies, replicating
    /// [`crate::task::Task::critical_path`]'s strict-`>` tie-break.
    pub fn critical_path_ratios(&self, path_lat: &[f64]) -> Vec<f64> {
        (0..self.num_tasks())
            .map(|t| {
                let mut best = f64::NEG_INFINITY;
                for &pl in &path_lat[self.task_path_off[t]..self.task_path_off[t + 1]] {
                    if pl > best {
                        best = pl;
                    }
                }
                best / self.critical_time[t]
            })
            .collect()
    }

    /// The Lagrangian (Eq. 5) over a flat latency vector, replicating
    /// [`crate::lagrangian::lagrangian_value`].
    pub fn lagrangian_value(&self, lats: &[f64], prices: &PriceState) -> f64 {
        let mut value = self.total_utility(lats);
        for r in 0..self.num_resources() {
            let usage: f64 = self.res_subs[self.res_sub_off[r]..self.res_sub_off[r + 1]]
                .iter()
                .map(|&gs| {
                    let s = gs as usize;
                    let eff = lats[s] - self.correction[s];
                    if eff <= 0.0 {
                        f64::INFINITY
                    } else {
                        self.demand[s] / eff
                    }
                })
                .sum();
            value -= prices.mu(r) * (usage - self.availability[r]);
        }
        for t in 0..self.num_tasks() {
            let base = self.task_sub_off[t];
            for (p, pp) in (self.task_path_off[t]..self.task_path_off[t + 1]).enumerate() {
                let pl: f64 = self.path_subs[self.path_sub_off[pp]..self.path_sub_off[pp + 1]]
                    .iter()
                    .map(|&s| lats[base + s as usize])
                    .sum();
                value -= prices.lambda(t, p) * (pl - self.critical_time[t]);
            }
        }
        value
    }

    /// KKT residuals (see [`crate::lagrangian::kkt_report`]) over a flat
    /// latency vector, using `scratch.lambda` as the Σλ accumulator. The
    /// per-task path walk computes λ-sums, complementary slackness, and
    /// path violations in one pass (`max` is order-independent, so the
    /// report matches the naive two-pass form).
    pub fn kkt_report(
        &self,
        lats: &[f64],
        prices: &PriceState,
        boundary_tol: f64,
        scratch: &mut PlanScratch,
    ) -> KktReport {
        let (stat, comp, worst_path) = self.kkt_task_terms(lats, prices, boundary_tol, scratch);
        let mut comp = comp;
        let mut worst_res = f64::NEG_INFINITY;
        for r in 0..self.num_resources() {
            let usage: f64 = self.res_subs[self.res_sub_off[r]..self.res_sub_off[r + 1]]
                .iter()
                .map(|&gs| {
                    let s = gs as usize;
                    let eff = lats[s] - self.correction[s];
                    if eff <= 0.0 {
                        f64::INFINITY
                    } else {
                        self.demand[s] / eff
                    }
                })
                .sum();
            comp = comp.max((prices.mu(r) * (self.availability[r] - usage)).abs());
            worst_res = worst_res.max(usage - self.availability[r]);
        }
        KktReport {
            max_stationarity_residual: stat,
            max_resource_violation: worst_res.max(0.0),
            max_path_violation: worst_path.max(0.0),
            max_complementary_slackness: comp,
        }
    }

    /// The per-task terms of [`kkt_report`](Self::kkt_report):
    /// `(max stationarity residual, max path complementary slackness,
    /// worst path violation)` over this plan's tasks. Sharded drivers sum
    /// resource usage across shards separately (a single shard sees only
    /// partial usage of shared resources, so the per-resource terms cannot
    /// be evaluated shard-locally).
    pub(crate) fn kkt_task_terms(
        &self,
        lats: &[f64],
        prices: &PriceState,
        boundary_tol: f64,
        scratch: &mut PlanScratch,
    ) -> (f64, f64, f64) {
        let mut stat = 0.0f64;
        let mut comp = 0.0f64;
        let mut worst_path = f64::NEG_INFINITY;
        for t in 0..self.num_tasks() {
            let sub = self.task_range(t);
            let base = sub.start;
            let tl = &lats[sub.clone()];
            let a = dot(tl, &self.weight[sub.clone()]);
            let fprime = self.utility[t].derivative(a);
            let ct = self.critical_time[t];
            let lambda_sum = &mut scratch.lambda[sub];
            lambda_sum.fill(0.0);
            // Note: the KKT reference accumulates λ WITHOUT the
            // allocator's zero-skip; replicate that here.
            for (p, pp) in (self.task_path_off[t]..self.task_path_off[t + 1]).enumerate() {
                let lp = prices.lambda(t, p);
                let mut pl = 0.0;
                for &s in &self.path_subs[self.path_sub_off[pp]..self.path_sub_off[pp + 1]] {
                    lambda_sum[s as usize] += lp;
                    pl += lats[base + s as usize];
                }
                let slack = 1.0 - pl / ct;
                comp = comp.max((lp * slack).abs());
                worst_path = worst_path.max(pl / ct - 1.0);
            }
            for (s, &lat) in tl.iter().enumerate() {
                let gs = base + s;
                if lat - self.lo[gs] <= boundary_tol || self.hi[gs] - lat <= boundary_tol {
                    continue;
                }
                let eff = lat - self.correction[gs];
                let dshare =
                    if eff <= 0.0 { f64::NEG_INFINITY } else { -self.demand[gs] / (eff * eff) };
                let mu = prices.mu(self.sub_res[gs] as usize);
                let residual = self.weight[gs] * fprime - lambda_sum[s] - mu * dshare;
                stat = stat.max(residual.abs());
            }
        }
        (stat, comp, worst_path)
    }
}

/// A single-task lowering for distributed task controllers: the same dense
/// allocation kernel as [`Plan`], but holding only one task's constants so
/// an agent does not pay O(problem) memory per controller.
#[derive(Debug, Clone)]
pub struct TaskPlan {
    settings: AllocationSettings,
    utility: UtilityFn,
    critical_time: f64,
    weight: Vec<f64>,
    demand: Vec<f64>,
    correction: Vec<f64>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Local subtask → global resource index.
    sub_res: Vec<u32>,
    /// `path_off[p]..path_off[p+1]` is path `p`'s slice of `path_subs`.
    path_off: Vec<usize>,
    /// Task-local subtask indices in root-to-leaf order.
    path_subs: Vec<u32>,
}

impl TaskPlan {
    /// Lowers one task of `problem` into a dense single-task plan.
    pub fn lower(problem: &Problem, id: TaskId, settings: &AllocationSettings) -> TaskPlan {
        let task = problem.task(id);
        let (lo, hi) = clamping_box(problem, task, settings);
        let n = task.len();
        let mut demand = Vec::with_capacity(n);
        let mut correction = Vec::with_capacity(n);
        let mut sub_res = Vec::with_capacity(n);
        for s in 0..n {
            let model = problem.share_model(task.subtask_id(s));
            demand.push(model.demand());
            correction.push(model.correction());
            sub_res.push(task.subtasks()[s].resource().index() as u32);
        }
        let mut path_off = Vec::with_capacity(task.graph().paths().len() + 1);
        let mut path_subs = Vec::new();
        path_off.push(0);
        for path in task.graph().paths() {
            path_subs.extend(path.subtasks().iter().map(|&s| s as u32));
            path_off.push(path_subs.len());
        }
        TaskPlan {
            settings: *settings,
            utility: task.utility_fn().clone(),
            critical_time: task.critical_time(),
            weight: task.weights().to_vec(),
            demand,
            correction,
            lo,
            hi,
            sub_res,
            path_off,
            path_subs,
        }
    }

    /// Number of subtasks of the lowered task.
    pub fn len(&self) -> usize {
        self.weight.len()
    }

    /// Whether the lowered task has no subtasks.
    pub fn is_empty(&self) -> bool {
        self.weight.is_empty()
    }

    /// Number of root-to-leaf paths of the lowered task.
    pub fn num_paths(&self) -> usize {
        self.path_off.len() - 1
    }

    /// The task's critical time `C_i`.
    pub fn critical_time(&self) -> f64 {
        self.critical_time
    }

    /// `Σ_{s∈p} lat_s` for local path `p`, replicating
    /// [`crate::graph::Path::latency`].
    pub fn path_latency(&self, p: usize, lats: &[f64]) -> f64 {
        self.path_subs[self.path_off[p]..self.path_off[p + 1]]
            .iter()
            .map(|&s| lats[s as usize])
            .sum()
    }

    /// Whether local path `p` traverses a resource flagged in `congested`
    /// (indexed by global resource index).
    pub fn path_traverses(&self, p: usize, congested: &[bool]) -> bool {
        self.path_subs[self.path_off[p]..self.path_off[p + 1]]
            .iter()
            .any(|&s| congested[self.sub_res[s as usize] as usize])
    }

    /// One latency-allocation step for this task (bit-identical to
    /// [`crate::allocation::allocate_task`]). `t` is the task's index for
    /// λ lookups; `lambda_scratch` and `out` must both be `len()` long.
    pub fn allocate_into(
        &self,
        t: usize,
        prices: &PriceState,
        previous: &[f64],
        lambda_scratch: &mut [f64],
        out: &mut [f64],
    ) {
        allocate_kernel(
            &self.utility,
            &self.settings,
            &self.weight,
            &self.demand,
            &self.correction,
            &self.lo,
            &self.hi,
            &self.sub_res,
            &self.path_off,
            &self.path_subs,
            prices.lambdas(t),
            prices.mus(),
            previous,
            lambda_scratch,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::{allocate_latencies, allocate_task};
    use crate::ids::ResourceId;
    use crate::lagrangian::{kkt_report, lagrangian_value};
    use crate::prices::StepSizePolicy;
    use crate::resource::{Resource, ResourceKind};
    use crate::task::TaskBuilder;
    use crate::utility::UtilityFn;

    fn diamond_problem() -> Problem {
        let resources = vec![
            Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
            Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(2.0),
            Resource::new(ResourceId::new(2), ResourceKind::NetworkLink).with_lag(0.5),
        ];
        let mut b0 = TaskBuilder::new("diamond");
        let a = b0.subtask("a", ResourceId::new(0), 2.0);
        let b = b0.subtask("b", ResourceId::new(1), 3.0);
        let c = b0.subtask("c", ResourceId::new(2), 1.0);
        let d = b0.subtask("d", ResourceId::new(0), 1.5);
        b0.edge(a, b).unwrap();
        b0.edge(a, c).unwrap();
        b0.edge(b, d).unwrap();
        b0.edge(c, d).unwrap();
        b0.critical_time(60.0);
        b0.utility(UtilityFn::Quadratic { offset: 100.0, lin: 0.5, quad: 0.01 });
        let mut b1 = TaskBuilder::new("chain");
        let x = b1.subtask("x", ResourceId::new(1), 2.0);
        let y = b1.subtask("y", ResourceId::new(2), 2.0);
        b1.edge(x, y).unwrap();
        b1.critical_time(40.0);
        let tasks = vec![b0.build(TaskId::new(0)).unwrap(), b1.build(TaskId::new(1)).unwrap()];
        Problem::new(resources, tasks).unwrap()
    }

    fn priced(p: &Problem) -> PriceState {
        let mut prices = PriceState::new(p, StepSizePolicy::adaptive(1.0));
        for r in 0..p.resources().len() {
            prices.set_mu(r, 3.0 + r as f64);
        }
        prices.set_lambda(0, 0, 0.7);
        prices.set_lambda(1, 0, 0.2);
        prices
    }

    #[test]
    fn plan_allocation_is_bit_identical_to_naive() {
        let p = diamond_problem();
        let prices = priced(&p);
        let settings = AllocationSettings::default();
        let prev = p.initial_allocation();
        let naive = allocate_latencies(&p, &prices, &settings, &prev);

        let plan = Plan::lower(&p, &settings);
        let mut scratch = plan.scratch();
        plan.flatten_into(&prev, scratch.prev_mut());
        plan.allocate_seq(&prices, &mut scratch);
        let mut nested = p.initial_allocation();
        plan.unflatten_into(scratch.lats(), &mut nested);
        assert_eq!(naive, nested, "plan allocation must match naive bitwise");
    }

    #[test]
    fn plan_price_update_is_bit_identical_to_naive() {
        let p = diamond_problem();
        let settings = AllocationSettings::default();
        let lats = p.initial_allocation();
        let mut naive_prices = priced(&p);
        naive_prices.update(&p, &lats);

        let plan = Plan::lower(&p, &settings);
        let mut scratch = plan.scratch();
        plan.flatten_into(&lats, scratch.lats_mut());
        let mut plan_prices = priced(&p);
        plan.price_update(&mut plan_prices, &mut scratch);
        assert_eq!(naive_prices, plan_prices, "plan price step must match naive bitwise");
    }

    #[test]
    fn plan_diagnostics_match_naive() {
        let p = diamond_problem();
        let prices = priced(&p);
        let settings = AllocationSettings::default();
        let lats = p.initial_allocation();
        let plan = Plan::lower(&p, &settings);
        let mut scratch = plan.scratch();
        let flat = {
            let mut f = vec![0.0; plan.num_subtasks()];
            plan.flatten_into(&lats, &mut f);
            f
        };
        assert_eq!(plan.total_utility(&flat), p.total_utility(&lats));
        assert_eq!(plan.lagrangian_value(&flat, &prices), lagrangian_value(&p, &lats, &prices));
        plan.usage_into(&flat, &mut scratch.usage);
        plan.path_latencies_into(&flat, &mut scratch.path_lat);
        assert_eq!(plan.max_resource_violation(&scratch.usage), p.max_resource_violation(&lats));
        assert_eq!(plan.max_path_violation(&scratch.path_lat), p.max_path_violation(&lats));
        let naive_kkt = kkt_report(&p, &lats, &prices, &settings, 1e-9);
        let plan_kkt = plan.kkt_report(&flat, &prices, 1e-9, &mut scratch);
        assert_eq!(naive_kkt, plan_kkt);
    }

    #[test]
    fn task_plan_matches_allocate_task() {
        let p = diamond_problem();
        let prices = priced(&p);
        let settings = AllocationSettings::default();
        let prev = p.initial_allocation();
        for (t, task) in p.tasks().iter().enumerate() {
            let naive = allocate_task(&p, task, &prices, &settings, &prev[t]);
            let tp = TaskPlan::lower(&p, task.id(), &settings);
            let mut lambda = vec![0.0; tp.len()];
            let mut out = vec![0.0; tp.len()];
            tp.allocate_into(t, &prices, &prev[t], &mut lambda, &mut out);
            assert_eq!(naive, out, "task plan must match allocate_task bitwise");
        }
    }

    #[test]
    fn stale_epoch_detected_after_mutation() {
        let mut p = diamond_problem();
        let settings = AllocationSettings::default();
        let plan = Plan::lower(&p, &settings);
        assert_eq!(plan.epoch(), p.epoch());
        p.set_resource_availability(ResourceId::new(0), 0.8).unwrap();
        assert_ne!(plan.epoch(), p.epoch(), "mutation must invalidate the plan");
        let rebuilt = Plan::lower(&p, &settings);
        assert_eq!(rebuilt.epoch(), p.epoch());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_allocation_is_bit_identical_to_sequential() {
        let p = diamond_problem();
        let prices = priced(&p);
        let settings = AllocationSettings::default();
        let plan = Plan::lower(&p, &settings);
        let prev = p.initial_allocation();
        let mut seq = plan.scratch();
        plan.flatten_into(&prev, seq.prev_mut());
        plan.allocate_seq(&prices, &mut seq);
        let mut par = plan.scratch();
        plan.flatten_into(&prev, par.prev_mut());
        plan.allocate_par(&prices, &mut par);
        assert_eq!(seq.lats(), par.lats());
    }
}
