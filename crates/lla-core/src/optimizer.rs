//! The LLA optimizer: the iteration loop tying allocation and pricing
//! together (§4.1).
//!
//! LLA solves the optimization problem iteratively. A single iteration
//! consists of **latency allocation** (each task controller predicts
//! optimal latencies at fixed prices) and **price computation** (each
//! resource and path adjusts its price at fixed latencies). The algorithm
//! iterates indefinitely; allocations may be enacted periodically or when
//! significant changes occur. [`Optimizer`] embodies this loop in a single
//! address space; the `lla-dist` crate runs the same steps as
//! message-passing actors.

use crate::allocation::AllocationSettings;
use crate::error::ModelError;
use crate::ids::{ResourceId, TaskId};
use crate::lagrangian::{kkt_report, KktReport};
use crate::plan::{Plan, PlanScratch};
use crate::prices::{PriceState, StepSizePolicy};
use crate::problem::{MembershipReport, Problem};
use crate::resource::Resource;
use crate::task::{Task, TaskBuilder};
use crate::trace::{Trace, TraceRecord};
use lla_telemetry::{
    Counter, DiagSample, Gauge, HealthSnapshot, Histogram, MetricsRegistry, Profiler,
    ResourceHealth, SpanRecorder, TraceCtx,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration of the [`Optimizer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Step-size policy for price updates (paper's best: adaptive, γ₀ = 1).
    pub step_policy: StepSizePolicy,
    /// Latency-allocation solver settings.
    pub allocation: AllocationSettings,
    /// Relative utility-change threshold for convergence detection (the
    /// paper's prototype stops refining below 1% = `0.01`).
    pub convergence_tol: f64,
    /// Number of consecutive below-threshold iterations required.
    pub convergence_window: usize,
    /// Feasibility tolerance used when declaring convergence.
    pub feasibility_tol: f64,
    /// Price-quiescence tolerance: convergence additionally requires the
    /// last price update's largest relative movement
    /// (`|Δprice|/(1+price)`) to fall below this. Guards against declaring
    /// convergence mid-way through a slow price drift whose effect on
    /// utility per iteration is tiny.
    pub price_tol: f64,
    /// Whether to record a full [`Trace`] (cheap; on by default).
    pub record_trace: bool,
    /// Maximum trace records to retain (`None` = unbounded). When set,
    /// the trace downsamples by stride doubling so long soaks keep a
    /// uniform, bounded history (see [`Trace::bounded`]).
    #[serde(default)]
    pub trace_capacity: Option<usize>,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            step_policy: StepSizePolicy::default(),
            allocation: AllocationSettings::default(),
            convergence_tol: 1e-6,
            convergence_window: 10,
            feasibility_tol: 1e-3,
            price_tol: 1e-4,
            record_trace: true,
            trace_capacity: None,
        }
    }
}

/// The latencies LLA has assigned to every subtask, plus derived views.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    lats: Vec<Vec<f64>>,
}

impl Allocation {
    /// Wraps raw per-task latency vectors.
    pub fn from_lats(lats: Vec<Vec<f64>>) -> Self {
        Allocation { lats }
    }

    /// `lats[t][s]`: latency of subtask `s` of task `t`, in milliseconds.
    pub fn lats(&self) -> &[Vec<f64>] {
        &self.lats
    }

    /// Latency of one subtask.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn latency(&self, task: usize, subtask: usize) -> f64 {
        self.lats[task][subtask]
    }

    /// The end-to-end (critical-path) latency of a task under this
    /// allocation.
    pub fn task_latency(&self, task: &Task) -> f64 {
        task.critical_path(&self.lats[task.id().index()]).1
    }

    /// The share each subtask of `task` demands under this allocation.
    pub fn shares(&self, problem: &Problem, task: &Task) -> Vec<f64> {
        let t = task.id().index();
        (0..task.len())
            .map(|s| problem.share_model(task.subtask_id(s)).share_for_latency(self.lats[t][s]))
            .collect()
    }

    /// Overwrites the held latencies in place, reusing the existing row
    /// buffers when shapes match instead of cloning a fresh matrix (hot in
    /// checkpoint/mirroring paths).
    pub fn set_lats(&mut self, lats: &[Vec<f64>]) {
        copy_nested(&mut self.lats, lats);
    }
}

/// Copies a nested latency matrix into `dst`, reusing every existing row
/// buffer whose capacity suffices (no allocation when shapes match).
pub(crate) fn copy_nested(dst: &mut Vec<Vec<f64>>, src: &[Vec<f64>]) {
    dst.truncate(src.len());
    let filled = dst.len();
    for (d, s) in dst.iter_mut().zip(src) {
        d.clone_from(s);
    }
    for s in &src[filled..] {
        dst.push(s.clone());
    }
}

/// Summary of one optimizer iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationReport {
    /// Iteration number (0-based, monotonically increasing over the
    /// optimizer's lifetime).
    pub iteration: usize,
    /// Total utility after the allocation step.
    pub utility: f64,
    /// `max_r (usage_r − B_r)`.
    pub max_resource_violation: f64,
    /// `max_p (path_latency/C − 1)`.
    pub max_path_violation: f64,
}

/// Outcome of [`Optimizer::run_to_convergence`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Whether the convergence criterion fired within the budget.
    pub converged: bool,
    /// Iterations actually executed in this call.
    pub iterations: usize,
    /// Utility at the last iteration.
    pub final_utility: f64,
    /// Whether the final allocation satisfies both constraint families.
    pub feasible: bool,
}

/// The LLA optimization loop over a [`Problem`].
///
/// See the crate-level documentation for a complete example. The optimizer
/// is deliberately *online*: [`Optimizer::step`] can be called forever, the
/// problem can be mutated between steps
/// ([`set_resource_availability`](Optimizer::set_resource_availability),
/// [`set_correction`](Optimizer::set_correction)), and the convergence
/// detector re-arms automatically after every change.
#[derive(Debug, Clone)]
pub struct Optimizer {
    problem: Problem,
    prices: PriceState,
    lats: Vec<Vec<f64>>,
    config: OptimizerConfig,
    trace: Trace,
    iteration: usize,
    below_tol: usize,
    last_utility: f64,
    /// Compiled iteration plan + scratch, lowered lazily and re-lowered
    /// whenever [`Problem::epoch`] moves past the plan's snapshot.
    plan: Option<Box<PlanCtx>>,
    /// `(max_resource_violation, max_path_violation)` of the latencies
    /// produced by the most recent [`step`](Optimizer::step); cleared by
    /// anything that changes latencies or the problem out-of-band so
    /// [`has_converged`](Optimizer::has_converged) can skip recomputing
    /// feasibility on the hot path.
    last_violations: Option<(f64, f64)>,
    /// Pre-registered metric handles (`None` until
    /// [`attach_telemetry`](Optimizer::attach_telemetry)); boxed so the
    /// common un-instrumented optimizer stays one pointer wider, not
    /// eleven handles wider.
    telemetry: Option<Box<OptimizerTelemetry>>,
    /// Causal span recorder (`None` until
    /// [`attach_spans`](Optimizer::attach_spans)); one span per iteration
    /// on the iteration-index clock.
    spans: Option<SpanRecorder>,
    /// Phase profiler (disabled by default — a disabled handle's scopes
    /// are branch-on-bool no-ops, see
    /// [`attach_profiler`](Optimizer::attach_profiler)).
    profiler: Profiler,
}

#[derive(Debug, Clone)]
struct PlanCtx {
    plan: Plan,
    scratch: PlanScratch,
}

/// Wall-clock bucket bounds for the per-phase step timings (seconds):
/// 1 µs … 1 s, one decade per bucket.
const PHASE_SECONDS_BOUNDS: [f64; 7] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0];

/// Metric handles for the optimizer hot path, registered once by
/// [`Optimizer::attach_telemetry`]. Updates are atomic-only; when the
/// backing registry is disabled the handles no-op and the per-phase
/// `Instant` reads are skipped entirely.
#[derive(Debug, Clone)]
pub struct OptimizerTelemetry {
    enabled: bool,
    iterations: Counter,
    plan_lowerings: Counter,
    gamma_doublings: Counter,
    phase_allocate: Histogram,
    phase_price: Histogram,
    phase_diagnostics: Histogram,
    utility: Gauge,
    resource_violation: Gauge,
    path_violation: Gauge,
    price_step: Gauge,
    /// `PriceState::gamma_doublings` value already mirrored into the
    /// counter; the next step adds only the delta.
    doublings_seen: u64,
}

impl OptimizerTelemetry {
    /// Registers the optimizer metric family on `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        OptimizerTelemetry {
            enabled: registry.is_enabled(),
            iterations: registry
                .counter("lla_opt_iterations_total", "optimizer iterations executed"),
            plan_lowerings: registry.counter(
                "lla_opt_plan_lowerings_total",
                "compiled-plan (re-)lowering epochs (membership/problem mutations)",
            ),
            gamma_doublings: registry.counter(
                "lla_opt_gamma_doublings_total",
                "adaptive step-size growth events across all duals",
            ),
            phase_allocate: registry.histogram(
                "lla_opt_phase_allocate_seconds",
                "wall-clock cost of the latency-allocation phase per iteration",
                &PHASE_SECONDS_BOUNDS,
            ),
            phase_price: registry.histogram(
                "lla_opt_phase_price_seconds",
                "wall-clock cost of the price-computation phase per iteration",
                &PHASE_SECONDS_BOUNDS,
            ),
            phase_diagnostics: registry.histogram(
                "lla_opt_phase_diagnostics_seconds",
                "wall-clock cost of utility/violation/trace bookkeeping per iteration",
                &PHASE_SECONDS_BOUNDS,
            ),
            utility: registry.gauge("lla_opt_utility", "total utility after the last iteration"),
            resource_violation: registry.gauge(
                "lla_opt_max_resource_violation",
                "max_r (usage_r - B_r) after the last iteration",
            ),
            path_violation: registry.gauge(
                "lla_opt_max_path_violation",
                "max_p (path_latency/C - 1) after the last iteration",
            ),
            price_step: registry.gauge(
                "lla_opt_last_max_rel_price_step",
                "largest relative price movement of the last update",
            ),
            doublings_seen: 0,
        }
    }
}

impl Optimizer {
    /// Creates an optimizer with the problem's
    /// [`initial_allocation`](Problem::initial_allocation) and zero prices.
    pub fn new(problem: Problem, config: OptimizerConfig) -> Self {
        let lats = problem.initial_allocation();
        let prices = PriceState::new(&problem, config.step_policy);
        let last_utility = problem.total_utility(&lats);
        Optimizer {
            problem,
            prices,
            lats,
            config,
            trace: Trace::bounded(config.trace_capacity),
            iteration: 0,
            below_tol: 0,
            last_utility,
            plan: None,
            last_violations: None,
            telemetry: None,
            spans: None,
            profiler: Profiler::disabled(),
        }
    }

    /// Registers the optimizer metric family on `registry` and starts
    /// publishing from every subsequent [`step`](Optimizer::step). With a
    /// disabled registry the handles no-op and phase timing is skipped,
    /// so the residual overhead is a few branches per iteration.
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry) {
        let mut tel = OptimizerTelemetry::new(registry);
        // Mirror only doublings that happen from now on.
        tel.doublings_seen = self.prices.gamma_doublings();
        self.telemetry = Some(Box::new(tel));
    }

    /// Stops publishing metrics (the registered family stays in the
    /// registry at its last values).
    pub fn detach_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// Starts recording one causal span per [`step`](Optimizer::step) on
    /// `recorder`, timed on the iteration-index clock (iteration `i`
    /// spans `[i, i+1]`). Purely passive — the recorder observes the
    /// iteration, it never influences it — and a disabled recorder costs
    /// one branch per step.
    pub fn attach_spans(&mut self, recorder: &SpanRecorder) {
        self.spans = Some(recorder.clone());
    }

    /// Stops recording spans (already-recorded spans stay in the
    /// recorder).
    pub fn detach_spans(&mut self) {
        self.spans = None;
    }

    /// Starts charging per-kernel wall time and call counts to
    /// `profiler`: every [`step`](Optimizer::step) opens a `step` scope
    /// with `allocate` / `price` / `lagrangian` / `trace` children, plan
    /// (re-)lowering a `plan_lower` scope, and [`kkt`](Optimizer::kkt) a
    /// `kkt` scope. Purely passive — it never touches a float the
    /// algorithm uses — and a disabled profiler costs one branch per
    /// scope.
    pub fn attach_profiler(&mut self, profiler: &Profiler) {
        self.profiler = profiler.clone();
    }

    /// Stops profiling (recorded scopes stay in the profiler).
    pub fn detach_profiler(&mut self) {
        self.profiler = Profiler::disabled();
    }

    /// The problem being optimized.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The current dual variables.
    pub fn prices(&self) -> &PriceState {
        &self.prices
    }

    /// The current allocation.
    pub fn allocation(&self) -> Allocation {
        Allocation::from_lats(self.lats.clone())
    }

    /// The current total utility.
    pub fn utility(&self) -> f64 {
        self.problem.total_utility(&self.lats)
    }

    /// The recorded trace (empty when `record_trace` is off).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Total iterations executed over the optimizer's lifetime.
    pub fn iterations(&self) -> usize {
        self.iteration
    }

    /// Updates a resource's availability `B_r` mid-run; LLA adapts.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownResourceId`] or
    /// [`ModelError::InvalidParameter`] (non-finite or out-of-`[0, 1]`
    /// availability); the optimizer state is untouched on error.
    pub fn set_resource_availability(
        &mut self,
        r: crate::ids::ResourceId,
        availability: f64,
    ) -> Result<(), ModelError> {
        self.problem.set_resource_availability(r, availability)?;
        self.rearm();
        Ok(())
    }

    /// Updates a subtask's additive latency error correction `ê` (§6.3).
    pub fn set_correction(&mut self, s: crate::ids::SubtaskId, correction: f64) {
        self.problem.set_correction(s, correction);
        self.rearm();
    }

    /// Updates a subtask's multiplicative demand correction (the
    /// demand-scaling alternative to §6.3's additive model).
    pub fn set_demand_scale(&mut self, s: crate::ids::SubtaskId, scale: f64) {
        self.problem.set_demand_scale(s, scale);
        self.rearm();
    }

    /// Re-arms the convergence detector (call after any external change to
    /// the problem).
    pub fn rearm(&mut self) {
        self.below_tol = 0;
        self.last_violations = None;
    }

    /// Admits a task mid-run with warm-started duals: incumbents keep
    /// their prices and latencies; the newcomer starts from the problem's
    /// initial allocation and zero duals. Returns the new task's id.
    ///
    /// # Errors
    ///
    /// Any error from [`Problem::add_task`]; the optimizer is unchanged on
    /// error.
    pub fn add_task(&mut self, builder: &TaskBuilder) -> Result<TaskId, ModelError> {
        let report = self.problem.add_task(builder)?;
        let id = report.added_task.expect("add_task reports the new id");
        self.prices = self.prices.remap(&self.problem, &report);
        self.lats.push(self.problem.initial_task_allocation(id));
        self.finish_membership_change();
        Ok(id)
    }

    /// Discards the dual state and restarts every price (and step size)
    /// from the initial point, keeping the current allocation.
    ///
    /// Warm duals are normally the point of online membership — but duals
    /// that integrated a *sustained-infeasible* gradient are poisoned:
    /// they grow without bound while the overload lasts, and once load is
    /// shed the re-bound constraints leave them decaying at a near-zero
    /// rate (`γ·slack` with `slack → 0`), parking the allocation far from
    /// the optimum indefinitely. Overload shedding therefore resets the
    /// prices (see [`governed_step`](crate::overload::governed_step));
    /// re-convergence is then bounded by the cold-start rate.
    pub fn reset_prices(&mut self) {
        self.prices = PriceState::new(&self.problem, self.config.step_policy);
    }

    /// Removes a task mid-run; survivors keep warm duals and latencies
    /// under their re-densified ids. Returns the id-remap report.
    ///
    /// # Errors
    ///
    /// Any error from [`Problem::remove_task`]; the optimizer is unchanged
    /// on error.
    pub fn remove_task(&mut self, id: TaskId) -> Result<MembershipReport, ModelError> {
        let report = self.problem.remove_task(id)?;
        self.prices = self.prices.remap(&self.problem, &report);
        let mut lats = vec![Vec::new(); self.problem.tasks().len()];
        for (old, m) in report.task_map.iter().enumerate() {
            if let Some(new) = *m {
                lats[new] = std::mem::take(&mut self.lats[old]);
            }
        }
        self.lats = lats;
        self.finish_membership_change();
        Ok(report)
    }

    /// Adds a resource mid-run (it starts unpriced and empty). Returns the
    /// new resource's id.
    ///
    /// # Errors
    ///
    /// Any error from [`Problem::add_resource`].
    pub fn add_resource(&mut self, resource: Resource) -> Result<ResourceId, ModelError> {
        let report = self.problem.add_resource(resource)?;
        let id = report.added_resource.expect("add_resource reports the new id");
        self.prices = self.prices.remap(&self.problem, &report);
        self.finish_membership_change();
        Ok(id)
    }

    /// Retires a (drained) resource mid-run; surviving resources keep warm
    /// duals under their re-densified ids. Returns the id-remap report.
    ///
    /// # Errors
    ///
    /// Any error from [`Problem::retire_resource`].
    pub fn retire_resource(&mut self, id: ResourceId) -> Result<MembershipReport, ModelError> {
        let report = self.problem.retire_resource(id)?;
        self.prices = self.prices.remap(&self.problem, &report);
        self.finish_membership_change();
        Ok(report)
    }

    /// Moves every subtask on `from` over to `to` (drain before
    /// retirement); share models are rebuilt with the destination lag.
    /// Returns how many subtasks moved.
    ///
    /// # Errors
    ///
    /// Any error from [`Problem::reassign_resource`].
    pub fn reassign_resource(
        &mut self,
        from: ResourceId,
        to: ResourceId,
    ) -> Result<usize, ModelError> {
        let moved = self.problem.reassign_resource(from, to)?;
        if moved > 0 {
            self.rearm();
        }
        Ok(moved)
    }

    fn finish_membership_change(&mut self) {
        self.last_utility = self.problem.total_utility(&self.lats);
        self.rearm();
    }

    /// Lowers (or re-lowers) the iteration plan when absent or stale.
    fn ensure_plan(&mut self) {
        let stale = match &self.plan {
            Some(ctx) => ctx.plan.epoch() != self.problem.epoch(),
            None => true,
        };
        if stale {
            let _prof = self.profiler.scope("plan_lower");
            let plan = Plan::lower(&self.problem, &self.config.allocation);
            match &mut self.plan {
                // Re-lowering reuses the existing scratch pool: membership
                // epochs resize the buffers in place instead of
                // reallocating all seven per epoch.
                Some(ctx) => {
                    ctx.scratch.resize_for(&plan);
                    ctx.plan = plan;
                }
                None => {
                    let scratch = plan.scratch();
                    self.plan = Some(Box::new(PlanCtx { plan, scratch }));
                }
            }
            if let Some(tel) = &self.telemetry {
                tel.plan_lowerings.inc();
            }
        }
    }

    /// Executes one LLA iteration: latency allocation at current prices,
    /// then price computation at the new latencies.
    ///
    /// Runs over the compiled [`Plan`] (lowered lazily, re-lowered when the
    /// problem's mutation epoch moves), so the hot loop touches only flat
    /// arrays and reusable scratch — zero per-iteration heap allocation —
    /// while remaining bit-identical to the naive nested evaluation.
    pub fn step(&mut self) -> IterationReport {
        self.ensure_plan();
        let _step_prof = self.profiler.scope("step");
        // Phase timing only when telemetry is attached to a *live*
        // registry; the plain path performs no clock reads at all.
        let timed = self.telemetry.as_ref().is_some_and(|t| t.enabled);
        let mut ctx = self.plan.take().expect("ensure_plan always installs a plan");
        let PlanCtx { plan, scratch } = &mut *ctx;
        let t0 = timed.then(Instant::now);
        {
            let _prof = self.profiler.scope("allocate");
            plan.flatten_into(&self.lats, scratch.prev_mut());
            plan.allocate_into(&self.prices, scratch);
            plan.unflatten_into(scratch.lats(), &mut self.lats);
        }
        let t1 = timed.then(Instant::now);
        {
            let _prof = self.profiler.scope("price");
            plan.price_update(&mut self.prices, scratch);
        }
        let t2 = timed.then(Instant::now);

        let lagr_prof = self.profiler.scope("lagrangian");
        let utility = plan.total_utility(scratch.lats());
        let max_resource_violation = plan.max_resource_violation(scratch.usage());
        let max_path_violation = plan.max_path_violation(scratch.path_lat());
        drop(lagr_prof);
        let _trace_prof = self.profiler.scope("trace");
        let report = IterationReport {
            iteration: self.iteration,
            utility,
            max_resource_violation,
            max_path_violation,
        };

        if self.config.record_trace {
            self.trace.push(TraceRecord {
                iteration: self.iteration,
                utility,
                resource_usage: scratch.usage().to_vec(),
                critical_path_ratio: plan.critical_path_ratios(scratch.path_lat()),
            });
        }
        self.plan = Some(ctx);
        self.last_violations = Some((max_resource_violation, max_path_violation));

        let delta = (utility - self.last_utility).abs();
        if delta <= self.config.convergence_tol * utility.abs().max(1.0) {
            self.below_tol += 1;
        } else {
            self.below_tol = 0;
        }
        self.last_utility = utility;
        self.iteration += 1;

        let doublings_total = self.prices.gamma_doublings();
        let price_step = self.prices.last_max_rel_step();
        if let Some(tel) = self.telemetry.as_deref_mut() {
            tel.iterations.inc();
            tel.gamma_doublings.add(doublings_total - tel.doublings_seen);
            tel.doublings_seen = doublings_total;
            tel.utility.set(utility);
            tel.resource_violation.set(max_resource_violation);
            tel.path_violation.set(max_path_violation);
            tel.price_step.set(price_step);
            if let (Some(t0), Some(t1), Some(t2)) = (t0, t1, t2) {
                let t3 = Instant::now();
                tel.phase_allocate.observe((t1 - t0).as_secs_f64());
                tel.phase_price.observe((t2 - t1).as_secs_f64());
                tel.phase_diagnostics.observe((t3 - t2).as_secs_f64());
            }
        }
        if let Some(spans) = &self.spans {
            // Iteration i occupies [i, i+1] on the iteration-index clock;
            // report.iteration is this step's index (pre-increment).
            spans.span_with(
                "iteration",
                "optimizer",
                report.iteration as f64,
                report.iteration as f64 + 1.0,
                TraceCtx::NONE,
                vec![("utility", utility.into()), ("price_step", price_step.into())],
            );
        }
        report
    }

    /// Whether the convergence criterion currently holds: utility stable
    /// for `convergence_window` iterations *and* the allocation feasible.
    pub fn has_converged(&self) -> bool {
        if self.below_tol < self.config.convergence_window
            || self.prices.last_max_rel_step() > self.config.price_tol
        {
            return false;
        }
        match self.last_violations {
            // Violations cached by the last step: skip the full feasibility
            // walk (the values are identical by construction).
            Some((res, path)) => {
                res <= self.config.feasibility_tol && path <= self.config.feasibility_tol
            }
            None => self.problem.is_feasible(&self.lats, self.config.feasibility_tol),
        }
    }

    /// Runs exactly `iters` iterations (batch mode).
    pub fn run(&mut self, iters: usize) -> Vec<IterationReport> {
        (0..iters).map(|_| self.step()).collect()
    }

    /// Runs until convergence or until `max_iters` iterations elapse.
    pub fn run_to_convergence(&mut self, max_iters: usize) -> RunOutcome {
        let mut executed = 0;
        while executed < max_iters {
            self.step();
            executed += 1;
            if self.has_converged() {
                return RunOutcome {
                    converged: true,
                    iterations: executed,
                    final_utility: self.last_utility,
                    feasible: true,
                };
            }
        }
        RunOutcome {
            converged: false,
            iterations: executed,
            final_utility: self.last_utility,
            feasible: self.problem.is_feasible(&self.lats, self.config.feasibility_tol),
        }
    }

    /// KKT optimality diagnostics at the current point.
    pub fn kkt(&self) -> KktReport {
        let _prof = self.profiler.scope("kkt");
        kkt_report(&self.problem, &self.lats, &self.prices, &self.config.allocation, 1e-9)
    }

    /// A point-in-time [`HealthSnapshot`]: convergence + feasibility
    /// state, the KKT residuals of [`kkt`](Optimizer::kkt), the worst
    /// constraint-violation factor over resources (`usage/B_r`) and paths
    /// (`latency/C_i`), and per-resource price + usage.
    ///
    /// The shed/membership/failover counts are zero here — a centralized
    /// optimizer has no such events; deployment layers (`lla-dist`,
    /// `lla-bench`) overwrite those fields from their own counters.
    pub fn health_snapshot(&self) -> HealthSnapshot {
        let kkt = self.kkt();
        let feasible = match self.last_violations {
            Some((res, path)) => {
                res <= self.config.feasibility_tol && path <= self.config.feasibility_tol
            }
            None => self.problem.is_feasible(&self.lats, self.config.feasibility_tol),
        };
        let worst = self.worst_violation_factor();
        let resources = self
            .problem
            .resources()
            .iter()
            .map(|res| ResourceHealth {
                name: res.name().to_owned(),
                price: self.prices.mu(res.id().index()),
                usage: self.problem.resource_usage(res.id(), &self.lats),
                availability: res.availability(),
            })
            .collect();
        HealthSnapshot {
            converged: self.has_converged(),
            feasible,
            iteration: self.iteration as u64,
            utility: self.problem.total_utility(&self.lats),
            max_stationarity_residual: kkt.max_stationarity_residual,
            max_resource_violation: kkt.max_resource_violation,
            max_path_violation: kkt.max_path_violation,
            max_complementary_slackness: kkt.max_complementary_slackness,
            worst_violation_factor: worst,
            resources,
            shed_count: 0,
            membership_changes: 0,
            failovers: 0,
        }
    }

    /// The worst constraint-violation *factor* at the current point:
    /// `max` over resources of `usage/B_r` and over tasks of
    /// `critical_path/C_i` (the deadline constraint is per *path*, so the
    /// longest path is the binding one). ≤ 1 means every constraint
    /// holds; a zero-availability resource with nonzero usage reports
    /// `∞`.
    pub fn worst_violation_factor(&self) -> f64 {
        let mut worst = 0.0f64;
        for res in self.problem.resources() {
            let usage = self.problem.resource_usage(res.id(), &self.lats);
            let availability = res.availability();
            worst =
                worst.max(if availability > 0.0 { usage / availability } else { f64::INFINITY });
        }
        for task in self.problem.tasks() {
            let (_, cp) = task.graph().critical_path(&self.lats[task.id().index()]);
            worst = worst.max(cp / task.critical_time());
        }
        worst
    }

    /// One [`DiagSample`] for the convergence-diagnostics engine
    /// (`lla_telemetry::DiagnosticsEngine`): iteration counter, utility,
    /// worst violation factor, cumulative gamma doublings, last relative
    /// price step, and the per-resource prices. `frozen_agents` is zero
    /// here — a centralized optimizer has no staleness freezes; the
    /// distributed facade overwrites that field from its own counters.
    pub fn diag_sample(&self) -> DiagSample {
        DiagSample {
            iteration: self.iteration as u64,
            utility: self.problem.total_utility(&self.lats),
            worst_violation_factor: self.worst_violation_factor(),
            gamma_doublings: self.prices.gamma_doublings(),
            max_rel_price_step: self.prices.last_max_rel_step(),
            frozen_agents: 0,
            prices: self.prices.mus().to_vec(),
        }
    }

    /// Replaces the current latencies (used by the distributed runtime to
    /// mirror controller state into a local optimizer).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs from the problem's.
    pub fn set_lats(&mut self, lats: Vec<Vec<f64>>) {
        assert_eq!(lats.len(), self.problem.tasks().len());
        for (t, task) in self.problem.tasks().iter().enumerate() {
            assert_eq!(lats[t].len(), task.len());
        }
        self.lats = lats;
        self.last_violations = None;
    }

    /// Overwrites the current latencies in place from a borrowed matrix,
    /// reusing the existing row buffers — the allocation-free counterpart
    /// of [`set_lats`](Self::set_lats) for per-round mirroring.
    ///
    /// # Panics
    ///
    /// Panics if the shape differs from the problem's.
    pub fn copy_lats_from(&mut self, lats: &[Vec<f64>]) {
        assert_eq!(lats.len(), self.problem.tasks().len());
        for (t, task) in self.problem.tasks().iter().enumerate() {
            assert_eq!(lats[t].len(), task.len());
        }
        for (dst, src) in self.lats.iter_mut().zip(lats) {
            dst.clone_from(src);
        }
        self.last_violations = None;
    }

    /// Exports the optimizer's mutable state (prices, latencies, iteration
    /// counter) for failover or migration: a replacement optimizer created
    /// over an equal problem and restored from this state continues the
    /// run exactly where this one left off.
    pub fn export_state(&self) -> OptimizerState {
        OptimizerState {
            prices: self.prices.clone(),
            lats: self.lats.clone(),
            iteration: self.iteration,
            epoch: None,
        }
    }

    /// Overwrites `state` with the optimizer's current mutable state,
    /// reusing its existing buffers — the allocation-free counterpart of
    /// [`export_state`](Self::export_state) for hot checkpoint loops.
    pub fn export_state_into(&self, state: &mut OptimizerState) {
        state.assign_parts(&self.prices, &self.lats, self.iteration);
    }

    /// Restores state captured with [`export_state`](Self::export_state).
    ///
    /// The trace and convergence window restart empty (they are
    /// diagnostics, not algorithm state).
    ///
    /// # Panics
    ///
    /// Panics if the state's latency shape does not match the problem.
    pub fn import_state(&mut self, state: OptimizerState) {
        if let Err(e) = self.try_import_state(state, None) {
            panic!("state shape mismatch: {e}");
        }
    }

    /// Fallible counterpart of [`import_state`](Self::import_state):
    /// validates the state's latency shape against the problem and — when
    /// `expected_epoch` is given — the topology epoch the state was
    /// captured under against the importer's. A stale checkpoint (taken
    /// before a membership change) carries duals indexed for a different
    /// task/resource layout; silently restoring them poisons the price
    /// iteration, so callers get a typed error and the optimizer is left
    /// untouched.
    ///
    /// A state with no epoch tag ([`OptimizerState::epoch`] is `None`)
    /// skips the epoch check — pre-epoch checkpoints validate by shape
    /// alone.
    ///
    /// # Errors
    ///
    /// [`StateImportError::EpochMismatch`] when both epochs are known and
    /// differ; [`StateImportError::TaskCountMismatch`] /
    /// [`StateImportError::RowShapeMismatch`] when the latency matrix does
    /// not match the problem.
    pub fn try_import_state(
        &mut self,
        state: OptimizerState,
        expected_epoch: Option<u64>,
    ) -> Result<(), StateImportError> {
        if let (Some(expected), Some(found)) = (expected_epoch, state.epoch) {
            if expected != found {
                return Err(StateImportError::EpochMismatch { expected, found });
            }
        }
        if state.lats.len() != self.problem.tasks().len() {
            return Err(StateImportError::TaskCountMismatch {
                expected: self.problem.tasks().len(),
                found: state.lats.len(),
            });
        }
        for (t, task) in self.problem.tasks().iter().enumerate() {
            if state.lats[t].len() != task.len() {
                return Err(StateImportError::RowShapeMismatch {
                    task: t,
                    expected: task.len(),
                    found: state.lats[t].len(),
                });
            }
        }
        self.last_utility = self.problem.total_utility(&state.lats);
        self.prices = state.prices;
        self.lats = state.lats;
        self.iteration = state.iteration;
        self.below_tol = 0;
        self.last_violations = None;
        Ok(())
    }
}

/// Why a checkpointed [`OptimizerState`] was rejected on import: the
/// typed alternative to the legacy `import_state` panic, so failover
/// paths can fall back to a fresh start instead of restoring bad duals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateImportError {
    /// The checkpoint was captured under a different topology epoch than
    /// the importer runs at — its duals index a different membership.
    EpochMismatch {
        /// The importer's current topology epoch.
        expected: u64,
        /// The epoch the checkpoint was captured under.
        found: u64,
    },
    /// The state's latency matrix has a different task count than the
    /// problem.
    TaskCountMismatch {
        /// Tasks in the importing problem.
        expected: usize,
        /// Task rows in the checkpoint.
        found: usize,
    },
    /// One task's latency row has the wrong subtask count.
    RowShapeMismatch {
        /// The offending task index.
        task: usize,
        /// Subtasks in the importing problem's task.
        expected: usize,
        /// Entries in the checkpoint row.
        found: usize,
    },
    /// Per-resource state in the checkpoint covers a different resource
    /// count than the problem.
    ResourceCountMismatch {
        /// Resources in the importing problem.
        expected: usize,
        /// Resources covered by the checkpoint.
        found: usize,
    },
}

impl std::fmt::Display for StateImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            StateImportError::EpochMismatch { expected, found } => {
                write!(f, "checkpoint epoch {found} does not match topology epoch {expected}")
            }
            StateImportError::TaskCountMismatch { expected, found } => {
                write!(f, "checkpoint has {found} task rows, problem has {expected}")
            }
            StateImportError::RowShapeMismatch { task, expected, found } => {
                write!(f, "task {task} row has {found} entries, problem expects {expected}")
            }
            StateImportError::ResourceCountMismatch { expected, found } => {
                write!(f, "checkpoint covers {found} resources, problem has {expected}")
            }
        }
    }
}

impl std::error::Error for StateImportError {}

/// The mutable state of an [`Optimizer`], as captured by
/// [`Optimizer::export_state`]. The problem specification itself travels
/// separately (it is configuration, not state).
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerState {
    prices: PriceState,
    lats: Vec<Vec<f64>>,
    iteration: usize,
    /// Topology epoch the state was captured under, when the capturing
    /// driver tracks one (`None` for plain centralized exports).
    epoch: Option<u64>,
}

impl OptimizerState {
    /// Assembles a state from its parts. Lets other drivers of the LLA
    /// iteration — e.g. a distributed task controller writing a
    /// checkpoint — capture their state in the same format the
    /// [`Optimizer`] exports, so one restore path serves both.
    pub fn from_parts(prices: PriceState, lats: Vec<Vec<f64>>, iteration: usize) -> Self {
        OptimizerState { prices, lats, iteration, epoch: None }
    }

    /// Tags the state with the topology epoch it was captured under, so
    /// [`Optimizer::try_import_state`] can reject stale checkpoints.
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Updates (or clears) the topology-epoch tag in place.
    pub fn set_epoch(&mut self, epoch: Option<u64>) {
        self.epoch = epoch;
    }

    /// The topology-epoch tag, if the capturing driver set one.
    pub fn epoch(&self) -> Option<u64> {
        self.epoch
    }

    /// Overwrites this state in place from borrowed parts, reusing the
    /// existing price and latency buffers. Checkpoint paths that export
    /// every round (e.g. the distributed task controllers) keep one state
    /// buffer alive and refresh it through this instead of rebuilding a
    /// matrix per export.
    pub fn assign_parts(&mut self, prices: &PriceState, lats: &[Vec<f64>], iteration: usize) {
        self.prices.clone_from(prices);
        copy_nested(&mut self.lats, lats);
        self.iteration = iteration;
    }

    /// The captured price state.
    pub fn prices(&self) -> &PriceState {
        &self.prices
    }

    /// The captured latency assignment.
    pub fn lats(&self) -> &[Vec<f64>] {
        &self.lats
    }

    /// The captured iteration counter.
    pub fn iteration(&self) -> usize {
        self.iteration
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ResourceId, TaskId};
    use crate::resource::{Resource, ResourceKind};
    use crate::task::TaskBuilder;
    use crate::utility::UtilityFn;

    /// Two tasks sharing two CPUs, comfortably schedulable.
    fn small_problem() -> Problem {
        let resources = vec![
            Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
            Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
        ];
        let mut tasks = Vec::new();
        for (i, c) in [(0usize, 40.0), (1usize, 60.0)] {
            let mut b = TaskBuilder::new(format!("t{i}"));
            let a = b.subtask("a", ResourceId::new(0), 2.0);
            let d = b.subtask("b", ResourceId::new(1), 3.0);
            b.edge(a, d).unwrap();
            b.critical_time(c).utility(UtilityFn::linear_for_deadline(2.0, c));
            tasks.push(b.build(TaskId::new(i)).unwrap());
        }
        Problem::new(resources, tasks).unwrap()
    }

    fn config() -> OptimizerConfig {
        OptimizerConfig {
            allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn converges_on_schedulable_problem() {
        let mut opt = Optimizer::new(small_problem(), config());
        let outcome = opt.run_to_convergence(5_000);
        assert!(outcome.converged, "LLA must converge on a schedulable workload");
        assert!(outcome.feasible);
    }

    #[test]
    fn telemetry_publishes_iterations_and_health_gauges() {
        let registry = MetricsRegistry::new();
        let mut opt = Optimizer::new(small_problem(), config());
        opt.attach_telemetry(&registry);
        opt.run(50);
        let text = registry.prometheus_text();
        assert!(text.contains("lla_opt_iterations_total 50"), "missing iteration count:\n{text}");
        // The plan lowered exactly once (no membership churn).
        assert!(text.contains("lla_opt_plan_lowerings_total 1"));
        // Gauges mirror the optimizer's own view.
        let g = registry.gauge("lla_opt_utility", "");
        assert!((g.get() - opt.utility()).abs() < 1e-12);
        // Phase histograms saw one observation per iteration.
        let h = registry.histogram("lla_opt_phase_allocate_seconds", "", &PHASE_SECONDS_BOUNDS);
        assert_eq!(h.count(), 50);
    }

    #[test]
    fn telemetry_counts_plan_relowering_on_membership_change() {
        let registry = MetricsRegistry::new();
        let mut opt = Optimizer::new(small_problem(), config());
        opt.attach_telemetry(&registry);
        opt.run(5);
        let mut b = TaskBuilder::new("late");
        b.subtask("s", ResourceId::new(0), 1.0);
        b.critical_time(50.0).utility(UtilityFn::linear_for_deadline(1.0, 50.0));
        opt.add_task(&b).unwrap();
        opt.run(5);
        let c = registry.counter("lla_opt_plan_lowerings_total", "");
        assert_eq!(c.get(), 2, "initial lowering + one re-lowering after the join");
    }

    #[test]
    fn telemetry_attached_to_disabled_registry_records_nothing() {
        let registry = MetricsRegistry::disabled();
        let mut opt = Optimizer::new(small_problem(), config());
        opt.attach_telemetry(&registry);
        let mut plain = Optimizer::new(small_problem(), config());
        opt.run(100);
        plain.run(100);
        // Bit-identical to the un-instrumented run.
        assert_eq!(opt.utility(), plain.utility());
        assert_eq!(registry.prometheus_text(), "");
    }

    #[test]
    fn span_recording_is_passive_and_one_span_per_step() {
        let rec = SpanRecorder::recording();
        let mut opt = Optimizer::new(small_problem(), config());
        opt.attach_spans(&rec);
        let mut plain = Optimizer::new(small_problem(), config());
        opt.run(40);
        plain.run(40);
        assert_eq!(opt.utility(), plain.utility(), "spans must be bit-passive");
        assert_eq!(rec.len(), 40);
        let spans = rec.snapshot();
        assert_eq!(spans[7].start, 7.0);
        assert_eq!(spans[7].end, 8.0);
        assert_eq!(spans[7].name, "iteration");
        opt.detach_spans();
        opt.run(5);
        assert_eq!(rec.len(), 40, "detached optimizer records nothing");
    }

    #[test]
    fn diag_sample_mirrors_optimizer_state() {
        let mut opt = Optimizer::new(small_problem(), config());
        opt.run(50);
        let s = opt.diag_sample();
        assert_eq!(s.iteration, 50);
        assert_eq!(s.utility, opt.utility());
        assert_eq!(s.gamma_doublings, opt.prices().gamma_doublings());
        assert_eq!(s.max_rel_price_step, opt.prices().last_max_rel_step());
        assert_eq!(s.prices, opt.prices().mus());
        assert_eq!(s.frozen_agents, 0);
        assert_eq!(s.worst_violation_factor, opt.worst_violation_factor());
        // The factor agrees with the health snapshot's.
        assert_eq!(s.worst_violation_factor, opt.health_snapshot().worst_violation_factor);
    }

    #[test]
    fn trace_capacity_bounds_the_trace() {
        let cfg = OptimizerConfig { trace_capacity: Some(32), ..config() };
        let mut opt = Optimizer::new(small_problem(), cfg);
        opt.run(500);
        assert!(opt.trace().len() <= 32, "trace grew to {}", opt.trace().len());
        assert_eq!(opt.trace().seen(), 500);
        // The retained records still span the whole run.
        assert_eq!(opt.trace().records()[0].iteration, 0);
        assert!(opt.trace().records().last().unwrap().iteration >= 400);
    }

    #[test]
    fn health_snapshot_matches_kkt_and_convergence_state() {
        let mut opt = Optimizer::new(small_problem(), config());
        let outcome = opt.run_to_convergence(5_000);
        assert!(outcome.converged);
        let h = opt.health_snapshot();
        let kkt = opt.kkt();
        assert!(h.converged && h.feasible && h.healthy());
        assert_eq!(h.max_stationarity_residual, kkt.max_stationarity_residual);
        assert_eq!(h.max_resource_violation, kkt.max_resource_violation);
        assert_eq!(h.max_path_violation, kkt.max_path_violation);
        assert_eq!(h.max_complementary_slackness, kkt.max_complementary_slackness);
        assert_eq!(h.resources.len(), 2);
        assert!(h.worst_violation_factor <= 1.0 + 1e-6);
        for (r, res) in h.resources.iter().zip(opt.problem().resources()) {
            assert_eq!(r.availability, res.availability());
            assert!(r.usage <= r.availability + 1e-6);
        }
    }

    #[test]
    fn converged_allocation_is_feasible_and_kkt_clean() {
        let mut opt = Optimizer::new(small_problem(), config());
        let outcome = opt.run_to_convergence(5_000);
        assert!(outcome.converged);
        let kkt = opt.kkt();
        assert!(kkt.max_resource_violation <= 1e-6, "resource violated: {kkt:?}");
        assert!(kkt.max_path_violation <= 1e-6, "path violated: {kkt:?}");
        // Complementary slackness is approximate at finite step sizes.
        assert!(kkt.max_complementary_slackness < 0.5, "slackness too large: {kkt:?}");
    }

    #[test]
    fn utility_improves_over_initial() {
        let mut opt = Optimizer::new(small_problem(), config());
        let initial = opt.utility();
        opt.run_to_convergence(5_000);
        assert!(
            opt.utility() >= initial - 1e-9,
            "optimization should not end below the initial utility"
        );
    }

    #[test]
    fn trace_is_recorded() {
        let mut opt = Optimizer::new(small_problem(), config());
        opt.run(25);
        assert_eq!(opt.trace().len(), 25);
        assert_eq!(opt.iterations(), 25);
    }

    #[test]
    fn trace_can_be_disabled() {
        let mut cfg = config();
        cfg.record_trace = false;
        let mut opt = Optimizer::new(small_problem(), cfg);
        opt.run(10);
        assert!(opt.trace().is_empty());
    }

    #[test]
    fn availability_drop_reconverges_to_lower_utility() {
        let mut opt = Optimizer::new(small_problem(), config());
        let first = opt.run_to_convergence(5_000);
        assert!(first.converged);
        let u_before = opt.utility();
        // Halve resource 0's availability; re-converge.
        opt.set_resource_availability(ResourceId::new(0), 0.5).unwrap();
        assert!(!opt.has_converged(), "detector must re-arm after a change");
        let second = opt.run_to_convergence(10_000);
        assert!(second.converged, "must re-converge after availability change");
        assert!(
            opt.utility() <= u_before + 1e-6,
            "less resource cannot increase utility: {} > {u_before}",
            opt.utility()
        );
    }

    #[test]
    fn correction_shifts_allocation() {
        let mut opt = Optimizer::new(small_problem(), config());
        opt.run_to_convergence(5_000);
        let lat_before = opt.allocation().latency(0, 0);
        // Model over-predicted by 1ms: corrected model reaches the same
        // latency with less share, so the optimizer can lower latencies.
        let sid = opt.problem().tasks()[0].subtask_id(0);
        opt.set_correction(sid, -1.0);
        opt.run_to_convergence(5_000);
        let lat_after = opt.allocation().latency(0, 0);
        assert!(
            lat_after < lat_before,
            "negative correction should reduce assigned latency ({lat_after} !< {lat_before})"
        );
    }

    #[test]
    fn allocation_views() {
        let mut opt = Optimizer::new(small_problem(), config());
        opt.run_to_convergence(5_000);
        let alloc = opt.allocation();
        let task = &opt.problem().tasks()[0];
        let shares = alloc.shares(opt.problem(), task);
        assert_eq!(shares.len(), 2);
        for (s, &lat) in shares.iter().zip(&alloc.lats()[0]) {
            assert!(*s > 0.0 && *s <= 1.0, "share {s} out of range");
            assert!(lat > 0.0);
        }
        assert!(alloc.task_latency(task) <= task.critical_time() + 1e-6);
    }

    #[test]
    fn set_lats_validates_shape() {
        let mut opt = Optimizer::new(small_problem(), config());
        opt.set_lats(vec![vec![5.0, 5.0], vec![5.0, 5.0]]);
        assert_eq!(opt.allocation().latency(1, 1), 5.0);
    }

    #[test]
    #[should_panic]
    fn set_lats_rejects_bad_shape() {
        let mut opt = Optimizer::new(small_problem(), config());
        opt.set_lats(vec![vec![5.0]]);
    }

    #[test]
    fn failover_continues_exactly() {
        // Run half the iterations, export, import into a fresh optimizer,
        // and verify the trajectories coincide step by step.
        let mut primary = Optimizer::new(small_problem(), config());
        primary.run(120);
        let state = primary.export_state();

        let mut replacement = Optimizer::new(small_problem(), config());
        replacement.import_state(state);
        assert_eq!(replacement.iterations(), 120);

        for i in 0..200 {
            let a = primary.step();
            let b = replacement.step();
            assert!(
                (a.utility - b.utility).abs() < 1e-12,
                "failover diverged at step {i}: {} vs {}",
                a.utility,
                b.utility
            );
        }
    }

    #[test]
    fn warm_add_task_keeps_incumbent_duals_and_reconverges() {
        let mut opt = Optimizer::new(small_problem(), config());
        assert!(opt.run_to_convergence(5_000).converged);
        let mu_before = opt.prices().mus().to_vec();

        let mut b = TaskBuilder::new("late-joiner");
        b.subtask("solo", ResourceId::new(0), 1.0);
        b.critical_time(50.0).utility(UtilityFn::linear_for_deadline(2.0, 50.0));
        let id = opt.add_task(&b).unwrap();
        assert_eq!(id, TaskId::new(2));
        assert_eq!(opt.prices().mus(), &mu_before[..], "incumbent duals must carry over");
        assert!(!opt.has_converged(), "membership change must re-arm the detector");
        assert!(opt.run_to_convergence(10_000).converged, "warm restart must re-converge");
        assert_eq!(opt.allocation().lats().len(), 3);
    }

    #[test]
    fn warm_remove_task_shifts_survivor_state() {
        let mut opt = Optimizer::new(small_problem(), config());
        assert!(opt.run_to_convergence(5_000).converged);
        let lat1 = opt.allocation().lats()[1].clone();
        let report = opt.remove_task(TaskId::new(0)).unwrap();
        assert_eq!(report.task_map, vec![None, Some(0)]);
        assert_eq!(opt.allocation().lats()[0], lat1, "survivor keeps its latencies");
        assert!(opt.run_to_convergence(10_000).converged);
    }

    #[test]
    fn warm_matches_cold_solve_within_tolerance() {
        // Converge, churn a task in, re-converge warm; a cold solve of the
        // final problem must land on (essentially) the same utility.
        let mut warm = Optimizer::new(small_problem(), config());
        warm.run_to_convergence(5_000);
        let mut b = TaskBuilder::new("late");
        b.subtask("s", ResourceId::new(1), 2.0);
        b.critical_time(45.0).utility(UtilityFn::linear_for_deadline(2.0, 45.0));
        warm.add_task(&b).unwrap();
        assert!(warm.run_to_convergence(20_000).converged);

        let mut cold = Optimizer::new(warm.problem().clone(), config());
        assert!(cold.run_to_convergence(20_000).converged);
        let (wu, cu) = (warm.utility(), cold.utility());
        assert!(
            (wu - cu).abs() <= 1e-2 * cu.abs().max(1.0),
            "warm {wu} vs cold {cu} differ beyond tolerance"
        );
    }

    #[test]
    fn warm_retire_resource_after_drain() {
        let mut opt = Optimizer::new(small_problem(), config());
        opt.run_to_convergence(5_000);
        let moved = opt.reassign_resource(ResourceId::new(1), ResourceId::new(0)).unwrap();
        assert_eq!(moved, 2);
        let report = opt.retire_resource(ResourceId::new(1)).unwrap();
        assert_eq!(report.resource_map, vec![Some(0), None]);
        assert_eq!(opt.problem().resources().len(), 1);
        assert!(opt.run_to_convergence(20_000).converged, "must re-converge on one resource");
    }

    #[test]
    #[should_panic(expected = "state shape mismatch")]
    fn import_state_rejects_foreign_shape() {
        let mut opt = Optimizer::new(small_problem(), config());
        let mut other = Optimizer::new(small_problem(), config());
        other.set_lats(vec![vec![5.0, 5.0], vec![5.0, 5.0]]);
        let mut state = other.export_state();
        state.lats.pop();
        opt.import_state(state);
    }

    #[test]
    fn try_import_state_returns_typed_shape_errors() {
        let mut opt = Optimizer::new(small_problem(), config());
        let pristine = opt.export_state();

        let mut missing_row = pristine.clone();
        missing_row.lats.pop();
        assert_eq!(
            opt.try_import_state(missing_row, None),
            Err(StateImportError::TaskCountMismatch { expected: 2, found: 1 })
        );

        let mut short_row = pristine.clone();
        short_row.lats[1].pop();
        assert_eq!(
            opt.try_import_state(short_row, None),
            Err(StateImportError::RowShapeMismatch { task: 1, expected: 2, found: 1 })
        );
        // Failed imports leave the optimizer untouched.
        assert_eq!(opt.export_state(), pristine);
    }

    #[test]
    fn try_import_state_validates_topology_epoch() {
        let mut opt = Optimizer::new(small_problem(), config());
        let tagged = opt.export_state().with_epoch(3);
        assert_eq!(tagged.epoch(), Some(3));

        // A stale epoch is rejected even though the shape fits.
        assert_eq!(
            opt.try_import_state(tagged.clone(), Some(7)),
            Err(StateImportError::EpochMismatch { expected: 7, found: 3 })
        );
        // Matching epochs and untagged legacy states import fine.
        assert!(opt.try_import_state(tagged, Some(3)).is_ok());
        assert!(opt.try_import_state(opt.export_state(), Some(9)).is_ok());
        // Errors render human-readably for event payloads.
        let msg = StateImportError::EpochMismatch { expected: 7, found: 3 }.to_string();
        assert!(msg.contains('7') && msg.contains('3'), "{msg}");
    }
}
