//! Typed identifiers for tasks, subtasks, resources and paths.
//!
//! Identifiers are small `Copy` newtypes ([C-NEWTYPE]) so that a resource
//! index can never be confused with a task index. A [`SubtaskId`] and a
//! [`PathId`] are scoped to their owning task: they pair the [`TaskId`] with
//! a dense per-task index, which lets every per-subtask/per-path table in
//! the optimizer be a flat `Vec` indexed without hashing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a task (`T_i` in the paper).
///
/// # Example
/// ```
/// use lla_core::TaskId;
/// let id = TaskId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "T3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(usize);

impl TaskId {
    /// Creates a task id from a dense index.
    pub fn new(index: usize) -> Self {
        TaskId(index)
    }

    /// The dense index of this task within the problem.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a resource (a CPU or a network link).
///
/// # Example
/// ```
/// use lla_core::ResourceId;
/// assert_eq!(ResourceId::new(7).to_string(), "R7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(usize);

impl ResourceId {
    /// Creates a resource id from a dense index.
    pub fn new(index: usize) -> Self {
        ResourceId(index)
    }

    /// The dense index of this resource within the problem.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Identifier of a subtask (`T_ij` in the paper), scoped to its task.
///
/// # Example
/// ```
/// use lla_core::{SubtaskId, TaskId};
/// let id = SubtaskId::new(TaskId::new(1), 2);
/// assert_eq!(id.task(), TaskId::new(1));
/// assert_eq!(id.index(), 2);
/// assert_eq!(id.to_string(), "T1.2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubtaskId {
    task: TaskId,
    index: usize,
}

impl SubtaskId {
    /// Creates a subtask id from the owning task and the per-task index.
    pub fn new(task: TaskId, index: usize) -> Self {
        SubtaskId { task, index }
    }

    /// The owning task.
    pub fn task(self) -> TaskId {
        self.task
    }

    /// The dense index of this subtask within its task.
    pub fn index(self) -> usize {
        self.index
    }
}

impl fmt::Display for SubtaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.task, self.index)
    }
}

/// Identifier of a root-to-leaf path in a task's subtask graph.
///
/// # Example
/// ```
/// use lla_core::{PathId, TaskId};
/// let id = PathId::new(TaskId::new(0), 1);
/// assert_eq!(id.to_string(), "T0/p1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PathId {
    task: TaskId,
    index: usize,
}

impl PathId {
    /// Creates a path id from the owning task and the per-task path index.
    pub fn new(task: TaskId, index: usize) -> Self {
        PathId { task, index }
    }

    /// The owning task.
    pub fn task(self) -> TaskId {
        self.task
    }

    /// The dense index of this path within its task's path enumeration.
    pub fn index(self) -> usize {
        self.index
    }
}

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/p{}", self.task, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn task_id_roundtrip() {
        for i in [0, 1, 17, usize::MAX] {
            assert_eq!(TaskId::new(i).index(), i);
        }
    }

    #[test]
    fn resource_id_roundtrip() {
        for i in [0, 5, 1000] {
            assert_eq!(ResourceId::new(i).index(), i);
        }
    }

    #[test]
    fn subtask_id_components() {
        let id = SubtaskId::new(TaskId::new(4), 9);
        assert_eq!(id.task().index(), 4);
        assert_eq!(id.index(), 9);
    }

    #[test]
    fn path_id_components() {
        let id = PathId::new(TaskId::new(2), 3);
        assert_eq!(id.task(), TaskId::new(2));
        assert_eq!(id.index(), 3);
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let mut set = HashSet::new();
        for t in 0..4 {
            for s in 0..4 {
                set.insert(SubtaskId::new(TaskId::new(t), s));
            }
        }
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TaskId::new(0).to_string(), "T0");
        assert_eq!(ResourceId::new(3).to_string(), "R3");
        assert_eq!(SubtaskId::new(TaskId::new(1), 2).to_string(), "T1.2");
        assert_eq!(PathId::new(TaskId::new(1), 0).to_string(), "T1/p0");
    }

    #[test]
    fn ordering_is_lexicographic_on_task_then_index() {
        let a = SubtaskId::new(TaskId::new(0), 5);
        let b = SubtaskId::new(TaskId::new(1), 0);
        assert!(a < b);
    }
}
