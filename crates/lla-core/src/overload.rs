//! Overload detection and utility-aware load shedding.
//!
//! LLA prices transient congestion away, but a workload that is simply
//! unschedulable (Σ demand > capacity at every feasible latency) keeps the
//! violation factor positive forever — prices climb without bound and no
//! allocation step can fix it. The paper layers admission control on top of
//! the continuously running algorithm (§3.2); this module is the runtime
//! counterpart: detect *sustained* infeasibility, shed the elastic task
//! with the lowest marginal utility per unit of share reclaimed, and apply
//! hysteresis (an admit/evict cool-down) so the membership never flaps.
//!
//! The detector deliberately keys on the violation factor over a window of
//! iterations rather than a single sample: one congested iteration is
//! normal during re-convergence after churn; N consecutive ones are not.

use crate::ids::TaskId;
use crate::optimizer::{IterationReport, Optimizer};
use crate::problem::Problem;

/// Tuning knobs for [`OverloadMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// Violation factor (max of absolute resource violation and relative
    /// path violation) above which an iteration counts as overloaded.
    pub violation_threshold: f64,
    /// Consecutive overloaded iterations before the monitor declares
    /// sustained overload and recommends shedding.
    pub sustain_iters: usize,
    /// Iterations after any membership action (admit or evict) during
    /// which no further shedding or admission is recommended — the
    /// hysteresis band that prevents flapping while prices re-settle.
    pub cooldown_iters: usize,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig { violation_threshold: 0.05, sustain_iters: 50, cooldown_iters: 200 }
    }
}

/// Sustained-infeasibility detector with admit/evict hysteresis.
///
/// Feed it every [`IterationReport`]; it recommends shedding only after
/// [`OverloadConfig::sustain_iters`] consecutive violating iterations and
/// never during a cool-down window.
#[derive(Debug, Clone)]
pub struct OverloadMonitor {
    config: OverloadConfig,
    streak: usize,
    cooldown: usize,
    evictions: u64,
}

impl OverloadMonitor {
    /// A monitor with the given configuration.
    pub fn new(config: OverloadConfig) -> Self {
        OverloadMonitor { config, streak: 0, cooldown: 0, evictions: 0 }
    }

    /// Records one iteration. Returns `true` when the monitor recommends
    /// shedding load *now* (sustained overload and not cooling down).
    pub fn observe(&mut self, report: &IterationReport) -> bool {
        let cooling = self.cooldown > 0;
        if cooling {
            self.cooldown -= 1;
        }
        let factor = report.max_resource_violation.max(report.max_path_violation);
        if factor > self.config.violation_threshold {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
        self.is_overloaded() && !cooling
    }

    /// Whether the overload streak currently exceeds the sustain window.
    pub fn is_overloaded(&self) -> bool {
        self.streak >= self.config.sustain_iters
    }

    /// The current run of consecutive violating observations. Supervisors
    /// read this to escalate remediation: the longer the streak survives
    /// past `sustain_iters`, the more victims a shedding round takes.
    pub fn overload_streak(&self) -> usize {
        self.streak
    }

    /// Whether the hysteresis cool-down is active.
    pub fn in_cooldown(&self) -> bool {
        self.cooldown > 0
    }

    /// Whether an admission should be allowed right now: not overloaded
    /// and not inside the post-action cool-down. Gating admissions on the
    /// same hysteresis as evictions is what prevents admit/evict flapping.
    pub fn can_admit(&self) -> bool {
        self.cooldown == 0 && !self.is_overloaded()
    }

    /// Records that a task was evicted; restarts the streak and the
    /// cool-down.
    pub fn note_eviction(&mut self) {
        self.evictions += 1;
        self.streak = 0;
        self.cooldown = self.config.cooldown_iters;
    }

    /// Records that a task was admitted; starts the cool-down so the
    /// newcomer cannot be evicted before prices re-settle.
    pub fn note_admission(&mut self) {
        self.cooldown = self.config.cooldown_iters;
    }

    /// Total evictions recorded over the monitor's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// Ranks elastic tasks by marginal utility per unit of share reclaimed,
/// cheapest-to-evict first: `|f_i'(agg_lat)| / Σ_s share(lat_s)`.
///
/// A small score means losing little utility per unit of capacity freed —
/// the utility-aware eviction order. Inelastic tasks (hard deadlines,
/// [`UtilityFn::is_inelastic`](crate::UtilityFn::is_inelastic)) are never
/// ranked. Ties break on the lower task id so the order is deterministic.
pub fn shed_ranking(problem: &Problem, lats: &[Vec<f64>]) -> Vec<(TaskId, f64)> {
    let mut out = Vec::new();
    for t in problem.tasks() {
        if t.utility_fn().is_inelastic() {
            continue;
        }
        let ti = t.id().index();
        let marginal = t.utility_fn().derivative(t.aggregate_latency(&lats[ti])).abs();
        let share: f64 = (0..t.len())
            .map(|s| problem.share_model(t.subtask_id(s)).share_for_latency(lats[ti][s]))
            .sum();
        out.push((t.id(), marginal / share.max(1e-12)));
    }
    out.sort_by(|a, b| {
        a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    out
}

/// The elastic task shedding would evict next (lowest
/// [`shed_ranking`] score), or `None` if every task is inelastic.
pub fn select_victim(problem: &Problem, lats: &[Vec<f64>]) -> Option<TaskId> {
    shed_ranking(problem, lats).first().map(|&(id, _)| id)
}

/// One governed iteration: step the optimizer, let the monitor watch, and
/// shed the lowest-value elastic task when overload is sustained. An
/// eviction also resets the dual state ([`Optimizer::reset_prices`]) —
/// prices that integrated a sustained-infeasible gradient are arbitrarily
/// inflated and would stall the survivors' re-convergence.
///
/// Returns the iteration report and, if shedding happened, the evicted
/// task's id *as it was before removal* (survivor ids shift down per
/// [`Optimizer::remove_task`]'s report).
pub fn governed_step(
    opt: &mut Optimizer,
    monitor: &mut OverloadMonitor,
) -> (IterationReport, Option<TaskId>) {
    let report = opt.step();
    let mut evicted = None;
    if monitor.observe(&report) {
        if let Some(victim) = select_victim(opt.problem(), opt.allocation().lats()) {
            opt.remove_task(victim).expect("victim id comes from the live problem");
            // Shedding only happens after *sustained* overload, which is
            // exactly when the duals are poisoned: they integrated an
            // unsatisfiable gradient for the whole detection window and
            // would otherwise decay at a near-zero rate once the freed
            // constraints re-bind (γ·slack with slack ≈ 0), stalling far
            // from the optimum. Restart them; the survivors re-converge
            // at the cold-start rate, which is bounded.
            opt.reset_prices();
            monitor.note_eviction();
            evicted = Some(victim);
        }
    }
    (report, evicted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ResourceId;
    use crate::optimizer::OptimizerConfig;
    use crate::resource::{Resource, ResourceKind};
    use crate::task::TaskBuilder;
    use crate::utility::UtilityFn;
    use crate::AllocationSettings;

    fn report(violation: f64) -> IterationReport {
        IterationReport {
            iteration: 0,
            utility: 0.0,
            max_resource_violation: violation,
            max_path_violation: 0.0,
        }
    }

    fn task(name: &str, exec: f64, c: f64, slope: f64) -> TaskBuilder {
        let mut b = TaskBuilder::new(name);
        b.subtask("s", ResourceId::new(0), exec);
        b.critical_time(c).utility(UtilityFn::Linear { offset: 2.0 * c, slope });
        b
    }

    fn one_cpu(tasks: Vec<TaskBuilder>) -> Problem {
        let resources = vec![Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0)];
        let tasks = tasks
            .iter()
            .enumerate()
            .map(|(i, b)| b.build(crate::TaskId::new(i)).unwrap())
            .collect();
        Problem::new(resources, tasks).unwrap()
    }

    #[test]
    fn monitor_requires_sustained_violation() {
        let mut m = OverloadMonitor::new(OverloadConfig {
            violation_threshold: 0.05,
            sustain_iters: 3,
            cooldown_iters: 5,
        });
        assert!(!m.observe(&report(1.0)));
        assert!(!m.observe(&report(1.0)));
        assert!(m.observe(&report(1.0)), "third consecutive violation trips the monitor");
        // A single clean iteration resets the streak.
        assert!(!m.observe(&report(0.0)));
        assert!(!m.observe(&report(1.0)));
        assert!(!m.is_overloaded());
    }

    #[test]
    fn hysteresis_blocks_consecutive_actions() {
        let mut m = OverloadMonitor::new(OverloadConfig {
            violation_threshold: 0.05,
            sustain_iters: 1,
            cooldown_iters: 3,
        });
        assert!(m.observe(&report(1.0)));
        m.note_eviction();
        assert!(m.in_cooldown());
        assert!(!m.can_admit());
        // Still violating, but the cool-down gates any further action.
        assert!(!m.observe(&report(1.0)));
        assert!(!m.observe(&report(1.0)));
        assert!(!m.observe(&report(1.0)));
        assert!(m.observe(&report(1.0)), "cool-down expired, still overloaded");
        assert_eq!(m.evictions(), 1);
    }

    #[test]
    fn ranking_prefers_low_marginal_utility_and_skips_inelastic() {
        let cheap = task("cheap", 2.0, 40.0, -0.5);
        let dear = task("dear", 2.0, 40.0, -4.0);
        let mut hard = task("hard", 2.0, 40.0, -1.0);
        hard.utility(UtilityFn::smooth_inelastic(10.0, 40.0, 8.0));
        let p = one_cpu(vec![dear, cheap, hard]);
        let lats = p.initial_allocation();
        let ranking = shed_ranking(&p, &lats);
        assert_eq!(ranking.len(), 2, "inelastic task must not be ranked");
        assert_eq!(ranking[0].0, crate::TaskId::new(1), "cheap task evicts first");
        assert_eq!(select_victim(&p, &lats), Some(crate::TaskId::new(1)));
    }

    #[test]
    fn governed_loop_sheds_until_feasible_without_flapping() {
        // Five elastic tasks on one CPU, far too much demand: the governed
        // loop must evict the cheapest tasks one by one (cool-down apart)
        // until the remainder is schedulable, and then stop evicting.
        let tasks: Vec<TaskBuilder> =
            (0..5).map(|i| task(&format!("t{i}"), 6.0, 10.0, -(1.0 + i as f64))).collect();
        let p = one_cpu(tasks);
        let cfg = OptimizerConfig {
            allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
            ..OptimizerConfig::default()
        };
        let mut opt = Optimizer::new(p, cfg);
        let mut monitor = OverloadMonitor::new(OverloadConfig {
            violation_threshold: 0.05,
            sustain_iters: 30,
            cooldown_iters: 100,
        });
        let mut evictions = Vec::new();
        for _ in 0..5_000 {
            let (_, evicted) = governed_step(&mut opt, &mut monitor);
            if let Some(id) = evicted {
                evictions.push(id);
            }
        }
        assert!(!evictions.is_empty(), "overloaded system must shed");
        assert!(evictions.len() < 5, "shedding must stop before evicting everyone");
        assert!(
            opt.problem().max_resource_violation(opt.allocation().lats()) < 0.05,
            "remaining tasks must be schedulable"
        );
        // Lowest-slope (cheapest) task goes first: slope -1 is task 0.
        assert_eq!(evictions[0], crate::TaskId::new(0));
        // No flapping: once feasible, a long quiet tail with no evictions.
        let before = monitor.evictions();
        for _ in 0..1_000 {
            let (_, evicted) = governed_step(&mut opt, &mut monitor);
            assert!(evicted.is_none(), "stable system must not evict");
        }
        assert_eq!(monitor.evictions(), before);
    }
}
