//! The constrained optimization problem (§3): tasks, resources, and the
//! structural indices LLA needs (subtask↔resource maps, share models).

use crate::error::ModelError;
use crate::ids::{ResourceId, SubtaskId, TaskId};
use crate::resource::Resource;
use crate::share::ShareModel;
use crate::task::{Task, TaskBuilder};

/// How dense indices moved across one membership change
/// ([`Problem::add_task`], [`Problem::remove_task`],
/// [`Problem::add_resource`], [`Problem::retire_resource`]).
///
/// `task_map[old] == Some(new)` says the task at dense index `old` before
/// the change now sits at `new`; `None` means it left the problem. The
/// resource map reads the same way. Newly added members appear only in
/// `added_task` / `added_resource` (they had no old index).
///
/// Warm-start consumers ([`PriceState::remap`](crate::PriceState::remap))
/// use the report to carry duals across the change.
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipReport {
    /// Old task index → new task index (`None` = removed).
    pub task_map: Vec<Option<usize>>,
    /// Old resource index → new resource index (`None` = retired).
    pub resource_map: Vec<Option<usize>>,
    /// Id assigned to a task added by this change, if any.
    pub added_task: Option<TaskId>,
    /// Id assigned to a resource added by this change, if any.
    pub added_resource: Option<ResourceId>,
}

impl MembershipReport {
    /// An identity report for a problem with `tasks` tasks and `resources`
    /// resources: nothing moved, nothing added.
    pub fn identity(tasks: usize, resources: usize) -> Self {
        MembershipReport {
            task_map: (0..tasks).map(Some).collect(),
            resource_map: (0..resources).map(Some).collect(),
            added_task: None,
            added_resource: None,
        }
    }
}

/// A validated system: a set of [`Resource`]s and a set of [`Task`]s whose
/// subtasks consume them.
///
/// The objective is `max Σ_i U_i` (Eq. 2) subject to the resource
/// constraints `Σ_{s∈S_r} share_r(s, lat_s) ≤ B_r` (Eq. 3) and the critical
/// time constraints `Σ_{s∈p} lat_s ≤ C_i` for every path (Eq. 4).
///
/// `Problem` owns one [`ShareModel`] per subtask (WCET plus the lag of the
/// resource it runs on) and exposes it mutably so the online
/// error-correction loop (§6.3) can update the additive correction while
/// the optimizer runs.
#[derive(Debug, Clone)]
pub struct Problem {
    resources: Vec<Resource>,
    tasks: Vec<Task>,
    /// `subtasks_on[r]` lists every subtask running on resource `r`.
    subtasks_on: Vec<Vec<SubtaskId>>,
    /// `share_models[t][s]` for subtask `s` of task `t`.
    share_models: Vec<Vec<ShareModel>>,
    /// Mutation epoch: bumped by every `&mut self` mutator so compiled
    /// iteration plans ([`crate::plan::Plan`]) know when to rebuild.
    /// Excluded from equality — two problems that describe the same
    /// system compare equal regardless of their edit histories.
    epoch: u64,
}

impl PartialEq for Problem {
    fn eq(&self, other: &Self) -> bool {
        self.resources == other.resources
            && self.tasks == other.tasks
            && self.subtasks_on == other.subtasks_on
            && self.share_models == other.share_models
    }
}

impl Problem {
    /// Assembles and validates a problem.
    ///
    /// Resource and task ids must be dense (`resources[i].id() == i`,
    /// `tasks[i].id() == i`) so that internal tables can be flat vectors.
    ///
    /// # Errors
    ///
    /// * [`ModelError::NonDenseResourceIds`] / [`ModelError::NonDenseTaskIds`]
    ///   when ids do not match positions.
    /// * [`ModelError::UnknownResource`] when a subtask references a missing
    ///   resource.
    /// * Any parameter-validation error from resources or subtasks.
    pub fn new(resources: Vec<Resource>, tasks: Vec<Task>) -> Result<Self, ModelError> {
        for (i, r) in resources.iter().enumerate() {
            if r.id().index() != i {
                return Err(ModelError::NonDenseResourceIds { resource: r.id(), expected: i });
            }
            r.validate()?;
        }
        for (i, t) in tasks.iter().enumerate() {
            if t.id().index() != i {
                return Err(ModelError::NonDenseTaskIds { task: t.id(), expected: i });
            }
        }

        let mut subtasks_on = vec![Vec::new(); resources.len()];
        let mut share_models = Vec::with_capacity(tasks.len());
        for t in &tasks {
            let mut models = Vec::with_capacity(t.len());
            for s in t.subtasks() {
                let r = s.resource();
                if r.index() >= resources.len() {
                    return Err(ModelError::UnknownResource { subtask: s.id(), resource: r });
                }
                subtasks_on[r.index()].push(s.id());
                models.push(ShareModel::new(s.exec_time(), resources[r.index()].lag())?);
            }
            share_models.push(models);
        }

        Ok(Problem { resources, tasks, subtasks_on, share_models, epoch: 0 })
    }

    /// The mutation epoch: a counter bumped by every mutating method so
    /// callers holding a compiled [`crate::plan::Plan`] can detect
    /// staleness cheaply. Epochs only move forward within one `Problem`
    /// value; clones inherit the current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The resources, indexed by [`ResourceId::index`].
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// The tasks, indexed by [`TaskId::index`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// A single resource.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.index()]
    }

    /// Updates a resource's availability `B_r` at runtime (LLA adapts and
    /// re-converges).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownResourceId`] if the id is out of
    /// range, or [`ModelError::InvalidParameter`] if `availability` is
    /// non-finite or outside `[0, 1]`. On error nothing changes — the
    /// epoch does not advance.
    pub fn set_resource_availability(
        &mut self,
        id: ResourceId,
        availability: f64,
    ) -> Result<(), ModelError> {
        let len = self.resources.len();
        let slot = self
            .resources
            .get_mut(id.index())
            .ok_or(ModelError::UnknownResourceId { resource: id, len })?;
        slot.set_availability(availability)?;
        self.epoch += 1;
        Ok(())
    }

    /// Updates a resource's replica count at runtime (elastic capacity:
    /// effective `B_r` becomes `replicas × base availability`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownResourceId`] if the id is out of
    /// range, or [`ModelError::InvalidParameter`] if `replicas == 0`. On
    /// error nothing changes — the epoch does not advance.
    pub fn set_resource_replicas(
        &mut self,
        id: ResourceId,
        replicas: u32,
    ) -> Result<(), ModelError> {
        let len = self.resources.len();
        let slot = self
            .resources
            .get_mut(id.index())
            .ok_or(ModelError::UnknownResourceId { resource: id, len })?;
        slot.set_replicas(replicas)?;
        self.epoch += 1;
        Ok(())
    }

    /// A single task.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// The subtasks competing for resource `r` (`S_r` in the paper).
    pub fn subtasks_on(&self, r: ResourceId) -> &[SubtaskId] {
        &self.subtasks_on[r.index()]
    }

    /// The share model of a subtask.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn share_model(&self, s: SubtaskId) -> &ShareModel {
        &self.share_models[s.task().index()][s.index()]
    }

    /// Sets the additive latency error correction `ê` for a subtask (§6.3).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_correction(&mut self, s: SubtaskId, correction: f64) {
        self.share_models[s.task().index()][s.index()].set_correction(correction);
        self.epoch += 1;
    }

    /// Sets the multiplicative demand correction for a subtask (the
    /// demand-scaling alternative to the paper's additive model).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_demand_scale(&mut self, s: SubtaskId, scale: f64) {
        self.share_models[s.task().index()][s.index()].set_demand_scale(scale);
        self.epoch += 1;
    }

    /// Total number of subtasks across all tasks.
    pub fn num_subtasks(&self) -> usize {
        self.tasks.iter().map(Task::len).sum()
    }

    /// Total number of root-to-leaf paths across all tasks.
    pub fn num_paths(&self) -> usize {
        self.tasks.iter().map(|t| t.graph().paths().len()).sum()
    }

    /// Sum of shares demanded on resource `r` by the given allocation
    /// (left-hand side of Eq. 3). `lats[t][s]` is the latency of subtask `s`
    /// of task `t`.
    pub fn resource_usage(&self, r: ResourceId, lats: &[Vec<f64>]) -> f64 {
        self.subtasks_on[r.index()]
            .iter()
            .map(|sid| {
                self.share_models[sid.task().index()][sid.index()]
                    .share_for_latency(lats[sid.task().index()][sid.index()])
            })
            .sum()
    }

    /// `Σ_i U_i` for the given allocation (the paper's objective, Eq. 2,
    /// under the chosen aggregation variant).
    pub fn total_utility(&self, lats: &[Vec<f64>]) -> f64 {
        self.tasks.iter().map(|t| t.utility(&lats[t.id().index()])).sum()
    }

    /// The largest resource-constraint violation
    /// `max_r (usage_r − B_r)` — positive means at least one resource is
    /// congested.
    pub fn max_resource_violation(&self, lats: &[Vec<f64>]) -> f64 {
        self.resources
            .iter()
            .map(|r| self.resource_usage(r.id(), lats) - r.availability())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The largest path-constraint violation as a fraction:
    /// `max_p (path_latency / C_i − 1)` — positive means at least one path
    /// misses its critical time.
    pub fn max_path_violation(&self, lats: &[Vec<f64>]) -> f64 {
        let mut worst = f64::NEG_INFINITY;
        for t in &self.tasks {
            let tl = &lats[t.id().index()];
            for p in t.graph().paths() {
                worst = worst.max(p.latency(tl) / t.critical_time() - 1.0);
            }
        }
        worst
    }

    /// Whether the allocation satisfies both constraint families within
    /// tolerance `tol` (relative for paths, absolute in share for
    /// resources).
    pub fn is_feasible(&self, lats: &[Vec<f64>], tol: f64) -> bool {
        self.max_resource_violation(lats) <= tol && self.max_path_violation(lats) <= tol
    }

    /// Rebuilds `subtasks_on` from the current task set, in the same order
    /// [`Problem::new`] builds it (tasks in id order, subtasks in index
    /// order) so membership changes round-trip to structurally identical
    /// problems.
    fn rebuild_subtasks_on(&mut self) {
        let mut subtasks_on = vec![Vec::new(); self.resources.len()];
        for t in &self.tasks {
            for s in t.subtasks() {
                subtasks_on[s.resource().index()].push(s.id());
            }
        }
        self.subtasks_on = subtasks_on;
    }

    /// Admits a new task online, assigning it the next dense id.
    ///
    /// Existing tasks keep their indices; share-model corrections are
    /// untouched. On error the problem is unchanged.
    ///
    /// # Errors
    ///
    /// Any build-validation error from the builder, or
    /// [`ModelError::UnknownResource`] if a subtask references a resource
    /// not in the problem.
    pub fn add_task(&mut self, builder: &TaskBuilder) -> Result<MembershipReport, ModelError> {
        let id = TaskId::new(self.tasks.len());
        let task = builder.build(id)?;
        // Validate resources and build share models before mutating.
        let mut models = Vec::with_capacity(task.len());
        for s in task.subtasks() {
            let r = s.resource();
            if r.index() >= self.resources.len() {
                return Err(ModelError::UnknownResource { subtask: s.id(), resource: r });
            }
            models.push(ShareModel::new(s.exec_time(), self.resources[r.index()].lag())?);
        }
        for s in task.subtasks() {
            self.subtasks_on[s.resource().index()].push(s.id());
        }
        self.tasks.push(task);
        self.share_models.push(models);
        self.epoch += 1;
        let mut report = MembershipReport::identity(self.tasks.len() - 1, self.resources.len());
        report.added_task = Some(id);
        Ok(report)
    }

    /// Removes a task online, re-densifying the ids of every later task.
    ///
    /// Surviving tasks keep their share models (including online
    /// corrections); only ids shift.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownTask`] if `id` is out of range.
    pub fn remove_task(&mut self, id: TaskId) -> Result<MembershipReport, ModelError> {
        let idx = id.index();
        if idx >= self.tasks.len() {
            return Err(ModelError::UnknownTask { task: id, len: self.tasks.len() });
        }
        let mut report = MembershipReport::identity(self.tasks.len(), self.resources.len());
        report.task_map[idx] = None;
        for m in report.task_map[idx + 1..].iter_mut() {
            *m = m.map(|i| i - 1);
        }
        self.tasks.remove(idx);
        self.share_models.remove(idx);
        let identity: Vec<Option<usize>> = (0..self.resources.len()).map(Some).collect();
        for i in idx..self.tasks.len() {
            self.tasks[i] = self.tasks[i]
                .remapped(TaskId::new(i), &identity)
                .expect("identity resource map cannot fail");
        }
        self.rebuild_subtasks_on();
        self.epoch += 1;
        Ok(report)
    }

    /// Adds a resource online. Its id must be the next dense index.
    ///
    /// # Errors
    ///
    /// [`ModelError::NonDenseResourceIds`] if the id is not
    /// `resources.len()`, or any parameter-validation error.
    pub fn add_resource(&mut self, resource: Resource) -> Result<MembershipReport, ModelError> {
        if resource.id().index() != self.resources.len() {
            return Err(ModelError::NonDenseResourceIds {
                resource: resource.id(),
                expected: self.resources.len(),
            });
        }
        resource.validate()?;
        let id = resource.id();
        self.resources.push(resource);
        self.subtasks_on.push(Vec::new());
        self.epoch += 1;
        let mut report = MembershipReport::identity(self.tasks.len(), self.resources.len() - 1);
        report.added_resource = Some(id);
        Ok(report)
    }

    /// Retires a resource online, re-densifying the ids of every later
    /// resource and rewriting subtask bindings accordingly.
    ///
    /// The resource must be empty — drain it first with
    /// [`Problem::reassign_resource`].
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownResourceId`] if `id` is out of range, or
    /// [`ModelError::ResourceInUse`] if subtasks still run on it.
    pub fn retire_resource(&mut self, id: ResourceId) -> Result<MembershipReport, ModelError> {
        let idx = id.index();
        if idx >= self.resources.len() {
            return Err(ModelError::UnknownResourceId { resource: id, len: self.resources.len() });
        }
        if !self.subtasks_on[idx].is_empty() {
            return Err(ModelError::ResourceInUse {
                resource: id,
                subtasks: self.subtasks_on[idx].len(),
            });
        }
        let mut report = MembershipReport::identity(self.tasks.len(), self.resources.len());
        report.resource_map[idx] = None;
        for m in report.resource_map[idx + 1..].iter_mut() {
            *m = m.map(|i| i - 1);
        }
        self.resources.remove(idx);
        for i in idx..self.resources.len() {
            self.resources[i] = self.resources[i].reindexed(ResourceId::new(i));
        }
        for i in 0..self.tasks.len() {
            self.tasks[i] = self.tasks[i]
                .remapped(TaskId::new(i), &report.resource_map)
                .expect("retired resource hosts no subtasks");
        }
        self.rebuild_subtasks_on();
        self.epoch += 1;
        Ok(report)
    }

    /// Moves every subtask running on `from` over to `to` (drain before
    /// retirement), rebuilding their share models with the destination's
    /// lag while preserving corrections and demand scales. Returns how
    /// many subtasks moved.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownResourceId`] if either id is out of range.
    pub fn reassign_resource(
        &mut self,
        from: ResourceId,
        to: ResourceId,
    ) -> Result<usize, ModelError> {
        for id in [from, to] {
            if id.index() >= self.resources.len() {
                return Err(ModelError::UnknownResourceId {
                    resource: id,
                    len: self.resources.len(),
                });
            }
        }
        if from == to || self.subtasks_on[from.index()].is_empty() {
            return Ok(0);
        }
        let moved: Vec<SubtaskId> = self.subtasks_on[from.index()].clone();
        let mut map: Vec<Option<usize>> = (0..self.resources.len()).map(Some).collect();
        map[from.index()] = Some(to.index());
        let lag = self.resources[to.index()].lag();
        for &sid in &moved {
            let t = sid.task().index();
            let old = &self.share_models[t][sid.index()];
            let mut model = ShareModel::new(old.exec_time(), lag)?;
            model.set_correction(old.correction());
            model.set_demand_scale(old.demand_scale());
            self.share_models[t][sid.index()] = model;
        }
        let hosts: std::collections::BTreeSet<usize> =
            moved.iter().map(|s| s.task().index()).collect();
        for t in hosts {
            self.tasks[t] = self.tasks[t].remapped(TaskId::new(t), &map)?;
        }
        self.rebuild_subtasks_on();
        self.epoch += 1;
        Ok(moved.len())
    }

    /// An initial feasible-leaning allocation: every subtask gets an equal
    /// slice of its task's critical time along the longest path through it.
    ///
    /// This is only a starting point — LLA converges from any positive
    /// allocation; a reasonable start merely saves iterations.
    pub fn initial_allocation(&self) -> Vec<Vec<f64>> {
        self.tasks.iter().map(|t| self.initial_task_row(t)).collect()
    }

    /// The [`initial_allocation`](Self::initial_allocation) row for a
    /// single task, without materialising the whole matrix. Checkpoint
    /// exporters and online admission use this to avoid an O(subtasks)
    /// allocation per event.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn initial_task_allocation(&self, id: TaskId) -> Vec<f64> {
        self.initial_task_row(&self.tasks[id.index()])
    }

    fn initial_task_row(&self, t: &Task) -> Vec<f64> {
        // Longest path length (in hops) determines the even split.
        let max_len = t.graph().paths().iter().map(|p| p.len()).max().unwrap_or(1);
        let slice = t.critical_time() / max_len as f64;
        vec![slice; t.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TaskId;
    use crate::resource::ResourceKind;
    use crate::task::TaskBuilder;

    fn two_cpu_problem() -> Problem {
        let resources = vec![
            Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
            Resource::new(ResourceId::new(1), ResourceKind::Cpu)
                .with_lag(2.0)
                .with_availability(0.8),
        ];
        let mut b = TaskBuilder::new("a");
        let s0 = b.subtask("x", ResourceId::new(0), 2.0);
        let s1 = b.subtask("y", ResourceId::new(1), 3.0);
        b.edge(s0, s1).unwrap();
        b.critical_time(30.0);
        let t0 = b.build(TaskId::new(0)).unwrap();

        let mut b = TaskBuilder::new("b");
        b.subtask("z", ResourceId::new(1), 4.0);
        b.critical_time(20.0);
        let t1 = b.build(TaskId::new(1)).unwrap();

        Problem::new(resources, vec![t0, t1]).unwrap()
    }

    #[test]
    fn indices_are_built() {
        let p = two_cpu_problem();
        assert_eq!(p.num_subtasks(), 3);
        assert_eq!(p.num_paths(), 2);
        assert_eq!(p.subtasks_on(ResourceId::new(0)).len(), 1);
        assert_eq!(p.subtasks_on(ResourceId::new(1)).len(), 2);
    }

    #[test]
    fn share_models_use_resource_lag() {
        let p = two_cpu_problem();
        let sid = p.tasks()[0].subtask_id(1); // on resource 1, lag 2
        assert_eq!(p.share_model(sid).demand(), 3.0 + 2.0);
    }

    #[test]
    fn resource_usage_sums_shares() {
        let p = two_cpu_problem();
        let lats = vec![vec![10.0, 10.0], vec![10.0]];
        // Resource 1 hosts T0.1 (demand 5) and T1.0 (demand 6).
        let expected = 5.0 / 10.0 + 6.0 / 10.0;
        assert!((p.resource_usage(ResourceId::new(1), &lats) - expected).abs() < 1e-12);
    }

    #[test]
    fn violations_and_feasibility() {
        let p = two_cpu_problem();
        // Generous latencies: feasible.
        let ok = vec![vec![14.0, 14.0], vec![18.0]];
        assert!(p.is_feasible(&ok, 1e-9), "usage r1 = 5/14 + 6/18 = 0.69 <= 0.8");
        // Tiny latencies: resource 1 blows past availability.
        let bad = vec![vec![3.0, 3.0], vec![3.0]];
        assert!(p.max_resource_violation(&bad) > 0.0);
        // Long latencies: path constraint violated for task 1 (C=20).
        let late = vec![vec![10.0, 10.0], vec![25.0]];
        assert!(p.max_path_violation(&late) > 0.0);
        assert!(!p.is_feasible(&late, 1e-9));
    }

    #[test]
    fn initial_allocation_respects_deadlines() {
        let p = two_cpu_problem();
        let init = p.initial_allocation();
        assert!(p.max_path_violation(&init) <= 1e-9);
        // Task 0 longest path has 2 hops: each slice is 15.
        assert_eq!(init[0], vec![15.0, 15.0]);
        assert_eq!(init[1], vec![20.0]);
    }

    #[test]
    fn correction_is_mutable_through_problem() {
        let mut p = two_cpu_problem();
        let sid = p.tasks()[0].subtask_id(0);
        p.set_correction(sid, -2.5);
        assert_eq!(p.share_model(sid).correction(), -2.5);
    }

    #[test]
    fn rejects_unknown_resource() {
        let resources = vec![Resource::new(ResourceId::new(0), ResourceKind::Cpu)];
        let mut b = TaskBuilder::new("t");
        b.subtask("x", ResourceId::new(9), 1.0);
        b.critical_time(10.0);
        let t = b.build(TaskId::new(0)).unwrap();
        assert!(matches!(
            Problem::new(resources, vec![t]),
            Err(ModelError::UnknownResource { .. })
        ));
    }

    #[test]
    fn rejects_non_dense_ids() {
        let resources = vec![Resource::new(ResourceId::new(1), ResourceKind::Cpu)];
        assert!(matches!(
            Problem::new(resources, vec![]),
            Err(ModelError::NonDenseResourceIds { .. })
        ));

        let resources = vec![Resource::new(ResourceId::new(0), ResourceKind::Cpu)];
        let mut b = TaskBuilder::new("t");
        b.subtask("x", ResourceId::new(0), 1.0);
        b.critical_time(10.0);
        let t = b.build(TaskId::new(5)).unwrap();
        assert!(matches!(
            Problem::new(resources, vec![t]),
            Err(ModelError::NonDenseTaskIds { .. })
        ));
    }

    fn third_task() -> TaskBuilder {
        let mut b = TaskBuilder::new("c");
        b.subtask("w", ResourceId::new(0), 1.5);
        b.critical_time(25.0);
        b
    }

    #[test]
    fn add_task_assigns_next_dense_id() {
        let mut p = two_cpu_problem();
        let report = p.add_task(&third_task()).unwrap();
        assert_eq!(report.added_task, Some(TaskId::new(2)));
        assert_eq!(report.task_map, vec![Some(0), Some(1)]);
        assert_eq!(p.tasks().len(), 3);
        assert_eq!(p.tasks()[2].id(), TaskId::new(2));
        assert_eq!(p.subtasks_on(ResourceId::new(0)).len(), 2);
        // Equivalent to building the expanded problem from scratch.
        let rebuilt = Problem::new(p.resources().to_vec(), p.tasks().to_vec()).unwrap();
        assert_eq!(p, rebuilt);
    }

    #[test]
    fn add_task_rejects_unknown_resource_without_mutating() {
        let mut p = two_cpu_problem();
        let before = p.clone();
        let mut b = TaskBuilder::new("bad");
        b.subtask("x", ResourceId::new(9), 1.0);
        b.critical_time(10.0);
        assert!(matches!(p.add_task(&b), Err(ModelError::UnknownResource { .. })));
        assert_eq!(p, before);
    }

    #[test]
    fn remove_task_redensifies_ids() {
        let mut p = two_cpu_problem();
        p.add_task(&third_task()).unwrap();
        let report = p.remove_task(TaskId::new(0)).unwrap();
        assert_eq!(report.task_map, vec![None, Some(0), Some(1)]);
        assert_eq!(p.tasks().len(), 2);
        for (i, t) in p.tasks().iter().enumerate() {
            assert_eq!(t.id().index(), i);
            for (j, s) in t.subtasks().iter().enumerate() {
                assert_eq!(s.id(), SubtaskId::new(t.id(), j));
            }
        }
        assert!(matches!(
            p.remove_task(TaskId::new(7)),
            Err(ModelError::UnknownTask { len: 2, .. })
        ));
    }

    #[test]
    fn add_remove_round_trips_to_equivalent_problem() {
        let mut p = two_cpu_problem();
        let before = p.clone();
        let report = p.add_task(&third_task()).unwrap();
        p.remove_task(report.added_task.unwrap()).unwrap();
        assert_eq!(p, before);
    }

    #[test]
    fn retire_requires_drained_resource() {
        let mut p = two_cpu_problem();
        assert!(matches!(
            p.retire_resource(ResourceId::new(1)),
            Err(ModelError::ResourceInUse { subtasks: 2, .. })
        ));
        let moved = p.reassign_resource(ResourceId::new(1), ResourceId::new(0)).unwrap();
        assert_eq!(moved, 2);
        assert!(p.subtasks_on(ResourceId::new(1)).is_empty());
        // Moved subtasks pick up the destination lag (1.0, not 2.0).
        let sid = p.tasks()[0].subtask_id(1);
        assert_eq!(p.share_model(sid).demand(), 3.0 + 1.0);
        let report = p.retire_resource(ResourceId::new(1)).unwrap();
        assert_eq!(report.resource_map, vec![Some(0), None]);
        assert_eq!(p.resources().len(), 1);
        assert!(p
            .tasks()
            .iter()
            .all(|t| t.subtasks().iter().all(|s| s.resource() == ResourceId::new(0))));
        // The shrunken problem still validates from scratch.
        Problem::new(p.resources().to_vec(), p.tasks().to_vec()).unwrap();
    }

    #[test]
    fn add_resource_must_be_dense() {
        let mut p = two_cpu_problem();
        let r = Resource::new(ResourceId::new(5), ResourceKind::Cpu);
        assert!(matches!(p.add_resource(r), Err(ModelError::NonDenseResourceIds { .. })));
        let r = Resource::new(ResourceId::new(2), ResourceKind::Cpu).with_lag(0.5);
        let report = p.add_resource(r).unwrap();
        assert_eq!(report.added_resource, Some(ResourceId::new(2)));
        assert!(p.subtasks_on(ResourceId::new(2)).is_empty());
    }

    #[test]
    fn reassign_preserves_corrections() {
        let mut p = two_cpu_problem();
        let sid = p.tasks()[1].subtask_id(0); // on resource 1
        p.set_correction(sid, -0.75);
        p.set_demand_scale(sid, 1.25);
        p.reassign_resource(ResourceId::new(1), ResourceId::new(0)).unwrap();
        assert_eq!(p.share_model(sid).correction(), -0.75);
        assert_eq!(p.share_model(sid).demand_scale(), 1.25);
    }

    #[test]
    fn epoch_bumps_on_every_mutation_but_not_equality() {
        let mut p = two_cpu_problem();
        let before = p.clone();
        assert_eq!(p.epoch(), 0);
        p.set_resource_availability(ResourceId::new(0), 0.9).unwrap();
        assert_eq!(p.epoch(), 1);
        p.set_correction(p.tasks()[0].subtask_id(0), -0.5);
        assert_eq!(p.epoch(), 2);
        p.set_demand_scale(p.tasks()[0].subtask_id(0), 1.1);
        assert_eq!(p.epoch(), 3);
        let report = p.add_task(&third_task()).unwrap();
        assert_eq!(p.epoch(), 4);
        p.remove_task(report.added_task.unwrap()).unwrap();
        assert_eq!(p.epoch(), 5);
        // Equality ignores the epoch: undo the scalar edits and the
        // problem compares equal to its pristine clone again.
        p.set_resource_availability(
            ResourceId::new(0),
            before.resource(ResourceId::new(0)).availability(),
        )
        .unwrap();
        p.set_correction(p.tasks()[0].subtask_id(0), 0.0);
        p.set_demand_scale(p.tasks()[0].subtask_id(0), 1.0);
        assert_eq!(p, before);
        assert_ne!(p.epoch(), before.epoch());
    }

    #[test]
    fn replica_count_scales_capacity_and_bumps_epoch() {
        let mut p = two_cpu_problem();
        let before = p.epoch();
        p.set_resource_replicas(ResourceId::new(1), 3).unwrap();
        assert_eq!(p.epoch(), before + 1);
        assert!((p.resource(ResourceId::new(1)).availability() - 2.4).abs() < 1e-12);
        // The violation margin widens with the extra replicas.
        let lats = vec![vec![3.0, 3.0], vec![3.0]];
        let scaled = p.max_resource_violation(&lats);
        p.set_resource_replicas(ResourceId::new(1), 1).unwrap();
        assert!(scaled < p.max_resource_violation(&lats));
    }

    #[test]
    fn runtime_mutators_reject_bad_input_without_bumping_epoch() {
        let mut p = two_cpu_problem();
        let epoch = p.epoch();
        for bad in [f64::NAN, f64::INFINITY, -0.1, 1.5] {
            assert!(p.set_resource_availability(ResourceId::new(0), bad).is_err());
        }
        assert!(matches!(
            p.set_resource_availability(ResourceId::new(9), 0.5),
            Err(ModelError::UnknownResourceId { len: 2, .. })
        ));
        assert!(p.set_resource_replicas(ResourceId::new(0), 0).is_err());
        assert!(matches!(
            p.set_resource_replicas(ResourceId::new(9), 2),
            Err(ModelError::UnknownResourceId { len: 2, .. })
        ));
        assert_eq!(p.epoch(), epoch, "rejected mutations must not dirty compiled plans");
        assert_eq!(p.resource(ResourceId::new(0)).availability(), 1.0);
    }

    #[test]
    fn initial_task_allocation_matches_matrix_row() {
        let p = two_cpu_problem();
        let full = p.initial_allocation();
        for t in p.tasks() {
            assert_eq!(p.initial_task_allocation(t.id()), full[t.id().index()]);
        }
    }

    #[test]
    fn total_utility_sums_tasks() {
        let p = two_cpu_problem();
        let lats = vec![vec![5.0, 5.0], vec![4.0]];
        // Default utility 2C - weighted lat; both tasks are chains so
        // weights are 1.
        let expected = (60.0 - 10.0) + (40.0 - 4.0);
        assert!((p.total_utility(&lats) - expected).abs() < 1e-12);
    }
}
