//! The share function: mapping a subtask latency to a resource share.
//!
//! Under proportional-share scheduling, a subtask with worst-case execution
//! time `c_s` on a resource with scheduling lag `l_r` needs share
//!
//! ```text
//! share_r(s, lat) = (c_s + l_r) / lat          (Eq. 10)
//! ```
//!
//! to complete within `lat` milliseconds in the worst case. The function is
//! strictly convex and strictly decreasing in `lat`, which is exactly the
//! structure LLA's duality argument requires (increasing latency yields
//! diminishing returns in freed-up share).
//!
//! [`ShareModel`] also carries an *additive error-correction* term `ê`
//! (§6.3): the model may over-predict latency (e.g. because job releases of
//! subtasks sharing a resource are not synchronized), and a measured,
//! exponentially smoothed error is folded back in as
//! `lat_predicted(share) = (c_s + l_r)/share + ê`, equivalently
//! `share(lat) = (c_s + l_r)/(lat − ê)`.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// Per-subtask share/latency model with online error correction.
///
/// # Example
/// ```
/// use lla_core::ShareModel;
/// let m = ShareModel::new(5.0, 5.0)?; // WCET 5ms, lag 5ms
/// assert_eq!(m.share_for_latency(50.0), 0.2);
/// assert_eq!(m.latency_for_share(0.2), 50.0);
/// # Ok::<(), lla_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShareModel {
    exec_time: f64,
    lag: f64,
    correction: f64,
    demand_scale: f64,
}

impl ShareModel {
    /// Creates a share model from the subtask WCET `c_s` and resource lag
    /// `l_r` (both in milliseconds), with zero error correction.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `exec_time ≤ 0`, if `lag
    /// < 0`, or if either is non-finite.
    pub fn new(exec_time: f64, lag: f64) -> Result<Self, ModelError> {
        if !exec_time.is_finite() || exec_time <= 0.0 {
            return Err(ModelError::InvalidParameter {
                what: "share model execution time (c_s)",
                value: exec_time,
            });
        }
        if !lag.is_finite() || lag < 0.0 {
            return Err(ModelError::InvalidParameter { what: "share model lag (l_r)", value: lag });
        }
        Ok(ShareModel { exec_time, lag, correction: 0.0, demand_scale: 1.0 })
    }

    /// The modeled service demand `m · (c_s + l_r)`, including the
    /// multiplicative correction `m` (1 by default).
    pub fn demand(&self) -> f64 {
        self.demand_scale * (self.exec_time + self.lag)
    }

    /// The uncorrected worst-case demand `c_s + l_r`.
    pub fn raw_demand(&self) -> f64 {
        self.exec_time + self.lag
    }

    /// The multiplicative demand correction `m` (an alternative to the
    /// paper's additive correction: instead of shifting predicted latency
    /// by `ê`, scale the modeled demand so that
    /// `lat = m·(c_s + l_r)/share`).
    pub fn demand_scale(&self) -> f64 {
        self.demand_scale
    }

    /// Replaces the multiplicative demand correction.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `scale` is not strictly positive and
    /// finite.
    pub fn set_demand_scale(&mut self, scale: f64) {
        debug_assert!(scale.is_finite() && scale > 0.0);
        self.demand_scale = scale;
    }

    /// The WCET `c_s`.
    pub fn exec_time(&self) -> f64 {
        self.exec_time
    }

    /// The scheduling lag `l_r`.
    pub fn lag(&self) -> f64 {
        self.lag
    }

    /// The current additive latency correction `ê` (milliseconds).
    ///
    /// Negative values mean the uncorrected model *over-predicts* latency
    /// (the common case per §6.3 of the paper).
    pub fn correction(&self) -> f64 {
        self.correction
    }

    /// Replaces the additive latency correction `ê`.
    ///
    /// The corrected model is only meaningful while `ê < lat` for the
    /// latencies in play; the optimizer clamps allocations to keep shares in
    /// `(0, 1]`, which bounds how negative a useful correction can be.
    pub fn set_correction(&mut self, correction: f64) {
        debug_assert!(correction.is_finite());
        self.correction = correction;
    }

    /// The share needed for the subtask to finish within `lat` milliseconds:
    /// `(c_s + l_r)/(lat − ê)`.
    ///
    /// Returns `+∞` when `lat ≤ ê` (no finite share achieves the latency).
    pub fn share_for_latency(&self, lat: f64) -> f64 {
        let eff = lat - self.correction;
        if eff <= 0.0 {
            f64::INFINITY
        } else {
            self.demand() / eff
        }
    }

    /// The predicted latency when the subtask holds `share` of its
    /// resource: `(c_s + l_r)/share + ê`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `share ≤ 0`.
    pub fn latency_for_share(&self, share: f64) -> f64 {
        debug_assert!(share > 0.0, "share must be positive");
        self.demand() / share + self.correction
    }

    /// Derivative of the share with respect to latency:
    /// `∂share/∂lat = −(c_s + l_r)/(lat − ê)²`.
    ///
    /// Strictly negative on the valid domain, consistent with the share
    /// function being strictly decreasing.
    pub fn dshare_dlat(&self, lat: f64) -> f64 {
        let eff = lat - self.correction;
        if eff <= 0.0 {
            f64::NEG_INFINITY
        } else {
            -self.demand() / (eff * eff)
        }
    }

    /// The smallest latency whose required share does not exceed
    /// `max_share`: `lat_min = (c_s + l_r)/max_share + ê`.
    ///
    /// Used by the optimizer to clamp allocations so that a single subtask
    /// never demands more than the full resource availability.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `max_share ≤ 0`.
    pub fn min_latency(&self, max_share: f64) -> f64 {
        debug_assert!(max_share > 0.0);
        self.demand() / max_share + self.correction
    }

    /// Solves the LLA stationarity condition for this subtask:
    /// given resource price `μ ≥ 0` and "latency pressure"
    /// `d = −w_s·f'(A) + Σ_{p∋s} λ_p > 0`, the unconstrained optimum is
    ///
    /// ```text
    /// lat* = ê + sqrt(μ · (c_s + l_r) / d)
    /// ```
    ///
    /// (set `∂L/∂lat_s = 0` in Eq. 7 with `share = (c+l)/(lat−ê)`).
    /// Returns `None` when `d ≤ 0` (no pressure to reduce latency — the
    /// caller should use its upper clamp) .
    pub fn stationary_latency(&self, mu: f64, pressure: f64) -> Option<f64> {
        if pressure <= 0.0 {
            return None;
        }
        let mu = mu.max(0.0);
        Some(self.correction + (mu * self.demand() / pressure).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq10_roundtrip() {
        let m = ShareModel::new(13.0, 5.0).unwrap();
        for lat in [20.0, 50.0, 138.46] {
            let s = m.share_for_latency(lat);
            assert!((m.latency_for_share(s) - lat).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_prototype_minimum_shares() {
        // Fast subtasks: WCET 5ms at 40/s => min share 0.2 => lat 50ms with lag 5.
        let fast = ShareModel::new(5.0, 5.0).unwrap();
        assert!((fast.share_for_latency(50.0) - 0.2).abs() < 1e-12);
        // Slow subtasks: WCET 13ms at 10/s => min share 0.13.
        let slow = ShareModel::new(13.0, 5.0).unwrap();
        let lat = slow.latency_for_share(0.13);
        assert!((slow.share_for_latency(lat) - 0.13).abs() < 1e-12);
    }

    #[test]
    fn strictly_decreasing_and_convex() {
        let m = ShareModel::new(3.0, 1.0).unwrap();
        let mut prev_share = f64::INFINITY;
        let mut prev_slope = f64::NEG_INFINITY;
        for i in 1..100 {
            let lat = i as f64 * 0.5;
            let s = m.share_for_latency(lat);
            assert!(s < prev_share, "share must strictly decrease");
            let d = m.dshare_dlat(lat);
            assert!(d < 0.0);
            // Convexity: derivative increases (toward 0).
            assert!(d > prev_slope, "share derivative must increase (convexity)");
            prev_share = s;
            prev_slope = d;
        }
    }

    #[test]
    fn dshare_matches_finite_difference() {
        let m = ShareModel::new(4.0, 2.0).unwrap();
        let h = 1e-6;
        for lat in [1.0, 7.0, 30.0] {
            let fd = (m.share_for_latency(lat + h) - m.share_for_latency(lat - h)) / (2.0 * h);
            assert!((fd - m.dshare_dlat(lat)).abs() < 1e-5);
        }
    }

    #[test]
    fn correction_shifts_latency_axis() {
        let mut m = ShareModel::new(5.0, 5.0).unwrap();
        m.set_correction(-15.0);
        // With e = -15: achieving 35ms needs share for effective 50ms.
        assert!((m.share_for_latency(35.0) - 0.2).abs() < 1e-12);
        assert!((m.latency_for_share(0.2) - 35.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_latency_yields_infinite_share() {
        let mut m = ShareModel::new(1.0, 0.0).unwrap();
        m.set_correction(10.0);
        assert!(m.share_for_latency(5.0).is_infinite());
        assert_eq!(m.dshare_dlat(5.0), f64::NEG_INFINITY);
    }

    #[test]
    fn stationary_latency_closed_form() {
        let m = ShareModel::new(2.0, 3.0).unwrap(); // demand 5
                                                    // d = 2, mu = 10 => lat = sqrt(10*5/2) = 5.
        let lat = m.stationary_latency(10.0, 2.0).unwrap();
        assert!((lat - 5.0).abs() < 1e-12);
        // The stationarity condition holds: mu * dshare/dlat = -d.
        let lhs = 10.0 * m.dshare_dlat(lat);
        assert!((lhs + 2.0).abs() < 1e-9);
    }

    #[test]
    fn stationary_latency_no_pressure() {
        let m = ShareModel::new(2.0, 0.0).unwrap();
        assert_eq!(m.stationary_latency(10.0, 0.0), None);
        assert_eq!(m.stationary_latency(10.0, -1.0), None);
    }

    #[test]
    fn min_latency_respects_share_bound() {
        let m = ShareModel::new(5.0, 5.0).unwrap();
        let lat = m.min_latency(1.0);
        assert!((m.share_for_latency(lat) - 1.0).abs() < 1e-12);
        let lat9 = m.min_latency(0.9);
        assert!(lat9 > lat);
    }

    #[test]
    fn demand_scale_shrinks_required_share() {
        let mut m = ShareModel::new(5.0, 5.0).unwrap();
        assert_eq!(m.demand(), 10.0);
        assert_eq!(m.raw_demand(), 10.0);
        m.set_demand_scale(0.5);
        assert_eq!(m.demand(), 5.0);
        assert_eq!(m.raw_demand(), 10.0, "raw demand unaffected by scaling");
        assert!((m.share_for_latency(50.0) - 0.1).abs() < 1e-12);
        // Stationary latency uses the scaled demand.
        let lat = m.stationary_latency(10.0, 2.0).unwrap();
        assert!((lat - (10.0f64 * 5.0 / 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn scale_and_additive_corrections_compose() {
        let mut m = ShareModel::new(4.0, 1.0).unwrap();
        m.set_demand_scale(2.0);
        m.set_correction(-3.0);
        // lat = 2*(4+1)/share + (-3): for share 0.5 => 20 - 3 = 17.
        assert!((m.latency_for_share(0.5) - 17.0).abs() < 1e-12);
        assert!((m.share_for_latency(17.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constructor_rejects_bad_params() {
        assert!(ShareModel::new(0.0, 1.0).is_err());
        assert!(ShareModel::new(-1.0, 1.0).is_err());
        assert!(ShareModel::new(1.0, -0.5).is_err());
        assert!(ShareModel::new(f64::NAN, 0.0).is_err());
        assert!(ShareModel::new(1.0, f64::INFINITY).is_err());
    }
}
