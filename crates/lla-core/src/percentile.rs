//! Latency percentiles and their composition along paths (§2.1).
//!
//! Utility may be computed from other than worst-case latency: a task can
//! specify that its utility is a function of, say, the 99th percentile of
//! its end-to-end latencies. If a path has `n` subtasks and each subtask's
//! latency bound holds for a fraction `q/100` of its jobs *independently*,
//! then the sum of the bounds holds for `(q/100)^n` of the job sets. To
//! obtain an end-to-end percentile `p`, each subtask must therefore use the
//! per-subtask percentile
//!
//! ```text
//! q = p^(1/n) · 100^((n−1)/n)
//! ```
//!
//! so that `q^n / 100^(n−1) = p` (both `p` and `q` expressed in `[0, 100]`).

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// Which latency statistic a task's utility is computed from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum PercentileSpec {
    /// Worst-case latency (the default in the paper's experiments).
    #[default]
    WorstCase,
    /// The `p`-th percentile of end-to-end latencies, `p ∈ (0, 100]`.
    Percentile(f64),
}

impl PercentileSpec {
    /// Validates the percentile value.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when a percentile is outside
    /// `(0, 100]` or non-finite.
    pub fn validate(&self) -> Result<(), ModelError> {
        if let PercentileSpec::Percentile(p) = *self {
            if !p.is_finite() || p <= 0.0 || p > 100.0 {
                return Err(ModelError::InvalidParameter { what: "latency percentile", value: p });
            }
        }
        Ok(())
    }

    /// The per-subtask percentile to use on a path of length `path_len` so
    /// that the summed bounds yield this end-to-end statistic.
    ///
    /// For [`WorstCase`](PercentileSpec::WorstCase) this is `None` (use the
    /// worst-case model unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `path_len == 0`.
    pub fn per_subtask(&self, path_len: usize) -> Option<f64> {
        match *self {
            PercentileSpec::WorstCase => None,
            PercentileSpec::Percentile(p) => Some(compose_path_percentile(p, path_len)),
        }
    }
}

/// Computes the per-subtask percentile `q = p^(1/n) · 100^((n−1)/n)` for an
/// end-to-end percentile `p` over a path of `n` subtasks.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is outside `(0, 100]`.
///
/// # Example
/// ```
/// use lla_core::compose_path_percentile;
/// // Two subtasks, median end-to-end: each needs sqrt(50)*10 ≈ 70.7th pct.
/// let q = compose_path_percentile(50.0, 2);
/// assert!((q - 70.710678).abs() < 1e-5);
/// // And composing back: q^2 / 100 = 50.
/// assert!((q * q / 100.0 - 50.0).abs() < 1e-9);
/// ```
pub fn compose_path_percentile(p: f64, n: usize) -> f64 {
    assert!(n > 0, "path length must be positive");
    assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100], got {p}");
    let n = n as f64;
    p.powf(1.0 / n) * 100f64.powf((n - 1.0) / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_for_single_subtask() {
        for p in [1.0, 50.0, 99.0, 100.0] {
            assert!((compose_path_percentile(p, 1) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_example_squares_back() {
        // Paper: for two subtasks with the same percentile q, the sum yields
        // the q²/100 percentile. So composing p over n=2 must invert that.
        let p = 99.0;
        let q = compose_path_percentile(p, 2);
        assert!((q * q / 100.0 - p).abs() < 1e-9);
    }

    #[test]
    fn composition_inverts_for_any_length() {
        for n in 1..=8usize {
            for p in [10.0, 50.0, 90.0, 99.9] {
                let q = compose_path_percentile(p, n);
                let back = q.powi(n as i32) / 100f64.powi(n as i32 - 1);
                assert!((back - p).abs() < 1e-6, "n={n} p={p} q={q} back={back}");
            }
        }
    }

    #[test]
    fn per_subtask_percentile_exceeds_end_to_end() {
        // Each subtask must use a *higher* percentile than the end-to-end
        // target (q >= p), approaching 100 as paths get longer.
        let mut prev = 0.0;
        for n in 1..=10usize {
            let q = compose_path_percentile(90.0, n);
            assert!(q >= 90.0 - 1e-9);
            assert!(q >= prev);
            assert!(q <= 100.0 + 1e-9);
            prev = q;
        }
    }

    #[test]
    fn hundredth_percentile_is_fixed_point() {
        for n in 1..=5usize {
            assert!((compose_path_percentile(100.0, n) - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn spec_validation() {
        assert!(PercentileSpec::WorstCase.validate().is_ok());
        assert!(PercentileSpec::Percentile(99.0).validate().is_ok());
        assert!(PercentileSpec::Percentile(0.0).validate().is_err());
        assert!(PercentileSpec::Percentile(101.0).validate().is_err());
        assert!(PercentileSpec::Percentile(f64::NAN).validate().is_err());
    }

    #[test]
    fn spec_per_subtask() {
        assert_eq!(PercentileSpec::WorstCase.per_subtask(3), None);
        let q = PercentileSpec::Percentile(50.0).per_subtask(2).unwrap();
        assert!((q - compose_path_percentile(50.0, 2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "path length must be positive")]
    fn zero_length_path_panics() {
        let _ = compose_path_percentile(50.0, 0);
    }
}
