//! # `lla-core` — Lagrangian Latency Assignment
//!
//! Core model and algorithm of *"Online Optimization for Latency Assignment
//! in Distributed Real-Time Systems"* (Lumezanu, Bhola, Astley — ICDCS 2008).
//!
//! Distributed soft real-time applications are modeled as [`Task`]s composed
//! of [`Subtask`]s arranged in a precedence DAG (a [`SubtaskGraph`]). Each
//! subtask consumes exactly one [`Resource`] (CPU or network link) under
//! proportional-share scheduling. The timeliness requirement of a task is a
//! non-increasing, concave [`UtilityFn`] of its end-to-end latency, bounded
//! by a *critical time* (deadline).
//!
//! The [`Optimizer`] implements **LLA**: an iterative, price-based dual
//! decomposition. Each iteration performs
//!
//! 1. **latency allocation** — every task controller solves a local
//!    stationarity condition for its subtask latencies given current
//!    resource prices `μ_r` and path prices `λ_p`
//!    ([`allocation`]), and
//! 2. **price computation** — every resource and path adjusts its price by
//!    projected gradient ascent on the dual ([`prices`]), optionally with
//!    the paper's adaptive step-size heuristic.
//!
//! The algorithm runs continuously and adapts to workload and resource
//! variations; it converges when they stabilize.
//!
//! ## Example
//!
//! ```rust
//! use lla_core::{
//!     Aggregation, Optimizer, OptimizerConfig, Problem, Resource, ResourceId,
//!     ResourceKind, StepSizePolicy, TaskBuilder, TaskId, UtilityFn,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two CPUs, one task: a two-stage pipeline with a 20ms deadline.
//! let cpus = vec![
//!     Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
//!     Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
//! ];
//! let mut b = TaskBuilder::new("pipeline");
//! let s0 = b.subtask("stage0", ResourceId::new(0), 2.0);
//! let s1 = b.subtask("stage1", ResourceId::new(1), 3.0);
//! b.edge(s0, s1)?;
//! let task = b
//!     .critical_time(20.0)
//!     .utility(UtilityFn::linear_for_deadline(2.0, 20.0))
//!     .aggregation(Aggregation::PathWeighted)
//!     .build(TaskId::new(0))?;
//!
//! let problem = Problem::new(cpus, vec![task])?;
//! let mut opt = Optimizer::new(problem, OptimizerConfig {
//!     step_policy: StepSizePolicy::adaptive(1.0),
//!     ..OptimizerConfig::default()
//! });
//! let outcome = opt.run_to_convergence(2_000);
//! assert!(outcome.converged);
//! // The allocation respects the deadline.
//! let lat = opt.allocation().task_latency(&opt.problem().tasks()[0]);
//! assert!(lat <= 20.0 + 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod allocation;
pub mod error;
pub mod graph;
pub mod ids;
pub mod lagrangian;
pub mod optimizer;
pub mod overload;
pub mod percentile;
pub mod plan;
pub mod prices;
pub mod problem;
pub mod resource;
pub mod schedulability;
pub mod shard;
pub mod share;
pub mod subtask;
pub mod task;
pub mod trace;
pub mod utility;

pub use admission::{probe_admission, AdmissionConfig, AdmissionDecision};
pub use allocation::{allocate_latencies, allocate_task, clamping_box, AllocationSettings};
pub use error::ModelError;
pub use graph::{Path, SubtaskGraph};
pub use ids::{PathId, ResourceId, SubtaskId, TaskId};
pub use lagrangian::{dual_value, kkt_report, lagrangian_value, DualReport, KktReport};
pub use optimizer::{
    Allocation, IterationReport, Optimizer, OptimizerConfig, OptimizerState, OptimizerTelemetry,
    RunOutcome, StateImportError,
};
pub use overload::{governed_step, select_victim, shed_ranking, OverloadConfig, OverloadMonitor};
pub use percentile::{compose_path_percentile, PercentileSpec};
pub use plan::{Plan, PlanScratch, TaskPlan};
pub use prices::{PriceState, StepSizePolicy};
pub use problem::{MembershipReport, Problem};
pub use resource::{Resource, ResourceKind};
pub use schedulability::{analyze_schedulability, SchedulabilityConfig, SchedulabilityVerdict};
pub use shard::{ResourceOwner, ShardSpec, ShardStepTiming, ShardedOptimizer};
pub use share::ShareModel;
pub use subtask::Subtask;
pub use task::{Aggregation, Task, TaskBuilder, TriggerSpec};
pub use trace::Trace;
pub use utility::UtilityFn;
