//! The Lagrangian (Eq. 5), the dual function (Eq. 6), and KKT diagnostics.
//!
//! These are not needed to *run* LLA — the optimizer only needs the
//! allocation and price steps — but they are the mathematical backbone of
//! the algorithm's correctness, and this module exposes them so tests (and
//! users) can verify that a converged allocation is actually optimal:
//! stationarity residuals vanish, complementary slackness holds, and the
//! duality gap closes.

use crate::allocation::{allocate_latencies, clamping_box, AllocationSettings};
use crate::prices::PriceState;
use crate::problem::Problem;

/// Evaluates the Lagrangian (Eq. 5) at the given primal/dual point:
///
/// ```text
/// L = Σ_i U_i − Σ_r μ_r(Σ_{s∈S_r} share − B_r) − Σ_p λ_p(Σ_{s∈p} lat_s − C_i)
/// ```
pub fn lagrangian_value(problem: &Problem, lats: &[Vec<f64>], prices: &PriceState) -> f64 {
    let mut value = problem.total_utility(lats);
    for r in problem.resources() {
        let usage = problem.resource_usage(r.id(), lats);
        value -= prices.mu(r.id().index()) * (usage - r.availability());
    }
    for task in problem.tasks() {
        let t = task.id().index();
        let tl = &lats[t];
        for (p, path) in task.graph().paths().iter().enumerate() {
            value -= prices.lambda(t, p) * (path.latency(tl) - task.critical_time());
        }
    }
    value
}

/// The dual function `D(μ, λ) = max_lat L(lat, μ, λ)` (Eq. 6), evaluated by
/// running the latency-allocation step, together with the maximizing
/// allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct DualReport {
    /// The dual value `D(μ, λ)`.
    pub value: f64,
    /// The allocation achieving it.
    pub maximizer: Vec<Vec<f64>>,
}

/// Computes the dual function at the given prices.
///
/// By weak duality, `D(μ, λ) ≥ Σ U_i` for every *feasible* allocation; the
/// gap closes at the optimum. This is the quantity the price-update step
/// descends.
pub fn dual_value(
    problem: &Problem,
    prices: &PriceState,
    settings: &AllocationSettings,
) -> DualReport {
    let start = problem.initial_allocation();
    let maximizer = allocate_latencies(problem, prices, settings, &start);
    let value = lagrangian_value(problem, &maximizer, prices);
    DualReport { value, maximizer }
}

/// KKT optimality diagnostics at a primal/dual point.
///
/// At an exact optimum all four residuals are zero (stationarity is only
/// required for latencies strictly inside their clamping box).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KktReport {
    /// `max_s |w_s f'(A) − Σλ_p − μ_r ∂share/∂lat|` over interior subtasks.
    pub max_stationarity_residual: f64,
    /// `max_r (usage_r − B_r)`, clamped below at 0.
    pub max_resource_violation: f64,
    /// `max_p (path_latency/C_i − 1)`, clamped below at 0.
    pub max_path_violation: f64,
    /// `max` over constraints of `|multiplier · slack|` (complementary
    /// slackness).
    pub max_complementary_slackness: f64,
}

impl KktReport {
    /// Whether all residuals are below `tol`.
    pub fn is_optimal(&self, tol: f64) -> bool {
        self.max_stationarity_residual <= tol
            && self.max_resource_violation <= tol
            && self.max_path_violation <= tol
            && self.max_complementary_slackness <= tol
    }
}

/// Computes KKT residuals for the allocation `lats` at prices `prices`.
///
/// Subtasks whose latency sits on (or within `boundary_tol` of) its
/// clamping box are excluded from the stationarity residual: at a clamp the
/// gradient need not vanish.
pub fn kkt_report(
    problem: &Problem,
    lats: &[Vec<f64>],
    prices: &PriceState,
    settings: &AllocationSettings,
    boundary_tol: f64,
) -> KktReport {
    // One pass per task covers both the Σλ accumulation and the per-path
    // complementary slackness (`max` accumulation is order-independent, so
    // folding paths here matches a separate walk).
    let mut stat = 0.0f64;
    let mut comp = 0.0f64;
    for task in problem.tasks() {
        let t = task.id().index();
        let tl = &lats[t];
        let a = task.aggregate_latency(tl);
        let fprime = task.utility_fn().derivative(a);
        let (lo, hi) = clamping_box(problem, task, settings);

        let mut lambda_sum = vec![0.0; task.len()];
        for (p, path) in task.graph().paths().iter().enumerate() {
            let lp = prices.lambda(t, p);
            for &s in path.subtasks() {
                lambda_sum[s] += lp;
            }
            let slack = 1.0 - path.latency(tl) / task.critical_time();
            comp = comp.max((lp * slack).abs());
        }

        for s in 0..task.len() {
            let lat = tl[s];
            if lat - lo[s] <= boundary_tol || hi[s] - lat <= boundary_tol {
                continue;
            }
            let model = problem.share_model(task.subtask_id(s));
            let mu = prices.mu(task.subtasks()[s].resource().index());
            let residual = task.weights()[s] * fprime - lambda_sum[s] - mu * model.dshare_dlat(lat);
            stat = stat.max(residual.abs());
        }
    }

    for r in problem.resources() {
        let slack = r.availability() - problem.resource_usage(r.id(), lats);
        comp = comp.max((prices.mu(r.id().index()) * slack).abs());
    }

    KktReport {
        max_stationarity_residual: stat,
        max_resource_violation: problem.max_resource_violation(lats).max(0.0),
        max_path_violation: problem.max_path_violation(lats).max(0.0),
        max_complementary_slackness: comp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ResourceId, TaskId};
    use crate::prices::StepSizePolicy;
    use crate::resource::{Resource, ResourceKind};
    use crate::task::TaskBuilder;

    fn problem() -> Problem {
        let resources = vec![
            Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
            Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
        ];
        let mut b = TaskBuilder::new("t");
        let a = b.subtask("a", ResourceId::new(0), 2.0);
        let c = b.subtask("b", ResourceId::new(1), 3.0);
        b.edge(a, c).unwrap();
        b.critical_time(30.0);
        Problem::new(resources, vec![b.build(TaskId::new(0)).unwrap()]).unwrap()
    }

    #[test]
    fn lagrangian_equals_utility_at_zero_prices() {
        let p = problem();
        let prices = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        let lats = vec![vec![10.0, 10.0]];
        assert!((lagrangian_value(&p, &lats, &prices) - p.total_utility(&lats)).abs() < 1e-12);
    }

    #[test]
    fn lagrangian_penalizes_congestion_with_positive_prices() {
        let p = problem();
        let mut prices = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        prices.set_mu(0, 5.0);
        // Congested allocation: share for subtask 0 = 3/2 > B = 1.
        let tight = vec![vec![2.0, 10.0]];
        let relaxed = vec![vec![10.0, 10.0]];
        let l_tight = lagrangian_value(&p, &tight, &prices);
        let u_tight = p.total_utility(&tight);
        // With share > B on resource 0 the penalty term is negative.
        assert!(l_tight < u_tight);
        let l_rel = lagrangian_value(&p, &relaxed, &prices);
        let u_rel = p.total_utility(&relaxed);
        // With slack the penalty is a bonus (mu * positive slack).
        assert!(l_rel > u_rel);
    }

    #[test]
    fn dual_dominates_feasible_primal() {
        // Weak duality: D(mu, lambda) >= utility of any feasible allocation.
        let p = problem();
        let settings = AllocationSettings { throughput_floor: false, ..Default::default() };
        let feasible = vec![vec![12.0, 12.0]]; // usage ~ 0.25+0.33, paths 24 < 30
        assert!(p.is_feasible(&feasible, 1e-9));
        let primal = p.total_utility(&feasible);
        for mu in [0.0, 1.0, 10.0, 100.0] {
            let mut prices = PriceState::new(&p, StepSizePolicy::fixed(1.0));
            prices.set_mu(0, mu);
            prices.set_mu(1, mu * 0.5);
            let dual = dual_value(&p, &prices, &settings);
            assert!(
                dual.value >= primal - 1e-9,
                "weak duality violated at mu={mu}: {} < {primal}",
                dual.value
            );
        }
    }

    #[test]
    fn dual_maximizer_maximizes_lagrangian() {
        // Perturbing the maximizer must not increase the Lagrangian.
        let p = problem();
        let settings = AllocationSettings { throughput_floor: false, ..Default::default() };
        let mut prices = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        prices.set_mu(0, 20.0);
        prices.set_mu(1, 20.0);
        let dual = dual_value(&p, &prices, &settings);
        let base = lagrangian_value(&p, &dual.maximizer, &prices);
        for (t, s) in [(0usize, 0usize), (0, 1)] {
            for delta in [-0.5, 0.5] {
                let mut perturbed = dual.maximizer.clone();
                perturbed[t][s] = (perturbed[t][s] + delta).max(0.1);
                let lv = lagrangian_value(&p, &perturbed, &prices);
                assert!(lv <= base + 1e-9, "perturbation increased L: {lv} > {base}");
            }
        }
    }

    #[test]
    fn kkt_flags_infeasible_allocation() {
        let p = problem();
        let prices = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        let settings = AllocationSettings::default();
        let bad = vec![vec![20.0, 20.0]]; // path 40 > 30
        let report = kkt_report(&p, &bad, &prices, &settings, 1e-9);
        assert!(report.max_path_violation > 0.0);
        assert!(!report.is_optimal(1e-6));
    }

    #[test]
    fn kkt_stationarity_zero_at_allocator_output() {
        let p = problem();
        let settings = AllocationSettings { throughput_floor: false, ..Default::default() };
        let mut prices = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        prices.set_mu(0, 30.0);
        prices.set_mu(1, 30.0);
        let dual = dual_value(&p, &prices, &settings);
        let report = kkt_report(&p, &dual.maximizer, &prices, &settings, 1e-9);
        assert!(
            report.max_stationarity_residual < 1e-8,
            "allocator output must satisfy stationarity, got {}",
            report.max_stationarity_residual
        );
    }
}
