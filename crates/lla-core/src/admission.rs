//! Admission control layered on top of LLA (§3.2).
//!
//! The paper scopes admission control out but notes it "is layered on top
//! of our approach". This module provides that layer: a candidate task is
//! admitted by *probing* — solve the optimization with the candidate
//! included and admit only if LLA converges to a feasible allocation
//! (§5.4's schedulability test), optionally also requiring that the
//! incumbent tasks' total utility not degrade by more than a configured
//! fraction.

use crate::error::ModelError;
use crate::optimizer::Optimizer;
use crate::problem::{MembershipReport, Problem};
use crate::schedulability::{analyze_schedulability, SchedulabilityConfig, SchedulabilityVerdict};
use crate::task::TaskBuilder;

/// Policy for [`probe_admission`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdmissionConfig {
    /// The schedulability probe configuration.
    pub schedulability: SchedulabilityConfig,
    /// Maximum tolerated relative drop of the incumbents' utility
    /// (`0.2` = the already-admitted tasks may lose up to 20% of their
    /// current total utility). `None` admits on schedulability alone.
    pub max_incumbent_degradation: Option<f64>,
}

/// The outcome of an admission probe.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionDecision {
    /// The candidate fits: the expanded problem is returned ready to run,
    /// along with the utilities before and after.
    Admit {
        /// The problem including the admitted task (dense ids preserved).
        problem: Problem,
        /// Incumbents' utility before admission (at their converged
        /// allocation).
        incumbent_utility_before: f64,
        /// Incumbents' utility after admission (candidate excluded).
        incumbent_utility_after: f64,
        /// Total utility after admission (candidate included).
        total_utility: f64,
        /// How dense indices moved (nothing did — incumbents keep their
        /// ids; the candidate's id is in
        /// [`MembershipReport::added_task`]). Feed this to
        /// [`PriceState::remap`](crate::PriceState::remap) to splice the
        /// newcomer into a running optimizer warm.
        remap: MembershipReport,
    },
    /// The expanded system is unschedulable (or could not be shown
    /// schedulable within the probe budget).
    RejectUnschedulable {
        /// The probe's verdict.
        verdict: SchedulabilityVerdict,
    },
    /// Schedulable, but the incumbents would lose more utility than the
    /// policy tolerates.
    RejectDegradation {
        /// Incumbents' utility before admission.
        before: f64,
        /// Incumbents' utility with the candidate admitted.
        after: f64,
    },
}

impl AdmissionDecision {
    /// Whether the candidate was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionDecision::Admit { .. })
    }
}

/// Probes whether `candidate` can join `problem` without breaking it.
///
/// The candidate keeps its builder form because its
/// [`TaskId`](crate::TaskId) is assigned here (dense, one past the
/// incumbents).
///
/// # Errors
///
/// Propagates [`ModelError`]s from building the candidate (invalid graph
/// or parameters, unknown resources).
pub fn probe_admission(
    problem: &Problem,
    candidate: &TaskBuilder,
    config: &AdmissionConfig,
) -> Result<AdmissionDecision, ModelError> {
    let mut expanded = problem.clone();
    let remap = expanded.add_task(candidate)?;

    // Schedulability probe on the expanded system.
    let verdict = analyze_schedulability(expanded.clone(), &config.schedulability);
    if !verdict.is_schedulable() {
        return Ok(AdmissionDecision::RejectUnschedulable { verdict });
    }

    // Converged utilities before and after for the degradation policy.
    let mut before_opt = Optimizer::new(problem.clone(), config.schedulability.optimizer);
    before_opt.run_to_convergence(config.schedulability.max_iters);
    let before = before_opt.utility();

    let mut after_opt = Optimizer::new(expanded.clone(), config.schedulability.optimizer);
    after_opt.run_to_convergence(config.schedulability.max_iters);
    let alloc = after_opt.allocation();
    let incumbent_after: f64 = problem
        .tasks()
        .iter()
        .map(|t| expanded.tasks()[t.id().index()].utility(&alloc.lats()[t.id().index()]))
        .sum();
    let total = after_opt.utility();

    if let Some(max_drop) = config.max_incumbent_degradation {
        let drop = (before - incumbent_after) / before.abs().max(1.0);
        if drop > max_drop {
            return Ok(AdmissionDecision::RejectDegradation { before, after: incumbent_after });
        }
    }

    Ok(AdmissionDecision::Admit {
        problem: expanded,
        incumbent_utility_before: before,
        incumbent_utility_after: incumbent_after,
        total_utility: total,
        remap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ResourceId, TaskId};
    use crate::optimizer::OptimizerConfig;
    use crate::prices::StepSizePolicy;
    use crate::resource::{Resource, ResourceKind};
    use crate::utility::UtilityFn;

    fn base_problem(n_tasks: usize) -> Problem {
        let resources = vec![
            Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
            Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
        ];
        let mut tasks = Vec::new();
        for i in 0..n_tasks {
            let mut b = TaskBuilder::new(format!("t{i}"));
            let a = b.subtask("a", ResourceId::new(0), 2.0);
            let c = b.subtask("b", ResourceId::new(1), 3.0);
            b.edge(a, c).unwrap();
            b.critical_time(60.0).utility(UtilityFn::linear_for_deadline(2.0, 60.0));
            tasks.push(b.build(TaskId::new(i)).unwrap());
        }
        Problem::new(resources, tasks).unwrap()
    }

    fn candidate(critical_time: f64, wcet: f64) -> TaskBuilder {
        let mut b = TaskBuilder::new("candidate");
        let a = b.subtask("a", ResourceId::new(0), wcet);
        let c = b.subtask("b", ResourceId::new(1), wcet);
        b.edge(a, c).unwrap();
        b.critical_time(critical_time).utility(UtilityFn::linear_for_deadline(2.0, critical_time));
        b
    }

    fn config() -> AdmissionConfig {
        AdmissionConfig {
            schedulability: SchedulabilityConfig {
                optimizer: OptimizerConfig {
                    step_policy: StepSizePolicy::sign_adaptive(1.0),
                    ..OptimizerConfig::default()
                },
                max_iters: 5_000,
                ..SchedulabilityConfig::default()
            },
            max_incumbent_degradation: None,
        }
    }

    #[test]
    fn light_candidate_is_admitted() {
        let problem = base_problem(2);
        let decision = probe_admission(&problem, &candidate(60.0, 2.0), &config()).unwrap();
        match decision {
            AdmissionDecision::Admit { problem, total_utility, .. } => {
                assert_eq!(problem.tasks().len(), 3);
                assert!(total_utility.is_finite());
            }
            other => panic!("expected admit, got {other:?}"),
        }
    }

    #[test]
    fn impossible_candidate_is_rejected() {
        // WCET 20ms with a 25ms two-stage deadline on congested CPUs.
        let problem = base_problem(6);
        let decision = probe_admission(&problem, &candidate(25.0, 20.0), &config()).unwrap();
        assert!(
            matches!(decision, AdmissionDecision::RejectUnschedulable { .. }),
            "expected rejection, got {decision:?}"
        );
    }

    #[test]
    fn degradation_policy_rejects_greedy_candidate() {
        let problem = base_problem(2);
        // A heavy but schedulable candidate that squeezes the incumbents.
        let greedy = candidate(60.0, 8.0);
        let lenient = probe_admission(&problem, &greedy, &config()).unwrap();
        assert!(lenient.is_admitted(), "schedulable candidate should pass without policy");

        let strict = AdmissionConfig { max_incumbent_degradation: Some(0.02), ..config() };
        let decision = probe_admission(&problem, &greedy, &strict).unwrap();
        assert!(
            matches!(decision, AdmissionDecision::RejectDegradation { .. }),
            "2% degradation budget should reject: {decision:?}"
        );
    }

    #[test]
    fn admitted_problem_is_runnable() {
        let problem = base_problem(1);
        let decision = probe_admission(&problem, &candidate(60.0, 3.0), &config()).unwrap();
        let AdmissionDecision::Admit { problem, .. } = decision else {
            panic!("expected admit");
        };
        let mut opt = Optimizer::new(problem, config().schedulability.optimizer);
        assert!(opt.run_to_convergence(5_000).converged);
    }

    #[test]
    fn admit_reports_identity_remap_with_new_id() {
        let problem = base_problem(2);
        let decision = probe_admission(&problem, &candidate(60.0, 2.0), &config()).unwrap();
        let AdmissionDecision::Admit { remap, .. } = decision else {
            panic!("expected admit");
        };
        assert_eq!(remap.added_task, Some(TaskId::new(2)));
        assert_eq!(remap.task_map, vec![Some(0), Some(1)], "incumbents keep their ids");
        assert!(remap.resource_map.iter().enumerate().all(|(i, m)| *m == Some(i)));
    }

    #[test]
    fn admit_then_evict_is_bit_identical_to_never_admitting() {
        // Regression: splicing a task in via the admission remap and then
        // removing it again must leave the incumbents' problem — and the
        // allocation a fresh solve produces — exactly as if the candidate
        // had never existed.
        let problem = base_problem(2);
        let mut baseline = Optimizer::new(problem.clone(), config().schedulability.optimizer);
        baseline.run(400);

        let decision = probe_admission(&problem, &candidate(60.0, 2.0), &config()).unwrap();
        let AdmissionDecision::Admit { problem: expanded, remap, .. } = decision else {
            panic!("expected admit");
        };
        let mut churned = expanded;
        churned.remove_task(remap.added_task.unwrap()).unwrap();
        assert_eq!(churned, problem, "admit+evict must round-trip the problem exactly");

        let mut after = Optimizer::new(churned, config().schedulability.optimizer);
        after.run(400);
        assert_eq!(
            baseline.allocation().lats(),
            after.allocation().lats(),
            "incumbent allocations must be bit-identical"
        );
    }

    #[test]
    fn invalid_candidate_propagates_model_error() {
        let problem = base_problem(1);
        let mut b = TaskBuilder::new("broken");
        b.subtask("a", ResourceId::new(9), 1.0); // unknown resource
        b.critical_time(10.0);
        assert!(probe_admission(&problem, &b, &config()).is_err());
    }
}
