//! Latency allocation: the per-task-controller half of an LLA iteration
//! (§4.2).
//!
//! Given resource prices `μ_r` and path prices `λ_p`, each task controller
//! maximizes the Lagrangian over its own subtask latencies by solving the
//! stationarity condition (Eq. 7)
//!
//! ```text
//! 0 = ∂U_i/∂lat_s − Σ_{p∋s} λ_p − μ_r · ∂share_r(s, lat_s)/∂lat_s
//! ```
//!
//! With `U_i = f_i(A)` for the aggregate `A = Σ_s w_s·lat_s` and the share
//! model of Eq. 10 this yields the closed form
//! `lat_s = ê_s + sqrt(μ_r·(c_s+l_r) / (−w_s·f'(A) + Σ_{p∋s} λ_p))`.
//!
//! For the paper's linear utilities `f'` is constant and the solve is a
//! single pass. For general concave utilities `A` couples the subtasks of a
//! task, and we run a damped fixed-point iteration on `A`; concavity makes
//! `−f'(A)` non-decreasing in `A`, which keeps the iteration stable.
//!
//! Latencies are clamped to a box `[lat_lo, lat_hi]`:
//!
//! * `lat_lo` keeps any single subtask's share within the resource
//!   availability `B_r`;
//! * `lat_hi` is the tightest of the task's critical time, the subtask's
//!   explicit cap, and (optionally) the *throughput floor* — the latency at
//!   which the share equals `rate · WCET`, below which jobs would queue
//!   unboundedly (§6.2).

use crate::prices::PriceState;
use crate::problem::Problem;
use crate::task::Task;
use crate::utility::UtilityFn;
use serde::{Deserialize, Serialize};

/// Tunables for the latency-allocation solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocationSettings {
    /// Enforce `share ≥ rate · WCET` via a latency upper clamp.
    pub throughput_floor: bool,
    /// Convergence tolerance of the fixed-point iteration on the aggregate
    /// latency (relative).
    pub fixed_point_tol: f64,
    /// Maximum fixed-point iterations for non-linear utilities.
    pub fixed_point_max_iters: usize,
    /// Damping factor in `(0, 1]`: `A ← (1−d)·A + d·A_new`.
    pub damping: f64,
}

impl Default for AllocationSettings {
    fn default() -> Self {
        AllocationSettings {
            throughput_floor: true,
            fixed_point_tol: 1e-10,
            fixed_point_max_iters: 60,
            damping: 0.5,
        }
    }
}

/// Computes new latencies for every subtask of every task, given the
/// current prices — one latency-allocation step of LLA across all task
/// controllers.
///
/// `previous` warm-starts the aggregate for non-linear utilities and must
/// have the problem's shape (`previous[t].len() == tasks[t].len()`).
///
/// # Panics
///
/// Panics if `previous` does not match the problem's shape.
pub fn allocate_latencies(
    problem: &Problem,
    prices: &PriceState,
    settings: &AllocationSettings,
    previous: &[Vec<f64>],
) -> Vec<Vec<f64>> {
    assert_eq!(previous.len(), problem.tasks().len(), "allocation shape mismatch");
    problem
        .tasks()
        .iter()
        .map(|t| allocate_task(problem, t, prices, settings, &previous[t.id().index()]))
        .collect()
}

/// The per-subtask latency bounds `[lat_lo, lat_hi]` the allocator clamps
/// to for one task.
///
/// `lat_lo` bounds a subtask's share by the availability of its resource;
/// `lat_hi` is the tightest of the critical time, the explicit per-subtask
/// cap, and the throughput floor (when enabled). An infeasible box
/// (`lo > hi`) collapses to `hi = lo`: the share bound wins and the price
/// dynamics surface the congestion.
pub fn clamping_box(
    problem: &Problem,
    task: &Task,
    settings: &AllocationSettings,
) -> (Vec<f64>, Vec<f64>) {
    let n = task.len();
    let mut lo = vec![0.0; n];
    let mut hi = vec![0.0; n];
    for s in 0..n {
        let sub = &task.subtasks()[s];
        let model = problem.share_model(task.subtask_id(s));
        let b_r = problem.resource(sub.resource()).availability().max(1e-9);
        lo[s] = model.min_latency(b_r).max(f64::MIN_POSITIVE);
        let mut cap = task.critical_time();
        if let Some(c) = sub.max_latency() {
            cap = cap.min(c);
        }
        if settings.throughput_floor {
            let min_share = task.trigger().mean_rate() * sub.exec_time();
            if min_share > 0.0 {
                cap = cap.min(model.min_latency(min_share));
            }
        }
        hi[s] = cap.max(lo[s]);
    }
    (lo, hi)
}

/// Latency allocation for a single task controller (Algorithm "Latency
/// Allocation" in §4.2).
///
/// # Panics
///
/// Panics if `previous.len()` differs from the task's subtask count.
pub fn allocate_task(
    problem: &Problem,
    task: &Task,
    prices: &PriceState,
    settings: &AllocationSettings,
    previous: &[f64],
) -> Vec<f64> {
    let n = task.len();
    assert_eq!(previous.len(), n, "allocation shape mismatch");
    let t = task.id().index();

    // Σ_{p∋s} λ_p for every subtask: accumulate over the task's paths.
    let mut lambda_sum = vec![0.0; n];
    for (p, path) in task.graph().paths().iter().enumerate() {
        let lp = prices.lambda(t, p);
        if lp != 0.0 {
            for &s in path.subtasks() {
                lambda_sum[s] += lp;
            }
        }
    }

    let (lo, hi) = clamping_box(problem, task, settings);

    let weights = task.weights();
    let solve_pass = |a: f64, out: &mut Vec<f64>| {
        let fprime = task.utility_fn().derivative(a);
        for s in 0..n {
            let sub = &task.subtasks()[s];
            let model = problem.share_model(task.subtask_id(s));
            let mu = prices.mu(sub.resource().index());
            let pressure = -weights[s] * fprime + lambda_sum[s];
            let lat = model.stationary_latency(mu, pressure).unwrap_or(hi[s]).clamp(lo[s], hi[s]);
            out[s] = lat;
        }
    };

    let mut lats = vec![0.0; n];
    if matches!(task.utility_fn(), UtilityFn::Linear { .. }) {
        // f' is constant: a single pass is exact.
        solve_pass(0.0, &mut lats);
        return lats;
    }

    // General concave utility: damped fixed point on the aggregate A.
    let mut a = task.aggregate_latency(previous);
    for _ in 0..settings.fixed_point_max_iters {
        solve_pass(a, &mut lats);
        let a_new = task.aggregate_latency(&lats);
        let next = (1.0 - settings.damping) * a + settings.damping * a_new;
        if (next - a).abs() <= settings.fixed_point_tol * a.abs().max(1.0) {
            a = next;
            break;
        }
        a = next;
    }
    solve_pass(a, &mut lats);
    lats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ResourceId, TaskId};
    use crate::prices::StepSizePolicy;
    use crate::resource::{Resource, ResourceKind};
    use crate::task::{TaskBuilder, TriggerSpec};

    fn problem_with(utility: Option<UtilityFn>) -> Problem {
        let resources = vec![
            Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
            Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
        ];
        let mut b = TaskBuilder::new("t");
        let a = b.subtask("a", ResourceId::new(0), 2.0);
        let c = b.subtask("b", ResourceId::new(1), 3.0);
        b.edge(a, c).unwrap();
        b.critical_time(40.0);
        if let Some(u) = utility {
            b.utility(u);
        }
        Problem::new(resources, vec![b.build(TaskId::new(0)).unwrap()]).unwrap()
    }

    #[test]
    fn linear_utility_closed_form_matches_stationarity() {
        let p = problem_with(None); // f = 2C - lat, f' = -1
        let mut prices = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        prices.set_mu(0, 4.0);
        prices.set_mu(1, 9.0);
        let settings = AllocationSettings { throughput_floor: false, ..Default::default() };
        let prev = p.initial_allocation();
        let lats = allocate_latencies(&p, &prices, &settings, &prev);
        // d = 1 (w=1, f'=-1, lambda=0): lat_s = sqrt(mu * demand).
        assert!((lats[0][0] - (4.0f64 * 3.0).sqrt()).abs() < 1e-9);
        assert!((lats[0][1] - (9.0f64 * 4.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn zero_prices_push_latency_to_upper_clamp() {
        let p = problem_with(None);
        let prices = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        let settings = AllocationSettings { throughput_floor: false, ..Default::default() };
        let prev = p.initial_allocation();
        let lats = allocate_latencies(&p, &prices, &settings, &prev);
        // mu = 0 => stationary latency 0 => clamped to the *lower* bound
        // (share = B_r): with B=1, lo = demand.
        assert!((lats[0][0] - 3.0).abs() < 1e-9);
        assert!((lats[0][1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn lambda_pressure_reduces_latency() {
        let p = problem_with(None);
        let mut prices = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        prices.set_mu(0, 100.0);
        let settings = AllocationSettings { throughput_floor: false, ..Default::default() };
        let prev = p.initial_allocation();
        let base = allocate_latencies(&p, &prices, &settings, &prev)[0][0];
        prices.set_lambda(0, 0, 3.0);
        let pressured = allocate_latencies(&p, &prices, &settings, &prev)[0][0];
        assert!(pressured < base, "path price must push latencies down: {pressured} !< {base}");
        // d goes from 1 to 4 => lat shrinks by factor 2.
        assert!((base / pressured - 2.0).abs() < 1e-9);
    }

    #[test]
    fn latency_never_exceeds_critical_time() {
        let p = problem_with(None);
        let mut prices = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        prices.set_mu(0, 1e9);
        prices.set_mu(1, 1e9);
        let settings = AllocationSettings { throughput_floor: false, ..Default::default() };
        let prev = p.initial_allocation();
        let lats = allocate_latencies(&p, &prices, &settings, &prev);
        for &l in &lats[0] {
            assert!(l <= 40.0 + 1e-9);
        }
    }

    #[test]
    fn throughput_floor_caps_latency() {
        let resources = vec![Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(5.0)];
        let mut b = TaskBuilder::new("fast");
        b.subtask("s", ResourceId::new(0), 5.0);
        b.critical_time(1000.0).trigger(TriggerSpec::Periodic { period: 25.0 }); // 40/s
        let p = Problem::new(resources, vec![b.build(TaskId::new(0)).unwrap()]).unwrap();
        let mut prices = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        prices.set_mu(0, 1e9); // enormous price => wants huge latency
        let settings = AllocationSettings::default();
        let prev = p.initial_allocation();
        let lats = allocate_latencies(&p, &prices, &settings, &prev);
        // min share = 0.04/ms * 5ms = 0.2 => lat cap = (5+5)/0.2 = 50ms.
        assert!((lats[0][0] - 50.0).abs() < 1e-9);
        let share = p.share_model(p.tasks()[0].subtask_id(0)).share_for_latency(lats[0][0]);
        assert!(share >= 0.2 - 1e-12, "throughput floor share violated");
    }

    #[test]
    fn nonlinear_utility_fixed_point_satisfies_stationarity() {
        let u = UtilityFn::Quadratic { offset: 200.0, lin: 1.0, quad: 0.05 };
        let p = problem_with(Some(u));
        let mut prices = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        prices.set_mu(0, 50.0);
        prices.set_mu(1, 50.0);
        let settings = AllocationSettings { throughput_floor: false, ..Default::default() };
        let prev = p.initial_allocation();
        let lats = allocate_latencies(&p, &prices, &settings, &prev);
        let task = &p.tasks()[0];
        let a = task.aggregate_latency(&lats[0]);
        let fprime = task.utility_fn().derivative(a);
        // Check Eq. 7 at the solution for each unclamped subtask.
        for (s, &lat) in lats[0].iter().enumerate() {
            let model = p.share_model(task.subtask_id(s));
            let mu = prices.mu(task.subtasks()[s].resource().index());
            let residual = task.weights()[s] * fprime - 0.0 - mu * model.dshare_dlat(lat);
            assert!(
                residual.abs() < 1e-6,
                "stationarity residual {residual} too large for subtask {s}"
            );
        }
    }

    #[test]
    fn higher_mu_means_higher_latency_lower_share() {
        let p = problem_with(None);
        let settings = AllocationSettings { throughput_floor: false, ..Default::default() };
        let prev = p.initial_allocation();
        let mut last = 0.0;
        for mu in [1.0, 4.0, 16.0, 64.0] {
            let mut prices = PriceState::new(&p, StepSizePolicy::fixed(1.0));
            prices.set_mu(0, mu);
            let lat = allocate_latencies(&p, &prices, &settings, &prev)[0][0];
            assert!(lat > last, "latency must rise with resource price");
            last = lat;
        }
    }
}
