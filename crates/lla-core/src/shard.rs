//! Sharded hierarchical price optimization: per-shard price-discovery
//! loops coordinated only through the prices of shared resources.
//!
//! A flat [`Optimizer`](crate::optimizer::Optimizer) walks every task and
//! every resource each iteration; at million-task scale both the walk and
//! the membership-churn re-lowering cost become O(problem). Following the
//! price-discovery decomposition of Agrawal et al. ("Allocation of
//! Fungible Resources via a Fast, Scalable Price Discovery Method"), a
//! [`ShardedOptimizer`] partitions the task set into shards that each run
//! the full LLA iteration over a *subset plan* ([`Plan::lower_subset`]),
//! and reconciles the prices of resources used by more than one shard in
//! a deterministic coordinator round.
//!
//! # Resource ownership
//!
//! Every resource has exactly one price authority, its
//! [`ResourceOwner`]:
//!
//! - **`Shard(k)`** — every subtask on the resource belongs to shard `k`;
//!   the shard applies the μ step (Eq. 8) locally, exactly as the
//!   monolithic optimizer would.
//! - **`Coordinator`** — the resource is shared between shards (or used
//!   by none); the coordinator sums the shards' partial usages *in shard
//!   order*, applies one μ step, and broadcasts the new price and
//!   congestion bit back to every shard touching the resource.
//!
//! # The three-phase round
//!
//! One [`step`](ShardedOptimizer::step) is:
//!
//! 1. **Shard-local** (fans out across shards under the `parallel`
//!    feature): latency allocation over the shard plan, usage and path
//!    latencies into shard scratch, μ steps for *owned* resources only.
//! 2. **Coordinator** (sequential, deterministic): per coordinator-owned
//!    resource in ascending index order, aggregate usage → one μ step →
//!    broadcast μ + congestion to touching shards.
//! 3. **Path steps** (fans out): each shard applies its λ steps (Eq. 9)
//!    with the now-complete congestion bits.
//!
//! Because every kernel reuses the plan module's bit-exact CSR kernels
//! and all cross-shard reductions run in fixed shard order, a one-shard
//! `ShardedOptimizer` is **bit-identical** to the monolithic `Optimizer`.
//! Multi-shard runs differ from the monolithic fold only by the
//! reassociation of shared-resource usage sums (a few ulps per round);
//! `tests/shard_equivalence.rs` pins the resulting allocations to within
//! `1e-9` of the monolithic ones.
//!
//! # Incremental re-lowering
//!
//! Plan invalidation is per-shard, not per-problem: a membership epoch
//! re-lowers only the mutated shard's plan (reusing its
//! [`PlanScratch`] pool via [`PlanScratch::resize_for`]), so churn cost
//! is O(shard), not O(problem). The invariants:
//!
//! - `add_task` appends to one shard → re-lower that shard only.
//! - `remove_task` splices the owning shard → re-lower that shard only
//!   (other shards' plans hold no global task indices; only their task
//!   *lists* are remapped, which is index arithmetic).
//! - `set_resource_availability(r)` re-lowers every shard *touching* `r`
//!   (clamping boxes are lowered from `B_r`), and no others.
//!
//! Re-lowerings publish to the same `lla_opt_plan_lowerings_total`
//! counter as the monolithic optimizer, so the telemetry contract — "one
//! membership change, one shard lowered" — is directly observable.

use crate::error::ModelError;
use crate::ids::{ResourceId, TaskId};
use crate::lagrangian::{kkt_report, KktReport};
use crate::optimizer::{
    Allocation, IterationReport, OptimizerConfig, OptimizerState, RunOutcome, StateImportError,
};
use crate::plan::{Plan, PlanScratch};
use crate::prices::PriceState;
use crate::problem::{MembershipReport, Problem};
use crate::task::TaskBuilder;
use lla_telemetry::{Counter, Gauge, MetricsRegistry, Profiler};

/// Which authority applies the μ price step for a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceOwner {
    /// Exclusive to one shard: the shard prices it locally.
    Shard(usize),
    /// Shared between shards (or used by none): the coordinator prices it
    /// from aggregated usage.
    Coordinator,
}

/// A partition of a problem's task set into shards.
///
/// Groups are disjoint, jointly cover every task, and each group is
/// nonempty; group order defines shard order and the order *within* a
/// group defines the shard's plan-local task order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    groups: Vec<Vec<usize>>,
}

impl ShardSpec {
    /// Contiguous equal-size blocks: shard `w` of `k` gets tasks
    /// `[n·w/k, n·(w+1)/k)`. The shard count is clamped to the task count
    /// (and to at least one) so no group is empty.
    pub fn contiguous(num_tasks: usize, num_shards: usize) -> ShardSpec {
        let k = num_shards.clamp(1, num_tasks.max(1));
        ShardSpec {
            groups: (0..k)
                .map(|w| (num_tasks * w / k..num_tasks * (w + 1) / k).collect())
                .collect(),
        }
    }

    /// Wraps explicit task groups; validated against the problem by
    /// [`ShardedOptimizer::new`].
    pub fn from_groups(groups: Vec<Vec<usize>>) -> ShardSpec {
        ShardSpec { groups }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.groups.len()
    }

    /// The task groups (global task indices).
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }
}

/// One shard: a subset plan over its tasks, its flat latency state, a
/// price state holding λ rows for its tasks plus a full-width μ mirror,
/// and per-round diagnostics.
#[derive(Debug, Clone)]
struct Shard {
    /// Global task indices in plan-local order.
    tasks: Vec<usize>,
    plan: Plan,
    scratch: PlanScratch,
    /// λ rows for `tasks` (plan-local order); μ entries for *all* global
    /// resources. Authoritative for owned resources, a mirror refreshed
    /// by the coordinator broadcast for shared ones.
    prices: PriceState,
    /// Persistent flat latencies in plan order (`scratch` is transient —
    /// re-lowerings reset it, this survives them).
    lats: Vec<f64>,
    /// `owned[r]`: this shard is `r`'s price authority.
    owned: Vec<bool>,
    /// `touches[r]`: any of this shard's subtasks runs on `r`.
    touches: Vec<bool>,
    /// Per-round outputs of the shard-local phase.
    utility: f64,
    res_violation: f64,
    path_violation: f64,
}

impl Shard {
    /// Phase 1: allocation + owned-resource μ steps + local diagnostics.
    /// `inner_parallel` permits the plan's own threaded allocator (only
    /// safe when shards are not already fanned out across threads).
    fn local_step(&mut self, inner_parallel: bool) {
        self.scratch.prev_mut().copy_from_slice(&self.lats);
        if inner_parallel {
            self.plan.allocate_into(&self.prices, &mut self.scratch);
        } else {
            self.plan.allocate_seq(&self.prices, &mut self.scratch);
        }
        self.lats.copy_from_slice(self.scratch.lats());
        self.plan.owned_resource_steps(&mut self.prices, &mut self.scratch, &self.owned);
        let mut rv = f64::NEG_INFINITY;
        let avail = self.plan.availability();
        for (r, &own) in self.owned.iter().enumerate() {
            if own {
                rv = rv.max(self.scratch.usage()[r] - avail[r]);
            }
        }
        self.res_violation = rv;
        self.path_violation = self.plan.max_path_violation(self.scratch.path_lat());
        self.utility = self.plan.total_utility(self.scratch.lats());
    }

    /// Phase 3: λ path steps with the coordinator-completed congestion
    /// bits.
    fn path_steps(&mut self) {
        self.plan.path_price_steps(&mut self.prices, &self.scratch);
    }
}

/// Metric handles mirroring [`OptimizerTelemetry`]'s names (the registry
/// dedupes by name, so sharded and monolithic optimizers publish to the
/// same series) plus sharding-specific gauges.
///
/// [`OptimizerTelemetry`]: crate::optimizer::OptimizerTelemetry
#[derive(Debug, Clone)]
struct ShardTelemetry {
    iterations: Counter,
    plan_lowerings: Counter,
    gamma_doublings: Counter,
    coordinator_rounds: Counter,
    utility: Gauge,
    resource_violation: Gauge,
    path_violation: Gauge,
    price_step: Gauge,
    shards: Gauge,
    coordinated_resources: Gauge,
    /// Doublings already mirrored into the counter (delta tracking).
    doublings_seen: u64,
}

/// Wall-clock decomposition of one sequentially executed round, from
/// [`ShardedOptimizer::step_timed`].
#[derive(Debug, Clone)]
pub struct ShardStepTiming {
    /// Per-shard nanoseconds (local allocation + μ steps + λ steps).
    pub shard_ns: Vec<f64>,
    /// Coordinator-round nanoseconds (aggregate, step, broadcast).
    pub coordinator_ns: f64,
}

impl ShardStepTiming {
    /// Modeled cost of the round with one free core per shard: the
    /// slowest shard plus the sequential coordinator round.
    pub fn critical_path_ns(&self) -> f64 {
        self.shard_ns.iter().fold(0.0_f64, |a, &b| a.max(b)) + self.coordinator_ns
    }
}

/// The sharded hierarchical LLA driver (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct ShardedOptimizer {
    problem: Problem,
    config: OptimizerConfig,
    shards: Vec<Shard>,
    /// Price authority per resource.
    owner: Vec<ResourceOwner>,
    /// Coordinator-owned resource indices, ascending (shared + unused).
    coordinated: Vec<usize>,
    /// Authoritative duals for coordinator-owned resources (λ-row free).
    coordinator: PriceState,
    /// `B_r` mirror for the coordinator round, refreshed on availability
    /// mutations.
    availability: Vec<f64>,
    /// Global task index → owning shard.
    task_shard: Vec<usize>,
    iteration: usize,
    below_tol: usize,
    last_utility: f64,
    last_violations: Option<(f64, f64)>,
    telemetry: Option<Box<ShardTelemetry>>,
    /// Phase profiler (disabled by default; see
    /// [`attach_profiler`](Self::attach_profiler)).
    profiler: Profiler,
}

impl ShardedOptimizer {
    /// Partitions `problem` by `spec`, lowers one subset plan per shard,
    /// and classifies every resource's price authority.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParameter`] when the spec is not a partition
    /// of the task set (empty, out-of-range, duplicated, or uncovered
    /// task indices; an empty group).
    pub fn new(
        problem: Problem,
        config: OptimizerConfig,
        spec: ShardSpec,
    ) -> Result<Self, ModelError> {
        let nt = problem.tasks().len();
        let nr = problem.resources().len();
        if spec.groups.is_empty() {
            return Err(ModelError::InvalidParameter { what: "shard count", value: 0.0 });
        }
        let mut task_shard = vec![usize::MAX; nt];
        for (k, group) in spec.groups.iter().enumerate() {
            if group.is_empty() {
                return Err(ModelError::InvalidParameter {
                    what: "empty shard group",
                    value: k as f64,
                });
            }
            for &t in group {
                if t >= nt {
                    return Err(ModelError::InvalidParameter {
                        what: "shard task index",
                        value: t as f64,
                    });
                }
                if task_shard[t] != usize::MAX {
                    return Err(ModelError::InvalidParameter {
                        what: "task assigned to two shards",
                        value: t as f64,
                    });
                }
                task_shard[t] = k;
            }
        }
        if let Some(t) = task_shard.iter().position(|&s| s == usize::MAX) {
            return Err(ModelError::InvalidParameter {
                what: "task not covered by any shard",
                value: t as f64,
            });
        }

        // Ownership: exclusive to a shard iff every subtask on the
        // resource belongs to it.
        let mut owner = vec![ResourceOwner::Coordinator; nr];
        for (r, res) in problem.resources().iter().enumerate() {
            let mut touching = None;
            let mut shared = false;
            for sid in problem.subtasks_on(res.id()) {
                let s = task_shard[sid.task().index()];
                match touching {
                    None => touching = Some(s),
                    Some(prev) if prev != s => {
                        shared = true;
                        break;
                    }
                    Some(_) => {}
                }
            }
            if let (Some(s), false) = (touching, shared) {
                owner[r] = ResourceOwner::Shard(s);
            }
        }
        let coordinated: Vec<usize> =
            (0..nr).filter(|&r| owner[r] == ResourceOwner::Coordinator).collect();

        let init = problem.initial_allocation();
        let last_utility = problem.total_utility(&init);
        let shards = spec
            .groups
            .iter()
            .enumerate()
            .map(|(k, group)| {
                let plan = Plan::lower_subset(&problem, &config.allocation, group);
                let scratch = plan.scratch();
                let prices = PriceState::for_shard(&problem, group, config.step_policy);
                let lats: Vec<f64> = group.iter().flat_map(|&t| init[t].iter().copied()).collect();
                let mut touches = vec![false; nr];
                for &t in group {
                    for sub in problem.tasks()[t].subtasks() {
                        touches[sub.resource().index()] = true;
                    }
                }
                let owned: Vec<bool> =
                    (0..nr).map(|r| owner[r] == ResourceOwner::Shard(k)).collect();
                Shard {
                    tasks: group.clone(),
                    plan,
                    scratch,
                    prices,
                    lats,
                    owned,
                    touches,
                    utility: 0.0,
                    res_violation: f64::NEG_INFINITY,
                    path_violation: f64::NEG_INFINITY,
                }
            })
            .collect();
        let coordinator = PriceState::for_shard(&problem, &[], config.step_policy);
        let availability = problem.resources().iter().map(|r| r.availability()).collect();
        Ok(ShardedOptimizer {
            problem,
            config,
            shards,
            owner,
            coordinated,
            coordinator,
            availability,
            task_shard,
            iteration: 0,
            below_tol: 0,
            last_utility,
            last_violations: None,
            telemetry: None,
            profiler: Profiler::disabled(),
        })
    }

    /// The problem being optimized.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The driver configuration.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The price authority for resource `r`.
    pub fn resource_owner(&self, r: usize) -> ResourceOwner {
        self.owner[r]
    }

    /// Resources priced by the coordinator because more than one shard
    /// uses them (excludes unused resources, which the coordinator also
    /// owns but which never congest).
    pub fn num_shared_resources(&self) -> usize {
        self.coordinated
            .iter()
            .filter(|&&r| self.shards.iter().filter(|sh| sh.touches[r]).count() >= 2)
            .count()
    }

    /// The shard owning task `id`.
    pub fn shard_of(&self, id: TaskId) -> usize {
        self.task_shard[id.index()]
    }

    /// Global task indices of shard `k`, in plan-local order.
    pub fn shard_tasks(&self, k: usize) -> &[usize] {
        &self.shards[k].tasks
    }

    /// Total iterations executed over the driver's lifetime.
    pub fn iterations(&self) -> usize {
        self.iteration
    }

    /// The current total utility (recomputed from shard latencies, summed
    /// in shard order).
    pub fn utility(&self) -> f64 {
        self.shards.iter().map(|sh| sh.plan.total_utility(&sh.lats)).sum()
    }

    /// The current allocation, reassembled in global task order.
    pub fn allocation(&self) -> Allocation {
        Allocation::from_lats(self.nested_lats())
    }

    /// The largest relative price movement of the most recent step, over
    /// every shard and the coordinator.
    pub fn max_rel_price_step(&self) -> f64 {
        self.shards
            .iter()
            .map(|sh| sh.prices.last_max_rel_step())
            .fold(self.coordinator.last_max_rel_step(), f64::max)
    }

    /// Cumulative adaptive step-size growth events over every shard and
    /// the coordinator.
    pub fn gamma_doublings(&self) -> u64 {
        self.shards.iter().map(|sh| sh.prices.gamma_doublings()).sum::<u64>()
            + self.coordinator.gamma_doublings()
    }

    /// Registers the optimizer metric family on `registry` (same series
    /// names as the monolithic optimizer, plus shard gauges) and starts
    /// publishing from every subsequent [`step`](Self::step) and shard
    /// re-lowering. Lowerings performed before attachment (including the
    /// initial ones in [`new`](Self::new)) are not back-counted.
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry) {
        let mut tel = ShardTelemetry {
            iterations: registry
                .counter("lla_opt_iterations_total", "optimizer iterations executed"),
            plan_lowerings: registry.counter(
                "lla_opt_plan_lowerings_total",
                "compiled-plan (re-)lowering epochs (membership/problem mutations)",
            ),
            gamma_doublings: registry.counter(
                "lla_opt_gamma_doublings_total",
                "adaptive step-size growth events across all duals",
            ),
            coordinator_rounds: registry.counter(
                "lla_opt_coordinator_rounds_total",
                "shared-price reconciliation rounds executed by the shard coordinator",
            ),
            utility: registry.gauge("lla_opt_utility", "total utility after the last iteration"),
            resource_violation: registry.gauge(
                "lla_opt_max_resource_violation",
                "max_r (usage_r - B_r) after the last iteration",
            ),
            path_violation: registry.gauge(
                "lla_opt_max_path_violation",
                "max_p (path_latency/C - 1) after the last iteration",
            ),
            price_step: registry.gauge(
                "lla_opt_last_max_rel_price_step",
                "largest relative price movement of the last update",
            ),
            shards: registry.gauge("lla_opt_shards", "shards in the sharded optimizer"),
            coordinated_resources: registry.gauge(
                "lla_opt_coordinated_resources",
                "resources priced by the coordinator (shared across shards or unused)",
            ),
            doublings_seen: 0,
        };
        tel.doublings_seen = self.gamma_doublings();
        tel.shards.set(self.shards.len() as f64);
        tel.coordinated_resources.set(self.coordinated.len() as f64);
        self.telemetry = Some(Box::new(tel));
    }

    /// Stops publishing metrics.
    pub fn detach_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// Starts charging per-phase wall time and call counts to
    /// `profiler`: every round opens a `round` scope with
    /// `allocation_phase` (per-shard `shard_local` children, attributed
    /// from worker threads under the `parallel` feature),
    /// `coordinator` (with a `broadcast` child), `path_phase`
    /// (`shard_path` children), and `merge` nested under it; shard
    /// re-lowerings open a `plan_lower` scope. Purely passive, and a
    /// disabled profiler costs one branch per scope.
    pub fn attach_profiler(&mut self, profiler: &Profiler) {
        self.profiler = profiler.clone();
    }

    /// Stops profiling (recorded scopes stay in the profiler).
    pub fn detach_profiler(&mut self) {
        self.profiler = Profiler::disabled();
    }

    /// Executes one three-phase round (see the [module docs](self)).
    pub fn step(&mut self) -> IterationReport {
        let _prof = self.profiler.scope("round");
        self.allocation_phase();
        let coord_violation = self.coordinator_round();
        self.path_phase();
        self.merge_round(coord_violation)
    }

    /// [`step`](Self::step) with a wall-clock decomposition of the round,
    /// executed strictly sequentially (one shard at a time regardless of
    /// the `parallel` feature) so each shard's cost is measured in
    /// isolation. The shard-scaling bench uses this for its critical-path
    /// efficiency model: with one free core per shard, a round costs
    /// `max_s(shard_ns[s]) + coordinator_ns`.
    pub fn step_timed(&mut self) -> (IterationReport, ShardStepTiming) {
        let mut shard_ns = vec![0.0; self.shards.len()];
        for (s, sh) in self.shards.iter_mut().enumerate() {
            let t0 = std::time::Instant::now();
            sh.local_step(false);
            shard_ns[s] += t0.elapsed().as_secs_f64() * 1e9;
        }
        let t0 = std::time::Instant::now();
        let coord_violation = self.coordinator_round();
        let coordinator_ns = t0.elapsed().as_secs_f64() * 1e9;
        for (s, sh) in self.shards.iter_mut().enumerate() {
            let t0 = std::time::Instant::now();
            sh.path_steps();
            shard_ns[s] += t0.elapsed().as_secs_f64() * 1e9;
        }
        (self.merge_round(coord_violation), ShardStepTiming { shard_ns, coordinator_ns })
    }

    /// Deterministic tail of a round: fixed-shard-order reduction of
    /// utility/violations, convergence bookkeeping, telemetry.
    fn merge_round(&mut self, coord_violation: f64) -> IterationReport {
        let _prof = self.profiler.scope("merge");
        let mut utility = 0.0;
        let mut res_v = f64::NEG_INFINITY;
        let mut path_v = f64::NEG_INFINITY;
        for sh in &self.shards {
            utility += sh.utility;
            res_v = res_v.max(sh.res_violation);
            path_v = path_v.max(sh.path_violation);
        }
        res_v = res_v.max(coord_violation);

        let report = IterationReport {
            iteration: self.iteration,
            utility,
            max_resource_violation: res_v,
            max_path_violation: path_v,
        };
        self.last_violations = Some((res_v, path_v));
        let delta = (utility - self.last_utility).abs();
        if delta <= self.config.convergence_tol * utility.abs().max(1.0) {
            self.below_tol += 1;
        } else {
            self.below_tol = 0;
        }
        self.last_utility = utility;
        self.iteration += 1;

        let doublings_total = self.gamma_doublings();
        let price_step = self.max_rel_price_step();
        if let Some(tel) = self.telemetry.as_deref_mut() {
            tel.iterations.inc();
            tel.coordinator_rounds.inc();
            tel.gamma_doublings.add(doublings_total - tel.doublings_seen);
            tel.doublings_seen = doublings_total;
            tel.utility.set(utility);
            tel.resource_violation.set(res_v);
            tel.path_violation.set(path_v);
            tel.price_step.set(price_step);
        }
        report
    }

    /// Phase 1: shard-local allocation + owned μ steps. Fans out one
    /// worker per shard under the `parallel` feature; single-shard runs
    /// keep the plan's *inner* task-level fan-out instead.
    fn allocation_phase(&mut self) {
        let _prof = self.profiler.scope("allocation_phase");
        #[cfg(feature = "parallel")]
        if self.shards.len() > 1 {
            let ctx = self.profiler.ctx();
            let profiler = &self.profiler;
            rayon::scope(|s| {
                for sh in self.shards.iter_mut() {
                    s.spawn(move || {
                        let _shard_prof = profiler.scope_in(ctx, "shard_local");
                        sh.local_step(false);
                    });
                }
            });
            return;
        }
        for sh in self.shards.iter_mut() {
            let _shard_prof = self.profiler.scope("shard_local");
            sh.local_step(true);
        }
    }

    /// Phase 2: the deterministic coordinator round. For each
    /// coordinator-owned resource in ascending index order: sum the
    /// shards' partial usages in shard order, apply one μ step, broadcast
    /// price + congestion bit to every shard touching the resource.
    /// Returns the worst resource violation over coordinator-owned
    /// resources.
    fn coordinator_round(&mut self) -> f64 {
        let _prof = self.profiler.scope("coordinator");
        self.coordinator.reset_step_tracking();
        let mut worst = f64::NEG_INFINITY;
        for &r in &self.coordinated {
            let mut total = 0.0;
            for sh in &self.shards {
                total += sh.scratch.usage()[r];
            }
            let g = self.availability[r] - total;
            let congested = g < 0.0;
            self.coordinator.apply_resource_step(r, g);
            worst = worst.max(total - self.availability[r]);
            let mu = self.coordinator.mu(r);
            let _bcast_prof = self.profiler.scope("broadcast");
            for sh in self.shards.iter_mut() {
                if sh.touches[r] {
                    sh.prices.set_mu(r, mu);
                    sh.scratch.congested_mut()[r] = congested;
                }
            }
        }
        worst
    }

    /// Phase 3: per-shard λ steps (fans out under `parallel`).
    fn path_phase(&mut self) {
        let _prof = self.profiler.scope("path_phase");
        #[cfg(feature = "parallel")]
        if self.shards.len() > 1 {
            let ctx = self.profiler.ctx();
            let profiler = &self.profiler;
            rayon::scope(|s| {
                for sh in self.shards.iter_mut() {
                    s.spawn(move || {
                        let _shard_prof = profiler.scope_in(ctx, "shard_path");
                        sh.path_steps();
                    });
                }
            });
            return;
        }
        for sh in self.shards.iter_mut() {
            let _shard_prof = self.profiler.scope("shard_path");
            sh.path_steps();
        }
    }

    /// Whether the convergence criterion currently holds (same criterion
    /// as [`Optimizer::has_converged`](crate::Optimizer::has_converged):
    /// utility stable for the window, prices quiescent, allocation
    /// feasible).
    pub fn has_converged(&self) -> bool {
        if self.below_tol < self.config.convergence_window
            || self.max_rel_price_step() > self.config.price_tol
        {
            return false;
        }
        match self.last_violations {
            Some((res, path)) => {
                res <= self.config.feasibility_tol && path <= self.config.feasibility_tol
            }
            None => self.problem.is_feasible(&self.nested_lats(), self.config.feasibility_tol),
        }
    }

    /// Runs exactly `iters` rounds (batch mode).
    pub fn run(&mut self, iters: usize) -> Vec<IterationReport> {
        (0..iters).map(|_| self.step()).collect()
    }

    /// Runs until convergence or until `max_iters` rounds elapse.
    pub fn run_to_convergence(&mut self, max_iters: usize) -> RunOutcome {
        let mut executed = 0;
        while executed < max_iters {
            self.step();
            executed += 1;
            if self.has_converged() {
                return RunOutcome {
                    converged: true,
                    iterations: executed,
                    final_utility: self.last_utility,
                    feasible: true,
                };
            }
        }
        RunOutcome {
            converged: false,
            iterations: executed,
            final_utility: self.last_utility,
            feasible: self.problem.is_feasible(&self.nested_lats(), self.config.feasibility_tol),
        }
    }

    /// KKT optimality diagnostics at the current point, evaluated over
    /// the reassembled global state (cold path).
    pub fn kkt(&self) -> KktReport {
        let state = self.export_state();
        kkt_report(&self.problem, state.lats(), state.prices(), &self.config.allocation, 1e-9)
    }

    /// Re-arms the convergence detector (call after any external change
    /// to the problem).
    pub fn rearm(&mut self) {
        self.below_tol = 0;
        self.last_violations = None;
    }

    /// Admits a task mid-run into `shard` (or the least-loaded shard when
    /// `None`; ties break to the lowest index). Only the receiving
    /// shard's plan is re-lowered — O(shard), not O(problem) — and its
    /// scratch pool is resized in place. Incumbent shards keep their
    /// plans, latencies, and duals untouched; resources newly shared by
    /// the join are reclassified to the coordinator with their full
    /// adaptive dual state transferred.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParameter`] for an out-of-range shard index,
    /// or any error from [`Problem::add_task`]; the driver is unchanged
    /// on error.
    pub fn add_task(
        &mut self,
        builder: &TaskBuilder,
        shard: Option<usize>,
    ) -> Result<TaskId, ModelError> {
        let k = match shard {
            Some(k) if k < self.shards.len() => k,
            Some(k) => {
                return Err(ModelError::InvalidParameter { what: "shard index", value: k as f64 })
            }
            None => self.least_loaded_shard(),
        };
        let report = self.problem.add_task(builder)?;
        let id = report.added_task.expect("add_task reports the new id");
        let gt = id.index();
        self.task_shard.push(k);
        let (paths, touched) = {
            let task = &self.problem.tasks()[gt];
            let mut rs: Vec<usize> = task.subtasks().iter().map(|s| s.resource().index()).collect();
            rs.sort_unstable();
            rs.dedup();
            (task.graph().paths().len(), rs)
        };
        {
            let sh = &mut self.shards[k];
            sh.tasks.push(gt);
            sh.prices.push_lambda_row(paths);
            for &r in &touched {
                sh.touches[r] = true;
            }
        }
        for &r in &touched {
            self.reclassify(r);
        }
        self.relower_shard(k);
        let newcomer = self.problem.initial_task_allocation(id);
        self.shards[k].lats.extend_from_slice(&newcomer);
        debug_assert_eq!(self.shards[k].lats.len(), self.shards[k].plan.num_subtasks());
        self.finish_membership_change();
        Ok(id)
    }

    /// Removes a task mid-run. Every shard's task list is remapped to the
    /// re-densified global indices (index arithmetic only); **only the
    /// owning shard's plan is re-lowered**. Resources left exclusive (or
    /// unused) by the departure are reclassified with dual-state
    /// transfer.
    ///
    /// # Errors
    ///
    /// Any error from [`Problem::remove_task`]; the driver is unchanged
    /// on error.
    pub fn remove_task(&mut self, id: TaskId) -> Result<MembershipReport, ModelError> {
        let old_gt = id.index();
        if old_gt >= self.problem.tasks().len() {
            return Err(ModelError::UnknownTask { task: id, len: self.problem.tasks().len() });
        }
        let k = self.task_shard[old_gt];
        let touched: Vec<usize> = {
            let task = &self.problem.tasks()[old_gt];
            let mut rs: Vec<usize> = task.subtasks().iter().map(|s| s.resource().index()).collect();
            rs.sort_unstable();
            rs.dedup();
            rs
        };
        let report = self.problem.remove_task(id)?;

        let nt = self.problem.tasks().len();
        let mut remapped = vec![usize::MAX; nt];
        for (old, m) in report.task_map.iter().enumerate() {
            if let Some(new) = *m {
                remapped[new] = self.task_shard[old];
            }
        }
        self.task_shard = remapped;

        {
            // Splice the departed task out of its shard while the *old*
            // plan's layout is still installed.
            let sh = &mut self.shards[k];
            let local = sh.tasks.iter().position(|&t| t == old_gt).expect("shard tracks its task");
            let range = sh.plan.task_range(local);
            sh.lats.drain(range);
            sh.prices.remove_lambda_row(local);
            sh.tasks.remove(local);
        }
        for sh in self.shards.iter_mut() {
            for t in sh.tasks.iter_mut() {
                *t = report.task_map[*t].expect("surviving tasks keep an index");
            }
        }
        {
            let sh = &mut self.shards[k];
            sh.touches.iter_mut().for_each(|b| *b = false);
            for &t in &sh.tasks {
                for sub in self.problem.tasks()[t].subtasks() {
                    sh.touches[sub.resource().index()] = true;
                }
            }
        }
        for &r in &touched {
            if let Some(nr) = report.resource_map[r] {
                self.reclassify(nr);
            }
        }
        self.relower_shard(k);
        debug_assert_eq!(self.shards[k].lats.len(), self.shards[k].plan.num_subtasks());
        self.finish_membership_change();
        Ok(report)
    }

    /// Updates a resource's availability `B_r` mid-run. Clamping boxes
    /// are lowered from `B_r`, so every shard *touching* the resource is
    /// re-lowered (scratch pools reused); untouched shards keep their
    /// plans.
    ///
    /// # Errors
    ///
    /// Any error from [`Problem::set_resource_availability`]; the driver
    /// is unchanged on error.
    pub fn set_resource_availability(
        &mut self,
        id: ResourceId,
        availability: f64,
    ) -> Result<(), ModelError> {
        self.problem.set_resource_availability(id, availability)?;
        let r = id.index();
        self.availability[r] = self.problem.resources()[r].availability();
        for k in 0..self.shards.len() {
            if self.shards[k].touches[r] {
                self.relower_shard(k);
            }
        }
        self.rearm();
        Ok(())
    }

    /// Exports the full mutable state — shard λ rows and owner-side μ
    /// duals gathered into one global [`PriceState`], latencies in global
    /// task order — in the exact format [`Optimizer::export_state`]
    /// produces, so the distributed runtime's checkpoint/restore and a
    /// monolithic failover replacement work unchanged on top.
    ///
    /// [`Optimizer::export_state`]: crate::Optimizer::export_state
    pub fn export_state(&self) -> OptimizerState {
        let mut prices = PriceState::new(&self.problem, self.config.step_policy);
        for r in 0..self.problem.resources().len() {
            let raw = match self.owner[r] {
                ResourceOwner::Shard(s) => self.shards[s].prices.resource_dual_raw(r),
                ResourceOwner::Coordinator => self.coordinator.resource_dual_raw(r),
            };
            prices.set_resource_dual_raw(r, raw);
        }
        let mut rejected = 0;
        for sh in &self.shards {
            rejected += sh.prices.rejected_samples();
            for (local, &gt) in sh.tasks.iter().enumerate() {
                for p in 0..sh.plan.num_task_paths(local) {
                    prices.set_path_dual_raw(gt, p, sh.prices.path_dual_raw(local, p));
                }
            }
        }
        rejected += self.coordinator.rejected_samples();
        prices.set_bookkeeping(self.max_rel_price_step(), rejected, self.gamma_doublings());
        OptimizerState::from_parts(prices, self.nested_lats(), self.iteration)
    }

    /// Restores state captured by [`export_state`](Self::export_state)
    /// (or by a monolithic [`Optimizer`](crate::Optimizer) over an equal
    /// problem): global duals are scattered back to their owners and
    /// mirrors, λ rows to their shards' local rows.
    ///
    /// # Errors
    ///
    /// The same shape/epoch validation as
    /// [`Optimizer::try_import_state`](crate::Optimizer::try_import_state);
    /// the driver is untouched on error.
    pub fn try_import_state(
        &mut self,
        state: OptimizerState,
        expected_epoch: Option<u64>,
    ) -> Result<(), StateImportError> {
        if let (Some(expected), Some(found)) = (expected_epoch, state.epoch()) {
            if expected != found {
                return Err(StateImportError::EpochMismatch { expected, found });
            }
        }
        if state.lats().len() != self.problem.tasks().len() {
            return Err(StateImportError::TaskCountMismatch {
                expected: self.problem.tasks().len(),
                found: state.lats().len(),
            });
        }
        for (t, task) in self.problem.tasks().iter().enumerate() {
            if state.lats()[t].len() != task.len() {
                return Err(StateImportError::RowShapeMismatch {
                    task: t,
                    expected: task.len(),
                    found: state.lats()[t].len(),
                });
            }
        }
        let nr = self.problem.resources().len();
        if state.prices().mus().len() != nr {
            return Err(StateImportError::ResourceCountMismatch {
                expected: nr,
                found: state.prices().mus().len(),
            });
        }
        for r in 0..nr {
            let raw = state.prices().resource_dual_raw(r);
            match self.owner[r] {
                ResourceOwner::Shard(s) => self.shards[s].prices.set_resource_dual_raw(r, raw),
                ResourceOwner::Coordinator => self.coordinator.set_resource_dual_raw(r, raw),
            }
            for sh in self.shards.iter_mut() {
                if sh.touches[r] {
                    sh.prices.set_mu(r, raw.0);
                }
            }
        }
        for sh in self.shards.iter_mut() {
            for (local, &gt) in sh.tasks.iter().enumerate() {
                for p in 0..sh.plan.num_task_paths(local) {
                    sh.prices.set_path_dual_raw(local, p, state.prices().path_dual_raw(gt, p));
                }
                let range = sh.plan.task_range(local);
                sh.lats[range].copy_from_slice(&state.lats()[gt]);
            }
        }
        self.iteration = state.iteration();
        self.finish_membership_change();
        Ok(())
    }

    /// The shard with the fewest tasks (ties break to the lowest index).
    fn least_loaded_shard(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .min_by_key(|(k, sh)| (sh.tasks.len(), *k))
            .expect("at least one shard")
            .0
    }

    /// Re-lowers shard `k`'s plan against the live problem, reusing its
    /// scratch pool, and counts the lowering in telemetry.
    fn relower_shard(&mut self, k: usize) {
        let _prof = self.profiler.scope("plan_lower");
        let sh = &mut self.shards[k];
        let plan = Plan::lower_subset(&self.problem, &self.config.allocation, &sh.tasks);
        sh.scratch.resize_for(&plan);
        sh.plan = plan;
        if let Some(tel) = &self.telemetry {
            tel.plan_lowerings.inc();
        }
    }

    /// Recomputes resource `r`'s price authority from the current touch
    /// sets, transferring the full raw dual state `(μ, γ, last_grad)` on
    /// an ownership change and refreshing every toucher's μ mirror.
    fn reclassify(&mut self, r: usize) {
        let mut touchers = (0..self.shards.len()).filter(|&k| self.shards[k].touches[r]);
        let first = touchers.next();
        let new_owner = match (first, touchers.next()) {
            (Some(k), None) => ResourceOwner::Shard(k),
            _ => ResourceOwner::Coordinator,
        };
        if new_owner != self.owner[r] {
            let raw = match self.owner[r] {
                ResourceOwner::Shard(j) => self.shards[j].prices.resource_dual_raw(r),
                ResourceOwner::Coordinator => self.coordinator.resource_dual_raw(r),
            };
            match new_owner {
                ResourceOwner::Shard(j) => self.shards[j].prices.set_resource_dual_raw(r, raw),
                ResourceOwner::Coordinator => self.coordinator.set_resource_dual_raw(r, raw),
            }
            self.owner[r] = new_owner;
            for (k, sh) in self.shards.iter_mut().enumerate() {
                sh.owned[r] = new_owner == ResourceOwner::Shard(k);
            }
            self.coordinated = (0..self.owner.len())
                .filter(|&x| self.owner[x] == ResourceOwner::Coordinator)
                .collect();
            if let Some(tel) = &self.telemetry {
                tel.coordinated_resources.set(self.coordinated.len() as f64);
            }
        }
        let mu = match self.owner[r] {
            ResourceOwner::Shard(j) => self.shards[j].prices.mu(r),
            ResourceOwner::Coordinator => self.coordinator.mu(r),
        };
        for sh in self.shards.iter_mut() {
            if sh.touches[r] {
                sh.prices.set_mu(r, mu);
            }
        }
    }

    fn finish_membership_change(&mut self) {
        self.last_utility = self.utility();
        self.rearm();
    }

    /// Reassembles the flat shard latencies into global task order.
    fn nested_lats(&self) -> Vec<Vec<f64>> {
        let mut out = vec![Vec::new(); self.problem.tasks().len()];
        for sh in &self.shards {
            for (local, &gt) in sh.tasks.iter().enumerate() {
                out[gt] = sh.lats[sh.plan.task_range(local)].to_vec();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::AllocationSettings;
    use crate::optimizer::Optimizer;
    use crate::resource::{Resource, ResourceKind};
    use crate::utility::UtilityFn;

    /// Four two-stage tasks over four CPUs: tasks {0,1} live on CPUs
    /// {0,1}, tasks {2,3} on CPUs {2,3}, and every task's second stage
    /// also crosses the shared link (resource 4).
    fn clustered_problem() -> Problem {
        let mut resources: Vec<Resource> = (0..4)
            .map(|i| Resource::new(ResourceId::new(i), ResourceKind::Cpu).with_lag(1.0))
            .collect();
        resources.push(Resource::new(ResourceId::new(4), ResourceKind::NetworkLink).with_lag(0.5));
        let mut tasks = Vec::new();
        for i in 0..4usize {
            let cpu = |n: usize| ResourceId::new(2 * (i / 2) + n);
            let mut b = TaskBuilder::new(format!("t{i}"));
            let a = b.subtask("a", cpu(0), 2.0);
            let c = b.subtask("b", cpu(1), 3.0);
            let l = b.subtask("l", ResourceId::new(4), 1.0);
            b.edge(a, c).unwrap();
            b.edge(c, l).unwrap();
            let ct = 50.0 + 10.0 * i as f64;
            b.critical_time(ct).utility(UtilityFn::linear_for_deadline(2.0, ct));
            tasks.push(b.build(TaskId::new(i)).unwrap());
        }
        Problem::new(resources, tasks).unwrap()
    }

    fn config() -> OptimizerConfig {
        OptimizerConfig {
            allocation: AllocationSettings { throughput_floor: false, ..Default::default() },
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn spec_validation_rejects_non_partitions() {
        let p = clustered_problem();
        let bad = |groups: Vec<Vec<usize>>| {
            ShardedOptimizer::new(p.clone(), config(), ShardSpec::from_groups(groups)).unwrap_err()
        };
        assert!(matches!(bad(vec![]), ModelError::InvalidParameter { what: "shard count", .. }));
        assert!(matches!(
            bad(vec![vec![0, 1, 2, 3], vec![]]),
            ModelError::InvalidParameter { what: "empty shard group", .. }
        ));
        assert!(matches!(
            bad(vec![vec![0, 1], vec![2, 9]]),
            ModelError::InvalidParameter { what: "shard task index", .. }
        ));
        assert!(matches!(
            bad(vec![vec![0, 1, 2], vec![2, 3]]),
            ModelError::InvalidParameter { what: "task assigned to two shards", .. }
        ));
        assert!(matches!(
            bad(vec![vec![0, 1], vec![3]]),
            ModelError::InvalidParameter { what: "task not covered by any shard", .. }
        ));
    }

    #[test]
    fn ownership_classifies_exclusive_shared_and_unused() {
        let mut p = clustered_problem();
        p.add_resource(Resource::new(ResourceId::new(5), ResourceKind::Cpu).with_lag(1.0)).unwrap();
        let spec = ShardSpec::from_groups(vec![vec![0, 1], vec![2, 3]]);
        let opt = ShardedOptimizer::new(p, config(), spec).unwrap();
        assert_eq!(opt.resource_owner(0), ResourceOwner::Shard(0));
        assert_eq!(opt.resource_owner(1), ResourceOwner::Shard(0));
        assert_eq!(opt.resource_owner(2), ResourceOwner::Shard(1));
        assert_eq!(opt.resource_owner(3), ResourceOwner::Shard(1));
        assert_eq!(opt.resource_owner(4), ResourceOwner::Coordinator, "link is shared");
        assert_eq!(opt.resource_owner(5), ResourceOwner::Coordinator, "unused goes upstream");
        assert_eq!(opt.num_shared_resources(), 1);
    }

    #[test]
    fn single_shard_is_bit_identical_to_monolithic() {
        let p = clustered_problem();
        let mut mono = Optimizer::new(p.clone(), config());
        let mut sharded =
            ShardedOptimizer::new(p.clone(), config(), ShardSpec::contiguous(4, 1)).unwrap();
        for i in 0..400 {
            let a = mono.step();
            let b = sharded.step();
            assert_eq!(a.utility, b.utility, "utility diverged at step {i}");
            assert_eq!(a.max_resource_violation, b.max_resource_violation, "step {i}");
            assert_eq!(a.max_path_violation, b.max_path_violation, "step {i}");
        }
        assert_eq!(mono.allocation(), sharded.allocation());
        let state = sharded.export_state();
        assert_eq!(state.prices().mus(), mono.prices().mus());
        for t in 0..4 {
            assert_eq!(state.prices().lambdas(t), mono.prices().lambdas(t));
        }
        assert_eq!(mono.has_converged(), sharded.has_converged());
    }

    #[test]
    fn two_shards_track_monolithic_within_tolerance() {
        let p = clustered_problem();
        let mut mono = Optimizer::new(p.clone(), config());
        let spec = ShardSpec::from_groups(vec![vec![0, 1], vec![2, 3]]);
        let mut sharded = ShardedOptimizer::new(p, config(), spec).unwrap();
        mono.run(600);
        sharded.run(600);
        let (ma, sa) = (mono.allocation(), sharded.allocation());
        for t in 0..4 {
            for s in 0..3 {
                let (x, y) = (ma.latency(t, s), sa.latency(t, s));
                assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0), "task {t} sub {s}: {x} vs {y}");
            }
        }
        let kkt = sharded.kkt();
        assert!(kkt.max_resource_violation <= 1e-6, "{kkt:?}");
        assert!(kkt.max_path_violation <= 1e-6, "{kkt:?}");
    }

    #[test]
    fn sharded_converges_and_is_feasible() {
        let p = clustered_problem();
        let spec = ShardSpec::from_groups(vec![vec![0, 1], vec![2, 3]]);
        let mut sharded = ShardedOptimizer::new(p, config(), spec).unwrap();
        let outcome = sharded.run_to_convergence(5_000);
        assert!(outcome.converged, "sharded LLA must converge on a schedulable workload");
        assert!(outcome.feasible);
    }

    #[test]
    fn add_task_relowers_only_the_receiving_shard() {
        let registry = MetricsRegistry::new();
        let p = clustered_problem();
        let spec = ShardSpec::from_groups(vec![vec![0, 1], vec![2, 3]]);
        let mut opt = ShardedOptimizer::new(p, config(), spec).unwrap();
        opt.attach_telemetry(&registry);
        opt.run(10);
        let mut b = TaskBuilder::new("late");
        b.subtask("s", ResourceId::new(0), 1.0);
        b.critical_time(60.0).utility(UtilityFn::linear_for_deadline(1.0, 60.0));
        let id = opt.add_task(&b, Some(0)).unwrap();
        assert_eq!(opt.shard_of(id), 0);
        let c = registry.counter("lla_opt_plan_lowerings_total", "");
        assert_eq!(c.get(), 1, "exactly one shard re-lowered on a join");
        assert_eq!(opt.shard_tasks(0), &[0, 1, 4]);
        assert_eq!(opt.shard_tasks(1), &[2, 3]);
        opt.run(10);
        assert_eq!(c.get(), 1, "steady-state rounds never re-lower");
        assert!(opt.run_to_convergence(10_000).converged);
    }

    #[test]
    fn remove_task_relowers_only_the_owning_shard() {
        let registry = MetricsRegistry::new();
        let p = clustered_problem();
        let spec = ShardSpec::from_groups(vec![vec![0, 1], vec![2, 3]]);
        let mut opt = ShardedOptimizer::new(p, config(), spec).unwrap();
        opt.attach_telemetry(&registry);
        opt.run(10);
        let report = opt.remove_task(TaskId::new(1)).unwrap();
        assert_eq!(report.task_map, vec![Some(0), None, Some(1), Some(2)]);
        let c = registry.counter("lla_opt_plan_lowerings_total", "");
        assert_eq!(c.get(), 1, "only the owning shard re-lowers on a leave");
        assert_eq!(opt.shard_tasks(0), &[0]);
        assert_eq!(opt.shard_tasks(1), &[1, 2], "other shards remap indices without re-lowering");
        assert!(opt.run_to_convergence(10_000).converged);
    }

    #[test]
    fn availability_change_relowers_only_touching_shards() {
        let registry = MetricsRegistry::new();
        let p = clustered_problem();
        let spec = ShardSpec::from_groups(vec![vec![0, 1], vec![2, 3]]);
        let mut opt = ShardedOptimizer::new(p, config(), spec).unwrap();
        opt.attach_telemetry(&registry);
        opt.run(10);
        let c = registry.counter("lla_opt_plan_lowerings_total", "");
        // CPU 0 is touched only by shard 0.
        opt.set_resource_availability(ResourceId::new(0), 0.8).unwrap();
        assert_eq!(c.get(), 1);
        // The shared link is touched by both shards.
        opt.set_resource_availability(ResourceId::new(4), 0.9).unwrap();
        assert_eq!(c.get(), 3);
        assert!(opt.run_to_convergence(10_000).converged);
    }

    #[test]
    fn join_reclassifies_ownership_and_transfers_duals() {
        let p = clustered_problem();
        let spec = ShardSpec::from_groups(vec![vec![0, 1], vec![2, 3]]);
        let mut opt = ShardedOptimizer::new(p, config(), spec).unwrap();
        opt.run(50);
        let mu_before = opt.export_state().prices().mu(2);
        // A shard-0 task landing on CPU 2 makes it shared: ownership moves
        // Shard(1) → Coordinator with the μ carried over.
        let mut b = TaskBuilder::new("crosser");
        b.subtask("x", ResourceId::new(2), 1.0);
        b.critical_time(70.0).utility(UtilityFn::linear_for_deadline(1.0, 70.0));
        opt.add_task(&b, Some(0)).unwrap();
        assert_eq!(opt.resource_owner(2), ResourceOwner::Coordinator);
        assert_eq!(opt.export_state().prices().mu(2), mu_before, "dual state must transfer");
        // Removing the crosser hands CPU 2 back to shard 1.
        let id = TaskId::new(4);
        opt.remove_task(id).unwrap();
        assert_eq!(opt.resource_owner(2), ResourceOwner::Shard(1));
        assert!(opt.run_to_convergence(10_000).converged);
    }

    #[test]
    fn export_state_imports_into_monolithic_and_continues_exactly() {
        let p = clustered_problem();
        let mut sharded =
            ShardedOptimizer::new(p.clone(), config(), ShardSpec::contiguous(4, 1)).unwrap();
        sharded.run(120);
        let state = sharded.export_state();
        let mut mono = Optimizer::new(p, config());
        mono.try_import_state(state, None).unwrap();
        assert_eq!(mono.iterations(), 120);
        for i in 0..150 {
            let a = sharded.step();
            let b = mono.step();
            assert_eq!(a.utility, b.utility, "handoff diverged at step {i}");
        }
    }

    #[test]
    fn import_state_roundtrips_through_sharded() {
        let p = clustered_problem();
        let spec = ShardSpec::from_groups(vec![vec![0, 1], vec![2, 3]]);
        let mut a = ShardedOptimizer::new(p.clone(), config(), spec.clone()).unwrap();
        a.run(80);
        let state = a.export_state();
        let mut b = ShardedOptimizer::new(p, config(), spec).unwrap();
        b.try_import_state(state, None).unwrap();
        assert_eq!(b.iterations(), 80);
        for i in 0..100 {
            let ra = a.step();
            let rb = b.step();
            assert_eq!(ra.utility, rb.utility, "restore diverged at step {i}");
        }
    }

    #[test]
    fn import_state_rejects_bad_shapes() {
        let p = clustered_problem();
        let spec = ShardSpec::from_groups(vec![vec![0, 1], vec![2, 3]]);
        let mut opt = ShardedOptimizer::new(p.clone(), config(), spec).unwrap();
        let pristine = opt.export_state();
        let mut mono = Optimizer::new(p, config());
        let mut short = mono.export_state();
        short = OptimizerState::from_parts(
            short.prices().clone(),
            short.lats()[..3].to_vec(),
            short.iteration(),
        );
        assert_eq!(
            opt.try_import_state(short, None),
            Err(StateImportError::TaskCountMismatch { expected: 4, found: 3 })
        );
        assert_eq!(
            opt.try_import_state(pristine.clone().with_epoch(3), Some(7)),
            Err(StateImportError::EpochMismatch { expected: 7, found: 3 })
        );
        // A failed import leaves the driver untouched.
        let after = opt.export_state();
        assert_eq!(after.prices(), pristine.prices());
        assert_eq!(after.lats(), pristine.lats());
        let _ = mono.step();
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_shard_fanout_is_bit_identical_to_sequential_merge() {
        // With the feature on, multi-shard rounds fan out one thread per
        // shard; determinism must not depend on the worker count because
        // every cross-shard reduction happens in fixed shard order.
        let p = clustered_problem();
        let spec = ShardSpec::from_groups(vec![vec![0, 2], vec![1, 3]]);
        let mut a = ShardedOptimizer::new(p.clone(), config(), spec.clone()).unwrap();
        let mut b = ShardedOptimizer::new(p, config(), spec).unwrap();
        for _ in 0..200 {
            let ra = a.step();
            let rb = b.step();
            assert_eq!(ra.utility, rb.utility);
        }
        assert_eq!(a.allocation(), b.allocation());
    }
}
