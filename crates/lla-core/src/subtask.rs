//! Subtasks: the unit of resource consumption.

use crate::error::ModelError;
use crate::ids::{ResourceId, SubtaskId};
use serde::{Deserialize, Serialize};

/// A subtask (`T_ij`): one stage of a task that consumes exactly one
/// resource.
///
/// A subtask is characterized by its worst-case execution time `c_s`
/// (milliseconds of CPU time, or transmission time on a link) and the
/// resource it runs on. An optional `max_latency` upper-bounds the latency
/// the optimizer may assign to it; this encodes the *throughput floor*
/// `share ≥ rate · c_s` of §6.2 of the paper (a subtask whose share falls
/// below its arrival rate times WCET queues jobs unboundedly).
///
/// # Example
/// ```
/// use lla_core::{ResourceId, Subtask, SubtaskId, TaskId};
/// let s = Subtask::new(
///     SubtaskId::new(TaskId::new(0), 0),
///     ResourceId::new(3),
///     5.0,
/// )
/// .with_name("parse-feed")
/// .with_max_latency(50.0);
/// assert_eq!(s.exec_time(), 5.0);
/// assert_eq!(s.max_latency(), Some(50.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subtask {
    id: SubtaskId,
    resource: ResourceId,
    exec_time: f64,
    max_latency: Option<f64>,
    name: String,
}

impl Subtask {
    /// Creates a subtask with the given WCET (`c_s`, in milliseconds) on
    /// `resource`.
    pub fn new(id: SubtaskId, resource: ResourceId, exec_time: f64) -> Self {
        Subtask { id, resource, exec_time, max_latency: None, name: format!("{id}") }
    }

    /// Sets a human-readable name used in reports.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Caps the latency the optimizer may assign to this subtask.
    ///
    /// Use this to encode throughput requirements: with arrival rate `ρ`
    /// (jobs/ms) the minimum sustainable share is `ρ · c_s`, which for the
    /// share function `share = (c_s + l_r)/lat` corresponds to
    /// `lat ≤ (c_s + l_r)/(ρ · c_s)`.
    pub fn with_max_latency(mut self, max_latency: f64) -> Self {
        self.max_latency = Some(max_latency);
        self
    }

    /// The subtask identifier.
    pub fn id(&self) -> SubtaskId {
        self.id
    }

    /// The resource this subtask consumes.
    pub fn resource(&self) -> ResourceId {
        self.resource
    }

    /// The worst-case execution time `c_s` in milliseconds.
    pub fn exec_time(&self) -> f64 {
        self.exec_time
    }

    /// The optional latency cap (throughput floor), if set.
    pub fn max_latency(&self) -> Option<f64> {
        self.max_latency
    }

    /// The human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rebuilds this subtask under a new id and resource binding; membership
    /// changes re-densify ids and may move a subtask to another resource.
    pub(crate) fn rebound(&self, id: SubtaskId, resource: ResourceId) -> Subtask {
        Subtask { id, resource, ..self.clone() }
    }

    /// Validates the numeric parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if the execution time is not
    /// strictly positive and finite, or if `max_latency` is non-positive or
    /// non-finite.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !self.exec_time.is_finite() || self.exec_time <= 0.0 {
            return Err(ModelError::InvalidParameter {
                what: "subtask execution time (c_s)",
                value: self.exec_time,
            });
        }
        if let Some(m) = self.max_latency {
            if !m.is_finite() || m <= 0.0 {
                return Err(ModelError::InvalidParameter { what: "subtask max latency", value: m });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TaskId;

    fn sid() -> SubtaskId {
        SubtaskId::new(TaskId::new(0), 0)
    }

    #[test]
    fn construction_and_accessors() {
        let s = Subtask::new(sid(), ResourceId::new(1), 2.5);
        assert_eq!(s.id(), sid());
        assert_eq!(s.resource(), ResourceId::new(1));
        assert_eq!(s.exec_time(), 2.5);
        assert_eq!(s.max_latency(), None);
        assert_eq!(s.name(), "T0.0");
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validate_rejects_nonpositive_exec_time() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let s = Subtask::new(sid(), ResourceId::new(0), bad);
            assert!(s.validate().is_err(), "exec time {bad} should be rejected");
        }
    }

    #[test]
    fn validate_rejects_bad_max_latency() {
        for bad in [0.0, -3.0, f64::NAN] {
            let s = Subtask::new(sid(), ResourceId::new(0), 1.0).with_max_latency(bad);
            assert!(s.validate().is_err(), "max latency {bad} should be rejected");
        }
    }

    #[test]
    fn max_latency_encodes_throughput_floor() {
        // 40 jobs/s = 0.04 jobs/ms, WCET 5ms, lag 5ms:
        // min share = 0.2, so max latency = (5+5)/0.2 = 50ms.
        let rate_per_ms = 0.04;
        let wcet = 5.0;
        let lag = 5.0;
        let cap = (wcet + lag) / (rate_per_ms * wcet);
        let s = Subtask::new(sid(), ResourceId::new(0), wcet).with_max_latency(cap);
        assert!((s.max_latency().unwrap() - 50.0).abs() < 1e-12);
    }
}
