//! Tasks: end-to-end distributed applications with timeliness constraints.

use crate::error::ModelError;
use crate::graph::SubtaskGraph;
use crate::ids::{ResourceId, SubtaskId, TaskId};
use crate::percentile::PercentileSpec;
use crate::subtask::Subtask;
use crate::utility::UtilityFn;
use serde::{Deserialize, Serialize};

/// How a task's per-subtask latencies are aggregated into the scalar the
/// utility function is applied to (§3.2).
///
/// The true objective uses the critical path (Eq. 1), but the critical path
/// may change as latencies change, making the objective non-concave. The
/// paper proposes two tractable variations:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Aggregation {
    /// Utility of the *sum* of all subtask latencies in the task.
    Sum,
    /// Utility of the *weighted* sum where each subtask's weight is the
    /// number of root-to-leaf paths it belongs to.
    #[default]
    PathWeighted,
}

/// The arrival pattern of a task's triggering events.
///
/// Used by the simulator to release job sets and by the optimizer to derive
/// throughput floors. All times in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TriggerSpec {
    /// One job set every `period` milliseconds.
    Periodic {
        /// Inter-arrival time in milliseconds.
        period: f64,
    },
    /// Poisson arrivals with the given rate (job sets per millisecond).
    Poisson {
        /// Mean arrival rate in job sets per millisecond.
        rate: f64,
    },
    /// Bursts of `burst` job sets released together every `period`
    /// milliseconds — the paper's generalization where jobs of a subtask may
    /// be released without waiting for previous jobs to finish.
    Bursty {
        /// Inter-burst time in milliseconds.
        period: f64,
        /// Number of job sets per burst.
        burst: usize,
    },
}

impl TriggerSpec {
    /// Mean arrival rate in job sets per millisecond.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            TriggerSpec::Periodic { period } => 1.0 / period,
            TriggerSpec::Poisson { rate } => rate,
            TriggerSpec::Bursty { period, burst } => burst as f64 / period,
        }
    }

    /// Validates the arrival parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive periods or
    /// rates, or a zero burst size.
    pub fn validate(&self) -> Result<(), ModelError> {
        match *self {
            TriggerSpec::Periodic { period } => {
                if !period.is_finite() || period <= 0.0 {
                    return Err(ModelError::InvalidParameter {
                        what: "trigger period",
                        value: period,
                    });
                }
            }
            TriggerSpec::Poisson { rate } => {
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(ModelError::InvalidParameter { what: "trigger rate", value: rate });
                }
            }
            TriggerSpec::Bursty { period, burst } => {
                if !period.is_finite() || period <= 0.0 {
                    return Err(ModelError::InvalidParameter {
                        what: "trigger period",
                        value: period,
                    });
                }
                if burst == 0 {
                    return Err(ModelError::InvalidParameter { what: "burst size", value: 0.0 });
                }
            }
        }
        Ok(())
    }
}

impl Default for TriggerSpec {
    /// The paper's simulation default: periodic events every 100ms.
    fn default() -> Self {
        TriggerSpec::Periodic { period: 100.0 }
    }
}

/// An end-to-end task: a subtask DAG, a critical time, and a utility.
///
/// Construct with [`TaskBuilder`]. A `Task` is immutable once built; the
/// optimizer treats it as the specification of one distributed application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    id: TaskId,
    name: String,
    subtasks: Vec<Subtask>,
    graph: SubtaskGraph,
    critical_time: f64,
    utility: UtilityFn,
    aggregation: Aggregation,
    trigger: TriggerSpec,
    percentile: PercentileSpec,
    weights: Vec<f64>,
}

impl Task {
    /// The task identifier.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The subtasks, indexed by their per-task index.
    pub fn subtasks(&self) -> &[Subtask] {
        &self.subtasks
    }

    /// The validated precedence graph.
    pub fn graph(&self) -> &SubtaskGraph {
        &self.graph
    }

    /// The critical time `C_i` (deadline) in milliseconds.
    pub fn critical_time(&self) -> f64 {
        self.critical_time
    }

    /// The utility function applied to the aggregated latency.
    pub fn utility_fn(&self) -> &UtilityFn {
        &self.utility
    }

    /// The aggregation variant (sum or path-weighted).
    pub fn aggregation(&self) -> Aggregation {
        self.aggregation
    }

    /// The triggering-event arrival specification.
    pub fn trigger(&self) -> TriggerSpec {
        self.trigger
    }

    /// The latency statistic the utility is computed from.
    pub fn percentile(&self) -> PercentileSpec {
        self.percentile
    }

    /// Number of subtasks.
    pub fn len(&self) -> usize {
        self.subtasks.len()
    }

    /// Whether the task has no subtasks (never true for a built task).
    pub fn is_empty(&self) -> bool {
        self.subtasks.is_empty()
    }

    /// The aggregation weight `w_s` of each subtask (1 for
    /// [`Aggregation::Sum`]; the path count for
    /// [`Aggregation::PathWeighted`]).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The aggregated latency `Σ_s w_s · lat_s` the utility is applied to.
    ///
    /// # Panics
    ///
    /// Panics if `lats.len()` differs from the number of subtasks.
    pub fn aggregate_latency(&self, lats: &[f64]) -> f64 {
        assert_eq!(lats.len(), self.subtasks.len());
        lats.iter().zip(&self.weights).map(|(l, w)| l * w).sum()
    }

    /// The task utility `U_i = f_i(Σ w_s · lat_s)` for the given latencies.
    pub fn utility(&self, lats: &[f64]) -> f64 {
        self.utility.value(self.aggregate_latency(lats))
    }

    /// `(path index, latency)` of the critical path under `lats`.
    pub fn critical_path(&self, lats: &[f64]) -> (usize, f64) {
        self.graph.critical_path(lats)
    }

    /// Convenience: the subtask id for per-task index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn subtask_id(&self, idx: usize) -> SubtaskId {
        assert!(idx < self.subtasks.len());
        SubtaskId::new(self.id, idx)
    }

    /// Rebuilds this task under a new dense id with remapped resource
    /// indices: `resource_map[old] == Some(new)` moves a binding,
    /// `None` means the resource left the problem.
    ///
    /// The precedence graph carries no ids, so only the task id and each
    /// subtask's `(id, resource)` need rewriting.
    pub(crate) fn remapped(
        &self,
        id: TaskId,
        resource_map: &[Option<usize>],
    ) -> Result<Task, ModelError> {
        let mut subtasks = Vec::with_capacity(self.subtasks.len());
        for (i, s) in self.subtasks.iter().enumerate() {
            let old = s.resource().index();
            let new = resource_map
                .get(old)
                .copied()
                .flatten()
                .ok_or(ModelError::UnknownResource { subtask: s.id(), resource: s.resource() })?;
            subtasks.push(s.rebound(SubtaskId::new(id, i), ResourceId::new(new)));
        }
        Ok(Task { id, subtasks, ..self.clone() })
    }
}

/// Incremental builder for [`Task`] ([C-BUILDER]).
///
/// # Example
/// ```
/// use lla_core::{Aggregation, ResourceId, TaskBuilder, TaskId, TriggerSpec, UtilityFn};
/// let mut b = TaskBuilder::new("client-server");
/// let req = b.subtask("request", ResourceId::new(0), 3.0);
/// let serve = b.subtask("serve", ResourceId::new(1), 2.0);
/// b.edge(req, serve)?;
/// let task = b
///     .critical_time(53.0)
///     .utility(UtilityFn::linear_for_deadline(2.0, 53.0))
///     .trigger(TriggerSpec::Periodic { period: 100.0 })
///     .aggregation(Aggregation::PathWeighted)
///     .build(TaskId::new(0))?;
/// assert_eq!(task.len(), 2);
/// # Ok::<(), lla_core::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    name: String,
    specs: Vec<(String, ResourceId, f64, Option<f64>)>,
    edges: Vec<(usize, usize)>,
    critical_time: f64,
    utility: Option<UtilityFn>,
    aggregation: Aggregation,
    trigger: TriggerSpec,
    percentile: PercentileSpec,
}

impl TaskBuilder {
    /// Starts building a task with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TaskBuilder {
            name: name.into(),
            specs: Vec::new(),
            edges: Vec::new(),
            critical_time: 0.0,
            utility: None,
            aggregation: Aggregation::default(),
            trigger: TriggerSpec::default(),
            percentile: PercentileSpec::default(),
        }
    }

    /// Adds a subtask with the given WCET (ms) on `resource`; returns its
    /// per-task index for use in [`edge`](Self::edge).
    pub fn subtask(
        &mut self,
        name: impl Into<String>,
        resource: ResourceId,
        exec_time: f64,
    ) -> usize {
        self.specs.push((name.into(), resource, exec_time, None));
        self.specs.len() - 1
    }

    /// Adds a subtask with a latency cap (throughput floor); see
    /// [`Subtask::with_max_latency`](crate::Subtask::with_max_latency).
    pub fn subtask_with_max_latency(
        &mut self,
        name: impl Into<String>,
        resource: ResourceId,
        exec_time: f64,
        max_latency: f64,
    ) -> usize {
        self.specs.push((name.into(), resource, exec_time, Some(max_latency)));
        self.specs.len() - 1
    }

    /// Adds a precedence edge between two previously added subtasks.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownSubtaskIndex`] if either endpoint has
    /// not been added yet, or [`ModelError::SelfLoop`] if `from == to`.
    pub fn edge(&mut self, from: usize, to: usize) -> Result<&mut Self, ModelError> {
        let len = self.specs.len();
        if from >= len {
            return Err(ModelError::UnknownSubtaskIndex { index: from, len });
        }
        if to >= len {
            return Err(ModelError::UnknownSubtaskIndex { index: to, len });
        }
        if from == to {
            return Err(ModelError::SelfLoop { index: from });
        }
        self.edges.push((from, to));
        Ok(self)
    }

    /// Adds a chain of edges `a -> b -> c -> ...` in one call.
    ///
    /// # Errors
    ///
    /// Same as [`edge`](Self::edge).
    pub fn chain(&mut self, indices: &[usize]) -> Result<&mut Self, ModelError> {
        for w in indices.windows(2) {
            self.edge(w[0], w[1])?;
        }
        Ok(self)
    }

    /// Sets the critical time `C_i` (deadline) in milliseconds.
    pub fn critical_time(&mut self, critical_time: f64) -> &mut Self {
        self.critical_time = critical_time;
        self
    }

    /// Sets the utility function.
    pub fn utility(&mut self, utility: UtilityFn) -> &mut Self {
        self.utility = Some(utility);
        self
    }

    /// Sets the aggregation variant (defaults to
    /// [`Aggregation::PathWeighted`]).
    pub fn aggregation(&mut self, aggregation: Aggregation) -> &mut Self {
        self.aggregation = aggregation;
        self
    }

    /// Sets the triggering-event specification (defaults to periodic 100ms).
    pub fn trigger(&mut self, trigger: TriggerSpec) -> &mut Self {
        self.trigger = trigger;
        self
    }

    /// Sets the latency statistic (defaults to worst case).
    pub fn percentile(&mut self, percentile: PercentileSpec) -> &mut Self {
        self.percentile = percentile;
        self
    }

    /// Validates everything and produces the immutable [`Task`].
    ///
    /// If no utility was set, defaults to the paper's
    /// `f(lat) = 2·C − lat`.
    ///
    /// # Errors
    ///
    /// Any [`ModelError`] from graph validation, subtask validation, or
    /// invalid critical time / utility / trigger parameters.
    pub fn build(&self, id: TaskId) -> Result<Task, ModelError> {
        if self.specs.is_empty() {
            return Err(ModelError::EmptyTask { task: id });
        }
        if !self.critical_time.is_finite() || self.critical_time <= 0.0 {
            return Err(ModelError::InvalidParameter {
                what: "critical time (C_i)",
                value: self.critical_time,
            });
        }
        let utility = match &self.utility {
            Some(u) => u.clone(),
            None => UtilityFn::linear_for_deadline(2.0, self.critical_time),
        };
        if !utility.is_valid() {
            return Err(ModelError::InvalidParameter {
                what: "utility function shape",
                value: f64::NAN,
            });
        }
        self.trigger.validate()?;
        self.percentile.validate()?;

        let graph = SubtaskGraph::new(id, self.specs.len(), &self.edges)?;
        let subtasks: Vec<Subtask> = self
            .specs
            .iter()
            .enumerate()
            .map(|(i, (name, res, exec, cap))| {
                let mut s =
                    Subtask::new(SubtaskId::new(id, i), *res, *exec).with_name(name.clone());
                if let Some(c) = cap {
                    s = s.with_max_latency(*c);
                }
                s
            })
            .collect();
        for s in &subtasks {
            s.validate()?;
        }

        let weights: Vec<f64> = match self.aggregation {
            Aggregation::Sum => vec![1.0; subtasks.len()],
            Aggregation::PathWeighted => {
                (0..subtasks.len()).map(|i| graph.path_weight(i) as f64).collect()
            }
        };

        Ok(Task {
            id,
            name: self.name.clone(),
            subtasks,
            graph,
            critical_time: self.critical_time,
            utility,
            aggregation: self.aggregation,
            trigger: self.trigger,
            percentile: self.percentile,
            weights,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_task(aggregation: Aggregation) -> Task {
        let mut b = TaskBuilder::new("t");
        let a = b.subtask("a", ResourceId::new(0), 2.0);
        let c = b.subtask("b", ResourceId::new(1), 3.0);
        let d = b.subtask("c", ResourceId::new(2), 4.0);
        b.edge(a, c).unwrap();
        b.edge(a, d).unwrap();
        b.critical_time(45.0).aggregation(aggregation);
        b.build(TaskId::new(0)).unwrap()
    }

    #[test]
    fn builder_produces_valid_task() {
        let t = simple_task(Aggregation::PathWeighted);
        assert_eq!(t.len(), 3);
        assert_eq!(t.graph().paths().len(), 2);
        assert_eq!(t.critical_time(), 45.0);
        assert_eq!(t.subtask_id(1).index(), 1);
    }

    #[test]
    fn default_utility_is_paper_linear() {
        let t = simple_task(Aggregation::Sum);
        // f(lat) = 2C - lat => f(0) = 90.
        assert_eq!(t.utility_fn().value(0.0), 90.0);
    }

    #[test]
    fn weights_sum_variant() {
        let t = simple_task(Aggregation::Sum);
        assert_eq!(t.weights(), &[1.0, 1.0, 1.0]);
        assert_eq!(t.aggregate_latency(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn weights_path_weighted_variant() {
        let t = simple_task(Aggregation::PathWeighted);
        // Root is on both paths.
        assert_eq!(t.weights(), &[2.0, 1.0, 1.0]);
        assert_eq!(t.aggregate_latency(&[1.0, 2.0, 3.0]), 2.0 + 2.0 + 3.0);
    }

    #[test]
    fn utility_composes_aggregation() {
        let t = simple_task(Aggregation::PathWeighted);
        let lats = [5.0, 10.0, 20.0];
        let agg = t.aggregate_latency(&lats);
        assert_eq!(t.utility(&lats), 90.0 - agg);
    }

    #[test]
    fn critical_path_of_task() {
        let t = simple_task(Aggregation::Sum);
        let (idx, lat) = t.critical_path(&[5.0, 10.0, 20.0]);
        assert_eq!(lat, 25.0);
        assert_eq!(t.graph().paths()[idx].subtasks(), &[0, 2]);
    }

    #[test]
    fn build_rejects_missing_critical_time() {
        let mut b = TaskBuilder::new("t");
        b.subtask("a", ResourceId::new(0), 1.0);
        assert!(matches!(
            b.build(TaskId::new(0)),
            Err(ModelError::InvalidParameter { what: "critical time (C_i)", .. })
        ));
    }

    #[test]
    fn build_rejects_empty_task() {
        let b = TaskBuilder::new("t");
        assert!(matches!(b.build(TaskId::new(0)), Err(ModelError::EmptyTask { .. })));
    }

    #[test]
    fn edge_rejects_unknown_index() {
        let mut b = TaskBuilder::new("t");
        b.subtask("a", ResourceId::new(0), 1.0);
        assert!(b.edge(0, 3).is_err());
        assert!(b.edge(0, 0).is_err());
    }

    #[test]
    fn chain_builder_matches_manual_edges() {
        let mut b = TaskBuilder::new("t");
        let s: Vec<usize> =
            (0..4).map(|i| b.subtask(format!("s{i}"), ResourceId::new(i), 1.0)).collect();
        b.chain(&s).unwrap();
        let t = b.critical_time(10.0).build(TaskId::new(1)).unwrap();
        assert!(t.graph().is_chain());
    }

    #[test]
    fn trigger_rates() {
        assert!((TriggerSpec::Periodic { period: 100.0 }.mean_rate() - 0.01).abs() < 1e-12);
        assert!((TriggerSpec::Poisson { rate: 0.04 }.mean_rate() - 0.04).abs() < 1e-12);
        assert!((TriggerSpec::Bursty { period: 100.0, burst: 5 }.mean_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn trigger_validation() {
        assert!(TriggerSpec::Periodic { period: 0.0 }.validate().is_err());
        assert!(TriggerSpec::Poisson { rate: -1.0 }.validate().is_err());
        assert!(TriggerSpec::Bursty { period: 10.0, burst: 0 }.validate().is_err());
        assert!(TriggerSpec::default().validate().is_ok());
    }

    #[test]
    fn invalid_utility_rejected_at_build() {
        let mut b = TaskBuilder::new("t");
        b.subtask("a", ResourceId::new(0), 1.0);
        b.critical_time(10.0).utility(UtilityFn::Linear { offset: 0.0, slope: 1.0 });
        assert!(b.build(TaskId::new(0)).is_err());
    }
}
