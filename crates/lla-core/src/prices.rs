//! Price computation: projected gradient ascent on the dual (§4.3).
//!
//! A price is associated with each resource (`μ_r`) and each path (`λ_p`)
//! and reflects its level of congestion. Prices are adjusted opposite to
//! the gradient of the dual objective and projected onto `[0, ∞)`:
//!
//! ```text
//! μ_r(t+1) = [ μ_r(t) − γ_r · (B_r − Σ_{s∈S_r} share_r(s, lat_s)) ]⁺   (Eq. 8)
//! λ_p(t+1) = [ λ_p(t) − γ_p · (1 − Σ_{s∈p} lat_s / C_i) ]⁺            (Eq. 9)
//! ```
//!
//! Step sizes trade convergence speed against oscillation. The paper's
//! adaptive heuristic (§5.2) doubles a resource's step size — and that of
//! every path traversing it — for as long as the resource stays congested,
//! and reverts to the initial value as soon as it decongests.

use crate::problem::{MembershipReport, Problem};
use serde::{Deserialize, Serialize};

/// How price-update step sizes `γ_r`, `γ_p` are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StepSizePolicy {
    /// A single fixed step size for all resources and paths (the paper's
    /// baseline, evaluated at γ ∈ {0.1, 1, 10} in Figure 5).
    Fixed {
        /// The step size γ.
        gamma: f64,
    },
    /// The paper's adaptive heuristic: start at `initial`; while a resource
    /// is congested multiply its γ (and that of paths through it) by
    /// `factor` each iteration, capped at `max`; revert to `initial` on
    /// decongestion.
    Adaptive {
        /// Initial (and post-decongestion) step size.
        initial: f64,
        /// Multiplicative growth factor per congested iteration (paper: 2).
        factor: f64,
        /// Upper cap preventing numeric blow-up.
        max: f64,
    },
    /// Sign-adaptive (Rprop-style) step sizes — our extension.
    ///
    /// The paper's heuristic only accelerates the *congested* direction; a
    /// price that overshot decays at rate `γ·slack`, and near equilibrium
    /// the slack is tiny, so recovery can take tens of thousands of
    /// iterations. This variant grows a price's step size whenever its
    /// gradient keeps the same sign on consecutive iterations (in either
    /// direction) and resets it when the sign flips. The ablation bench
    /// compares the two.
    SignAdaptive {
        /// Initial (and post-flip) step size.
        initial: f64,
        /// Multiplicative growth factor per same-sign iteration.
        factor: f64,
        /// Upper cap preventing numeric blow-up.
        max: f64,
    },
}

impl StepSizePolicy {
    /// A fixed step size.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not strictly positive and finite.
    pub fn fixed(gamma: f64) -> Self {
        assert!(gamma.is_finite() && gamma > 0.0, "step size must be positive");
        StepSizePolicy::Fixed { gamma }
    }

    /// The paper's adaptive heuristic with doubling, capped at 64× the
    /// initial step size.
    ///
    /// The paper reports the best results for `initial = 1`. The cap is our
    /// addition: without it a long congestion episode grows γ so large that
    /// prices overshoot by orders of magnitude and take thousands of
    /// iterations to decay back (the projected-gradient decay rate is
    /// proportional to the — small — constraint slack near equilibrium).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is not strictly positive and finite.
    pub fn adaptive(initial: f64) -> Self {
        assert!(initial.is_finite() && initial > 0.0, "step size must be positive");
        StepSizePolicy::Adaptive { initial, factor: 2.0, max: 64.0 * initial }
    }

    /// The sign-adaptive extension with doubling, capped at 64× the
    /// initial step size.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is not strictly positive and finite.
    pub fn sign_adaptive(initial: f64) -> Self {
        assert!(initial.is_finite() && initial > 0.0, "step size must be positive");
        StepSizePolicy::SignAdaptive { initial, factor: 2.0, max: 64.0 * initial }
    }

    /// The starting step size under this policy.
    pub fn initial_gamma(&self) -> f64 {
        match *self {
            StepSizePolicy::Fixed { gamma } => gamma,
            StepSizePolicy::Adaptive { initial, .. } => initial,
            StepSizePolicy::SignAdaptive { initial, .. } => initial,
        }
    }
}

impl Default for StepSizePolicy {
    /// Adaptive with initial γ = 1, the configuration the paper found best.
    fn default() -> Self {
        StepSizePolicy::adaptive(1.0)
    }
}

/// The dual variables of LLA: one `μ_r` per resource and one `λ_p` per
/// root-to-leaf path, plus their per-entity adaptive step sizes.
#[derive(Debug, PartialEq)]
pub struct PriceState {
    mu: Vec<f64>,
    /// `lambda[t][p]` for path `p` of task `t`.
    lambda: Vec<Vec<f64>>,
    gamma_r: Vec<f64>,
    gamma_p: Vec<Vec<f64>>,
    last_grad_r: Vec<f64>,
    last_grad_p: Vec<Vec<f64>>,
    last_max_rel_step: f64,
    rejected_samples: u64,
    gamma_doublings: u64,
    policy: StepSizePolicy,
}

/// Hand-written so `clone_from` reuses the destination's price and
/// gradient buffers (`Vec::clone_from` keeps inner allocations when shapes
/// match) — checkpoint exports clone a `PriceState` every round.
impl Clone for PriceState {
    fn clone(&self) -> Self {
        PriceState {
            mu: self.mu.clone(),
            lambda: self.lambda.clone(),
            gamma_r: self.gamma_r.clone(),
            gamma_p: self.gamma_p.clone(),
            last_grad_r: self.last_grad_r.clone(),
            last_grad_p: self.last_grad_p.clone(),
            last_max_rel_step: self.last_max_rel_step,
            rejected_samples: self.rejected_samples,
            gamma_doublings: self.gamma_doublings,
            policy: self.policy,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.mu.clone_from(&source.mu);
        self.lambda.clone_from(&source.lambda);
        self.gamma_r.clone_from(&source.gamma_r);
        self.gamma_p.clone_from(&source.gamma_p);
        self.last_grad_r.clone_from(&source.last_grad_r);
        self.last_grad_p.clone_from(&source.last_grad_p);
        self.last_max_rel_step = source.last_max_rel_step;
        self.rejected_samples = source.rejected_samples;
        self.gamma_doublings = source.gamma_doublings;
        self.policy = source.policy;
    }
}

impl PriceState {
    /// Initializes zero prices for every resource and path of `problem`.
    pub fn new(problem: &Problem, policy: StepSizePolicy) -> Self {
        let g0 = policy.initial_gamma();
        PriceState {
            mu: vec![0.0; problem.resources().len()],
            lambda: problem.tasks().iter().map(|t| vec![0.0; t.graph().paths().len()]).collect(),
            gamma_r: vec![g0; problem.resources().len()],
            gamma_p: problem.tasks().iter().map(|t| vec![g0; t.graph().paths().len()]).collect(),
            last_grad_r: vec![0.0; problem.resources().len()],
            last_grad_p: problem
                .tasks()
                .iter()
                .map(|t| vec![0.0; t.graph().paths().len()])
                .collect(),
            last_max_rel_step: f64::INFINITY,
            rejected_samples: 0,
            gamma_doublings: 0,
            policy,
        }
    }

    /// Warm-starts a price state for a problem produced by a membership
    /// change: surviving resources keep `μ_r`, step size, and last
    /// gradient; surviving tasks keep their whole `λ` row; newcomers start
    /// from zero prices at the initial step size.
    ///
    /// A surviving task whose path count changed (it was rebuilt with a
    /// different graph) also restarts fresh — stale per-path duals for a
    /// different path set would be meaningless.
    pub fn remap(&self, problem: &Problem, report: &MembershipReport) -> PriceState {
        let mut next = PriceState::new(problem, self.policy);
        for (old, m) in report.resource_map.iter().enumerate() {
            if let Some(new) = *m {
                next.mu[new] = self.mu[old];
                next.gamma_r[new] = self.gamma_r[old];
                next.last_grad_r[new] = self.last_grad_r[old];
            }
        }
        for (old, m) in report.task_map.iter().enumerate() {
            if let Some(new) = *m {
                if self.lambda[old].len() == next.lambda[new].len() {
                    next.lambda[new].copy_from_slice(&self.lambda[old]);
                    next.gamma_p[new].copy_from_slice(&self.gamma_p[old]);
                    next.last_grad_p[new].copy_from_slice(&self.last_grad_p[old]);
                }
            }
        }
        next.last_max_rel_step = self.last_max_rel_step;
        next.rejected_samples = self.rejected_samples;
        next.gamma_doublings = self.gamma_doublings;
        next
    }

    /// How many non-finite price samples have been rejected (see
    /// [`set_mu`](Self::set_mu) and the step appliers). A nonzero count
    /// under faults means the guards saved the duals from NaN/∞ poisoning.
    pub fn rejected_samples(&self) -> u64 {
        self.rejected_samples
    }

    /// How many step-size growth events the adaptive policies have taken
    /// (the `γ ← min(γ·factor, max)` arm actually increasing `γ`). Always
    /// zero under [`StepSizePolicy::Fixed`]. Telemetry reads deltas of
    /// this to expose a doubling rate.
    pub fn gamma_doublings(&self) -> u64 {
        self.gamma_doublings
    }

    /// The largest relative price movement `|Δprice|/(1 + price)` of the
    /// most recent [`update`](Self::update) — the optimizer's price
    /// quiescence signal. `∞` before the first update.
    pub fn last_max_rel_step(&self) -> f64 {
        self.last_max_rel_step
    }

    /// The resource price `μ_r` for resource index `r`.
    pub fn mu(&self, r: usize) -> f64 {
        self.mu[r]
    }

    /// All resource prices, indexed by resource.
    pub fn mus(&self) -> &[f64] {
        &self.mu
    }

    /// The path price `λ_p` for path `p` of task `t`.
    pub fn lambda(&self, t: usize, p: usize) -> f64 {
        self.lambda[t][p]
    }

    /// All path prices of task `t`.
    pub fn lambdas(&self, t: usize) -> &[f64] {
        &self.lambda[t]
    }

    /// Overwrites the resource price (used by the distributed runtime when
    /// a price message arrives).
    ///
    /// A non-finite value is rejected — `NaN.max(0.0)` would poison `μ_r`
    /// for the rest of the run — keeping the previous finite price and
    /// bumping [`rejected_samples`](Self::rejected_samples).
    pub fn set_mu(&mut self, r: usize, value: f64) {
        if !value.is_finite() {
            self.rejected_samples += 1;
            return;
        }
        self.mu[r] = value.max(0.0);
    }

    /// Overwrites a path price (used by the distributed runtime). Rejects
    /// non-finite values like [`set_mu`](Self::set_mu).
    pub fn set_lambda(&mut self, t: usize, p: usize, value: f64) {
        if !value.is_finite() {
            self.rejected_samples += 1;
            return;
        }
        self.lambda[t][p] = value.max(0.0);
    }

    /// The step-size policy these duals evolve under.
    pub fn policy(&self) -> StepSizePolicy {
        self.policy
    }

    /// Shard-shaped price state (crate-internal, used by
    /// [`crate::shard::ShardedOptimizer`]): a full-size μ/γ_r mirror over
    /// **every** global resource — so plan kernels can index it with
    /// global `sub_res` ids — but λ rows only for the shard's `tasks`
    /// (plan-local row order = slice order).
    pub(crate) fn for_shard(problem: &Problem, tasks: &[usize], policy: StepSizePolicy) -> Self {
        let g0 = policy.initial_gamma();
        let nr = problem.resources().len();
        let rows: Vec<usize> =
            tasks.iter().map(|&t| problem.tasks()[t].graph().paths().len()).collect();
        PriceState {
            mu: vec![0.0; nr],
            lambda: rows.iter().map(|&n| vec![0.0; n]).collect(),
            gamma_r: vec![g0; nr],
            gamma_p: rows.iter().map(|&n| vec![g0; n]).collect(),
            last_grad_r: vec![0.0; nr],
            last_grad_p: rows.iter().map(|&n| vec![0.0; n]).collect(),
            last_max_rel_step: f64::INFINITY,
            rejected_samples: 0,
            gamma_doublings: 0,
            policy,
        }
    }

    /// Raw `(μ, γ, last_grad)` triple for resource `r` — ownership
    /// transfers between a shard and its coordinator move the *full*
    /// adaptive state, not just the price.
    pub(crate) fn resource_dual_raw(&self, r: usize) -> (f64, f64, f64) {
        (self.mu[r], self.gamma_r[r], self.last_grad_r[r])
    }

    /// Installs a raw resource-dual triple taken from
    /// [`resource_dual_raw`](Self::resource_dual_raw).
    pub(crate) fn set_resource_dual_raw(&mut self, r: usize, raw: (f64, f64, f64)) {
        self.mu[r] = raw.0;
        self.gamma_r[r] = raw.1;
        self.last_grad_r[r] = raw.2;
    }

    /// Raw `(λ, γ, last_grad)` triple for path `p` of λ-row `row`.
    pub(crate) fn path_dual_raw(&self, row: usize, p: usize) -> (f64, f64, f64) {
        (self.lambda[row][p], self.gamma_p[row][p], self.last_grad_p[row][p])
    }

    /// Installs a raw path-dual triple taken from
    /// [`path_dual_raw`](Self::path_dual_raw).
    pub(crate) fn set_path_dual_raw(&mut self, row: usize, p: usize, raw: (f64, f64, f64)) {
        self.lambda[row][p] = raw.0;
        self.gamma_p[row][p] = raw.1;
        self.last_grad_p[row][p] = raw.2;
    }

    /// Appends a fresh zero-dual λ row of `paths` entries (a task joining
    /// a shard is appended at the end of its plan-local order).
    pub(crate) fn push_lambda_row(&mut self, paths: usize) {
        let g0 = self.policy.initial_gamma();
        self.lambda.push(vec![0.0; paths]);
        self.gamma_p.push(vec![g0; paths]);
        self.last_grad_p.push(vec![0.0; paths]);
    }

    /// Removes λ row `row`, shifting later rows down (a task leaving a
    /// shard; plan-local order of the survivors is preserved).
    pub(crate) fn remove_lambda_row(&mut self, row: usize) {
        self.lambda.remove(row);
        self.gamma_p.remove(row);
        self.last_grad_p.remove(row);
    }

    /// Overwrites the diagnostic bookkeeping (used when assembling a
    /// global state from shard states for checkpoint export).
    pub(crate) fn set_bookkeeping(
        &mut self,
        last_max_rel_step: f64,
        rejected: u64,
        doublings: u64,
    ) {
        self.last_max_rel_step = last_max_rel_step;
        self.rejected_samples = rejected;
        self.gamma_doublings = doublings;
    }

    /// Remediation hook for gamma-thrash (supervisor §12): resets every
    /// per-entity step size back to the policy's initial value and clamps
    /// the adaptive growth cap to `initial × max_multiple`. A multiple of
    /// `1.0` degrades the policy to effectively fixed; repeated calls can
    /// only tighten the cap. Prices and gradients are untouched — only
    /// the step-size machinery is calmed. No-op cap for
    /// [`StepSizePolicy::Fixed`].
    ///
    /// # Panics
    ///
    /// Panics if `max_multiple < 1` or non-finite.
    pub fn calm_gammas(&mut self, max_multiple: f64) {
        assert!(
            max_multiple.is_finite() && max_multiple >= 1.0,
            "gamma clamp multiple must be ≥ 1"
        );
        let g0 = self.policy.initial_gamma();
        match &mut self.policy {
            StepSizePolicy::Fixed { .. } => {}
            StepSizePolicy::Adaptive { initial, max, .. }
            | StepSizePolicy::SignAdaptive { initial, max, .. } => {
                *max = max.min(*initial * max_multiple);
            }
        }
        for g in &mut self.gamma_r {
            *g = g0;
        }
        for row in &mut self.gamma_p {
            for g in row {
                *g = g0;
            }
        }
    }

    /// The current step size of resource `r` (for introspection/tests).
    pub fn gamma_r(&self, r: usize) -> f64 {
        self.gamma_r[r]
    }

    /// The current step size of path `p` of task `t`.
    pub fn gamma_p(&self, t: usize, p: usize) -> f64 {
        self.gamma_p[t][p]
    }

    /// Performs one full price-computation step (Eqs. 8–9) for the given
    /// allocation, including the adaptive step-size heuristic when the
    /// policy selects it.
    ///
    /// `lats[t][s]` is the latency allocated to subtask `s` of task `t`.
    pub fn update(&mut self, problem: &Problem, lats: &[Vec<f64>]) {
        // Dual gradients: resource slack (Eq. 8) and relative path slack
        // (Eq. 9). Gradients are price-independent, so the resource pass
        // computes-and-applies in one walk and the path pass enumerates
        // each task's paths exactly once per round.
        let mut congested = vec![false; problem.resources().len()];
        self.reset_step_tracking();
        for (r, res) in problem.resources().iter().enumerate() {
            let g = res.availability() - problem.resource_usage(res.id(), lats);
            congested[r] = g < 0.0;
            self.apply_resource_step(r, g);
        }
        for (t, task) in problem.tasks().iter().enumerate() {
            let tl = &lats[task.id().index()];
            for (p, path) in task.graph().paths().iter().enumerate() {
                let grad = 1.0 - path.latency(tl) / task.critical_time();
                let traverses_congested = path
                    .subtasks()
                    .iter()
                    .any(|&s| congested[task.subtasks()[s].resource().index()]);
                self.apply_path_step(t, p, grad, traverses_congested);
            }
        }
    }

    /// Resets the [`last_max_rel_step`](Self::last_max_rel_step) tracker;
    /// distributed drivers call this at round boundaries before applying
    /// per-entity steps.
    pub fn reset_step_tracking(&mut self) {
        self.last_max_rel_step = 0.0;
    }

    /// Applies one resource price step (Eq. 8) given the dual gradient
    /// `grad = B_r − usage_r`, including this policy's step-size
    /// adaptation. This is the operation a distributed resource agent
    /// performs locally. Returns the new `μ_r`.
    pub fn apply_resource_step(&mut self, r: usize, grad: f64) -> f64 {
        // A NaN/∞ gradient (zero-availability resource after a fault,
        // corrupt message) would poison μ_r and `last_grad` permanently;
        // drop the sample and keep the previous finite price.
        if !grad.is_finite() {
            self.rejected_samples += 1;
            return self.mu[r];
        }
        let congested = grad < 0.0;
        let prev_gamma = self.gamma_r[r];
        self.gamma_r[r] = match self.policy {
            StepSizePolicy::Fixed { gamma } => gamma,
            StepSizePolicy::Adaptive { initial, factor, max } => {
                // Paper §5.2: double while congested, revert on decongestion.
                if congested {
                    (self.gamma_r[r] * factor).min(max)
                } else {
                    initial
                }
            }
            StepSizePolicy::SignAdaptive { initial, factor, max } => {
                // Grow while the gradient sign persists (and the projected
                // price is actually moving); reset on a sign flip.
                let same = grad.signum() == self.last_grad_r[r].signum();
                let moving = congested || self.mu[r] > 0.0;
                if same && moving && self.last_grad_r[r] != 0.0 {
                    (self.gamma_r[r] * factor).min(max)
                } else {
                    initial
                }
            }
        };
        // Only the multiply arm can raise γ (the other arms hold or reset
        // to `initial`), so a strict increase is exactly a doubling event.
        if self.gamma_r[r] > prev_gamma {
            self.gamma_doublings += 1;
        }
        let new = (self.mu[r] - self.gamma_r[r] * grad).max(0.0);
        self.last_max_rel_step = self.last_max_rel_step.max((new - self.mu[r]).abs() / (1.0 + new));
        self.mu[r] = new;
        self.last_grad_r[r] = grad;
        new
    }

    /// Applies one path price step (Eq. 9) given the relative slack
    /// `grad = 1 − path_latency/C_i` and whether the path traverses a
    /// congested resource (needed by the paper's adaptive heuristic; the
    /// resource's congestion bit travels with its price message in the
    /// distributed runtime). This is the operation a task controller
    /// performs locally. Returns the new `λ_p`.
    pub fn apply_path_step(
        &mut self,
        t: usize,
        p: usize,
        grad: f64,
        traverses_congested: bool,
    ) -> f64 {
        if !grad.is_finite() {
            self.rejected_samples += 1;
            return self.lambda[t][p];
        }
        let prev_gamma = self.gamma_p[t][p];
        self.gamma_p[t][p] = match self.policy {
            StepSizePolicy::Fixed { gamma } => gamma,
            StepSizePolicy::Adaptive { initial, factor, max } => {
                if traverses_congested {
                    (self.gamma_p[t][p] * factor).min(max)
                } else {
                    initial
                }
            }
            StepSizePolicy::SignAdaptive { initial, factor, max } => {
                let same = grad.signum() == self.last_grad_p[t][p].signum();
                let moving = grad < 0.0 || self.lambda[t][p] > 0.0;
                if same && moving && self.last_grad_p[t][p] != 0.0 {
                    (self.gamma_p[t][p] * factor).min(max)
                } else {
                    initial
                }
            }
        };
        if self.gamma_p[t][p] > prev_gamma {
            self.gamma_doublings += 1;
        }
        let new = (self.lambda[t][p] - self.gamma_p[t][p] * grad).max(0.0);
        self.last_max_rel_step =
            self.last_max_rel_step.max((new - self.lambda[t][p]).abs() / (1.0 + new));
        self.lambda[t][p] = new;
        self.last_grad_p[t][p] = grad;
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ResourceId, TaskId};
    use crate::resource::{Resource, ResourceKind};
    use crate::task::TaskBuilder;

    fn problem() -> Problem {
        let resources = vec![
            Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(1.0),
            Resource::new(ResourceId::new(1), ResourceKind::Cpu).with_lag(1.0),
        ];
        let mut b = TaskBuilder::new("t");
        let a = b.subtask("a", ResourceId::new(0), 2.0);
        let c = b.subtask("b", ResourceId::new(1), 2.0);
        b.edge(a, c).unwrap();
        b.critical_time(20.0);
        Problem::new(resources, vec![b.build(TaskId::new(0)).unwrap()]).unwrap()
    }

    #[test]
    fn gamma_doublings_count_growth_events() {
        let p = problem();
        let mut s = PriceState::new(&p, StepSizePolicy::adaptive(1.0));
        assert_eq!(s.gamma_doublings(), 0);
        s.apply_resource_step(0, -1.0); // congested: γ 1 → 2
        s.apply_resource_step(0, -1.0); // γ 2 → 4
        assert_eq!(s.gamma_doublings(), 2);
        s.apply_resource_step(0, 1.0); // decongested: reset, not a doubling
        assert_eq!(s.gamma_doublings(), 2);
        s.apply_path_step(0, 0, -0.5, true); // congested path: γ 1 → 2
        assert_eq!(s.gamma_doublings(), 3);
        // The counter travels through Clone and remap.
        assert_eq!(s.clone().gamma_doublings(), 3);
        let id = MembershipReport::identity(1, 2);
        assert_eq!(s.remap(&p, &id).gamma_doublings(), 3);
    }

    #[test]
    fn fixed_policy_never_doubles() {
        let p = problem();
        let mut s = PriceState::new(&p, StepSizePolicy::fixed(0.5));
        for _ in 0..10 {
            s.apply_resource_step(0, -1.0);
        }
        assert_eq!(s.gamma_doublings(), 0);
    }

    #[test]
    fn doublings_stop_at_the_gamma_cap() {
        let p = problem();
        // adaptive(1.0): factor 2, max 64 → exactly 6 doublings reach it.
        let mut s = PriceState::new(&p, StepSizePolicy::adaptive(1.0));
        for _ in 0..20 {
            s.apply_resource_step(0, -1.0);
        }
        assert_eq!(s.gamma_doublings(), 6);
        assert_eq!(s.gamma_r(0), 64.0);
    }

    #[test]
    fn prices_start_at_zero() {
        let p = problem();
        let s = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        assert_eq!(s.mus(), &[0.0, 0.0]);
        assert_eq!(s.lambdas(0), &[0.0]);
    }

    #[test]
    fn congested_resource_price_rises() {
        let p = problem();
        let mut s = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        // Tiny latencies => shares (3/1) each => heavy congestion.
        let lats = vec![vec![1.0, 1.0]];
        s.update(&p, &lats);
        assert!(s.mu(0) > 0.0, "price of congested resource must rise");
        assert!(s.mu(1) > 0.0);
    }

    #[test]
    fn uncongested_resource_price_projected_to_zero() {
        let p = problem();
        let mut s = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        // Generous latencies => usage << B_r, gradient positive, price would
        // go negative but is projected onto zero.
        let lats = vec![vec![9.0, 9.0]];
        s.update(&p, &lats);
        assert_eq!(s.mu(0), 0.0);
    }

    #[test]
    fn path_price_rises_when_deadline_missed() {
        let p = problem();
        let mut s = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        // Path latency 30 > C = 20 => negative slack => lambda rises.
        let lats = vec![vec![15.0, 15.0]];
        s.update(&p, &lats);
        assert!(s.lambda(0, 0) > 0.0);
    }

    #[test]
    fn path_price_stays_zero_with_slack() {
        let p = problem();
        let mut s = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        let lats = vec![vec![5.0, 5.0]];
        s.update(&p, &lats);
        assert_eq!(s.lambda(0, 0), 0.0);
    }

    #[test]
    fn fixed_policy_never_changes_gamma() {
        let p = problem();
        let mut s = PriceState::new(&p, StepSizePolicy::fixed(0.5));
        let lats = vec![vec![1.0, 1.0]]; // congested
        for _ in 0..5 {
            s.update(&p, &lats);
        }
        assert_eq!(s.gamma_r(0), 0.5);
        assert_eq!(s.gamma_p(0, 0), 0.5);
    }

    #[test]
    fn adaptive_gamma_doubles_under_congestion_and_reverts() {
        let p = problem();
        let mut s = PriceState::new(&p, StepSizePolicy::adaptive(1.0));
        let congested = vec![vec![1.0, 1.0]];
        s.update(&p, &congested);
        assert_eq!(s.gamma_r(0), 2.0);
        assert_eq!(s.gamma_p(0, 0), 2.0, "paths through congested resources double too");
        s.update(&p, &congested);
        assert_eq!(s.gamma_r(0), 4.0);
        // Decongest: gamma reverts to initial immediately.
        let relaxed = vec![vec![9.0, 9.0]];
        s.update(&p, &relaxed);
        assert_eq!(s.gamma_r(0), 1.0);
        assert_eq!(s.gamma_p(0, 0), 1.0);
    }

    #[test]
    fn adaptive_gamma_is_capped() {
        let p = problem();
        let policy = StepSizePolicy::Adaptive { initial: 1.0, factor: 2.0, max: 8.0 };
        let mut s = PriceState::new(&p, policy);
        let congested = vec![vec![1.0, 1.0]];
        for _ in 0..10 {
            s.update(&p, &congested);
        }
        assert_eq!(s.gamma_r(0), 8.0);
    }

    #[test]
    fn setters_project_to_nonnegative() {
        let p = problem();
        let mut s = PriceState::new(&p, StepSizePolicy::default());
        s.set_mu(0, -3.0);
        assert_eq!(s.mu(0), 0.0);
        s.set_lambda(0, 0, -1.0);
        assert_eq!(s.lambda(0, 0), 0.0);
        s.set_mu(1, 2.5);
        assert_eq!(s.mu(1), 2.5);
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn fixed_policy_rejects_zero() {
        let _ = StepSizePolicy::fixed(0.0);
    }

    #[test]
    fn non_finite_samples_are_rejected_not_absorbed() {
        let p = problem();
        let mut s = PriceState::new(&p, StepSizePolicy::fixed(1.0));
        s.set_mu(0, 3.0);
        s.set_mu(0, f64::NAN);
        s.set_mu(0, f64::INFINITY);
        assert_eq!(s.mu(0), 3.0, "non-finite set_mu must keep the previous price");
        s.set_lambda(0, 0, 1.5);
        s.set_lambda(0, 0, f64::NEG_INFINITY);
        assert_eq!(s.lambda(0, 0), 1.5);
        let before = s.clone();
        assert_eq!(s.apply_resource_step(0, f64::NAN), 3.0);
        assert_eq!(s.apply_path_step(0, 0, f64::INFINITY, false), 1.5);
        assert_eq!(s.mus(), before.mus(), "rejected gradients must not move prices");
        assert_eq!(s.rejected_samples(), 5);
        // Finite samples still flow normally afterwards.
        s.apply_resource_step(0, -1.0);
        assert_eq!(s.mu(0), 4.0);
        assert_eq!(s.rejected_samples(), 5);
    }

    #[test]
    fn remap_carries_survivor_duals_and_zeroes_newcomers() {
        let mut p = problem();
        let mut s = PriceState::new(&p, StepSizePolicy::adaptive(1.0));
        // Resource 0 congested (share 3/1) and the path late (26 > C=20),
        // so both a μ and a λ move off zero.
        let congested = vec![vec![1.0, 25.0]];
        for _ in 0..3 {
            s.update(&p, &congested);
        }
        let (mu0, mu1) = (s.mu(0), s.mu(1));
        let lam = s.lambda(0, 0);
        assert!(mu0 > 0.0 && lam > 0.0);

        // Admit a second task: survivors keep duals, the newcomer is fresh.
        let mut b = TaskBuilder::new("new");
        b.subtask("n", ResourceId::new(0), 1.0);
        b.critical_time(15.0);
        let report = p.add_task(&b).unwrap();
        let warm = s.remap(&p, &report);
        assert_eq!(warm.mu(0), mu0);
        assert_eq!(warm.mu(1), mu1);
        assert_eq!(warm.gamma_r(0), s.gamma_r(0));
        assert_eq!(warm.lambda(0, 0), lam);
        assert_eq!(warm.lambda(1, 0), 0.0, "newcomer starts with zero duals");
        assert_eq!(warm.gamma_p(1, 0), 1.0);

        // Remove the original task: the newcomer shifts to index 0 with its
        // (zero) duals; resource prices persist.
        let report = p.remove_task(TaskId::new(0)).unwrap();
        let warm2 = warm.remap(&p, &report);
        assert_eq!(warm2.mu(0), mu0);
        assert_eq!(warm2.lambda(0, 0), 0.0);
    }

    #[test]
    fn calm_gammas_resets_steps_and_clamps_growth() {
        let p = problem();
        let mut s = PriceState::new(&p, StepSizePolicy::adaptive(1.0));
        let congested = vec![vec![1.0, 1.0]];
        for _ in 0..4 {
            s.update(&p, &congested);
        }
        assert!(s.gamma_r(0) > 1.0);
        let mu_before = s.mu(0);
        s.calm_gammas(2.0);
        assert_eq!(s.gamma_r(0), 1.0, "steps revert to initial");
        assert_eq!(s.gamma_p(0, 0), 1.0);
        assert_eq!(s.mu(0), mu_before, "prices are untouched");
        match s.policy() {
            StepSizePolicy::Adaptive { max, .. } => assert_eq!(max, 2.0),
            other => panic!("policy variant changed: {other:?}"),
        }
        // Future growth respects the tightened cap.
        for _ in 0..6 {
            s.update(&p, &congested);
        }
        assert!(s.gamma_r(0) <= 2.0);
        // Calming again can only tighten, never widen.
        s.calm_gammas(64.0);
        match s.policy() {
            StepSizePolicy::Adaptive { max, .. } => assert_eq!(max, 2.0),
            other => panic!("policy variant changed: {other:?}"),
        }
    }

    #[test]
    fn calm_gammas_is_a_cap_noop_for_fixed() {
        let p = problem();
        let mut s = PriceState::new(&p, StepSizePolicy::fixed(0.5));
        s.calm_gammas(1.0);
        assert_eq!(s.policy(), StepSizePolicy::fixed(0.5));
        assert_eq!(s.gamma_r(0), 0.5);
    }

    #[test]
    fn sign_adaptive_grows_on_persistent_gradient() {
        let p = problem();
        let mut s = PriceState::new(&p, StepSizePolicy::sign_adaptive(1.0));
        let congested = vec![vec![1.0, 1.0]];
        s.update(&p, &congested); // first update: last grad was 0 => reset
        assert_eq!(s.gamma_r(0), 1.0);
        s.update(&p, &congested); // same sign => double
        assert_eq!(s.gamma_r(0), 2.0);
        s.update(&p, &congested);
        assert_eq!(s.gamma_r(0), 4.0);
    }

    #[test]
    fn sign_adaptive_grows_during_decay_and_resets_on_flip() {
        let p = problem();
        let mut s = PriceState::new(&p, StepSizePolicy::sign_adaptive(1.0));
        // Drive mu up with a congested allocation.
        let congested = vec![vec![1.0, 1.0]];
        for _ in 0..6 {
            s.update(&p, &congested);
        }
        let high = s.mu(0);
        assert!(high > 1.0);
        // Decongest: gradient flips sign => gamma resets, then grows while
        // mu decays — the asymmetry fix over the paper's heuristic.
        let relaxed = vec![vec![9.0, 9.0]];
        s.update(&p, &relaxed);
        assert_eq!(s.gamma_r(0), 1.0, "sign flip resets gamma");
        s.update(&p, &relaxed);
        assert_eq!(s.gamma_r(0), 2.0, "persistent positive slack grows gamma");
        assert!(s.mu(0) < high, "price must decay");
    }
}
