//! Iteration traces: the raw series behind the paper's figures.

use serde::{Deserialize, Serialize};

/// One recorded optimizer iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Total system utility `Σ U_i` after the latency-allocation step.
    pub utility: f64,
    /// Per-resource share sums `Σ_{s∈S_r} share_r(s, lat_s)`.
    pub resource_usage: Vec<f64>,
    /// Per-task critical-path latency divided by critical time.
    pub critical_path_ratio: Vec<f64>,
}

/// A time series of optimizer iterations.
///
/// The evaluation figures of the paper are views of this trace: Figure 5
/// plots `utility` against `iteration` for different step-size policies,
/// Figure 7 plots `utility` and `resource_usage` for an unschedulable
/// workload, and the critical-path ratios back the §5.4 verdicts.
///
/// A trace can be *bounded* ([`Trace::bounded`]): instead of growing
/// without limit during a long soak, it keeps at most `capacity` records
/// by stride-doubling downsampling — whenever the buffer fills, every
/// other record is dropped and the sampling stride doubles, so the kept
/// records always span the whole run at uniform (power-of-two) spacing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<TraceRecord>,
    /// Maximum retained records (`None` = unbounded append).
    #[serde(default)]
    capacity: Option<usize>,
    /// Accept one record in every `stride` pushes.
    #[serde(default)]
    stride: usize,
    /// Total records offered via [`push`](Self::push) (kept or not).
    #[serde(default)]
    seen: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace { records: Vec::new(), capacity: None, stride: 1, seen: 0 }
    }
}

impl Trace {
    /// Creates an empty, unbounded trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace keeping at most `capacity` records (when
    /// `Some`; clamped to ≥ 2 so downsampling can always halve). `None`
    /// behaves exactly like [`Trace::new`].
    pub fn bounded(capacity: Option<usize>) -> Self {
        Trace { capacity: capacity.map(|c| c.max(2)), ..Trace::default() }
    }

    /// The capacity this trace was created with.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The current downsampling stride: one in every `stride` offered
    /// records is retained (1 for an unbounded trace).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Total records offered to [`push`](Self::push), including ones the
    /// downsampler dropped.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Offers a record. Unbounded traces append; bounded traces keep it
    /// only on the current stride, and compact (drop every other record,
    /// double the stride) when full.
    pub fn push(&mut self, record: TraceRecord) {
        let keep = self.seen.is_multiple_of(self.stride as u64);
        self.seen += 1;
        if !keep {
            return;
        }
        self.records.push(record);
        if let Some(cap) = self.capacity {
            if self.records.len() >= cap {
                // Keep indices 0, 2, 4, … — the survivors are exactly the
                // records aligned to the doubled stride.
                let mut i = 0;
                self.records.retain(|_| {
                    let keep = i % 2 == 0;
                    i += 1;
                    keep
                });
                self.stride *= 2;
            }
        }
    }

    /// All records in iteration order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The utility series.
    pub fn utilities(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.utility).collect()
    }

    /// The share-sum series of resource `r`.
    pub fn resource_usage_series(&self, r: usize) -> Vec<f64> {
        self.records.iter().map(|rec| rec.resource_usage[r]).collect()
    }

    /// The critical-path-ratio series of task `t`.
    pub fn critical_path_ratio_series(&self, t: usize) -> Vec<f64> {
        self.records.iter().map(|rec| rec.critical_path_ratio[t]).collect()
    }

    /// Peak-to-peak amplitude of the utility over the last `window`
    /// records — a direct measure of the oscillation the paper reports for
    /// large step sizes.
    pub fn utility_oscillation(&self, window: usize) -> f64 {
        let tail = self.tail(window);
        if tail.is_empty() {
            return 0.0;
        }
        let max = tail.iter().map(|r| r.utility).fold(f64::NEG_INFINITY, f64::max);
        let min = tail.iter().map(|r| r.utility).fold(f64::INFINITY, f64::min);
        max - min
    }

    /// Mean utility over the last `window` records.
    pub fn mean_utility(&self, window: usize) -> f64 {
        let tail = self.tail(window);
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|r| r.utility).sum::<f64>() / tail.len() as f64
    }

    /// The first iteration index after which the utility stays within
    /// `tol` (relative) of its final mean for the rest of the trace, or
    /// `None` if it never settles.
    ///
    /// This is the "iterations to convergence" statistic of Figures 5–6.
    pub fn settling_iteration(&self, tol: f64) -> Option<usize> {
        if self.records.is_empty() {
            return None;
        }
        let final_mean = self.mean_utility(self.len().min(20));
        let band = tol * final_mean.abs().max(1.0);
        // Scan from the end for the last record outside the band.
        let mut settled_from = 0;
        for (i, r) in self.records.iter().enumerate() {
            if (r.utility - final_mean).abs() > band {
                settled_from = i + 1;
            }
        }
        if settled_from >= self.len() {
            None
        } else {
            Some(settled_from)
        }
    }

    /// Renders the trace as CSV with header
    /// `iteration,utility,usage_r0,...,ratio_t0,...`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        if let Some(first) = self.records.first() {
            out.push_str("iteration,utility");
            for r in 0..first.resource_usage.len() {
                out.push_str(&format!(",usage_r{r}"));
            }
            for t in 0..first.critical_path_ratio.len() {
                out.push_str(&format!(",ratio_t{t}"));
            }
            out.push('\n');
        }
        for rec in &self.records {
            out.push_str(&format!("{},{:.6}", rec.iteration, rec.utility));
            for u in &rec.resource_usage {
                out.push_str(&format!(",{u:.6}"));
            }
            for c in &rec.critical_path_ratio {
                out.push_str(&format!(",{c:.6}"));
            }
            out.push('\n');
        }
        out
    }

    fn tail(&self, window: usize) -> &[TraceRecord] {
        let start = self.records.len().saturating_sub(window.max(1));
        &self.records[start..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: usize, u: f64) -> TraceRecord {
        TraceRecord {
            iteration: i,
            utility: u,
            resource_usage: vec![0.5, 0.6],
            critical_path_ratio: vec![0.9],
        }
    }

    fn trace_of(utilities: &[f64]) -> Trace {
        let mut t = Trace::new();
        for (i, &u) in utilities.iter().enumerate() {
            t.push(record(i, u));
        }
        t
    }

    #[test]
    fn series_accessors() {
        let t = trace_of(&[1.0, 2.0, 3.0]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.utilities(), vec![1.0, 2.0, 3.0]);
        assert_eq!(t.resource_usage_series(1), vec![0.6, 0.6, 0.6]);
        assert_eq!(t.critical_path_ratio_series(0), vec![0.9, 0.9, 0.9]);
    }

    #[test]
    fn oscillation_measures_peak_to_peak() {
        let t = trace_of(&[0.0, 10.0, -10.0, 10.0, -10.0]);
        assert_eq!(t.utility_oscillation(4), 20.0);
        // Converged trace has tiny oscillation.
        let c = trace_of(&[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(c.utility_oscillation(4), 0.0);
    }

    #[test]
    fn settling_iteration_detects_convergence_point() {
        // Ramp then flat: settles when the ramp ends.
        let mut us: Vec<f64> = (0..50).map(|i| i as f64).collect();
        us.extend(std::iter::repeat_n(49.0, 100));
        let t = trace_of(&us);
        let s = t.settling_iteration(0.01).expect("should settle");
        assert!(s <= 50, "settling at {s}, expected <= 50");
        assert!(s >= 40);
    }

    #[test]
    fn settling_iteration_none_for_persistent_oscillation() {
        let us: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 0.0 } else { 50.0 }).collect();
        let t = trace_of(&us);
        assert_eq!(t.settling_iteration(0.01), None);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = trace_of(&[1.5, 2.5]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "iteration,utility,usage_r0,usage_r1,ratio_t0");
        assert!(lines.next().unwrap().starts_with("0,1.5"));
        assert!(lines.next().unwrap().starts_with("1,2.5"));
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.settling_iteration(0.01), None);
        assert_eq!(t.to_csv(), "");
        assert_eq!(t.utility_oscillation(5), 0.0);
    }

    #[test]
    fn empty_trace_series_are_empty() {
        let t = Trace::new();
        assert!(t.utilities().is_empty());
        assert_eq!(t.mean_utility(10), 0.0);
        assert_eq!(t.seen(), 0);
        assert_eq!(t.stride(), 1);
    }

    #[test]
    fn series_align_across_accessors() {
        // Each accessor must slice the same records in the same order.
        let mut t = Trace::new();
        for i in 0..4 {
            t.push(TraceRecord {
                iteration: i,
                utility: i as f64,
                resource_usage: vec![i as f64 * 0.1, i as f64 * 0.2],
                critical_path_ratio: vec![i as f64 * 0.3],
            });
        }
        assert_eq!(t.utilities(), vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(t.resource_usage_series(0), vec![0.0, 0.1, 0.2, 0.30000000000000004]);
        assert_eq!(t.resource_usage_series(1), vec![0.0, 0.2, 0.4, 0.6000000000000001]);
        assert_eq!(t.critical_path_ratio_series(0), vec![0.0, 0.3, 0.6, 0.8999999999999999]);
    }

    #[test]
    fn unbounded_trace_keeps_everything() {
        let t = trace_of(&(0..1000).map(|i| i as f64).collect::<Vec<_>>());
        assert_eq!(t.len(), 1000);
        assert_eq!(t.capacity(), None);
        assert_eq!(t.stride(), 1);
    }

    #[test]
    fn bounded_trace_never_exceeds_capacity_and_spans_the_run() {
        let mut t = Trace::bounded(Some(16));
        for i in 0..1000 {
            t.push(record(i, i as f64));
            assert!(t.len() <= 16, "len {} exceeded capacity at push {i}", t.len());
        }
        assert_eq!(t.seen(), 1000);
        // Stride doubled past 1000/16; retained records are uniformly
        // spaced from iteration 0 up to near the end.
        assert!(t.stride() >= 64, "stride {} too small", t.stride());
        let kept: Vec<usize> = t.records().iter().map(|r| r.iteration).collect();
        assert_eq!(kept[0], 0);
        assert!(*kept.last().unwrap() >= 1000 - 2 * t.stride());
        for w in kept.windows(2) {
            assert_eq!(w[1] - w[0], t.stride(), "non-uniform spacing: {kept:?}");
        }
    }

    #[test]
    fn bounded_capacity_is_clamped_to_two() {
        let mut t = Trace::bounded(Some(0));
        assert_eq!(t.capacity(), Some(2));
        for i in 0..10 {
            t.push(record(i, i as f64));
        }
        assert!(t.len() <= 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn bounded_none_is_unbounded() {
        let mut t = Trace::bounded(None);
        for i in 0..100 {
            t.push(record(i, 0.0));
        }
        assert_eq!(t.len(), 100);
    }
}
