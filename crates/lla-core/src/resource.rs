//! Resources: CPUs and network links under proportional-share scheduling.

use crate::error::ModelError;
use crate::ids::ResourceId;
use serde::{Deserialize, Serialize};

/// The kind of resource a subtask consumes.
///
/// The paper treats computation and communication uniformly: computation
/// subtasks consume [`Cpu`](ResourceKind::Cpu) resources, communication
/// subtasks consume [`NetworkLink`](ResourceKind::NetworkLink) resources.
/// LLA itself is agnostic to the kind; it only matters for modeling and
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// A processor scheduled by a proportional-share CPU scheduler.
    Cpu,
    /// A network link whose bandwidth is partitioned proportionally.
    NetworkLink,
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceKind::Cpu => write!(f, "cpu"),
            ResourceKind::NetworkLink => write!(f, "link"),
        }
    }
}

/// A schedulable resource with an availability fraction and scheduling lag.
///
/// * `availability` is `B_r ∈ [0, 1]`: the fraction of the resource offered
///   to the competing tasks (the rest may be reserved, e.g. `0.1` for the
///   Metronome garbage collector in the paper's prototype).
/// * `lag` is `l_r ≥ 0` (milliseconds): the scheduling lag of the
///   proportional-share scheduler, which enters the share function
///   `share_r(s, lat) = (c_s + l_r) / lat` (Eq. 10 in the paper).
///
/// # Example
/// ```
/// use lla_core::{Resource, ResourceId, ResourceKind};
/// let r = Resource::new(ResourceId::new(0), ResourceKind::Cpu)
///     .with_availability(0.9)
///     .with_lag(5.0)
///     .with_name("cpu0");
/// assert_eq!(r.availability(), 0.9);
/// assert_eq!(r.lag(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    id: ResourceId,
    kind: ResourceKind,
    availability: f64,
    lag: f64,
    name: String,
    /// Number of interchangeable replicas backing this resource. The
    /// effective capacity offered to the optimizer is
    /// `replicas × availability`; elastic provisioning grows or shrinks
    /// this count while the per-replica fraction stays fixed.
    #[serde(default)]
    replicas: u32,
}

impl Resource {
    /// Creates a resource with full availability (`B_r = 1`) and zero lag.
    pub fn new(id: ResourceId, kind: ResourceKind) -> Self {
        Resource { id, kind, availability: 1.0, lag: 0.0, name: format!("{id}"), replicas: 1 }
    }

    /// Sets the availability fraction `B_r`.
    ///
    /// Values are expected in `[0, 1]`; construction is infallible for
    /// builder ergonomics and [`Resource::validate`] rejects out-of-range
    /// values when the resource is added to a [`Problem`](crate::Problem).
    pub fn with_availability(mut self, availability: f64) -> Self {
        self.availability = availability;
        self
    }

    /// Sets the proportional-share scheduling lag `l_r` in milliseconds.
    pub fn with_lag(mut self, lag: f64) -> Self {
        self.lag = lag;
        self
    }

    /// Sets a human-readable name used in reports.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the replica count (effective capacity multiplier, `≥ 1`).
    pub fn with_replicas(mut self, replicas: u32) -> Self {
        self.replicas = replicas;
        self
    }

    /// Rebuilds this resource under a new dense id (membership changes
    /// re-densify indices when an earlier resource retires).
    pub(crate) fn reindexed(&self, id: ResourceId) -> Resource {
        Resource { id, ..self.clone() }
    }

    /// The resource identifier.
    pub fn id(&self) -> ResourceId {
        self.id
    }

    /// The resource kind.
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// The effective capacity `B_r` offered to the optimizer:
    /// `replicas × base availability`. With the default single replica
    /// this is exactly the paper's availability fraction.
    pub fn availability(&self) -> f64 {
        self.availability * f64::from(self.replicas)
    }

    /// The per-replica availability fraction, before replica scaling.
    pub fn base_availability(&self) -> f64 {
        self.availability
    }

    /// The number of interchangeable replicas backing this resource.
    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// Updates the availability fraction `B_r`.
    ///
    /// LLA runs continuously; availability may change at runtime (e.g. a
    /// failure or a competing reservation) and the optimizer re-converges.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `availability` is
    /// non-finite or outside `[0, 1]` — runtime updates arrive from the
    /// outside world (operators, sensors, the wire), so unlike the
    /// construction-time builders this mutator refuses bad input instead
    /// of deferring to [`validate`](Self::validate).
    pub fn set_availability(&mut self, availability: f64) -> Result<(), ModelError> {
        if !availability.is_finite() || !(0.0..=1.0).contains(&availability) {
            return Err(ModelError::InvalidParameter {
                what: "resource availability (B_r)",
                value: availability,
            });
        }
        self.availability = availability;
        Ok(())
    }

    /// Updates the replica count (elastic capacity; `≥ 1`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `replicas == 0`: a
    /// resource with zero replicas has zero effective capacity, which
    /// would divide the price gradient by zero.
    pub fn set_replicas(&mut self, replicas: u32) -> Result<(), ModelError> {
        if replicas == 0 {
            return Err(ModelError::InvalidParameter { what: "resource replicas", value: 0.0 });
        }
        self.replicas = replicas;
        Ok(())
    }

    /// The scheduling lag `l_r` in milliseconds.
    pub fn lag(&self) -> f64 {
        self.lag
    }

    /// The human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Validates the numeric parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `availability ∉ [0, 1]`,
    /// or if `lag` is negative or non-finite.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !self.availability.is_finite() || !(0.0..=1.0).contains(&self.availability) {
            return Err(ModelError::InvalidParameter {
                what: "resource availability (B_r)",
                value: self.availability,
            });
        }
        if !self.lag.is_finite() || self.lag < 0.0 {
            return Err(ModelError::InvalidParameter {
                what: "resource lag (l_r)",
                value: self.lag,
            });
        }
        if self.replicas == 0 {
            return Err(ModelError::InvalidParameter { what: "resource replicas", value: 0.0 });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_full_availability_zero_lag() {
        let r = Resource::new(ResourceId::new(2), ResourceKind::NetworkLink);
        assert_eq!(r.availability(), 1.0);
        assert_eq!(r.lag(), 0.0);
        assert_eq!(r.kind(), ResourceKind::NetworkLink);
        assert_eq!(r.name(), "R2");
        assert!(r.validate().is_ok());
    }

    #[test]
    fn builder_setters_chain() {
        let r = Resource::new(ResourceId::new(0), ResourceKind::Cpu)
            .with_availability(0.66)
            .with_lag(5.0)
            .with_name("trading-cpu");
        assert_eq!(r.availability(), 0.66);
        assert_eq!(r.lag(), 5.0);
        assert_eq!(r.name(), "trading-cpu");
    }

    #[test]
    fn validate_rejects_bad_availability() {
        for bad in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            let r = Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_availability(bad);
            assert!(r.validate().is_err(), "availability {bad} should be rejected");
        }
    }

    #[test]
    fn validate_rejects_bad_lag() {
        for bad in [-1.0, f64::NAN] {
            let r = Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_lag(bad);
            assert!(r.validate().is_err(), "lag {bad} should be rejected");
        }
    }

    #[test]
    fn set_availability_updates() {
        let mut r = Resource::new(ResourceId::new(0), ResourceKind::Cpu);
        r.set_availability(0.5).unwrap();
        assert_eq!(r.availability(), 0.5);
    }

    #[test]
    fn set_availability_rejects_bad_values() {
        let mut r = Resource::new(ResourceId::new(0), ResourceKind::Cpu);
        for bad in [-0.1, 1.1, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(r.set_availability(bad).is_err(), "availability {bad} should be rejected");
        }
        assert_eq!(r.availability(), 1.0, "rejected updates must not change state");
    }

    #[test]
    fn set_replicas_rejects_zero() {
        let mut r = Resource::new(ResourceId::new(0), ResourceKind::Cpu);
        assert!(r.set_replicas(0).is_err());
        assert_eq!(r.replicas(), 1);
    }

    #[test]
    fn replicas_scale_effective_availability() {
        let mut r = Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_availability(0.8);
        assert_eq!(r.replicas(), 1);
        assert_eq!(r.availability(), 0.8);
        r.set_replicas(3).unwrap();
        assert_eq!(r.replicas(), 3);
        assert_eq!(r.base_availability(), 0.8);
        assert!((r.availability() - 2.4).abs() < 1e-12);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_replicas() {
        let r = Resource::new(ResourceId::new(0), ResourceKind::Cpu).with_replicas(0);
        assert!(r.validate().is_err());
    }

    #[test]
    fn kind_display() {
        assert_eq!(ResourceKind::Cpu.to_string(), "cpu");
        assert_eq!(ResourceKind::NetworkLink.to_string(), "link");
    }
}
