//! Error types for model construction and validation.

use crate::ids::{ResourceId, SubtaskId, TaskId};
use std::error::Error;
use std::fmt;

/// Error produced when constructing or validating the task/resource model.
///
/// Returned by [`TaskBuilder::build`](crate::TaskBuilder::build),
/// [`Problem::new`](crate::Problem::new) and related constructors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// The subtask graph contains a cycle; it must be a DAG.
    GraphCycle {
        /// Task whose graph is cyclic.
        task: TaskId,
    },
    /// The subtask graph has no unique root (start subtask).
    NoUniqueRoot {
        /// Task whose graph is malformed.
        task: TaskId,
        /// Number of root candidates found.
        roots: usize,
    },
    /// A subtask is unreachable from the root.
    UnreachableSubtask {
        /// The unreachable subtask.
        subtask: SubtaskId,
    },
    /// An edge references a subtask index that does not exist.
    UnknownSubtaskIndex {
        /// The offending index.
        index: usize,
        /// Number of subtasks in the task.
        len: usize,
    },
    /// An edge connects a subtask to itself.
    SelfLoop {
        /// The offending index.
        index: usize,
    },
    /// A subtask references a resource not present in the problem.
    UnknownResource {
        /// The offending subtask.
        subtask: SubtaskId,
        /// The missing resource.
        resource: ResourceId,
    },
    /// Resource ids in a problem must be dense indices `0..n`.
    NonDenseResourceIds {
        /// The id that is out of place.
        resource: ResourceId,
        /// The expected index.
        expected: usize,
    },
    /// Task ids in a problem must be dense indices `0..n`.
    NonDenseTaskIds {
        /// The id that is out of place.
        task: TaskId,
        /// The expected index.
        expected: usize,
    },
    /// A numeric parameter was outside its valid domain.
    InvalidParameter {
        /// Human-readable description of the parameter.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A task has no subtasks.
    EmptyTask {
        /// The empty task.
        task: TaskId,
    },
    /// A membership operation referenced a task not in the problem.
    UnknownTask {
        /// The missing task.
        task: TaskId,
        /// Number of tasks in the problem.
        len: usize,
    },
    /// A membership operation referenced a resource not in the problem.
    UnknownResourceId {
        /// The missing resource.
        resource: ResourceId,
        /// Number of resources in the problem.
        len: usize,
    },
    /// A resource cannot be retired while subtasks still run on it;
    /// drain them first (see `Problem::reassign_resource`).
    ResourceInUse {
        /// The busy resource.
        resource: ResourceId,
        /// How many subtasks still run on it.
        subtasks: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::GraphCycle { task } => {
                write!(f, "subtask graph of {task} contains a cycle")
            }
            ModelError::NoUniqueRoot { task, roots } => {
                write!(f, "subtask graph of {task} has {roots} roots, expected exactly 1")
            }
            ModelError::UnreachableSubtask { subtask } => {
                write!(f, "subtask {subtask} is unreachable from the root")
            }
            ModelError::UnknownSubtaskIndex { index, len } => {
                write!(f, "subtask index {index} out of range for task with {len} subtasks")
            }
            ModelError::SelfLoop { index } => {
                write!(f, "subtask index {index} has a self-loop edge")
            }
            ModelError::UnknownResource { subtask, resource } => {
                write!(f, "subtask {subtask} uses unknown resource {resource}")
            }
            ModelError::NonDenseResourceIds { resource, expected } => {
                write!(f, "resource {resource} found where index {expected} was expected")
            }
            ModelError::NonDenseTaskIds { task, expected } => {
                write!(f, "task {task} found where index {expected} was expected")
            }
            ModelError::InvalidParameter { what, value } => {
                write!(f, "invalid value {value} for {what}")
            }
            ModelError::EmptyTask { task } => write!(f, "task {task} has no subtasks"),
            ModelError::UnknownTask { task, len } => {
                write!(f, "task {task} not found in problem with {len} tasks")
            }
            ModelError::UnknownResourceId { resource, len } => {
                write!(f, "resource {resource} not found in problem with {len} resources")
            }
            ModelError::ResourceInUse { resource, subtasks } => {
                write!(f, "resource {resource} still hosts {subtasks} subtasks and cannot retire")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = ModelError::GraphCycle { task: TaskId::new(2) };
        let msg = e.to_string();
        assert!(msg.starts_with("subtask graph"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<ModelError> = vec![
            ModelError::GraphCycle { task: TaskId::new(0) },
            ModelError::NoUniqueRoot { task: TaskId::new(0), roots: 2 },
            ModelError::UnreachableSubtask { subtask: SubtaskId::new(TaskId::new(0), 1) },
            ModelError::UnknownSubtaskIndex { index: 9, len: 3 },
            ModelError::SelfLoop { index: 1 },
            ModelError::UnknownResource {
                subtask: SubtaskId::new(TaskId::new(0), 0),
                resource: ResourceId::new(5),
            },
            ModelError::NonDenseResourceIds { resource: ResourceId::new(3), expected: 1 },
            ModelError::NonDenseTaskIds { task: TaskId::new(4), expected: 0 },
            ModelError::InvalidParameter { what: "critical time", value: -1.0 },
            ModelError::EmptyTask { task: TaskId::new(1) },
            ModelError::UnknownTask { task: TaskId::new(7), len: 3 },
            ModelError::UnknownResourceId { resource: ResourceId::new(7), len: 3 },
            ModelError::ResourceInUse { resource: ResourceId::new(2), subtasks: 4 },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
