//! Online convergence diagnostics for the LLA price loop.
//!
//! The paper's §5 claim is that *non*-convergence is itself the
//! schedulability signal — so an operator needs more than a boolean: they
//! need to know **how** a run is failing to settle. This module consumes
//! a stream of [`DiagSample`]s (one per iteration or per distributed
//! round) and classifies the recent window as one of five [`Verdict`]s,
//! with per-resource price evidence attached:
//!
//! * `Converging` — utility flat or settling, constraints satisfied.
//! * `Oscillating` — utility ringing beyond [`OSCILLATION_BAND`] without
//!   step-size churn; typically a fixed γ chosen too large (Fig. 5's
//!   γ = 10 curve).
//! * `GammaThrash` — the adaptive heuristic repeatedly doubling and
//!   resetting step sizes (doubling density ≥ [`GAMMA_THRASH_DENSITY`])
//!   while utility rings: the congestion boundary is being straddled.
//! * `Diverging` — worst violation factor stuck at or above
//!   [`DIVERGENCE_FACTOR`] with no downward trend: the workload is
//!   overloaded (Fig. 7's regime).
//! * `Stalled` — agents frozen by staleness TTLs (partition) or prices
//!   pinned while constraints are still violated: the loop is not even
//!   trying anymore.
//!
//! The engine is data-driven — plain floats and counters in, verdict out
//! — so it sits here in `lla-telemetry`, below `lla-core`, and serves the
//! centralized optimizer, the distributed facade, and the bench/CLI
//! surfaces identically. All thresholds are documented `pub const`s;
//! classification is pure and deterministic.

use crate::events::{json_escape, json_value, Value};
use crate::fmt_f64;
use std::collections::VecDeque;
use std::fmt;

/// Default number of recent samples retained and classified.
pub const DEFAULT_WINDOW: usize = 32;

/// Below this many samples the engine reports `Converging` with
/// [`Diagnosis::confident`] set to `false` — too little evidence.
pub const MIN_SAMPLES: usize = 8;

/// Relative utility peak-to-peak (`(max − min) / max(1, |mean|)`) above
/// which a window counts as ringing.
pub const OSCILLATION_BAND: f64 = 0.01;

/// Worst violation factor at or above which a non-improving window is
/// diverging. 1.05 sits well above the feasibility tolerance (1 + 1e-3)
/// so transient overshoot does not trip it.
pub const DIVERGENCE_FACTOR: f64 = 1.05;

/// Violation-factor slope (per sample) below which a violating window
/// counts as "still improving" and is given more time before being
/// declared diverging.
pub const DIVERGENCE_SLOPE_TOL: f64 = -1e-3;

/// Gamma doubling events per sample (summed over all resources and
/// paths) at or above which step-size adaptation counts as thrashing.
pub const GAMMA_THRASH_DENSITY: f64 = 0.5;

/// Fraction of window samples with `frozen_agents > 0` at or above which
/// the run counts as stalled (partition-induced staleness freezes).
pub const STALL_FROZEN_FRACTION: f64 = 0.5;

/// Mean relative price step below which prices count as pinned; pinned
/// prices while constraints are violated is a (silent) stall.
pub const STALL_PRICE_STEP: f64 = 1e-12;

/// One observation of the loop's state, taken once per iteration
/// (centralized) or per round (distributed).
#[derive(Debug, Clone, PartialEq)]
pub struct DiagSample {
    /// Iteration or round index.
    pub iteration: u64,
    /// Aggregate utility at this sample.
    pub utility: f64,
    /// Worst constraint violation factor (usage/availability and
    /// latency/deadline maxima); ≤ 1 means feasible.
    pub worst_violation_factor: f64,
    /// Cumulative step-size growth events (`PriceState::gamma_doublings`).
    pub gamma_doublings: u64,
    /// Largest relative price movement of the most recent update.
    pub max_rel_price_step: f64,
    /// Agents currently frozen by staleness TTLs (0 when centralized).
    pub frozen_agents: u64,
    /// Per-resource prices `μ_r` (may be empty if unavailable).
    pub prices: Vec<f64>,
}

/// The classification of a window of [`DiagSample`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Settling or settled; constraints satisfied or improving.
    Converging,
    /// Utility ringing without step-size churn (γ too large).
    Oscillating,
    /// Adaptive step sizes repeatedly doubling and resetting.
    GammaThrash,
    /// Sustained constraint violation with no downward trend.
    Diverging,
    /// Frozen agents or pinned prices while infeasible.
    Stalled,
}

impl Verdict {
    /// Stable lowercase name (used in JSON and CSV surfaces).
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Converging => "converging",
            Verdict::Oscillating => "oscillating",
            Verdict::GammaThrash => "gamma-thrash",
            Verdict::Diverging => "diverging",
            Verdict::Stalled => "stalled",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-resource price evidence over the classified window.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceEvidence {
    /// Resource index.
    pub index: usize,
    /// Resource name if known (empty otherwise).
    pub name: String,
    /// Mean price over the window.
    pub mean_price: f64,
    /// Price variance over the window.
    pub price_variance: f64,
    /// Least-squares price slope per sample.
    pub price_trend: f64,
}

/// The result of classifying a window, with the statistics that drove
/// the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// The verdict for the window.
    pub verdict: Verdict,
    /// Number of samples classified.
    pub samples: usize,
    /// `false` when fewer than [`MIN_SAMPLES`] samples were available.
    pub confident: bool,
    /// Relative utility peak-to-peak over the window.
    pub utility_oscillation: f64,
    /// Worst violation factor at the latest sample.
    pub violation_factor: f64,
    /// Least-squares violation-factor slope per sample.
    pub violation_trend: f64,
    /// Gamma doubling events per sample over the window.
    pub gamma_doubling_density: f64,
    /// Mean of `max_rel_price_step` over the window.
    pub mean_price_step: f64,
    /// Fraction of samples with frozen agents.
    pub frozen_fraction: f64,
    /// Per-resource price statistics, highest variance first.
    pub evidence: Vec<ResourceEvidence>,
}

impl Diagnosis {
    /// Multi-line human rendering (the `--diagnose` / dashboard block).
    pub fn render(&self) -> String {
        let mut out = format!(
            "diagnosis: {}{}\n  samples {}  utility-osc {:.4}  violation {:.4} \
             (trend {:+.2e}/sample)\n  gamma-doublings {:.2}/sample  \
             price-step {:.2e}  frozen {:.0}%\n",
            self.verdict,
            if self.confident { "" } else { " (low confidence)" },
            self.samples,
            self.utility_oscillation,
            self.violation_factor,
            self.violation_trend,
            self.gamma_doubling_density,
            self.mean_price_step,
            self.frozen_fraction * 100.0,
        );
        for ev in &self.evidence {
            let label = if ev.name.is_empty() {
                format!("resource[{}]", ev.index)
            } else {
                ev.name.clone()
            };
            out.push_str(&format!(
                "  {label:>14}: mean price {:.4}  variance {:.3e}  trend {:+.2e}/sample\n",
                ev.mean_price, ev.price_variance, ev.price_trend
            ));
        }
        out
    }

    /// One JSON object with stable key order (non-finite floats → null).
    pub fn to_json(&self) -> String {
        let f = |v: f64| json_value(&Value::F64(v));
        let mut out = format!(
            "{{\"verdict\":\"{}\",\"samples\":{},\"confident\":{},\
             \"utility_oscillation\":{},\"violation_factor\":{},\
             \"violation_trend\":{},\"gamma_doubling_density\":{},\
             \"mean_price_step\":{},\"frozen_fraction\":{},\"evidence\":[",
            self.verdict,
            self.samples,
            self.confident,
            f(self.utility_oscillation),
            f(self.violation_factor),
            f(self.violation_trend),
            f(self.gamma_doubling_density),
            f(self.mean_price_step),
            f(self.frozen_fraction),
        );
        for (i, ev) in self.evidence.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{},\"name\":\"{}\",\"mean_price\":{},\
                 \"price_variance\":{},\"price_trend\":{}}}",
                ev.index,
                json_escape(&ev.name),
                f(ev.mean_price),
                f(ev.price_variance),
                f(ev.price_trend),
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (osc {} viol {} doublings {}/sample)",
            self.verdict,
            fmt_f64(self.utility_oscillation),
            fmt_f64(self.violation_factor),
            fmt_f64(self.gamma_doubling_density)
        )
    }
}

/// Sliding-window classifier over [`DiagSample`]s.
///
/// Push one sample per iteration/round; [`diagnose`](Self::diagnose) at
/// any point classifies the retained window. The engine holds at most
/// `window` samples, so long soaks run in constant memory.
#[derive(Debug, Clone)]
pub struct DiagnosticsEngine {
    window: usize,
    resource_names: Vec<String>,
    samples: VecDeque<DiagSample>,
}

impl Default for DiagnosticsEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl DiagnosticsEngine {
    /// An engine with the [`DEFAULT_WINDOW`].
    pub fn new() -> Self {
        Self::with_window(DEFAULT_WINDOW)
    }

    /// An engine retaining the last `window` samples (clamped to ≥ 2).
    pub fn with_window(window: usize) -> Self {
        DiagnosticsEngine {
            window: window.max(2),
            resource_names: Vec::new(),
            samples: VecDeque::new(),
        }
    }

    /// Attach resource names for the evidence listing (builder style).
    #[must_use]
    pub fn with_resource_names(mut self, names: Vec<String>) -> Self {
        self.resource_names = names;
        self
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Push one sample, evicting the oldest beyond the window.
    pub fn push(&mut self, sample: DiagSample) {
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// Drop all retained samples (e.g. across a membership epoch).
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Classify the retained window.
    ///
    /// Rules are checked in precedence order: explicit freezes (Stalled),
    /// step-size churn (GammaThrash), sustained violation (Diverging),
    /// pinned-while-infeasible (Stalled), ringing (Oscillating), else
    /// Converging. With fewer than [`MIN_SAMPLES`] samples the verdict is
    /// `Converging` with `confident: false`.
    pub fn diagnose(&self) -> Diagnosis {
        let n = self.samples.len();
        let confident = n >= MIN_SAMPLES;
        let utilities: Vec<f64> = self.samples.iter().map(|s| s.utility).collect();
        let violations: Vec<f64> = self.samples.iter().map(|s| s.worst_violation_factor).collect();
        let utility_oscillation = relative_oscillation(&utilities);
        let violation_factor = violations.last().copied().unwrap_or(0.0);
        let violation_trend = slope(&violations);
        let gamma_doubling_density = if n >= 2 {
            let first = self.samples.front().expect("n >= 2").gamma_doublings;
            let last = self.samples.back().expect("n >= 2").gamma_doublings;
            last.saturating_sub(first) as f64 / (n - 1) as f64
        } else {
            0.0
        };
        let mean_price_step = if n == 0 {
            0.0
        } else {
            self.samples.iter().map(|s| s.max_rel_price_step).sum::<f64>() / n as f64
        };
        let frozen_fraction = if n == 0 {
            0.0
        } else {
            self.samples.iter().filter(|s| s.frozen_agents > 0).count() as f64 / n as f64
        };

        let verdict = if !confident {
            Verdict::Converging
        } else if frozen_fraction >= STALL_FROZEN_FRACTION {
            Verdict::Stalled
        } else if gamma_doubling_density >= GAMMA_THRASH_DENSITY
            && utility_oscillation >= OSCILLATION_BAND
        {
            Verdict::GammaThrash
        } else if violation_factor >= DIVERGENCE_FACTOR && violation_trend >= DIVERGENCE_SLOPE_TOL {
            Verdict::Diverging
        } else if mean_price_step <= STALL_PRICE_STEP && violation_factor > 1.0 + 1e-3 {
            Verdict::Stalled
        } else if utility_oscillation >= OSCILLATION_BAND {
            Verdict::Oscillating
        } else {
            Verdict::Converging
        };

        Diagnosis {
            verdict,
            samples: n,
            confident,
            utility_oscillation,
            violation_factor,
            violation_trend,
            gamma_doubling_density,
            mean_price_step,
            frozen_fraction,
            evidence: self.evidence(),
        }
    }

    fn evidence(&self) -> Vec<ResourceEvidence> {
        let num_resources = self.samples.iter().map(|s| s.prices.len()).min().unwrap_or(0);
        let mut out = Vec::with_capacity(num_resources);
        for r in 0..num_resources {
            let series: Vec<f64> = self.samples.iter().map(|s| s.prices[r]).collect();
            let mean = series.iter().sum::<f64>() / series.len() as f64;
            let variance =
                series.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / series.len() as f64;
            out.push(ResourceEvidence {
                index: r,
                name: self.resource_names.get(r).cloned().unwrap_or_default(),
                mean_price: mean,
                price_variance: variance,
                price_trend: slope(&series),
            });
        }
        // Highest variance first — the noisiest price loop leads the
        // evidence. Stable order on ties (sort by index is the input).
        out.sort_by(|a, b| {
            b.price_variance.partial_cmp(&a.price_variance).unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }
}

/// `(max − min) / max(1, |mean|)` — scale-free peak-to-peak. 0 for
/// fewer than 2 samples or any non-finite input.
fn relative_oscillation(series: &[f64]) -> f64 {
    if series.len() < 2 || series.iter().any(|v| !v.is_finite()) {
        return 0.0;
    }
    let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
    for &v in series {
        min = min.min(v);
        max = max.max(v);
        sum += v;
    }
    let mean = sum / series.len() as f64;
    (max - min) / mean.abs().max(1.0)
}

/// Least-squares slope per sample index; 0 for fewer than 2 samples or
/// any non-finite input.
fn slope(series: &[f64]) -> f64 {
    let n = series.len();
    if n < 2 || series.iter().any(|v| !v.is_finite()) {
        return 0.0;
    }
    let nf = n as f64;
    let mean_x = (nf - 1.0) / 2.0;
    let mean_y = series.iter().sum::<f64>() / nf;
    let (mut num, mut den) = (0.0, 0.0);
    for (i, &y) in series.iter().enumerate() {
        let dx = i as f64 - mean_x;
        num += dx * (y - mean_y);
        den += dx * dx;
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(iteration: u64) -> DiagSample {
        DiagSample {
            iteration,
            utility: 10.0,
            worst_violation_factor: 0.9,
            gamma_doublings: 0,
            max_rel_price_step: 1e-6,
            frozen_agents: 0,
            prices: vec![1.0, 2.0],
        }
    }

    #[test]
    fn few_samples_is_low_confidence_converging() {
        let mut eng = DiagnosticsEngine::new();
        for i in 0..(MIN_SAMPLES as u64 - 1) {
            eng.push(sample(i));
        }
        let d = eng.diagnose();
        assert_eq!(d.verdict, Verdict::Converging);
        assert!(!d.confident);
    }

    #[test]
    fn flat_feasible_window_converges() {
        let mut eng = DiagnosticsEngine::new();
        for i in 0..16 {
            eng.push(sample(i));
        }
        let d = eng.diagnose();
        assert_eq!(d.verdict, Verdict::Converging);
        assert!(d.confident);
        assert_eq!(d.samples, 16);
        assert!(d.utility_oscillation < OSCILLATION_BAND);
    }

    #[test]
    fn ringing_utility_without_doublings_oscillates() {
        let mut eng = DiagnosticsEngine::new();
        for i in 0..16 {
            let mut s = sample(i);
            s.utility = 10.0 + if i % 2 == 0 { 1.0 } else { -1.0 };
            eng.push(s);
        }
        assert_eq!(eng.diagnose().verdict, Verdict::Oscillating);
    }

    #[test]
    fn doubling_density_with_ringing_is_gamma_thrash() {
        let mut eng = DiagnosticsEngine::new();
        for i in 0..16 {
            let mut s = sample(i);
            s.utility = 10.0 + if i % 2 == 0 { 1.0 } else { -1.0 };
            s.gamma_doublings = 2 * i; // 2 growth events per sample
            eng.push(s);
        }
        let d = eng.diagnose();
        assert_eq!(d.verdict, Verdict::GammaThrash);
        assert!(d.gamma_doubling_density >= GAMMA_THRASH_DENSITY);
    }

    #[test]
    fn sustained_violation_without_improvement_diverges() {
        let mut eng = DiagnosticsEngine::new();
        for i in 0..16 {
            let mut s = sample(i);
            s.worst_violation_factor = 1.8;
            s.utility = 5.0;
            eng.push(s);
        }
        assert_eq!(eng.diagnose().verdict, Verdict::Diverging);
    }

    #[test]
    fn improving_violation_is_not_yet_diverging() {
        let mut eng = DiagnosticsEngine::new();
        for i in 0..16 {
            let mut s = sample(i);
            // 1.8 → 1.05, dropping 0.05/sample: clearly improving.
            s.worst_violation_factor = 1.8 - 0.05 * i as f64;
            eng.push(s);
        }
        assert_ne!(eng.diagnose().verdict, Verdict::Diverging);
    }

    #[test]
    fn frozen_agents_stall() {
        let mut eng = DiagnosticsEngine::new();
        for i in 0..16 {
            let mut s = sample(i);
            s.frozen_agents = u64::from(i >= 4); // 12/16 frozen
            eng.push(s);
        }
        let d = eng.diagnose();
        assert_eq!(d.verdict, Verdict::Stalled);
        assert!(d.frozen_fraction >= STALL_FROZEN_FRACTION);
    }

    #[test]
    fn pinned_prices_while_infeasible_stall() {
        let mut eng = DiagnosticsEngine::new();
        for i in 0..16 {
            let mut s = sample(i);
            s.worst_violation_factor = 1.02; // violating, below DIVERGENCE_FACTOR
            s.max_rel_price_step = 0.0;
            eng.push(s);
        }
        assert_eq!(eng.diagnose().verdict, Verdict::Stalled);
    }

    #[test]
    fn window_evicts_oldest_samples() {
        let mut eng = DiagnosticsEngine::with_window(4);
        for i in 0..10 {
            eng.push(sample(i));
        }
        assert_eq!(eng.len(), 4);
        let d = eng.diagnose();
        assert_eq!(d.samples, 4);
        // 4 < MIN_SAMPLES → low confidence even after 10 pushes.
        assert!(!d.confident);
        eng.clear();
        assert!(eng.is_empty());
    }

    #[test]
    fn evidence_is_sorted_by_variance_and_named() {
        let mut eng =
            DiagnosticsEngine::new().with_resource_names(vec!["cpu".to_owned(), "disk".to_owned()]);
        for i in 0..16 {
            let mut s = sample(i);
            // disk's price swings (and utility rings with it); cpu's is flat.
            s.prices = vec![1.0, if i % 2 == 0 { 5.0 } else { 1.0 }];
            s.utility = 10.0 + if i % 2 == 0 { 1.0 } else { -1.0 };
            eng.push(s);
        }
        let d = eng.diagnose();
        assert_eq!(d.evidence.len(), 2);
        assert_eq!(d.evidence[0].name, "disk");
        assert_eq!(d.evidence[0].index, 1);
        assert!(d.evidence[0].price_variance > d.evidence[1].price_variance);
        let text = d.render();
        assert!(text.contains("disk"), "{text}");
        let json = d.to_json();
        assert!(json.starts_with("{\"verdict\":\"oscillating\""), "{json}");
        assert!(json.contains("\"name\":\"disk\""), "{json}");
    }

    #[test]
    fn verdict_names_are_stable() {
        assert_eq!(Verdict::Converging.to_string(), "converging");
        assert_eq!(Verdict::Oscillating.to_string(), "oscillating");
        assert_eq!(Verdict::GammaThrash.to_string(), "gamma-thrash");
        assert_eq!(Verdict::Diverging.to_string(), "diverging");
        assert_eq!(Verdict::Stalled.to_string(), "stalled");
    }

    #[test]
    fn slope_and_oscillation_are_robust_to_non_finite() {
        assert_eq!(slope(&[1.0, f64::NAN, 2.0]), 0.0);
        assert_eq!(relative_oscillation(&[1.0, f64::INFINITY]), 0.0);
        assert_eq!(slope(&[1.0]), 0.0);
        assert!((slope(&[0.0, 1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
    }
}
