//! Fleet telemetry collection: per-agent metric scopes, delta-encoded
//! watermarked reports, and a loss/dup/reorder-tolerant collector.
//!
//! A distributed deployment has no shared memory: each agent owns a small
//! [`AgentScope`] of counters (labeled series in a [`MetricsRegistry`],
//! keyed by an `agent` label) and periodically drains the *deltas* since
//! its last report into a [`TelemetryReport`] stamped with a virtual-clock
//! watermark. A [`TelemetryCollector`] on the other side of a lossy
//! network merges reports into a deterministic fleet view:
//!
//! * **Seq dedupe** — reports carry a per-agent sequence number starting
//!   at 1; a duplicate delivery is counted `stale` and never re-merged.
//! * **Reorder/loss tolerance** — a gap in the sequence provisionally
//!   counts the skipped reports as `lost` and remembers them as *holes*;
//!   a late report filling a hole is merged (counter deltas are additive,
//!   so order does not matter) and un-counted from `lost`. Holes beyond
//!   [`MAX_REORDER_HORIZON`] stay lost for good (bounded memory).
//! * **Watermark monotonicity** — each agent's watermark only advances;
//!   a merged report with an older watermark is counted in
//!   `watermark_regressions` instead of rewinding the clock. The fleet
//!   watermark is the minimum over agents: everything before it has been
//!   accounted for on every reporting agent.
//!
//! At quiescence (no reports in flight, no holes evicted) the accounting
//! identity `merged + lost == emitted` holds per agent, and
//! `merged + stale == deliveries` holds unconditionally — every emitted
//! report and every delivered frame lands in exactly one bucket.

use crate::fmt_f64;
use crate::registry::{Counter, MetricsRegistry};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// One slot in the fleet metric dictionary, shared verbatim between the
/// reporting agents and the collector — reports carry slot indices, not
/// names, so the wire format stays tiny.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricDef {
    /// Base name; exposed as `lla_agent_{name}_total` on the agent side
    /// and `lla_fleet_{name}_total` in the collector's fleet export.
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
}

/// How many un-merged sequence holes the collector remembers per agent
/// before the oldest is declared permanently lost (bounded buffers).
pub const MAX_REORDER_HORIZON: usize = 64;

/// An agent's scoped counter set: one labeled counter series per
/// dictionary slot, all carrying this agent's `agent` label. Handles from
/// a disabled registry are no-ops, so scopes can be threaded
/// unconditionally.
#[derive(Debug, Clone)]
pub struct AgentScope {
    agent: String,
    counters: Vec<Counter>,
}

impl AgentScope {
    /// Registers this agent's labeled series for every dictionary slot.
    pub fn new(registry: &MetricsRegistry, agent: &str, dictionary: &[MetricDef]) -> Self {
        let counters = dictionary
            .iter()
            .map(|def| {
                registry.counter_with(
                    &format!("lla_agent_{}_total", def.name),
                    def.help,
                    &[("agent", agent)],
                )
            })
            .collect();
        AgentScope { agent: agent.to_owned(), counters }
    }

    /// The agent label this scope is keyed by.
    pub fn agent(&self) -> &str {
        &self.agent
    }

    /// Increment slot `slot` by one.
    pub fn inc(&self, slot: usize) {
        self.counters[slot].inc();
    }

    /// Increment slot `slot` by `n`.
    pub fn add(&self, slot: usize, n: u64) {
        self.counters[slot].add(n);
    }

    /// Current value of every slot, in dictionary order.
    pub fn totals(&self) -> Vec<u64> {
        self.counters.iter().map(Counter::get).collect()
    }
}

/// One delta-encoded, watermarked telemetry report.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// The reporting agent's label.
    pub agent: String,
    /// Per-agent sequence number, starting at 1 and never reused.
    pub seq: u64,
    /// Virtual-clock time this report covers through: every scope update
    /// up to this instant is reflected in the cumulative deltas shipped
    /// so far.
    pub watermark: f64,
    /// `(dictionary slot, delta since the previous report)` pairs, slots
    /// strictly increasing; zero deltas are omitted.
    pub deltas: Vec<(usize, u64)>,
}

/// Agent-side shipping state: tracks what has already been reported so
/// each drain emits only deltas.
#[derive(Debug, Clone)]
pub struct DeltaTracker {
    seq: u64,
    shipped: Vec<u64>,
}

impl DeltaTracker {
    /// A tracker for a scope with `slots` dictionary slots.
    pub fn new(slots: usize) -> Self {
        DeltaTracker { seq: 0, shipped: vec![0; slots] }
    }

    /// Number of reports drained so far (== the last emitted `seq`).
    pub fn emitted(&self) -> u64 {
        self.seq
    }

    /// Drains the deltas accumulated in `scope` since the last drain into
    /// a report watermarked at `watermark`. Always emits (advancing the
    /// sequence) so the collector's watermark keeps moving through idle
    /// periods.
    pub fn drain(&mut self, scope: &AgentScope, watermark: f64) -> TelemetryReport {
        self.seq += 1;
        let totals = scope.totals();
        let mut deltas = Vec::new();
        for (slot, (&total, shipped)) in totals.iter().zip(self.shipped.iter_mut()).enumerate() {
            if total > *shipped {
                deltas.push((slot, total - *shipped));
                *shipped = total;
            }
        }
        TelemetryReport { agent: scope.agent().to_owned(), seq: self.seq, watermark, deltas }
    }
}

/// What [`TelemetryCollector::ingest`] did with a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// In-order (or ahead-of-order) merge; any skipped sequence numbers
    /// were provisionally counted lost.
    Merged,
    /// A late report that filled a sequence hole: merged, and un-counted
    /// from `lost`.
    MergedLate,
    /// A duplicate (or beyond-horizon late) report: dropped, counted
    /// `stale`.
    Stale,
}

/// The collector's view of one reporting agent.
#[derive(Debug, Clone)]
pub struct AgentView {
    last_seq: u64,
    holes: BTreeSet<u64>,
    watermark: f64,
    totals: Vec<u64>,
}

impl AgentView {
    fn new(slots: usize) -> Self {
        AgentView {
            last_seq: 0,
            holes: BTreeSet::new(),
            watermark: f64::NEG_INFINITY,
            totals: vec![0; slots],
        }
    }

    /// Highest sequence number merged from this agent.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Sequence numbers below `last_seq` still awaited (counted lost
    /// until they arrive).
    pub fn holes(&self) -> usize {
        self.holes.len()
    }

    /// This agent's watermark, if any report has been merged.
    pub fn watermark(&self) -> Option<f64> {
        (self.watermark != f64::NEG_INFINITY).then_some(self.watermark)
    }

    /// Merged total for one dictionary slot.
    pub fn total(&self, slot: usize) -> u64 {
        self.totals[slot]
    }
}

/// Merges [`TelemetryReport`]s into a deterministic fleet view. See the
/// module docs for the tolerance and accounting semantics.
#[derive(Debug, Clone)]
pub struct TelemetryCollector {
    dictionary: Vec<MetricDef>,
    agents: BTreeMap<String, AgentView>,
    merged: u64,
    stale: u64,
    lost: u64,
    watermark_regressions: u64,
}

impl TelemetryCollector {
    /// A collector over the given metric dictionary.
    pub fn new(dictionary: &[MetricDef]) -> Self {
        TelemetryCollector {
            dictionary: dictionary.to_vec(),
            agents: BTreeMap::new(),
            merged: 0,
            stale: 0,
            lost: 0,
            watermark_regressions: 0,
        }
    }

    /// The metric dictionary this collector was built over.
    pub fn dictionary(&self) -> &[MetricDef] {
        &self.dictionary
    }

    /// Merge one report. Deltas for out-of-dictionary slots are ignored
    /// (a newer reporter shipping slots this collector does not know).
    pub fn ingest(&mut self, report: &TelemetryReport) -> IngestOutcome {
        let slots = self.dictionary.len();
        let view = self.agents.entry(report.agent.clone()).or_insert_with(|| AgentView::new(slots));
        if report.seq == 0 || report.seq <= view.last_seq && !view.holes.contains(&report.seq) {
            // Duplicate of a merged report, or late beyond the horizon.
            self.stale += 1;
            return IngestOutcome::Stale;
        }
        let late = report.seq <= view.last_seq;
        if late {
            view.holes.remove(&report.seq);
            // It was provisionally lost; it made it after all.
            self.lost -= 1;
        } else {
            for missing in view.last_seq + 1..report.seq {
                view.holes.insert(missing);
                self.lost += 1;
            }
            // Bounded memory: forget the oldest holes — they stay lost,
            // and should they arrive anyway they count stale.
            while view.holes.len() > MAX_REORDER_HORIZON {
                view.holes.pop_first();
            }
            view.last_seq = report.seq;
        }
        for &(slot, delta) in &report.deltas {
            if slot < slots {
                view.totals[slot] += delta;
            }
        }
        // Monotonicity: the watermark never rewinds. A late report's
        // older watermark is expected and not a regression; a *newer*
        // sequence carrying an older watermark is.
        if report.watermark >= view.watermark {
            view.watermark = report.watermark;
        } else if !late {
            self.watermark_regressions += 1;
        }
        self.merged += 1;
        if late {
            IngestOutcome::MergedLate
        } else {
            IngestOutcome::Merged
        }
    }

    /// Labels of every agent that has ever reported, sorted.
    pub fn agent_labels(&self) -> Vec<&str> {
        self.agents.keys().map(String::as_str).collect()
    }

    /// The view of one agent.
    pub fn agent(&self, label: &str) -> Option<&AgentView> {
        self.agents.get(label)
    }

    /// Fleet-aggregate total for one dictionary slot (sum over agents).
    pub fn fleet_total(&self, slot: usize) -> u64 {
        self.agents.values().map(|v| v.totals[slot]).sum()
    }

    /// The fleet watermark: the minimum per-agent watermark — everything
    /// before it is reflected on every reporting agent. `None` until
    /// every known agent has merged at least one report.
    pub fn fleet_watermark(&self) -> Option<f64> {
        let mut min = f64::INFINITY;
        for view in self.agents.values() {
            min = min.min(view.watermark()?);
        }
        (min != f64::INFINITY).then_some(min)
    }

    /// Reports merged (including late hole-fills).
    pub fn reports_merged(&self) -> u64 {
        self.merged
    }

    /// Duplicate/beyond-horizon deliveries dropped.
    pub fn reports_stale(&self) -> u64 {
        self.stale
    }

    /// Reports currently presumed lost (holes plus evicted holes).
    pub fn reports_lost(&self) -> u64 {
        self.lost
    }

    /// Merged reports whose watermark would have rewound an agent's clock.
    pub fn watermark_regressions(&self) -> u64 {
        self.watermark_regressions
    }

    /// The value the SLO engine evaluates: an agent's (or, with `None`,
    /// the fleet-aggregate) total for the named dictionary metric.
    pub fn metric_value(&self, metric: &str, agent: Option<&str>) -> Option<f64> {
        let slot = self.dictionary.iter().position(|d| d.name == metric)?;
        match agent {
            Some(label) => Some(self.agents.get(label)?.totals[slot] as f64),
            None => Some(self.fleet_total(slot) as f64),
        }
    }

    /// A deterministic fixed-width fleet table: one row per agent, a
    /// fleet-aggregate row, and the report accounting line.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:<18} {:>12} {:>6}", "agent", "watermark", "seq");
        for def in &self.dictionary {
            let _ = write!(out, " {:>14}", def.name);
        }
        out.push('\n');
        for (label, view) in &self.agents {
            let wm = view.watermark().map_or("-".to_owned(), fmt_f64);
            let _ = write!(out, "{label:<18} {wm:>12} {:>6}", view.last_seq);
            for slot in 0..self.dictionary.len() {
                let _ = write!(out, " {:>14}", view.totals[slot]);
            }
            out.push('\n');
        }
        let wm = self.fleet_watermark().map_or("-".to_owned(), fmt_f64);
        let _ = write!(out, "{:<18} {wm:>12} {:>6}", format!("fleet ({})", self.agents.len()), "-");
        for slot in 0..self.dictionary.len() {
            let _ = write!(out, " {:>14}", self.fleet_total(slot));
        }
        out.push('\n');
        let _ = writeln!(
            out,
            "reports: merged={} stale={} lost={} watermark_regressions={}",
            self.merged, self.stale, self.lost, self.watermark_regressions
        );
        out
    }

    /// Publishes the fleet view into a registry as `agent`-labeled
    /// `lla_fleet_*` series plus the `lla_telemetry_reports_*` accounting
    /// family. Idempotent: repeated exports top counters up to the
    /// current totals.
    pub fn export_into(&self, registry: &MetricsRegistry) {
        for (label, view) in &self.agents {
            let labels = [("agent", label.as_str())];
            for (slot, def) in self.dictionary.iter().enumerate() {
                let c = registry.counter_with(
                    &format!("lla_fleet_{}_total", def.name),
                    def.help,
                    &labels,
                );
                c.add(view.totals[slot].saturating_sub(c.get()));
            }
            registry
                .gauge_with(
                    "lla_fleet_watermark_ms",
                    "per-agent telemetry watermark (virtual ms)",
                    &labels,
                )
                .set(view.watermark().unwrap_or(0.0));
        }
        for (name, help, value) in [
            ("lla_telemetry_reports_merged_total", "telemetry reports merged", self.merged),
            (
                "lla_telemetry_reports_stale_total",
                "duplicate telemetry reports dropped",
                self.stale,
            ),
            ("lla_telemetry_reports_lost_total", "telemetry reports presumed lost", self.lost),
            (
                "lla_telemetry_watermark_regressions_total",
                "merged reports that would have rewound a watermark",
                self.watermark_regressions,
            ),
        ] {
            let c = registry.counter(name, help);
            c.add(value.saturating_sub(c.get()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DICT: &[MetricDef] = &[
        MetricDef { name: "ticks", help: "ticks" },
        MetricDef { name: "updates", help: "updates" },
    ];

    fn report(agent: &str, seq: u64, watermark: f64, deltas: &[(usize, u64)]) -> TelemetryReport {
        TelemetryReport { agent: agent.into(), seq, watermark, deltas: deltas.to_vec() }
    }

    #[test]
    fn scope_drain_emits_only_deltas_and_always_advances_seq() {
        let reg = MetricsRegistry::new();
        let scope = AgentScope::new(&reg, "resource[0]", DICT);
        let mut tracker = DeltaTracker::new(DICT.len());
        scope.inc(0);
        scope.add(1, 3);
        let r1 = tracker.drain(&scope, 10.0);
        assert_eq!(r1.seq, 1);
        assert_eq!(r1.deltas, vec![(0, 1), (1, 3)]);
        // Nothing new: empty deltas, but seq and watermark still advance.
        let r2 = tracker.drain(&scope, 20.0);
        assert_eq!((r2.seq, r2.watermark), (2, 20.0));
        assert!(r2.deltas.is_empty());
        scope.inc(1);
        assert_eq!(tracker.drain(&scope, 30.0).deltas, vec![(1, 1)]);
        assert_eq!(tracker.emitted(), 3);
    }

    #[test]
    fn in_order_reports_merge_exactly_once() {
        let mut col = TelemetryCollector::new(DICT);
        assert_eq!(col.ingest(&report("a", 1, 10.0, &[(0, 2)])), IngestOutcome::Merged);
        assert_eq!(col.ingest(&report("a", 2, 20.0, &[(0, 1), (1, 5)])), IngestOutcome::Merged);
        let view = col.agent("a").unwrap();
        assert_eq!((view.total(0), view.total(1)), (3, 5));
        assert_eq!(view.watermark(), Some(20.0));
        assert_eq!((col.reports_merged(), col.reports_stale(), col.reports_lost()), (2, 0, 0));
    }

    #[test]
    fn duplicates_are_stale_and_never_double_merge() {
        let mut col = TelemetryCollector::new(DICT);
        let r = report("a", 1, 10.0, &[(0, 2)]);
        col.ingest(&r);
        assert_eq!(col.ingest(&r), IngestOutcome::Stale);
        assert_eq!(col.agent("a").unwrap().total(0), 2);
        assert_eq!((col.reports_merged(), col.reports_stale()), (1, 1));
    }

    #[test]
    fn gaps_count_lost_and_late_fills_reclaim_them() {
        let mut col = TelemetryCollector::new(DICT);
        col.ingest(&report("a", 1, 10.0, &[(0, 1)]));
        // seq 2 and 3 skipped: provisionally lost.
        assert_eq!(col.ingest(&report("a", 4, 40.0, &[(0, 1)])), IngestOutcome::Merged);
        assert_eq!(col.reports_lost(), 2);
        assert_eq!(col.agent("a").unwrap().holes(), 2);
        // seq 2 arrives late: merged, reclaimed from lost, watermark holds.
        assert_eq!(col.ingest(&report("a", 2, 20.0, &[(1, 7)])), IngestOutcome::MergedLate);
        assert_eq!(col.reports_lost(), 1);
        assert_eq!(col.agent("a").unwrap().total(1), 7);
        assert_eq!(col.agent("a").unwrap().watermark(), Some(40.0));
        assert_eq!(col.watermark_regressions(), 0);
        // A second copy of the late report is now a duplicate.
        assert_eq!(col.ingest(&report("a", 2, 20.0, &[(1, 7)])), IngestOutcome::Stale);
        // merged + lost accounts for the 4 emitted; merged + stale for the 4 delivered
        // (seq 1, seq 4, seq 2, and the duplicate copy of seq 2).
        assert_eq!(col.reports_merged() + col.reports_lost(), 4);
        assert_eq!(col.reports_merged() + col.reports_stale(), 4);
    }

    #[test]
    fn watermark_never_rewinds_and_regressions_are_counted() {
        let mut col = TelemetryCollector::new(DICT);
        col.ingest(&report("a", 1, 50.0, &[]));
        // Newer seq with an older watermark: merged, clock holds, flagged.
        col.ingest(&report("a", 2, 30.0, &[]));
        assert_eq!(col.agent("a").unwrap().watermark(), Some(50.0));
        assert_eq!(col.watermark_regressions(), 1);
    }

    #[test]
    fn holes_beyond_the_horizon_stay_lost() {
        let mut col = TelemetryCollector::new(DICT);
        col.ingest(&report("a", 1, 1.0, &[]));
        // Skip far past the horizon: seq 2..=HORIZON+2 all missing.
        let far = MAX_REORDER_HORIZON as u64 + 3;
        col.ingest(&report("a", far, far as f64, &[]));
        assert_eq!(col.reports_lost(), far - 2);
        assert_eq!(col.agent("a").unwrap().holes(), MAX_REORDER_HORIZON);
        // seq 2 was evicted from the hole set: it arrives but counts stale.
        assert_eq!(col.ingest(&report("a", 2, 2.0, &[])), IngestOutcome::Stale);
        assert_eq!(col.reports_lost(), far - 2);
    }

    #[test]
    fn fleet_watermark_is_the_minimum_over_agents() {
        let mut col = TelemetryCollector::new(DICT);
        col.ingest(&report("a", 1, 30.0, &[(0, 1)]));
        assert_eq!(col.fleet_watermark(), Some(30.0));
        col.ingest(&report("b", 1, 10.0, &[(0, 2)]));
        assert_eq!(col.fleet_watermark(), Some(10.0));
        assert_eq!(col.fleet_total(0), 3);
        assert_eq!(col.metric_value("ticks", None), Some(3.0));
        assert_eq!(col.metric_value("ticks", Some("a")), Some(1.0));
        assert_eq!(col.metric_value("nope", None), None);
    }

    #[test]
    fn export_into_is_idempotent_and_labeled() {
        let mut col = TelemetryCollector::new(DICT);
        col.ingest(&report("resource[0]", 1, 10.0, &[(0, 4)]));
        let reg = MetricsRegistry::new();
        col.export_into(&reg);
        col.export_into(&reg);
        let text = reg.prometheus_text();
        assert!(text.contains("lla_fleet_ticks_total{agent=\"resource[0]\"} 4"), "{text}");
        assert!(text.contains("lla_fleet_watermark_ms{agent=\"resource[0]\"} 10"), "{text}");
        assert!(text.contains("lla_telemetry_reports_merged_total 1"), "{text}");
    }

    #[test]
    fn render_table_is_deterministic() {
        let mut col = TelemetryCollector::new(DICT);
        col.ingest(&report("b", 1, 20.0, &[(1, 2)]));
        col.ingest(&report("a", 1, 10.0, &[(0, 1)]));
        let t1 = col.render_table();
        let t2 = col.render_table();
        assert_eq!(t1, t2);
        // Agents render in sorted order.
        assert!(t1.find("a ").unwrap() < t1.find("b ").unwrap(), "{t1}");
        assert!(t1.contains("reports: merged=2 stale=0 lost=0"), "{t1}");
    }
}
